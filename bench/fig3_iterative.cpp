// Figure 3 — iterative convergence: RMSE and error rate vs *epoch* for SGD,
// ASGD, IS-ASGD (and SVRG-ASGD on the News20 analog, as in the paper) at
// each thread count.
//
//   build/bench/fig3_iterative [--datasets news20] [--threads 4,8,16]
//
// Expected shape (paper §4.1): SVRG-ASGD best per-epoch but only on the
// dense small set; ASGD worst (degrading as threads rise on denser data);
// IS-ASGD tracks or beats SGD and is concurrency-robust.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("fig3_iterative",
                      "Reproduces Figure 3: iterative (per-epoch) convergence "
                      "of SGD/ASGD/IS-ASGD/SVRG-ASGD");
  bench::add_common_flags(cli);
  cli.add_flag("reshuffle", "false",
               "use the paper's §4.2 reshuffle-once approximation for the IS\n"
               "      sample sequences. Off by default: a reshuffled sequence\n"
               "      never visits ~1/e of each shard (the multiset is fixed),\n"
               "      which caps attainable accuracy on datasets whose error\n"
               "      floor requires covering every sample — see EXPERIMENTS.md");
  cli.add_flag("svrg", "auto",
               "include SVRG-ASGD: auto (News20 analog only, as the paper "
               "does), always, never");
  if (!cli.parse(argc, argv)) return 0;

  const double scale = cli.get_double("scale");
  const auto thread_counts = bench::threads_from(cli);
  const std::string svrg_mode = cli.get("svrg");

  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    core::Trainer trainer(prepared.data, prepared.objective, prepared.reg);

    core::ExperimentSpec spec;
    spec.dataset_name = prepared.config.name;
    spec.solvers = {"SGD", "ASGD", "IS-ASGD"};
    const bool with_svrg =
        svrg_mode == "always" ||
        (svrg_mode == "auto" && id == data::PaperDataset::kNews20);
    if (with_svrg) spec.solvers.emplace_back("SVRG-ASGD");
    spec.thread_counts = thread_counts;
    spec.base_options.step_size = prepared.config.lambda;
    spec.base_options.epochs = cli.get_int("epochs") > 0
                                   ? static_cast<std::size_t>(cli.get_int("epochs"))
                                   : prepared.config.paper_epochs;
    spec.base_options.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
    if (cli.get_bool("reshuffle")) {
      spec.base_options.sequence_mode =
          solvers::SolverOptions::SequenceMode::kReshuffle;
    }

    const auto result = core::run_experiment(trainer, spec);
    bench::maybe_write_csv(cli, "fig3_" + prepared.config.name, result);

    // Paper layout: one block per thread count, RMSE + error-rate series.
    for (std::size_t threads : thread_counts) {
      std::printf("\n=== Figure 3 (%s)  tau=%zu  lambda=%.2f ===\n",
                  prepared.config.paper_name.c_str(), threads,
                  prepared.config.lambda);
      util::TablePrinter table(
          {"epoch", "SGD_rmse", "ASGD_rmse", "IS-ASGD_rmse",
           with_svrg ? "SVRG-ASGD_rmse" : "-", "SGD_err", "ASGD_err",
           "IS-ASGD_err", with_svrg ? "SVRG-ASGD_err" : "-"});
      const auto* sgd = result.find("SGD", threads);
      const auto* asgd = result.find("ASGD", threads);
      const auto* is = result.find("IS-ASGD", threads);
      const auto* svrg =
          with_svrg ? result.find("SVRG-ASGD", threads)
                    : nullptr;
      const std::size_t epochs = sgd->trace.points.size();
      for (std::size_t e = 0; e < epochs; ++e) {
        auto cell = [&](const core::ExperimentRun* run,
                        bool err) -> std::string {
          if (!run || e >= run->trace.points.size()) return "-";
          const auto& p = run->trace.points[e];
          return util::TablePrinter::num(err ? p.error_rate : p.rmse);
        };
        table.add_row({std::to_string(e), cell(sgd, false), cell(asgd, false),
                       cell(is, false), cell(svrg, false), cell(sgd, true),
                       cell(asgd, true), cell(is, true), cell(svrg, true)});
      }
      std::printf("%s", table.render().c_str());

      // Figure-3 headline: final-epoch comparison.
      const double is_final = is->trace.points.back().rmse;
      const double asgd_final = asgd->trace.points.back().rmse;
      std::printf(
          "summary: IS-ASGD final rmse %.4g vs ASGD %.4g (%s); best err "
          "IS-ASGD %.4g vs ASGD %.4g\n",
          is_final, asgd_final,
          is_final <= asgd_final ? "IS-ASGD better-or-equal, as in Fig. 3"
                                 : "ASGD ahead (unexpected)",
          is->trace.best_error_rate(), asgd->trace.best_error_rate());
    }
  }
  return 0;
}
