// Ablation for the two extension features beyond the paper's Algorithm 4:
//
//   (a) mini-batch IS-ASGD (the Csiba–Richtárik direction the paper cites):
//       batch-size sweep at fixed total sample visits — variance per update
//       falls, updates per epoch fall; where is the sweet spot?
//   (b) adaptive Eq. 11 importance (the "completely impractical" ideal):
//       what does tracking ‖∇f_i(w)‖ actually cost, and what does it buy,
//       relative to the static Eq. 12 distribution?
//
//   build/bench/ablation_extensions
#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/is_asgd.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/prox_sgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_extensions",
                      "Mini-batch IS-ASGD sweep + adaptive Eq. 11 importance "
                      "cost/benefit");
  cli.add_flag("rows", "20000", "dataset rows");
  cli.add_flag("dim", "5000", "dimensionality");
  cli.add_flag("epochs", "10", "training epochs");
  cli.add_flag("threads", "8", "worker threads");
  cli.add_flag("batches", "1,4,16,64,256", "batch sizes to sweep");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = 12;
  spec.target_psi = 0.9;
  spec.seed = 515;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 8);

  std::printf("=== (a) mini-batch IS-ASGD, equal total sample visits ===\n");
  util::TablePrinter batches(
      {"batch", "final_rmse", "best_err", "train_s", "updates_per_epoch"});
  for (int b : cli.get_int_list("batches")) {
    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
    opt.step_size = 0.5;
    opt.batch_size = static_cast<std::size_t>(b);
    const auto t = run_is_asgd(data, loss, opt, ev.as_fn());
    batches.add_row_values(
        static_cast<double>(b), t.points.back().rmse, t.best_error_rate(),
        t.train_seconds,
        static_cast<double>(data.rows()) / static_cast<double>(b) /
            static_cast<double>(opt.threads));
  }
  std::printf("%s", batches.render().c_str());
  std::printf(
      "expected shape: moderate batches track b=1 quality (variance "
      "averaging compensates fewer updates); very large batches "
      "under-update per epoch and lag.\n\n");

  std::printf("=== (b) static Eq. 12 vs adaptive Eq. 11 importance (serial) ===\n");
  util::TablePrinter adaptive({"variant", "final_rmse", "best_err",
                               "setup_s", "train_s"});
  {
    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.step_size = 0.5;
    const auto fixed = run_is_sgd(data, loss, opt, ev.as_fn());
    adaptive.add_row_values("static Eq.12", fixed.points.back().rmse,
                            fixed.best_error_rate(), fixed.setup_seconds,
                            fixed.train_seconds);
    opt.adaptive_importance = true;
    const auto tracked = run_is_sgd(data, loss, opt, ev.as_fn());
    adaptive.add_row_values("adaptive Eq.11 (every epoch)",
                            tracked.points.back().rmse,
                            tracked.best_error_rate(), tracked.setup_seconds,
                            tracked.train_seconds);
    opt.adaptive_interval = 4;
    const auto sparse_track = run_is_sgd(data, loss, opt, ev.as_fn());
    adaptive.add_row_values("adaptive Eq.11 (every 4 epochs)",
                            sparse_track.points.back().rmse,
                            sparse_track.best_error_rate(),
                            sparse_track.setup_seconds,
                            sparse_track.train_seconds);
  }
  std::printf("%s", adaptive.render().c_str());
  std::printf(
      "expected shape: adaptive importance pays an O(nnz + n log n) "
      "re-estimation every interval (visible in train_s) for at most a "
      "modest quality edge — quantifying why the paper settled for the "
      "static Eq. 12 supremum approximation.\n\n");

  std::printf("=== (c) async extensions: adaptive IS-ASGD, prox-(IS-)ASGD ===\n");
  {
    util::TablePrinter async_table(
        {"variant", "final_rmse", "best_err", "setup_s", "train_s"});
    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.step_size = 0.5;
    opt.threads = 4;
    const auto static_is = run_is_asgd(data, loss, opt, ev.as_fn());
    async_table.add_row_values("IS-ASGD static Eq.12",
                               static_is.points.back().rmse,
                               static_is.best_error_rate(),
                               static_is.setup_seconds,
                               static_is.train_seconds);
    auto aopt = opt;
    aopt.adaptive_importance = true;
    const auto adaptive_is = run_is_asgd(data, loss, aopt, ev.as_fn());
    async_table.add_row_values("IS-ASGD adaptive Eq.11",
                               adaptive_is.points.back().rmse,
                               adaptive_is.best_error_rate(),
                               adaptive_is.setup_seconds,
                               adaptive_is.train_seconds);
    auto popt = opt;
    popt.reg = objectives::Regularization::l1(1e-6);
    const auto prox_uni =
        run_prox_asgd(data, loss, popt, false, ev.as_fn());
    async_table.add_row_values("PROX-ASGD (uniform)",
                               prox_uni.points.back().rmse,
                               prox_uni.best_error_rate(),
                               prox_uni.setup_seconds,
                               prox_uni.train_seconds);
    const auto prox_is = run_prox_asgd(data, loss, popt, true, ev.as_fn());
    async_table.add_row_values("IS-PROX-ASGD", prox_is.points.back().rmse,
                               prox_is.best_error_rate(),
                               prox_is.setup_seconds, prox_is.train_seconds);
    std::printf("%s", async_table.render().c_str());
    std::printf(
        "expected shape: the adaptive refresh moves its cost from setup_s "
        "into train_s at equal-or-better quality; the prox variants match "
        "the subgradient IS-ASGD's quality while handling L1 exactly on "
        "touched coordinates.\n");
  }
  return 0;
}
