// Lock-policy ablation: what Hogwild's lock-freedom actually buys.
//
// Recht et al.'s argument for lock-free updates is throughput: locking a
// shared model on every coordinate write serialises the hot path. This
// bench runs the same ASGD workload under the four update disciplines
// (wild / atomic / striped spinlocks / one global lock) across a thread
// sweep and reports per-epoch wall-clock and final quality. Expected shape:
// wild ≈ atomic (sparse data rarely contends a cache line), striped close
// behind, global lock collapsing as threads rise — while all four end at
// statistically equal quality, which is exactly why Hogwild drops the locks.
//
//   build/bench/ablation_lock_policy
#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/asgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_lock_policy",
                      "ASGD throughput and quality under wild / atomic / "
                      "striped / global-lock shared-model disciplines");
  cli.add_flag("rows", "20000", "dataset rows");
  cli.add_flag("dim", "5000", "dataset dimensionality");
  cli.add_flag("nnz", "12", "mean nonzeros per row");
  cli.add_flag("epochs", "6", "epoch budget");
  cli.add_flag("threads", "1,2,4,8,16", "thread counts to sweep");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = cli.get_double("nnz");
  spec.label_noise = 0.02;
  spec.seed = 99;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);

  const solvers::UpdatePolicy policies[] = {
      solvers::UpdatePolicy::kWild, solvers::UpdatePolicy::kAtomic,
      solvers::UpdatePolicy::kStriped, solvers::UpdatePolicy::kLocked};

  for (int threads : cli.get_int_list("threads")) {
    std::printf("\n=== %d thread(s) ===\n", threads);
    util::TablePrinter table(
        {"policy", "train_s", "ms_per_epoch", "final_rmse", "best_err"});
    double wild_seconds = 0;
    for (const auto policy : policies) {
      solvers::SolverOptions opt;
      opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
      opt.threads = static_cast<std::size_t>(threads);
      opt.update_policy = policy;
      opt.seed = 7;
      const auto trace = run_asgd(data, loss, opt, ev.as_fn());
      if (policy == solvers::UpdatePolicy::kWild) {
        wild_seconds = trace.train_seconds;
      }
      table.add_row_values(
          solvers::update_policy_name(policy), trace.train_seconds,
          1e3 * trace.train_seconds / static_cast<double>(opt.epochs),
          trace.points.back().rmse, trace.best_error_rate());
    }
    std::printf("%s", table.render().c_str());
    std::printf("(wild = %.4fs baseline at this thread count)\n",
                wild_seconds);
  }
  std::printf(
      "\nexpected shape: quality columns equal across policies; the locked "
      "row's time grows with threads (serialisation) while wild/atomic stay "
      "flat or improve — Hogwild's case for lock-freedom, measured.\n");
  return 0;
}
