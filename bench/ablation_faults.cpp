// Fault-recovery ablation: what a worker crash costs, and what the recovery
// policy buys back, on the event-clock parameter-server simulator.
//
// A no-fault run fixes the target loss (its final full-data objective plus a
// small margin). Each scenario × policy cell then reruns the same training
// with a scripted FaultScenario and reports the *time to recover* — the
// first simulated second at which the full-data objective is back at or
// under the target. A cell that never gets there is "not recovered"
// (time-to-recover = ∞ for the --check comparison).
//
//   scenarios: crash (node dies mid-epoch, never returns)
//              crash_rejoin (a replacement is admitted a few epochs later)
//   policies:  none    (dead rank's shard simply stops contributing)
//              reshard (survivors adopt the dead rank's walk at the fence)
//
//   build/bench/ablation_faults [--check] [--out FILE]
//     --out FILE : write the cells as JSON (release CI uploads
//                  BENCH_faults.json)
//     --check    : exit non-zero unless recovery pays in every scenario —
//                  reshard must reach the target, and strictly sooner than
//                  the no-recovery policy does (if that ever recovers).
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "distributed/param_server.hpp"
#include "distributed/recovery.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"

namespace {

using namespace isasgd;

struct Cell {
  std::string scenario;
  std::string policy;
  bool recovered = false;
  double recover_seconds = std::numeric_limits<double>::infinity();
  double final_objective = 0;
  std::uint64_t crash_events = 0;
  std::uint64_t rejoin_events = 0;
};

double time_to_target(const solvers::Trace& trace, double target) {
  for (const solvers::TracePoint& p : trace.points) {
    if (p.epoch > 0 && p.objective <= target) return p.seconds;
  }
  return std::numeric_limits<double>::infinity();
}

void write_json(const std::string& path, double baseline_objective,
                double target, const std::vector<Cell>& cells) {
  std::ofstream out(path);
  out << "{\n  \"baseline_final_objective\": " << baseline_objective
      << ",\n  \"target_objective\": " << target << ",\n  \"cells\": [\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    out << "    {\"scenario\": \"" << c.scenario << "\", \"policy\": \""
        << c.policy << "\", \"recovered\": " << (c.recovered ? "true" : "false")
        << ", \"recover_sim_seconds\": "
        << (c.recovered ? c.recover_seconds : -1.0)
        << ", \"final_objective\": " << c.final_objective
        << ", \"crash_events\": " << c.crash_events
        << ", \"rejoin_events\": " << c.rejoin_events << "}"
        << (i + 1 < cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

/// The --check gate: in every scenario the resharding policy must actually
/// recover, and must beat leaving the dead rank's shard on the floor.
int check_recovery(const std::vector<Cell>& cells) {
  int failures = 0;
  for (const std::string scenario : {"crash", "crash_rejoin"}) {
    const Cell* none = nullptr;
    const Cell* reshard = nullptr;
    for (const Cell& c : cells) {
      if (c.scenario != scenario) continue;
      (c.policy == "reshard" ? reshard : none) = &c;
    }
    if (none == nullptr || reshard == nullptr) {
      std::fprintf(stderr, "CHECK FAILED: scenario %s is missing cells\n",
                   scenario.c_str());
      ++failures;
      continue;
    }
    if (!reshard->recovered) {
      std::fprintf(stderr,
                   "CHECK FAILED: %s/reshard never reached the target "
                   "(final objective %.6g)\n",
                   scenario.c_str(), reshard->final_objective);
      ++failures;
      continue;
    }
    // none's time is +inf when it never recovers, so this comparison is the
    // whole gate: recovery-enabled strictly beats no-recovery.
    if (!(reshard->recover_seconds < none->recover_seconds)) {
      std::fprintf(stderr,
                   "CHECK FAILED: %s: reshard recovered at %.4g sim-s but "
                   "no-recovery was not beaten (%.4g sim-s)\n",
                   scenario.c_str(), reshard->recover_seconds,
                   none->recover_seconds);
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ablation_faults",
                      "Crash/rejoin scenarios × recovery policies on the "
                      "event-clock parameter server: time to recover the "
                      "no-fault target loss");
  cli.add_flag("rows", "2000", "dataset rows");
  cli.add_flag("dim", "500", "dataset dimension");
  cli.add_flag("nodes", "8", "cluster size (one rank crashes)");
  cli.add_flag("epochs", "12", "epoch budget");
  cli.add_flag("crash-epoch", "3", "epoch the scripted crash fires in");
  cli.add_flag("rejoin-epoch", "7",
               "epoch the replacement joins (crash_rejoin scenario)");
  cli.add_flag("margin", "0.01",
               "target = no-fault final objective * (1 + margin)");
  cli.add_flag("out", "", "also write the cells as JSON to this file");
  cli.add_flag("check", "false",
               "fail unless reshard recovers and beats no-recovery");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec dspec;
  dspec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  dspec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  dspec.mean_row_nnz = 10;
  dspec.target_psi = 0.8;
  dspec.label_noise = 0.02;
  dspec.seed = 41;
  const auto data = data::generate(dspec);
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               8);
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = 0.5;
  opt.seed = 7;

  distributed::ClusterSpec base;
  base.nodes = static_cast<std::size_t>(cli.get_int("nodes"));

  // ---- Baseline: no faults fixes the target ----
  const solvers::Trace baseline = distributed::run_param_server(
      data, loss, opt, base, /*use_importance=*/true, evaluator.as_fn());
  const double baseline_objective = baseline.points.back().objective;
  const double target =
      baseline_objective * (1.0 + cli.get_double("margin"));
  std::printf("no-fault final objective %.6g, recovery target %.6g\n",
              baseline_objective, target);

  const std::size_t crash_epoch =
      static_cast<std::size_t>(cli.get_int("crash-epoch"));
  const std::size_t rejoin_epoch =
      static_cast<std::size_t>(cli.get_int("rejoin-epoch"));

  struct ScenarioDef {
    const char* name;
    std::size_t rejoin;
  };
  const ScenarioDef scenarios[] = {{"crash", 0},
                                   {"crash_rejoin", rejoin_epoch}};
  const distributed::RecoveryPolicy policies[] = {
      distributed::RecoveryPolicy::kNone,
      distributed::RecoveryPolicy::kReshard};

  std::vector<Cell> cells;
  util::TablePrinter table({"scenario", "policy", "recovered", "recover_sim_s",
                            "final_obj", "crashes", "rejoins"});
  for (const ScenarioDef& sc : scenarios) {
    for (const distributed::RecoveryPolicy policy : policies) {
      distributed::ClusterSpec spec = base;
      spec.fault.crash_node = spec.nodes - 1;
      spec.fault.crash_epoch = crash_epoch;
      spec.fault.crash_fraction = 0.5;
      spec.fault.rejoin_epoch = sc.rejoin;
      spec.recovery.policy = policy;
      distributed::ParamServerReport report;
      const solvers::Trace trace = distributed::run_param_server(
          data, loss, opt, spec, /*use_importance=*/true, evaluator.as_fn(),
          &report);
      Cell cell;
      cell.scenario = sc.name;
      cell.policy = distributed::recovery_policy_name(policy);
      cell.recover_seconds = time_to_target(trace, target);
      cell.recovered = std::isfinite(cell.recover_seconds);
      cell.final_objective = trace.points.back().objective;
      cell.crash_events = report.crash_events;
      cell.rejoin_events = report.rejoin_events;
      cells.push_back(cell);
      table.add_row_values(cell.scenario, cell.policy,
                           cell.recovered ? "yes" : "no",
                           cell.recovered ? cell.recover_seconds : -1.0,
                           cell.final_objective,
                           static_cast<double>(cell.crash_events),
                           static_cast<double>(cell.rejoin_events));
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: reshard recovers the target in both scenarios (the "
      "survivors absorb the dead rank's walk at the next fence); none only "
      "recovers once a replacement rejoins, later than reshard — and never "
      "in the plain crash scenario, where the lost shard's data is simply "
      "absent from every remaining epoch.\n");

  if (!cli.get("out").empty()) {
    write_json(cli.get("out"), baseline_objective, target, cells);
  }
  if (cli.get_bool("check")) {
    const int failures = check_recovery(cells);
    if (failures) return 1;
    std::printf(
        "recovery sanity holds: reshard reaches the target and beats "
        "no-recovery in both scenarios\n");
  }
  return 0;
}
