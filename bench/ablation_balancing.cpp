// Ablation for §2.3–2.4: importance imbalance and the balancing strategies.
//
// Sweeps partition strategies (none / shuffle / head-tail / greedy-LPT)
// across importance skews (ψ targets) and reports:
//   * Φ spread across shards (Eq. 18/19),
//   * worst-case sampling-rate distortion vs the global IS distribution
//     (the §2.3 "p4 < p2" pathology),
//   * final RMSE of an IS-ASGD run under each strategy.
//
//   build/bench/ablation_balancing
#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "partition/importance.hpp"
#include "solvers/is_asgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_balancing",
                      "Quantifies §2.3/2.4: importance imbalance across "
                      "partition strategies and its convergence impact");
  cli.add_flag("rows", "6000", "dataset rows");
  cli.add_flag("dim", "800", "dimensionality");
  cli.add_flag("threads", "8", "worker count");
  cli.add_flag("epochs", "8", "training epochs");
  cli.add_flag("psis", "0.99,0.95,0.90,0.85", "psi targets (skew sweep)");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;
  const auto threads = static_cast<std::size_t>(cli.get_int("threads"));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));

  // Parse psi list.
  std::vector<double> psis;
  {
    std::string v = cli.get("psis");
    std::size_t start = 0;
    while (start <= v.size()) {
      const auto comma = v.find(',', start);
      const std::string item =
          v.substr(start, comma == std::string::npos ? comma : comma - start);
      if (!item.empty()) psis.push_back(std::stod(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  util::TablePrinter table({"psi", "strategy", "phi_spread", "distortion",
                            "final_rmse", "best_err"});
  for (double psi : psis) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
    spec.mean_row_nnz = 10;
    spec.target_psi = psi;
    spec.seed = static_cast<std::uint64_t>(psi * 1e4);
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
    const auto lip = objectives::per_sample_lipschitz(
        data, loss, objectives::Regularization::none());

    for (auto strategy :
         {partition::Strategy::kNone, partition::Strategy::kShuffle,
          partition::Strategy::kHeadTail, partition::Strategy::kGreedyLpt}) {
      // Static partition diagnostics.
      partition::PartitionOptions popt;
      popt.strategy = strategy;
      partition::PartitionPlan plan(lip, threads, popt);
      std::vector<std::uint32_t> assign(lip.size());
      for (std::size_t tid = 0; tid < threads; ++tid) {
        for (auto row : plan.shard(tid).rows) {
          assign[row] = static_cast<std::uint32_t>(tid);
        }
      }
      const double distortion =
          partition::sampling_distortion(lip, assign, threads);

      // Convergence under the strategy.
      solvers::SolverOptions opt;
      opt.epochs = epochs;
      opt.threads = threads;
      opt.step_size = 0.5;
      opt.partition.strategy = strategy;
      const auto trace = run_is_asgd(data, loss, opt, ev.as_fn());
      table.add_row_values(psi, partition::strategy_name(strategy),
                           plan.imbalance(), distortion,
                           trace.points.back().rmse,
                           trace.best_error_rate());
    }
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: 'none' (raw segmentation) shows the largest "
      "distortion at low psi; head_tail/greedy_lpt drive phi_spread toward 0 "
      "(Eq. 19); convergence differences grow as psi falls (§2.4 — and for "
      "large shuffled datasets random shuffling is already adequate, which "
      "the shuffle row demonstrates).\n");
  return 0;
}
