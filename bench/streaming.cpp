// Streaming vs in-memory training throughput.
//
// Generates a synthetic dataset, writes it to disk (binary and libsvm), and
// trains the same solver three ways on the same seed:
//
//   inmem      — classic single-shard in-memory path (the seed behaviour)
//   chunked    — in-memory source split into shards (shard-major schedule,
//                zero I/O): isolates the schedule's cost from the I/O's
//   stream     — StreamingSource under --budget-mb, with LRU cache +
//                background prefetch: the out-of-core path
//
// Reports epochs/s, training-pass rows/s and the streaming cache counters,
// and (with --check) asserts the streaming final loss is within 1e-6
// relative of the chunked in-memory path — the PR's acceptance gate, run
// on bench-scale data.
//
//   build/bench/streaming [--rows 200000 --dim 50000 --budget-mb 8 ...]
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <filesystem>
#include <memory>
#include <string>

#include "core/execution.hpp"
#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "io/binary.hpp"
#include "io/libsvm.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("streaming",
                      "Streaming (out-of-core) vs in-memory training "
                      "throughput on one synthetic dataset");
  cli.add_flag("rows", "120000", "dataset rows");
  cli.add_flag("dim", "40000", "feature dimensionality");
  cli.add_flag("nnz", "40", "mean nonzeros per row");
  cli.add_flag("shard-rows", "8192", "rows per shard");
  cli.add_flag("budget-mb", "8", "streaming shard-cache budget (MiB)");
  cli.add_flag("epochs", "3", "training epochs");
  cli.add_flag("threads", "4", "workers for the ASGD runs (solver=asgd)");
  cli.add_flag("solver", "sgd", "streaming-capable solver: sgd or asgd");
  cli.add_flag("format", "binary", "on-disk format: binary or libsvm");
  cli.add_flag("seed", "7", "RNG seed");
  cli.add_flag("check",
               "false",
               "assert streaming final loss within 1e-6 relative of the "
               "chunked in-memory path (exit 1 on violation)");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_i64("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_i64("dim"));
  spec.mean_row_nnz = cli.get_double("nnz");
  spec.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  std::printf("generating %zu x %zu (%g nnz/row)...\n", spec.rows, spec.dim,
              spec.mean_row_nnz);
  const sparse::CsrMatrix data = data::generate(spec);
  const double data_mib =
      static_cast<double>(data.nnz() * 12 + data.rows() * 16) / (1 << 20);

  const auto dir = std::filesystem::temp_directory_path() / "isasgd_bench";
  std::filesystem::create_directories(dir);
  const bool binary = cli.get("format") != "libsvm";
  const std::string file =
      (dir / (binary ? "stream.bin" : "stream.libsvm")).string();
  {
    util::Stopwatch timer;
    if (binary) {
      io::write_dataset_binary_file(file, data);
    } else {
      io::write_libsvm_file(file, data);
    }
    std::printf("wrote %s (%.1f MiB in-memory) in %.2fs\n", file.c_str(),
                data_mib, timer.seconds());
  }

  const std::size_t shard_rows =
      static_cast<std::size_t>(cli.get_i64("shard-rows"));
  const std::size_t budget =
      static_cast<std::size_t>(cli.get_i64("budget-mb")) << 20;
  auto ctx = std::make_shared<core::ExecutionContext>();
  data::StreamingOptions sopt;
  sopt.shard_rows = shard_rows;
  sopt.memory_budget_bytes = budget;
  util::Stopwatch index_timer;
  const auto stream = ctx->open_streaming(file, sopt);
  std::printf("indexed %zu shards in %.2fs (budget %.1f MiB)\n",
              stream->shard_count(), index_timer.seconds(),
              static_cast<double>(budget) / (1 << 20));
  const data::InMemorySource inmem(data);
  const data::InMemorySource chunked(data, shard_rows);

  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_i64("epochs"));
  opt.step_size = 0.5;
  opt.threads = static_cast<std::size_t>(cli.get_i64("threads"));
  opt.seed = spec.seed;
  const std::string solver = cli.get("solver");

  util::TablePrinter table({"path", "train_s", "epochs_per_s", "Mrows_per_s",
                            "final_obj", "cache"});
  double f_chunked = 0, f_stream = 0;
  auto run = [&](const char* label, const data::DataSource& source) {
    const core::Trainer trainer = core::TrainerBuilder()
                                      .source(source)
                                      .objective(loss)
                                      .l2(1e-6)
                                      .execution(ctx)
                                      .build();
    const solvers::Trace trace = trainer.train(solver, opt);
    const double rows_trained =
        static_cast<double>(data.rows()) * static_cast<double>(opt.epochs);
    std::string cache = "-";
    if (&source == stream.get()) {
      const auto stats = stream->cache_stats();
      char buf[128];
      std::snprintf(buf, sizeof buf, "h%llu m%llu ev%llu pf%llu",
                    static_cast<unsigned long long>(stats.hits),
                    static_cast<unsigned long long>(stats.misses),
                    static_cast<unsigned long long>(stats.evictions),
                    static_cast<unsigned long long>(stats.prefetch_issued));
      cache = buf;
    }
    table.add_row_values(
        std::string(label), trace.train_seconds,
        static_cast<double>(opt.epochs) / trace.train_seconds,
        rows_trained / trace.train_seconds / 1e6,
        trace.points.back().objective, cache);
    return trace.points.back().objective;
  };

  run("inmem", inmem);
  f_chunked = run("chunked", chunked);
  f_stream = run("stream", *stream);
  std::printf("\n%s\n", table.render().c_str());

  if (cli.get_bool("check")) {
    // Serial streaming (sgd) is bit-identical to the chunked in-memory
    // path, so the acceptance gate is 1e-6 with enormous margin. ASGD keeps
    // the same schedule but its Hogwild updates race, so runs agree only
    // statistically — gate at 1e-2 there.
    const bool serial = solvers::SolverRegistry::instance()
                            .get(solver)
                            .capabilities()
                            .serial();
    const double gate = serial ? 1e-6 : 1e-2;
    const double rel = std::abs(f_stream - f_chunked) /
                       std::max(1e-300, std::abs(f_chunked));
    std::printf("check: |stream - chunked| / chunked = %.3e (gate %.0e)\n",
                rel, gate);
    if (rel > gate) {
      std::fprintf(stderr, "FAIL: streaming diverged from in-memory path\n");
      std::remove(file.c_str());
      return 1;
    }
    std::printf("check: OK\n");
  }
  std::remove(file.c_str());
  return 0;
}
