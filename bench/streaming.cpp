// Streaming vs in-memory training throughput.
//
// Generates a synthetic dataset, writes it to disk (binary/libsvm AND as a
// compiled ISSP shardpack), and trains the same solver four ways on the
// same seed:
//
//   inmem      — classic single-shard in-memory path (the seed behaviour)
//   chunked    — in-memory source split into shards (shard-major schedule,
//                zero I/O): isolates the schedule's cost from the I/O's
//   stream     — StreamingSource under --budget-mb, with LRU cache +
//                background prefetch: the parse-on-fault out-of-core path
//   packed     — PackedSource over the shardpack, same budget, cold cache:
//                mmap decode + pooled buffers + prefetch autotuner
//
// Reports epochs/s, training-pass rows/s and the shard-cache counters
// (--stats prints the full counter set per lane). With --check the run
// becomes the PR's acceptance gate: the dataset is sized at least 10x the
// cache budget (the budget is clamped down if needed), the packed
// cold-stream must reach >= 0.9x the classic in-memory throughput, and the
// packed final model must match the streaming lane bit-for-bit (serial
// solvers; async gates on relative objective instead). --out writes the
// whole result as JSON for CI artifacts.
//
//   build/bench/streaming [--rows 200000 --dim 50000 --budget-mb 8 ...]
#include <cstdio>
#include <cstdlib>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/execution.hpp"
#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "data/packed_source.hpp"
#include "data/streaming_source.hpp"
#include "data/synthetic.hpp"
#include "io/binary.hpp"
#include "io/libsvm.hpp"
#include "io/shardpack.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace {

using namespace isasgd;

struct LaneResult {
  std::string label;
  double train_seconds = 0;
  double rows_per_s = 0;
  double final_objective = 0;
  std::vector<double> final_model;
  std::optional<data::CacheStats> cache;
};

std::string cache_json(const data::CacheStats& s) {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "{\"loads\":%llu,\"hits\":%llu,\"misses\":%llu,\"evictions\":%llu,"
      "\"prefetch_issued\":%llu,\"prefetch_hits\":%llu,"
      "\"prefetch_races\":%llu,\"prefetch_wasted\":%llu,"
      "\"resident_bytes\":%llu,\"resident_shards\":%llu}",
      static_cast<unsigned long long>(s.loads),
      static_cast<unsigned long long>(s.hits),
      static_cast<unsigned long long>(s.misses),
      static_cast<unsigned long long>(s.evictions),
      static_cast<unsigned long long>(s.prefetch_issued),
      static_cast<unsigned long long>(s.prefetch_hits),
      static_cast<unsigned long long>(s.prefetch_races),
      static_cast<unsigned long long>(s.prefetch_wasted),
      static_cast<unsigned long long>(s.resident_bytes),
      static_cast<unsigned long long>(s.resident_shards));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("streaming",
                      "Streaming (out-of-core) vs in-memory training "
                      "throughput on one synthetic dataset");
  cli.add_flag("rows", "120000", "dataset rows");
  cli.add_flag("dim", "40000", "feature dimensionality");
  cli.add_flag("nnz", "40", "mean nonzeros per row");
  cli.add_flag("shard-rows", "2048", "rows per shard");
  cli.add_flag("budget-mb", "8", "streaming shard-cache budget (MiB)");
  cli.add_flag("epochs", "6", "training epochs");
  cli.add_flag("threads", "4", "workers for the ASGD runs (solver=asgd)");
  cli.add_flag("solver", "sgd", "streaming-capable solver: sgd or asgd");
  cli.add_flag("format", "binary", "on-disk format: binary or libsvm");
  cli.add_flag("seed", "7", "RNG seed");
  cli.add_flag("stats", "false", "print the full cache counter set per lane");
  cli.add_flag("out", "", "write results as JSON to this path (CI artifact)");
  cli.add_flag("check",
               "false",
               "acceptance gate: dataset >= 10x budget, packed cold-stream "
               ">= 0.9x in-memory throughput, packed == stream final model "
               "(exit 1 on violation)");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_i64("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_i64("dim"));
  spec.mean_row_nnz = cli.get_double("nnz");
  spec.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  std::printf("generating %zu x %zu (%g nnz/row)...\n", spec.rows, spec.dim,
              spec.mean_row_nnz);
  const sparse::CsrMatrix data = data::generate(spec);
  const std::size_t data_bytes = data.nnz() * 12 + data.rows() * 16;
  const double data_mib = static_cast<double>(data_bytes) / (1 << 20);
  const bool check = cli.get_bool("check");

  const auto dir = std::filesystem::temp_directory_path() / "isasgd_bench";
  std::filesystem::create_directories(dir);
  const bool binary = cli.get("format") != "libsvm";
  const std::string file =
      (dir / (binary ? "stream.bin" : "stream.libsvm")).string();
  const std::string pack_file = (dir / "stream.issp").string();
  {
    util::Stopwatch timer;
    if (binary) {
      io::write_dataset_binary_file(file, data);
    } else {
      io::write_libsvm_file(file, data);
    }
    std::printf("wrote %s (%.1f MiB in-memory) in %.2fs\n", file.c_str(),
                data_mib, timer.seconds());
  }

  const std::size_t shard_rows =
      static_cast<std::size_t>(cli.get_i64("shard-rows"));
  std::size_t budget = static_cast<std::size_t>(cli.get_i64("budget-mb")) << 20;
  if (check && budget * 10 > data_bytes) {
    // The gate's premise is genuine eviction pressure: a cache holding the
    // whole dataset would measure the in-memory path twice. Clamp the
    // budget to a tenth of the data footprint (floor 1 MiB).
    budget = std::max<std::size_t>(std::size_t{1} << 20, data_bytes / 10);
    std::printf("check: clamped budget to %.1f MiB (10x rule)\n",
                static_cast<double>(budget) / (1 << 20));
  }

  {
    util::Stopwatch timer;
    io::ShardPackWriteOptions popt;
    popt.shard_rows = shard_rows;
    io::write_shardpack(pack_file, data, popt);
    std::printf("packed %s in %.2fs\n", pack_file.c_str(), timer.seconds());
  }

  auto ctx = std::make_shared<core::ExecutionContext>();
  data::StreamingOptions sopt;
  sopt.shard_rows = shard_rows;
  sopt.memory_budget_bytes = budget;
  util::Stopwatch index_timer;
  const auto stream = ctx->open_streaming(file, sopt);
  std::printf("indexed %zu shards in %.2fs (budget %.1f MiB)\n",
              stream->shard_count(), index_timer.seconds(),
              static_cast<double>(budget) / (1 << 20));
  data::PackedOptions popts;
  popts.memory_budget_bytes = budget;
  const auto packed = ctx->open_packed(pack_file, popts);
  const data::InMemorySource inmem(data);
  const data::InMemorySource chunked(data, shard_rows);

  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_i64("epochs"));
  opt.step_size = 0.5;
  opt.threads = static_cast<std::size_t>(cli.get_i64("threads"));
  opt.seed = spec.seed;
  opt.keep_final_model = true;
  const std::string solver = cli.get("solver");
  const bool print_stats = cli.get_bool("stats");

  util::TablePrinter table({"path", "train_s", "epochs_per_s", "Mrows_per_s",
                            "final_obj", "cache"});
  std::vector<LaneResult> lanes;
  auto run = [&](const char* label, const data::DataSource& source) {
    const core::Trainer trainer = core::TrainerBuilder()
                                      .source(source)
                                      .objective(loss)
                                      .l2(1e-6)
                                      .execution(ctx)
                                      .build();
    const solvers::Trace trace = trainer.train(solver, opt);
    const double rows_trained =
        static_cast<double>(data.rows()) * static_cast<double>(opt.epochs);
    LaneResult lane;
    lane.label = label;
    lane.train_seconds = trace.train_seconds;
    lane.rows_per_s = rows_trained / trace.train_seconds;
    lane.final_objective = trace.points.back().objective;
    lane.final_model = trace.final_model;
    lane.cache = source.cache_stats();
    std::string cache = "-";
    if (lane.cache) {
      char buf[128];
      std::snprintf(buf, sizeof buf, "h%llu m%llu ev%llu pf%llu",
                    static_cast<unsigned long long>(lane.cache->hits),
                    static_cast<unsigned long long>(lane.cache->misses),
                    static_cast<unsigned long long>(lane.cache->evictions),
                    static_cast<unsigned long long>(lane.cache->prefetch_issued));
      cache = buf;
    }
    table.add_row_values(lane.label, lane.train_seconds,
                         static_cast<double>(opt.epochs) / trace.train_seconds,
                         lane.rows_per_s / 1e6, lane.final_objective, cache);
    lanes.push_back(std::move(lane));
    return lanes.back().final_objective;
  };

  run("inmem", inmem);
  const double f_chunked = run("chunked", chunked);
  const double f_stream = run("stream", *stream);
  // Cold-stream on purpose: this is the packed source's first epoch ever,
  // so the first pass decodes every shard from the mmap.
  const double f_packed = run("packed", *packed);
  std::printf("\n%s\n", table.render().c_str());

  if (print_stats) {
    for (const LaneResult& lane : lanes) {
      if (!lane.cache) continue;
      const data::CacheStats& s = *lane.cache;
      std::printf(
          "%-8s loads=%llu hits=%llu misses=%llu evictions=%llu "
          "prefetch_issued=%llu prefetch_hits=%llu prefetch_races=%llu "
          "prefetch_wasted=%llu resident=%llu/%llu shards\n",
          lane.label.c_str(), static_cast<unsigned long long>(s.loads),
          static_cast<unsigned long long>(s.hits),
          static_cast<unsigned long long>(s.misses),
          static_cast<unsigned long long>(s.evictions),
          static_cast<unsigned long long>(s.prefetch_issued),
          static_cast<unsigned long long>(s.prefetch_hits),
          static_cast<unsigned long long>(s.prefetch_races),
          static_cast<unsigned long long>(s.prefetch_wasted),
          static_cast<unsigned long long>(s.resident_bytes),
          static_cast<unsigned long long>(s.resident_shards));
    }
    std::printf("packed   prefetch_depth=%zu autotune_adjustments=%llu "
                "buffer_reuses=%llu\n",
                packed->prefetch_depth(),
                static_cast<unsigned long long>(packed->autotune_adjustments()),
                static_cast<unsigned long long>(packed->buffer_pool_reuses()));
  }

  int rc = 0;
  const bool serial =
      solvers::SolverRegistry::instance().get(solver).capabilities().serial();
  double throughput_ratio = 0;
  bool parity = false;
  if (check || !cli.get("out").empty()) {
    const LaneResult& inmem_lane = lanes[0];
    const LaneResult& stream_lane = lanes[2];
    const LaneResult& packed_lane = lanes[3];
    // Gate against the classic in-memory lane: that is the "in-memory
    // throughput" a user gives up by going out-of-core. The chunked lane
    // can beat inmem outright (small shards fit L2), which would gate the
    // cold-stream against a locality bonus it cannot earn back from disk.
    throughput_ratio = packed_lane.rows_per_s / inmem_lane.rows_per_s;
    // Bit parity packed vs stream: both lanes ran the identical shard-major
    // schedule over identical f64 data, so serial solvers must agree to the
    // bit. Hogwild lanes race by design and gate on relative objective.
    if (serial) {
      parity = packed_lane.final_model.size() ==
                   stream_lane.final_model.size() &&
               std::memcmp(packed_lane.final_model.data(),
                           stream_lane.final_model.data(),
                           packed_lane.final_model.size() * sizeof(double)) ==
                   0;
    } else {
      const double rel = std::abs(f_packed - f_stream) /
                         std::max(1e-300, std::abs(f_stream));
      parity = rel <= 1e-2;
    }
  }

  // The throughput gate needs a measurement window long enough that the
  // cold start (first-ever decode + one-time CRC pass) amortises and timer
  // noise stops dominating. Correctness gates (parity) always apply; a
  // too-small window skips ONLY the throughput gate, loudly.
  constexpr double kMinGateWindowSeconds = 0.2;
  constexpr std::size_t kMinGateEpochs = 3;
  const bool throughput_gated =
      lanes[0].train_seconds >= kMinGateWindowSeconds &&
      opt.epochs >= kMinGateEpochs;

  if (check) {
    constexpr double kThroughputGate = 0.9;
    if (throughput_gated) {
      std::printf("check: packed/inmem throughput = %.3f (gate %.2f)\n",
                  throughput_ratio, kThroughputGate);
    } else {
      std::printf(
          "check: packed/inmem throughput = %.3f (gate SKIPPED: inmem train "
          "window %.3fs / %zu epochs below the %.1fs / %zu-epoch floor — "
          "cold-start costs do not amortise; run the default sizes to gate)\n",
          throughput_ratio, lanes[0].train_seconds, opt.epochs,
          kMinGateWindowSeconds, kMinGateEpochs);
    }
    std::printf("check: packed vs stream %s parity: %s\n",
                serial ? "bit" : "objective", parity ? "OK" : "FAIL");
    const double rel = std::abs(f_stream - f_chunked) /
                       std::max(1e-300, std::abs(f_chunked));
    const double gate = serial ? 1e-6 : 1e-2;
    std::printf("check: |stream - chunked| / chunked = %.3e (gate %.0e)\n",
                rel, gate);
    if (throughput_gated && throughput_ratio < kThroughputGate) {
      std::fprintf(stderr, "FAIL: packed cold-stream below %.2fx in-memory\n",
                   kThroughputGate);
      rc = 1;
    }
    if (!parity) {
      std::fprintf(stderr, "FAIL: packed diverged from streaming path\n");
      rc = 1;
    }
    if (rel > gate) {
      std::fprintf(stderr, "FAIL: streaming diverged from in-memory path\n");
      rc = 1;
    }
    if (rc == 0) std::printf("check: OK\n");
  }

  if (const std::string out = cli.get("out"); !out.empty()) {
    std::ofstream js(out);
    js << "{\n  \"rows\": " << spec.rows << ",\n  \"dim\": " << spec.dim
       << ",\n  \"budget_bytes\": " << budget
       << ",\n  \"shard_rows\": " << shard_rows << ",\n  \"solver\": \""
       << solver << "\",\n  \"epochs\": " << opt.epochs
       << ",\n  \"throughput_ratio_packed_vs_inmem\": " << throughput_ratio
       << ",\n  \"throughput_gated\": " << (throughput_gated ? "true" : "false")
       << ",\n  \"parity\": " << (parity ? "true" : "false")
       << ",\n  \"check_passed\": " << (rc == 0 ? "true" : "false")
       << ",\n  \"lanes\": [\n";
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      const LaneResult& lane = lanes[i];
      js << "    {\"label\": \"" << lane.label
         << "\", \"train_seconds\": " << lane.train_seconds
         << ", \"rows_per_s\": " << lane.rows_per_s
         << ", \"final_objective\": " << lane.final_objective;
      if (lane.cache) js << ", \"cache\": " << cache_json(*lane.cache);
      js << "}" << (i + 1 < lanes.size() ? "," : "") << "\n";
    }
    js << "  ]\n}\n";
    std::printf("results written to %s\n", out.c_str());
  }

  std::remove(file.c_str());
  std::remove(pack_file.c_str());
  return rc;
}
