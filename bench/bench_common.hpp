// Shared plumbing for the figure/table bench binaries: flag conventions,
// dataset preparation, and trace printing.
#pragma once

#include <cstdio>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "data/paper_datasets.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"

namespace isasgd::bench {

/// Registers the flags every figure bench shares.
inline void add_common_flags(util::CliParser& cli) {
  cli.add_flag("scale", "1.0",
               "dataset scale factor (rows and dim shrink together; 1.0 = "
               "the laptop-scale analogs in DESIGN.md)");
  cli.add_flag("threads", "4,8,16",
               "comma-separated worker counts (the paper sweeps 16,32,44 on "
               "a 44-core testbed)");
  cli.add_flag("datasets", "news20,url,kdda,kddb",
               "comma-separated analog datasets to run");
  cli.add_flag("epochs", "0",
               "override epoch count (0 = each dataset's paper epoch count)");
  cli.add_flag("seed", "7", "base RNG seed");
  cli.add_flag("out", "", "directory to also write CSV traces into");
  cli.add_flag("l1", "1e-8",
               "L1 regularization factor (paper: L1 cross-entropy; at d in "
               "the millions the penalty term needs eta ~ 1e-8 to stay small "
               "against ~1e6 active coordinates)");
}

/// Parses the --datasets list.
inline std::vector<data::PaperDataset> datasets_from(const util::CliParser& cli) {
  std::vector<data::PaperDataset> out;
  std::string value = cli.get("datasets");
  std::size_t start = 0;
  while (start <= value.size()) {
    const std::size_t comma = value.find(',', start);
    const std::string name =
        value.substr(start, comma == std::string::npos ? comma : comma - start);
    if (!name.empty()) out.push_back(data::paper_dataset_from_name(name));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

inline std::vector<std::size_t> threads_from(const util::CliParser& cli) {
  std::vector<std::size_t> out;
  for (int t : cli.get_int_list("threads")) {
    out.push_back(static_cast<std::size_t>(std::max(1, t)));
  }
  return out;
}

/// Writes the sweep's traces as CSV when --out was given.
inline void maybe_write_csv(const util::CliParser& cli,
                            const std::string& stem,
                            const core::ExperimentResult& result) {
  const std::string dir = cli.get("out");
  if (dir.empty()) return;
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/" + stem + ".csv";
  core::write_traces_csv(path, result);
  std::printf("wrote %s\n", path.c_str());
}

/// One prepared dataset with everything the benches need.
struct PreparedDataset {
  data::PaperDatasetConfig config;
  sparse::CsrMatrix data;
  objectives::LogisticLoss objective;
  objectives::Regularization reg;
};

inline PreparedDataset prepare(data::PaperDataset id, double scale,
                               double l1) {
  PreparedDataset p;
  p.config = data::paper_dataset_config(id, scale);
  std::printf("generating %s (rows=%zu dim=%zu nnz/row=%.0f)...\n",
              p.config.name.c_str(), p.config.spec.rows, p.config.spec.dim,
              p.config.spec.mean_row_nnz);
  std::fflush(stdout);
  p.data = data::generate(p.config.spec);
  p.reg = objectives::Regularization::l1(l1);
  return p;
}

}  // namespace isasgd::bench
