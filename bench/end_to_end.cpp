// End-to-end solver throughput: the first entry in the perf trajectory.
//
// The paper's headline claim is that importance sampling makes asynchronous
// SGD *faster to a target loss*, so the number this reproduction lives or
// dies on is steady-state samples/sec of the actual solver hot loops — not
// just the micro kernels. This harness runs the four core solvers
// (sgd / is_sgd / asgd / is_asgd, the async ones serial + multi-threaded)
// end to end on a synthetic paper workload and reports, per run:
//
//   * samples/sec, total        — epochs·n / training wall-clock,
//   * samples/sec, steady state — epochs 2..E only, so one-time warmup
//     (page faults, pool spin-up remnants, cold caches) never pollutes the
//     number the trajectory tracks,
//   * time-to-target-loss       — first wall-clock crossing of an RMSE
//     target (setup included, the paper's accounting), where the target is
//     derived in-run from the serial SGD reference so it is meaningful at
//     every --scale.
//
// Everything lands in BENCH_solvers.json (machine-readable, CI artifact).
//
// Every run row records the active kernel backend and the NUMA placement
// that served it (flat vs striped, plus the populated node count), so the
// perf trajectory can tell a dispatch change from a placement change.
// --baseline files written before these columns existed still gate: the
// matcher falls back to the (solver, threads) key when the baseline row
// carries no backend.
//
// Usage:
//   end_to_end [--out FILE] [--check] [--dataset news20] [--scale 1.0]
//              [--epochs 10] [--threads 4] [--seed 7] [--repeats 1]
//              [--backend scalar|avx2|avx512] [--numa auto|on|off]
//     --check : regression gate for CI —
//               (1) every solver must reach the SGD-derived RMSE target
//                   (exact: catches correctness/convergence breakage),
//               (2) IS solvers must hold ≥ kIsFloor × their uniform
//                   counterpart's steady-state throughput ("IS adds no
//                   per-iteration cost", §1.3 — loose so scheduler noise on
//                   shared runners cannot flake the job),
//               (3) with --baseline FILE, steady throughput per run must
//                   hold ≥ kBaselineFloor × the same run in a prior
//                   BENCH_solvers.json. A missing/unreadable baseline is a
//                   hard, clearly-reported failure — the gate never
//                   silently passes because no artifact was downloaded.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <stdexcept>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/numa.hpp"
#include "core/trainer.hpp"
#include "data/paper_datasets.hpp"
#include "objectives/logistic.hpp"
#include "solvers/options.hpp"
#include "sparse/dispatch.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace isasgd;

/// Steady-state throughput floor an IS solver must hold against its uniform
/// counterpart (same thread count). The alias draw costs a few ns against a
/// margin pass of tens; anything under this floor means the sampling layer
/// regressed structurally, not noisily.
constexpr double kIsFloor = 0.5;

/// Steady-throughput floor against a --baseline file's matching run. Looser
/// than the IS-vs-uniform gate: cross-CI-run comparisons see different
/// machine load, so only halvings are treated as structural regressions.
constexpr double kBaselineFloor = 0.5;

struct RunResult {
  std::string solver;
  std::size_t threads = 1;
  std::string backend;    // active kernel backend during the run
  std::string placement;  // "flat" or "striped" model placement
  std::size_t numa_nodes = 1;
  double setup_seconds = 0;
  double train_seconds = 0;
  double samples_per_sec = 0;         // all epochs
  double steady_samples_per_sec = 0;  // epochs 2..E
  double time_to_target = 0;          // NaN when the target is never reached
  double final_rmse = 0;
  double best_error_rate = 0;
};

/// Runs `name` `repeats` times and keeps the fastest-steady-state repeat's
/// trace (timing noise only ever slows a run down, so max-over-repeats
/// estimates the machine's true rate). All reported numbers — throughput,
/// time-to-target, final loss — come from that one trace, so the JSON row
/// is internally consistent. `target_rmse` may be NaN (reference run); the
/// caller can recompute time_to_target from the returned trace once the
/// target is known.
RunResult measure(const core::Trainer& trainer, const std::string& name,
                  solvers::SolverOptions options, std::size_t threads,
                  std::size_t n, double target_rmse, std::size_t repeats,
                  solvers::Trace* best_trace_out = nullptr) {
  options.threads = threads;
  RunResult best;
  solvers::Trace best_trace;
  for (std::size_t rep = 0; rep < std::max<std::size_t>(1, repeats); ++rep) {
    solvers::Trace trace = trainer.train(name, options);
    RunResult r;
    r.solver = name;
    r.threads = threads;
    r.setup_seconds = trace.setup_seconds;
    r.train_seconds = trace.train_seconds;
    const double total_samples =
        static_cast<double>(n) * static_cast<double>(options.epochs);
    r.samples_per_sec =
        trace.train_seconds > 0 ? total_samples / trace.train_seconds : 0;
    // Steady state: drop epoch 1 (points[0] is the epoch-0 initial model).
    if (trace.points.size() >= 3) {
      const double t1 = trace.points[1].seconds;
      const double tE = trace.points.back().seconds;
      const double steady_samples =
          static_cast<double>(n) *
          static_cast<double>(trace.points.size() - 2);
      r.steady_samples_per_sec = tE > t1 ? steady_samples / (tE - t1) : 0;
    }
    r.time_to_target = trace.time_to_rmse(target_rmse, /*include_setup=*/true);
    r.final_rmse = trace.points.back().rmse;
    r.best_error_rate = trace.best_error_rate();
    if (rep == 0 || r.steady_samples_per_sec > best.steady_samples_per_sec) {
      best = r;
      best_trace = std::move(trace);
    }
  }
  if (best_trace_out) *best_trace_out = std::move(best_trace);
  return best;
}

/// Prints one finalized table row (after any target backfill, so the
/// human-readable log never shows a placeholder crossing time).
void print_row(const RunResult& r) {
  std::printf(
      "%-10s t=%zu  %10.0f samples/s (steady %10.0f)  to-target %.3fs  "
      "rmse %.4f\n",
      r.solver.c_str(), r.threads, r.samples_per_sec,
      r.steady_samples_per_sec, r.time_to_target, r.final_rmse);
  std::fflush(stdout);
}

void write_json(const std::string& path, const data::PaperDatasetConfig& cfg,
                double target_rmse, std::size_t epochs,
                const std::vector<RunResult>& results) {
  std::ofstream out(path);
  out << "{\n"
      << "  \"workload\": {\"dataset\": \"" << cfg.name
      << "\", \"rows\": " << cfg.spec.rows << ", \"dim\": " << cfg.spec.dim
      << ", \"mean_row_nnz\": " << cfg.spec.mean_row_nnz
      << ", \"epochs\": " << epochs << ", \"target_rmse\": " << target_rmse
      << "},\n"
      << "  \"runs\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const RunResult& r = results[i];
    out << "    {\"solver\": \"" << r.solver << "\", \"threads\": " << r.threads
        << ", \"backend\": \"" << r.backend << "\", \"placement\": \""
        << r.placement << "\", \"numa_nodes\": " << r.numa_nodes
        << ", \"samples_per_sec\": " << r.samples_per_sec
        << ", \"steady_samples_per_sec\": " << r.steady_samples_per_sec
        << ", \"time_to_target_s\": "
        << (std::isfinite(r.time_to_target)
                ? std::to_string(r.time_to_target)
                : std::string("null"))
        << ", \"setup_seconds\": " << r.setup_seconds
        << ", \"train_seconds\": " << r.train_seconds
        << ", \"final_rmse\": " << r.final_rmse
        << ", \"best_error_rate\": " << r.best_error_rate << "}"
        << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

const RunResult* find(const std::vector<RunResult>& results,
                      const std::string& solver, std::size_t threads) {
  for (const RunResult& r : results) {
    if (r.solver == solver && r.threads == threads) return &r;
  }
  return nullptr;
}

int check_gate(const std::vector<RunResult>& results, std::size_t threads) {
  int failures = 0;
  for (const RunResult& r : results) {
    if (!std::isfinite(r.time_to_target)) {
      util::log_error() << "GATE: " << r.solver << " t=" << r.threads
                        << " never reached the target RMSE";
      ++failures;
    }
  }
  const struct {
    const char* is;
    const char* uniform;
    std::size_t threads;
  } pairs[] = {{"is_sgd", "sgd", 1},
               {"is_asgd", "asgd", 1},
               {"is_asgd", "asgd", threads}};
  for (const auto& p : pairs) {
    const RunResult* is = find(results, p.is, p.threads);
    const RunResult* uni = find(results, p.uniform, p.threads);
    if (!is || !uni || uni->steady_samples_per_sec <= 0) continue;
    const double ratio =
        is->steady_samples_per_sec / uni->steady_samples_per_sec;
    if (ratio < kIsFloor) {
      util::log_error() << "GATE: " << p.is << " t=" << p.threads
                        << " holds only " << ratio << "x of " << p.uniform
                        << "'s steady throughput (floor " << kIsFloor << ")";
      ++failures;
    }
  }
  return failures;
}

/// Baseline row key: (solver, threads, backend). Rows written before the
/// backend column existed carry an empty backend — the lookup falls back to
/// that so old artifacts keep gating new binaries.
using BaselineKey = std::tuple<std::string, std::size_t, std::string>;

/// Minimal reader for the JSON this binary writes: extracts
/// BaselineKey → steady_samples_per_sec from each run object. Only
/// has to understand its own output format, so plain string scanning is
/// enough — no JSON dependency.
std::map<BaselineKey, double> read_baseline(std::istream& in) {
  std::map<BaselineKey, double> baseline;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t solver_at = line.find("\"solver\": \"");
    if (solver_at == std::string::npos) continue;
    const std::size_t name_begin = solver_at + 11;
    const std::size_t name_end = line.find('"', name_begin);
    const std::size_t threads_at = line.find("\"threads\": ");
    const std::size_t steady_at = line.find("\"steady_samples_per_sec\": ");
    if (name_end == std::string::npos || threads_at == std::string::npos ||
        steady_at == std::string::npos) {
      continue;
    }
    const std::string solver = line.substr(name_begin, name_end - name_begin);
    const auto threads =
        static_cast<std::size_t>(std::stoul(line.substr(threads_at + 11)));
    const double steady = std::stod(line.substr(steady_at + 26));
    std::string backend;  // empty for pre-dispatch baselines
    const std::size_t backend_at = line.find("\"backend\": \"");
    if (backend_at != std::string::npos) {
      const std::size_t b_begin = backend_at + 12;
      const std::size_t b_end = line.find('"', b_begin);
      if (b_end != std::string::npos) {
        backend = line.substr(b_begin, b_end - b_begin);
      }
    }
    baseline[{solver, threads, backend}] = steady;
  }
  return baseline;
}

/// The --baseline gate. A missing or empty baseline file fails loudly (the
/// perf trajectory must never look green because the prior artifact was
/// absent); a run missing *from* the baseline is reported but tolerated, so
/// adding a new solver configuration does not require hand-editing old
/// artifacts.
int check_baseline(const std::string& path,
                   const std::vector<RunResult>& results) {
  std::ifstream in(path);
  if (!in) {
    util::log_error()
        << "GATE: baseline file '" << path
        << "' is absent or unreadable — cannot gate the perf trajectory. "
        << "Generate one on a known-good build with `end_to_end --out "
        << path << "` (or download the prior CI artifact) and re-run.";
    return 1;
  }
  const auto baseline = read_baseline(in);
  if (baseline.empty()) {
    util::log_error() << "GATE: baseline file '" << path
                      << "' contains no runs (wrong or corrupt file?)";
    return 1;
  }
  int failures = 0;
  for (const RunResult& r : results) {
    // Exact backend match first; fall back to a backend-less (pre-dispatch)
    // baseline row so old artifacts still gate.
    auto it = baseline.find({r.solver, r.threads, r.backend});
    if (it == baseline.end()) {
      it = baseline.find({r.solver, r.threads, std::string()});
    }
    if (it == baseline.end()) {
      util::log_warn() << "baseline '" << path << "' has no entry for "
                       << r.solver << " t=" << r.threads << " backend="
                       << r.backend << "; skipping";
      continue;
    }
    if (it->second <= 0) continue;
    const double ratio = r.steady_samples_per_sec / it->second;
    if (ratio < kBaselineFloor) {
      util::log_error() << "GATE: " << r.solver << " t=" << r.threads
                        << " steady throughput is " << ratio
                        << "x its baseline (" << r.steady_samples_per_sec
                        << " vs " << it->second << " samples/s, floor "
                        << kBaselineFloor << ")";
      ++failures;
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("end_to_end",
                      "End-to-end solver throughput + time-to-target-loss "
                      "(BENCH_solvers.json)");
  cli.add_flag("out", "BENCH_solvers.json", "output JSON path");
  cli.add_flag("check", "false", "regression gate (CI)");
  cli.add_flag("baseline", "",
               "prior BENCH_solvers.json to gate steady throughput against "
               "(with --check; absent file = hard failure)");
  cli.add_flag("dataset", "news20", "paper workload analog to run");
  cli.add_flag("scale", "1.0", "dataset scale factor");
  cli.add_flag("epochs", "10", "epochs per run");
  cli.add_flag("threads", "4", "async worker count for the parallel runs");
  cli.add_flag("seed", "7", "base RNG seed");
  cli.add_flag("repeats", "1",
               "timing repeats per configuration (fastest steady-state wins)");
  cli.add_flag("backend", "",
               "pin the kernel backend (scalar|avx2|avx512; default: runtime "
               "dispatch, honours ISASGD_KERNEL_BACKEND)");
  cli.add_flag("numa", "auto",
               "model placement mode: auto (stripe only on multi-node "
               "hosts), on, off");
  if (!cli.parse(argc, argv)) return 0;

  namespace k = sparse::kernels;
  if (!cli.get("backend").empty()) {
    try {
      if (!k::set_backend(k::backend_from_name(cli.get("backend")))) {
        util::log_error() << "backend '" << cli.get("backend")
                          << "' is not available on this host";
        return 2;
      }
    } catch (const std::invalid_argument& e) {
      util::log_error() << e.what();
      return 2;
    }
  }
  core::NumaOptions numa_options;
  {
    const std::string mode = cli.get("numa");
    if (mode == "on") {
      numa_options.mode = core::NumaOptions::Mode::kOn;
    } else if (mode == "off") {
      numa_options.mode = core::NumaOptions::Mode::kOff;
    } else if (mode != "auto") {
      util::log_error() << "unknown --numa mode '" << mode
                        << "' (auto|on|off)";
      return 2;
    }
  }

  const auto cfg = data::paper_dataset_config(
      data::paper_dataset_from_name(cli.get("dataset")),
      cli.get_double("scale"));
  std::printf("generating %s (rows=%zu dim=%zu nnz/row=%.0f)...\n",
              cfg.name.c_str(), cfg.spec.rows, cfg.spec.dim,
              cfg.spec.mean_row_nnz);
  const sparse::CsrMatrix data = data::generate(cfg.spec);
  const objectives::LogisticLoss objective;

  const std::size_t threads =
      static_cast<std::size_t>(std::max(1, cli.get_int("threads")));
  const std::size_t epochs =
      static_cast<std::size_t>(std::max(2, cli.get_int("epochs")));
  const std::size_t repeats =
      static_cast<std::size_t>(std::max(1, cli.get_int("repeats")));

  solvers::SolverOptions opt;
  opt.step_size = cfg.lambda;
  opt.epochs = epochs;
  opt.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  opt.reg = objectives::Regularization::l1(1e-8);

  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(objective)
                                    .regularization(opt.reg)
                                    .numa(numa_options)
                                    .build();

  const core::NumaPolicy numa_probe{numa_options, core::NumaTopology::detect()};
  const std::string backend_name = k::backend_name(k::active_backend());
  const std::string placement = numa_probe.active() ? "striped" : "flat";
  std::printf("kernel backend: %s | placement: %s (%zu node%s)\n",
              backend_name.c_str(), placement.c_str(),
              numa_probe.topology().node_count(),
              numa_probe.topology().node_count() == 1 ? "" : "s");

  // Serial SGD is the reference: its final loss under the same epoch budget
  // defines the target every other solver must reach. The 1.5% slack keeps
  // the gate off the razor's edge of run-to-run stochastic differences.
  solvers::Trace sgd_trace;
  RunResult sgd = measure(trainer, "sgd", opt, 1, data.rows(),
                          /*target placeholder*/ 0.0, repeats, &sgd_trace);
  const double target_rmse = sgd.final_rmse * 1.015;
  std::printf("target RMSE (sgd final x 1.015): %.4f\n", target_rmse);
  // The reference's own crossing, from the same kept trace.
  sgd.time_to_target = sgd_trace.time_to_rmse(target_rmse, true);

  std::vector<RunResult> results;
  results.push_back(sgd);
  print_row(sgd);
  const struct {
    const char* solver;
    std::size_t threads;
  } runs[] = {{"is_sgd", 1}, {"asgd", 1},      {"is_asgd", 1},
              {"asgd", threads}, {"is_asgd", threads}};
  for (const auto& run : runs) {
    results.push_back(measure(trainer, run.solver, opt, run.threads,
                              data.rows(), target_rmse, repeats));
    print_row(results.back());
  }
  for (RunResult& r : results) {
    r.backend = backend_name;
    r.placement = placement;
    r.numa_nodes = numa_probe.topology().node_count();
  }

  write_json(cli.get("out"), cfg, target_rmse, epochs, results);

  if (cli.get_bool("check")) {
    int failures = check_gate(results, threads);
    if (!cli.get("baseline").empty()) {
      failures += check_baseline(cli.get("baseline"), results);
    }
    if (failures) return 1;
    std::cout << "all solvers reached the target; IS throughput within "
              << kIsFloor << "x of uniform or better\n";
  }
  return 0;
}
