// Figure 5 — error-rate → absolute-speedup slices of IS-ASGD over ASGD and
// over SGD, per thread count, plus the §4.2 summary numbers (average and
// optimum speedups).
//
//   build/bench/fig5_speedup [--datasets kdda,kddb] [--threads 4,8,16]
//
// Expected shape (paper §4.2): speedups over ASGD average 1.26–1.97× with
// optimum speedups 1.13–1.54×, largest at the early stage; speedups over
// SGD grow roughly linearly with the thread count.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/speedup.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("fig5_speedup",
                      "Reproduces Figure 5: error-rate vs absolute-speedup "
                      "slices of IS-ASGD over ASGD and SGD");
  bench::add_common_flags(cli);
  cli.add_flag("reshuffle", "false",
               "use the paper's §4.2 reshuffle-once approximation for the IS\n"
               "      sample sequences. Off by default: a reshuffled sequence\n"
               "      never visits ~1/e of each shard (the multiset is fixed),\n"
               "      which caps attainable accuracy on datasets whose error\n"
               "      floor requires covering every sample — see EXPERIMENTS.md");
  cli.add_flag("slices", "12", "number of error-rate slice levels");
  cli.add_flag("include-setup", "false",
               "charge IS sampling setup time to IS-ASGD. Off by default: at\n"
               "      laptop scale one epoch lasts milliseconds, so the fixed\n"
               "      setup cost (1-8%% of training on the paper's testbed,\n"
               "      quantified by ablation_sampling_overhead) would swamp the\n"
               "      early slices and measure the wrong thing");
  if (!cli.parse(argc, argv)) return 0;

  const double scale = cli.get_double("scale");
  const auto thread_counts = bench::threads_from(cli);
  const auto slices = static_cast<std::size_t>(cli.get_int("slices"));
  const bool include_setup = cli.get_bool("include-setup");

  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    core::Trainer trainer(prepared.data, prepared.objective, prepared.reg);

    core::ExperimentSpec spec;
    spec.dataset_name = prepared.config.name;
    spec.solvers = {"SGD", "ASGD", "IS-ASGD"};
    spec.thread_counts = thread_counts;
    spec.base_options.step_size = prepared.config.lambda;
    spec.base_options.epochs = cli.get_int("epochs") > 0
                                   ? static_cast<std::size_t>(cli.get_int("epochs"))
                                   : prepared.config.paper_epochs;
    spec.base_options.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
    if (cli.get_bool("reshuffle")) {
      spec.base_options.sequence_mode =
          solvers::SolverOptions::SequenceMode::kReshuffle;
    }
    const auto result = core::run_experiment(trainer, spec);
    bench::maybe_write_csv(cli, "fig5_" + prepared.config.name, result);

    std::printf("\n=== Figure 5 (%s)  lambda=%.2f ===\n",
                prepared.config.paper_name.c_str(), prepared.config.lambda);
    util::TablePrinter summary({"threads", "vsASGD_avg", "vsASGD_max",
                                "vsASGD_opt", "vsSGD_avg", "vsSGD_max"});
    for (std::size_t threads : thread_counts) {
      const auto* sgd = result.find("SGD", threads);
      const auto* asgd = result.find("ASGD", threads);
      const auto* is = result.find("IS-ASGD", threads);
      const auto vs_asgd =
          metrics::compute_speedup(asgd->trace, is->trace, slices, include_setup);
      const auto vs_sgd =
          metrics::compute_speedup(sgd->trace, is->trace, slices, include_setup);

      std::printf("\n-- threads=%zu: error-level slices (speedup of IS-ASGD) --\n",
                  threads);
      util::TablePrinter slice_table(
          {"error_rate", "t_ASGD", "t_IS-ASGD", "speedup_vs_ASGD"});
      for (const auto& p : vs_asgd.slices) {
        slice_table.add_row_values(p.error_rate, p.baseline_seconds,
                                   p.accelerated_seconds, p.speedup);
      }
      std::printf("%s", slice_table.render().c_str());

      summary.add_row_values(
          static_cast<double>(threads), vs_asgd.average_speedup,
          vs_asgd.max_speedup, vs_asgd.optimum_speedup, vs_sgd.average_speedup,
          vs_sgd.max_speedup);
    }
    std::printf(
        "\n-- §4.2 summary (paper: vsASGD avg 1.26-1.97x, optimum 1.13-1.54x; "
        "vsSGD grows with threads) --\n%s\n",
        summary.render().c_str());
  }
  return 0;
}
