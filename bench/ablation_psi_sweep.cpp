// Ablation for Eq. 13–15: the IS convergence gain is governed by ψ.
//
// Sweeps ψ and reports the theory's predicted rate-constant ratio (√ψ, from
// Eqs. 13/14) next to the measured quality gap between IS-SGD and SGD at a
// fixed epoch budget — the paper's "the improvement gets larger when ψ ≪ n"
// claim (§2.2) and its §4.1 observation that the KDD datasets (lower ψ)
// benefit most.
//
//   build/bench/ablation_psi_sweep
#include <cmath>
#include <cstdio>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_psi_sweep",
                      "Eq. 13/14/15 check: predicted sqrt(psi) rate ratio vs "
                      "measured IS-SGD gain over SGD");
  cli.add_flag("rows", "8000", "dataset rows");
  cli.add_flag("dim", "1000", "dimensionality");
  cli.add_flag("epochs", "6", "epoch budget");
  cli.add_flag("psis", "0.999,0.972,0.93,0.892,0.85,0.75",
               "psi targets to sweep (paper Table 1 spans 0.877-0.972)");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;
  util::TablePrinter table({"psi_target", "psi_measured", "sqrt_psi",
                            "SGD_final_rmse", "IS-SGD_final_rmse",
                            "rmse_ratio", "is_bound_vs_sgd_bound"});

  std::vector<double> psis;
  {
    std::string v = cli.get("psis");
    std::size_t start = 0;
    while (start <= v.size()) {
      const auto comma = v.find(',', start);
      const std::string item =
          v.substr(start, comma == std::string::npos ? comma : comma - start);
      if (!item.empty()) psis.push_back(std::stod(item));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }

  for (double psi_target : psis) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
    spec.mean_row_nnz = 10;
    spec.target_psi = psi_target;
    spec.seed = static_cast<std::uint64_t>(psi_target * 1e5);
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
    const auto lip = objectives::per_sample_lipschitz(
        data, loss, objectives::Regularization::none());
    const double psi_measured = analysis::psi(lip);
    const auto summary = analysis::summarize_lipschitz(lip);
    analysis::BoundInputs in;
    in.epsilon = 1e-2;
    const double bound_ratio = analysis::is_sgd_iteration_bound(summary, in) /
                               analysis::sgd_iteration_bound(summary, in);

    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.step_size = 0.5;
    const auto sgd = run_sgd(data, loss, opt, ev.as_fn());
    const auto is = run_is_sgd(data, loss, opt, ev.as_fn());
    const double a = sgd.points.back().rmse;
    const double b = is.points.back().rmse;
    table.add_row_values(psi_target, psi_measured, std::sqrt(psi_measured), a,
                         b, b / a, bound_ratio);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: as psi falls, sqrt(psi) falls and IS-SGD's final "
      "RMSE pulls ahead of SGD's (rmse_ratio <= 1, improving monotonically); "
      "at psi≈1 the two coincide — IS degenerates to uniform sampling.\n");
  return 0;
}
