// Delay-injection ablation: Fig. 3c's shape under *controlled* staleness.
//
// Physical Hogwild on this container never pushes τ·Δ̄/n past the Eq. 27
// bound (see ablation_concurrency and the EXPERIMENTS.md Fig-3 note), so the
// paper's ASGD-degrades/IS-ASGD-robust separation cannot be produced by real
// threads here. This bench drives the perturbed-iterate engine through the
// registry solvers sim.delayed_sgd / sim.delayed_is_sgd instead
// (SolverOptions::delay_law/delay_tau): τ is injected exactly and swept from
// serial (0) through and beyond the theory bound, for both uniform (ASGD)
// and Eq. 12 importance (IS-ASGD) sampling.
//
// Two panels, because the loss decides whether staleness can hurt at all:
//   a. cross-entropy (the paper's objective) — gradients decay as margins
//      grow, so stale updates self-attenuate and even τ in the thousands
//      barely moves the curves. This *quantifies* the EXPERIMENTS.md finding
//      that Fig. 3c's ASGD collapse does not follow from delay alone.
//   b. least squares with dense support overlap — the residual never
//      vanishes (σ² > 0) and every pair of rows conflicts, so the Eq. 25
//      noise term has teeth and the delayed recursion has a real stability
//      threshold; the sweep walks straight through it.
//
//   build/bench/ablation_delay_injection
#include <cmath>
#include <cstdio>

#include "analysis/conflict_graph.hpp"
#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/least_squares.hpp"
#include "simulate/delayed_sgd.hpp"
#include "sparse/inverted_index.hpp"

namespace {

using namespace isasgd;

double finite_or_huge(double v) { return std::isfinite(v) ? v : 1e30; }

void run_panel(const sparse::CsrMatrix& data,
               const objectives::Objective& loss, double lambda,
               std::size_t epochs, const std::vector<int>& taus) {
  const core::Trainer trainer =
      core::TrainerBuilder().data(data).objective(loss).eval_threads(4).build();
  const sparse::InvertedIndex index(data);
  const auto conflict = analysis::conflict_stats_sampled(data, index, 300, 5);
  std::printf(
      "n=%zu d=%zu density=%.2g, avg conflict degree=%.1f -> Eq.27 "
      "structural tau bound n/conflict=%.0f\n",
      data.rows(), data.dim(), data.density(), conflict.average_degree,
      static_cast<double>(data.rows()) /
          std::max(conflict.average_degree, 1e-9));

  solvers::SolverOptions opt;
  opt.epochs = epochs;
  opt.step_size = lambda;
  opt.seed = 7;

  for (const char* law : {"fixed", "geometric"}) {
    std::printf("--- %s delay law, lambda=%.2g ---\n", law, lambda);
    util::TablePrinter table(
        {"tau", "mean_delay", "uniform_rmse", "IS_rmse", "IS/uniform"});
    for (int tau_int : taus) {
      const auto tau = static_cast<std::size_t>(tau_int);
      auto run_opt = opt;
      run_opt.delay_tau = tau;
      run_opt.delay_law =
          tau == 0 ? solvers::SolverOptions::DelayLaw::kNone
          : law[0] == 'f' ? solvers::SolverOptions::DelayLaw::kFixed
                          : solvers::SolverOptions::DelayLaw::kGeometric;
      solvers::DiagnosticsCapture<simulate::DelayReport> uni_rep;
      const double uni = finite_or_huge(
          trainer.train("sim.delayed_sgd", run_opt, &uni_rep)
              .points.back()
              .rmse);
      const double is = finite_or_huge(
          trainer.train("sim.delayed_is_sgd", run_opt).points.back().rmse);
      table.add_row_values(static_cast<double>(tau),
                           uni_rep.value().mean_applied_delay, uni, is,
                           is / uni);
    }
    std::printf("%s", table.render().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ablation_delay_injection",
                      "Controlled-staleness sweep: uniform vs IS delayed SGD "
                      "(the Fig. 3c robustness claim with tau as an input)");
  cli.add_flag("rows", "3000", "dataset rows");
  cli.add_flag("epochs", "6", "epoch budget");
  cli.add_flag("taus", "0,16,64,256,1024", "delays (steps) to sweep");
  if (!cli.parse(argc, argv)) return 0;
  const auto taus = cli.get_int_list("taus");
  const auto rows = static_cast<std::size_t>(cli.get_int("rows"));
  const auto epochs = static_cast<std::size_t>(cli.get_int("epochs"));

  std::printf("=== panel a: cross-entropy, sparse (the paper's regime) ===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = rows;
    spec.dim = 2000;
    spec.mean_row_nnz = 12;
    spec.target_psi = 0.85;
    spec.difficulty_coupling = 2.0;
    spec.label_noise = 0.05;
    spec.seed = 4242;
    const auto data = data::generate(spec);
    objectives::LogisticLoss loss;
    run_panel(data, loss, 0.5, epochs, taus);
  }

  std::printf(
      "\n=== panel b: least squares, dense overlap (persistent residual) "
      "===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = std::min<std::size_t>(rows, 1000);
    spec.dim = 40;
    spec.mean_row_nnz = 12;
    spec.smoothness_beta = 1.0;
    spec.mean_lipschitz = 1.0;
    spec.target_psi = 0.85;
    spec.label_noise = 0.1;
    spec.seed = 4243;
    const auto data = data::generate(spec);
    objectives::LeastSquaresLoss loss;
    run_panel(data, loss, 0.5, epochs, taus);
  }

  std::printf(
      "\nexpected shape: panel a stays flat in tau (bounded, self-attenuating "
      "gradients — the quantified reason Fig. 3c's ASGD collapse does not "
      "reproduce from delay alone on this objective); panel b degrades and "
      "then blows up (1e30 = divergence) as tau crosses the stability "
      "threshold, with the geometric law's straggler tail breaking sooner at "
      "equal mean. The IS/uniform ratio stays at or below 1 until both "
      "diverge.\n");
  return 0;
}
