// Transport microbenchmark: frame round-trip latency and streaming
// throughput for the two real-backend transports (shm rings vs TCP
// loopback), the numbers that decide how much of a distributed step is
// communication.
//
// Two shapes per transport:
//   * ping/pong with 64-byte frames  — per-message latency (the kStep /
//     kStepReply / kPush / kPushAck exchanges are all this size class),
//   * one-way stream of 1 MiB frames — bulk bandwidth (the kFence model
//     snapshot and kModelDelta broadcasts).
//
// Self-contained timing (no google-benchmark), same flag conventions as the
// other bench binaries:
//   transport_bench [--seconds S] [--out FILE]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "util/cli.hpp"

namespace {

using namespace isasgd;
using Clock = std::chrono::steady_clock;

struct Pair {
  std::unique_ptr<net::Listener> listener;
  std::unique_ptr<net::Endpoint> server;
  std::unique_ptr<net::Endpoint> client;
};

Pair make_pair_over(const std::string& transport) {
  Pair p;
  std::string address;
  if (transport == "tcp") {
    address = "tcp://127.0.0.1:0";
  } else {
    address = "shm:///tmp/isasgd_bench_" +
              std::to_string(static_cast<unsigned>(::getpid()));
  }
  p.listener = net::listen(address);
  std::thread connector(
      [&] { p.client = net::connect(p.listener->address()); });
  p.server = p.listener->accept();
  connector.join();
  return p;
}

struct Row {
  std::string name;
  double value;
  const char* unit;
};

/// Round trips per second with `size`-byte payloads, echoed by a peer
/// thread.
Row pingpong(const std::string& transport, double seconds) {
  Pair p = make_pair_over(transport);
  std::thread echo([&] {
    try {
      for (;;) {
        net::Frame f = net::read_frame(*p.server);
        if (f.type == 0xdead) return;
        net::write_frame(*p.server, f.type, f.payload);
      }
    } catch (const net::TransportError&) {
    }
  });
  const std::string payload(64, 'p');
  // Warmup.
  for (int i = 0; i < 100; ++i) {
    net::write_frame(*p.client, 1, payload);
    (void)net::read_frame(*p.client);
  }
  std::uint64_t ops = 0;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      net::write_frame(*p.client, 1, payload);
      (void)net::read_frame(*p.client);
      ++ops;
    }
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  net::write_frame(*p.client, 0xdead, {});
  echo.join();
  const double us_per_rt = 1e6 * elapsed / static_cast<double>(ops);
  std::printf("  %-28s %10.2f us/roundtrip  (%.0f rt/s)\n",
              (transport + "/pingpong_64B").c_str(), us_per_rt, ops / elapsed);
  return {transport + "/pingpong_64B_us", us_per_rt, "us/roundtrip"};
}

/// One-way MiB/s with 1 MiB frames.
Row stream(const std::string& transport, double seconds) {
  Pair p = make_pair_over(transport);
  std::thread sink([&] {
    try {
      for (;;) {
        net::Frame f = net::read_frame(*p.server);
        if (f.type == 0xdead) return;
      }
    } catch (const net::TransportError&) {
    }
  });
  const std::string payload(std::size_t{1} << 20, 's');
  for (int i = 0; i < 8; ++i) net::write_frame(*p.client, 1, payload);
  std::uint64_t frames = 0;
  const auto t0 = Clock::now();
  const auto deadline = t0 + std::chrono::duration<double>(seconds);
  while (Clock::now() < deadline) {
    net::write_frame(*p.client, 1, payload);
    ++frames;
  }
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();
  net::write_frame(*p.client, 0xdead, {});
  sink.join();
  const double mib_s = static_cast<double>(frames) / elapsed;
  std::printf("  %-28s %10.0f MiB/s\n", (transport + "/stream_1MiB").c_str(),
              mib_s);
  return {transport + "/stream_1MiB_mibs", mib_s, "MiB/s"};
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("transport_bench",
                      "frame latency and throughput for the shm and tcp "
                      "transports");
  cli.add_flag("seconds", "1.0", "measurement window per entry");
  cli.add_flag("out", "BENCH_transport.json", "JSON results file ('' = none)");
  if (!cli.parse(argc, argv)) return 0;
  const double seconds = cli.get_double("seconds");

  std::vector<Row> rows;
  for (const char* transport : {"shm", "tcp"}) {
    std::printf("%s:\n", transport);
    rows.push_back(pingpong(transport, seconds));
    rows.push_back(stream(transport, seconds));
  }

  const std::string out = cli.get("out");
  if (!out.empty()) {
    std::ofstream f(out);
    f << "[\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
      f << "  {\"name\": \"" << rows[i].name << "\", \"value\": "
        << rows[i].value << ", \"unit\": \"" << rows[i].unit << "\"}"
        << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    f << "]\n";
    std::printf("wrote %s\n", out.c_str());
  }
  return 0;
}
