// Ablation for §4.2's overhead accounting: "the raw computational speedups
// of IS-ASGD are typically 7.7% to 1.1% lower than ASGD" due to sampling
// setup, and "if we generate the sample sequence … only once and simply
// shuffle it every epoch, there will be no computation performance gap".
//
// Reports, per dataset analog: setup seconds (distribution + sequences),
// train seconds, the relative overhead, and the same numbers under the
// reshuffle approximation.
//
//   build/bench/ablation_sampling_overhead
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_sampling_overhead",
                      "§4.2 overhead accounting: IS setup cost vs ASGD, and "
                      "the reshuffle-once approximation");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;

  const double scale = cli.get_double("scale");
  const std::size_t threads = bench::threads_from(cli).front();

  util::TablePrinter table({"dataset", "ASGD_train_s", "IS_setup_s",
                            "IS_train_s", "overhead_pct",
                            "reshuffle_setup_s", "reshuffle_overhead_pct",
                            "reshuffle_final_rmse_vs_full"});
  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    metrics::Evaluator ev(prepared.data, prepared.objective, prepared.reg, 8);
    solvers::SolverOptions opt;
    opt.epochs = cli.get_int("epochs") > 0
                     ? static_cast<std::size_t>(cli.get_int("epochs"))
                     : std::min<std::size_t>(prepared.config.paper_epochs, 20);
    opt.threads = threads;
    opt.step_size = prepared.config.lambda;
    opt.reg = prepared.reg;

    const auto asgd = run_asgd(prepared.data, prepared.objective, opt, ev.as_fn());
    const auto is = run_is_asgd(prepared.data, prepared.objective, opt, ev.as_fn());
    opt.sequence_mode = solvers::SolverOptions::SequenceMode::kReshuffle;
    const auto reshuffled =
        run_is_asgd(prepared.data, prepared.objective, opt, ev.as_fn());

    const double overhead =
        100.0 * is.setup_seconds / std::max(is.train_seconds, 1e-12);
    const double r_overhead = 100.0 * reshuffled.setup_seconds /
                              std::max(reshuffled.train_seconds, 1e-12);
    table.add_row_values(
        prepared.config.name, asgd.train_seconds, is.setup_seconds,
        is.train_seconds, overhead, reshuffled.setup_seconds, r_overhead,
        reshuffled.points.back().rmse / is.points.back().rmse);
  }
  std::printf("%s", table.render().c_str());
  std::printf(
      "\nexpected shape: full pre-generation costs a few %% of training "
      "time (the paper reports 1.1-7.7%%); the reshuffle approximation cuts "
      "setup roughly by the epoch count while final RMSE stays ~1.0x.\n");
  return 0;
}
