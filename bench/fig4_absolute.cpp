// Figure 4 — absolute convergence: RMSE and error rate vs *wall-clock*, plus
// the paper's red-circle/blue-dot pair: the time ASGD needs to reach its own
// best error rate vs the time IS-ASGD needs to reach the same value.
//
//   build/bench/fig4_absolute [--datasets news20,url] [--threads 4,8,16]
//
// Expected shape (paper §4.2): SVRG-ASGD takes far longer in wall-clock
// despite its per-epoch advantage (News20 analog); IS-ASGD reaches ASGD's
// optimum 1.1–1.5× sooner.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "metrics/speedup.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("fig4_absolute",
                      "Reproduces Figure 4: absolute (wall-clock) convergence "
                      "and the ASGD-optimum crossing times");
  bench::add_common_flags(cli);
  cli.add_flag("reshuffle", "false",
               "use the paper's §4.2 reshuffle-once approximation for the IS\n"
               "      sample sequences. Off by default: a reshuffled sequence\n"
               "      never visits ~1/e of each shard (the multiset is fixed),\n"
               "      which caps attainable accuracy on datasets whose error\n"
               "      floor requires covering every sample — see EXPERIMENTS.md");
  cli.add_flag("svrg", "auto", "include SVRG-ASGD: auto|always|never");
  cli.add_flag("include-setup", "false",
               "charge IS sampling setup time to IS-ASGD. Off by default: at\n"
               "      laptop scale one epoch lasts milliseconds, so the fixed\n"
               "      setup cost (1-8%% of training on the paper's testbed,\n"
               "      quantified by ablation_sampling_overhead) would swamp the\n"
               "      early slices and measure the wrong thing");
  if (!cli.parse(argc, argv)) return 0;

  const double scale = cli.get_double("scale");
  const auto thread_counts = bench::threads_from(cli);
  const bool include_setup = cli.get_bool("include-setup");
  const std::string svrg_mode = cli.get("svrg");

  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    core::Trainer trainer(prepared.data, prepared.objective, prepared.reg);

    core::ExperimentSpec spec;
    spec.dataset_name = prepared.config.name;
    spec.solvers = {"SGD", "ASGD", "IS-ASGD"};
    const bool with_svrg =
        svrg_mode == "always" ||
        (svrg_mode == "auto" && id == data::PaperDataset::kNews20);
    if (with_svrg) spec.solvers.emplace_back("SVRG-ASGD");
    spec.thread_counts = thread_counts;
    spec.base_options.step_size = prepared.config.lambda;
    spec.base_options.epochs = cli.get_int("epochs") > 0
                                   ? static_cast<std::size_t>(cli.get_int("epochs"))
                                   : prepared.config.paper_epochs;
    spec.base_options.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
    if (cli.get_bool("reshuffle")) {
      spec.base_options.sequence_mode =
          solvers::SolverOptions::SequenceMode::kReshuffle;
    }

    const auto result = core::run_experiment(trainer, spec);
    bench::maybe_write_csv(cli, "fig4_" + prepared.config.name, result);

    for (std::size_t threads : thread_counts) {
      std::printf("\n=== Figure 4 (%s)  tau=%zu  lambda=%.2f ===\n",
                  prepared.config.paper_name.c_str(), threads,
                  prepared.config.lambda);
      util::TablePrinter table({"algorithm", "train_s", "setup_s",
                                "final_rmse", "best_err", "s_per_epoch"});
      for (const auto& solver : spec.solvers) {
        const auto* run = result.find(solver, threads);
        if (!run) continue;
        const auto& t = run->trace;
        table.add_row_values(
            run->solver, t.train_seconds,
            t.setup_seconds, t.points.back().rmse, t.best_error_rate(),
            t.train_seconds / std::max<std::size_t>(1, t.points.size() - 1));
      }
      std::printf("%s", table.render().c_str());

      // The red-circle/blue-dot pair, taken at the strictest error level
      // both algorithms reach (equals ASGD's own best whenever IS-ASGD
      // matches or beats it, which is the paper's comparison).
      const auto* asgd = result.find("ASGD", threads);
      const auto* is = result.find("IS-ASGD", threads);
      const double optimum = std::max(asgd->trace.best_error_rate(),
                                      is->trace.best_error_rate());
      const double t_asgd = asgd->trace.time_to_error(optimum, false);
      const double t_is = is->trace.time_to_error(optimum, include_setup);
      if (std::isfinite(t_is) && t_is > 0) {
        std::printf(
            "optimum of ASGD: err=%.4g at %.3gs; IS-ASGD reaches the same "
            "optimum at %.3gs -> absolute speedup %.2fx (paper band: "
            "1.13-1.54x)\n",
            optimum, t_asgd, t_is, t_asgd / t_is);
      } else {
        std::printf(
            "optimum of ASGD: err=%.4g at %.3gs; IS-ASGD did not reach it in "
            "this run\n",
            optimum, t_asgd);
      }
      if (with_svrg) {
        const auto* svrg = result.find("SVRG-ASGD", threads);
        std::printf(
            "SVRG-ASGD wall-clock %.3gs vs ASGD %.3gs (%.1fx slower despite "
            "its per-epoch advantage — the paper's section 1.2 bottleneck)\n",
            svrg->trace.train_seconds, asgd->trace.train_seconds,
            svrg->trace.train_seconds /
                std::max(asgd->trace.train_seconds, 1e-9));
      }
    }
  }
  return 0;
}
