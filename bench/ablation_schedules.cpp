// Step-size schedule ablation: exercising the bound the paper never runs.
//
// The paper's protocol fixes λ (0.5 / 0.05) for every algorithm, and
// EXPERIMENTS.md's Fig-3 note shows why that mutes IS: at a *fixed* step the
// uniform-vs-IS variance gap is a covariance term, while the theory's gain
// (Eqs. 13/14/26) enters through the *admissible step size* — IS tolerates a
// larger λ because its gradient bound depends on L̄, not sup L. This bench
// runs the decaying schedules and the Lemma-2 theory step on an L2-regular-
// ised problem (μ = η strong convexity), with σ² estimated at a warm-trained
// proxy for w*, and prints uniform vs IS quality under each — the regime
// where the bound's λ is actually used.
//
//   build/bench/ablation_schedules
#include <cmath>
#include <cstdio>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/sgd.hpp"
#include "solvers/schedule.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_schedules",
                      "Schedule sweep (constant / 1/t / 1/sqrt(t) / Lemma-2 "
                      "theory step) for uniform vs importance-sampled SGD");
  cli.add_flag("rows", "4000", "dataset rows");
  cli.add_flag("dim", "800", "dataset dimensionality");
  cli.add_flag("epochs", "12", "epoch budget");
  cli.add_flag("psi", "0.8", "target psi (Lipschitz spread)");
  cli.add_flag("l2", "1e-4", "L2 regularisation eta (= mu)");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = 12;
  spec.target_psi = cli.get_double("psi");
  spec.difficulty_coupling = 2.0;
  spec.label_noise = 0.05;
  spec.seed = 555;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const auto reg = objectives::Regularization::l2(cli.get_double("l2"));
  metrics::Evaluator ev(data, loss, reg, 4);

  solvers::SolverOptions base;
  base.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  base.reg = reg;
  base.seed = 7;

  // ---- Panel 1: schedule sweep at the paper's λ0 = 0.5 ----
  std::printf("=== schedule sweep (lambda0 = 0.5) ===\n");
  util::TablePrinter table(
      {"schedule", "SGD_rmse", "IS_rmse", "SGD_err", "IS_err"});
  for (const auto kind :
       {solvers::ScheduleKind::kConstant, solvers::ScheduleKind::kInvEpoch,
        solvers::ScheduleKind::kInvSqrtEpoch}) {
    auto opt = base;
    opt.step_size = 0.5;
    opt.step_schedule = kind;
    opt.schedule_offset = 4.0;
    const auto sgd = run_sgd(data, loss, opt, ev.as_fn());
    const auto is = run_is_sgd(data, loss, opt, ev.as_fn());
    table.add_row_values(solvers::schedule_name(kind),
                         sgd.points.back().rmse, is.points.back().rmse,
                         sgd.best_error_rate(), is.best_error_rate());
  }
  std::printf("%s\n", table.render().c_str());

  // ---- Panel 2: the Lemma-2 theory step, uniform vs IS admissible λ ----
  // σ² is estimated at a warm-trained model (proxy for w*): the residual
  // E‖∇φ_i(w)‖² ≈ E[(φ'(margin))²·‖x_i‖²].
  auto warm_opt = base;
  warm_opt.step_size = 0.5;
  warm_opt.keep_final_model = true;
  const auto warm = run_sgd(data, loss, warm_opt, ev.as_fn());
  double sigma_sq = 0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto x = data.row(i);
    double margin = 0;
    const auto idx = x.indices();
    const auto val = x.values();
    for (std::size_t j = 0; j < idx.size(); ++j) {
      margin += warm.final_model[idx[j]] * val[j];
    }
    const double g = loss.gradient_scale(margin, data.label(i));
    sigma_sq += g * g * x.squared_norm();
  }
  sigma_sq /= static_cast<double>(data.rows());

  const auto lipschitz = objectives::per_sample_lipschitz(data, loss, reg);
  const auto lip = analysis::summarize_lipschitz(lipschitz);
  analysis::BoundInputs in;
  in.mu = reg.eta;
  in.sigma_sq = sigma_sq;
  in.epsilon = 1e-2;
  const double lambda_noisy = analysis::lemma2_step_size(lip, in);

  // With the measured σ² the 2σ² term dominates Lemma 2's denominator and
  // the sup-L/L̄ distinction is invisible (both λ are tiny) — worth printing,
  // because it shows when the bound's IS gain can matter at all. The clean
  // regime is the interpolation bound (σ² → 0): λ = 1/(2·supL) for uniform
  // SGD vs 1/(2·L̄) for IS — IS admits a supL/L̄× larger step because its
  // 1/(n·p_i) reweighting shrinks exactly the heavy samples' steps.
  auto in0 = in;
  in0.sigma_sq = 0.0;
  const double lambda_sup = analysis::lemma2_step_size(lip, in0);
  auto lip_bar = lip;
  lip_bar.sup = lip.mean;
  const double lambda_bar = analysis::lemma2_step_size(lip_bar, in0);
  std::printf(
      "=== Lemma-2 theory steps (mu=%.1e, measured sigma^2=%.3g, supL=%.3g, "
      "Lbar=%.3g) ===\n",
      in.mu, sigma_sq, lip.sup, lip.mean);
  std::printf(
      "noisy-bound lambda = %.3g (sigma^2 dominates: sup-L vs L-bar "
      "indistinguishable)\ninterpolation bounds: uniform 1/(2supL) = %.4g,  "
      "IS 1/(2Lbar) = %.4g,  IS/uniform = %.3g\n",
      lambda_noisy, lambda_sup, lambda_bar, lambda_bar / lambda_sup);

  util::TablePrinter theory({"run", "lambda", "final_rmse", "best_err"});
  const auto add = [&](const char* name, double lambda, bool is) {
    auto opt = base;
    opt.step_size = lambda;
    const auto t = is ? run_is_sgd(data, loss, opt, ev.as_fn())
                      : run_sgd(data, loss, opt, ev.as_fn());
    theory.add_row_values(name, lambda, t.points.back().rmse,
                          t.best_error_rate());
  };
  add("SGD @ its bound 1/(2supL)", lambda_sup, false);
  add("SGD @ IS bound 1/(2Lbar)", lambda_bar, false);
  add("IS-SGD @ its bound 1/(2Lbar)", lambda_bar, true);
  std::printf("%s\n", theory.render().c_str());
  std::printf(
      "expected shape: panel 1's decaying schedules trade early progress for "
      "late stability, IS tracking uniform under each; panel 2: IS-SGD at "
      "1/(2Lbar) is at least as good as SGD at the same (for it "
      "inadmissible) step — the 1/(n·p_i) weights damp exactly the heavy "
      "rows — and reaches a better operating point than SGD confined to "
      "1/(2supL). That admissible-step gap is where Eq. 26's IS gain lives, "
      "and the fixed-lambda protocol of the paper's §4 never exercises it.\n");
  return 0;
}
