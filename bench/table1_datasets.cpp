// Table 1 — "Evaluation Datasets": dimension, instances, ∇f_i sparsity, ψ, ρ
// for the four dataset analogs, printed next to the paper's reported values.
//
// --streaming-probe additionally writes each analog to a binary file, opens
// it as a StreamingSource under --stream-budget-mb, and times one full
// shard-major pass — the per-dataset answer to "what does out-of-core cost
// here?" (bench/streaming has the solver-level comparison).
//
//   build/bench/table1_datasets [--scale 1.0] [--streaming-probe]
#include <cstdio>
#include <filesystem>

#include "analysis/dataset_stats.hpp"
#include "bench_common.hpp"
#include "data/streaming_source.hpp"
#include "io/binary.hpp"
#include "util/timer.hpp"

namespace {

/// One timed shard-major pass; returns Mrows/s and fills the cache stats.
double streaming_pass_mrows(const isasgd::data::StreamingSource& source) {
  isasgd::util::Stopwatch timer;
  for (std::size_t s = 0; s < source.shard_count(); ++s) {
    if (s + 1 < source.shard_count()) source.prefetch(s + 1);
    (void)source.shard(s);
  }
  return static_cast<double>(source.rows()) / timer.seconds() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("table1_datasets",
                      "Reproduces Table 1: dataset statistics (paper values "
                      "vs this repo's calibrated analogs)");
  bench::add_common_flags(cli);
  cli.add_flag("streaming-probe", "false",
               "also time a shard-major streaming pass over each analog");
  cli.add_flag("stream-budget-mb", "8",
               "shard-cache budget for the streaming probe (MiB)");
  cli.add_flag("stream-shard-rows", "4096",
               "rows per shard for the streaming probe");
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");
  const bool probe = cli.get_bool("streaming-probe");

  util::TablePrinter table({"Name", "Dim", "Instances", "Spa.", "psi", "rho",
                            "conflict_deg", "paper_dim", "paper_inst",
                            "paper_spa", "paper_psi", "paper_rho"});
  util::TablePrinter stream_table(
      {"Name", "shards", "stream_Mrows_s", "loads", "evictions",
       "prefetch_hits"});
  objectives::LogisticLoss loss;
  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    analysis::DatasetStatsOptions opt;
    opt.conflict_samples = 256;
    const auto stats = analysis::compute_dataset_stats(
        prepared.config.name, prepared.data, loss,
        objectives::Regularization::none(), opt);
    table.add_row_values(
        stats.name, static_cast<double>(stats.dimension),
        static_cast<double>(stats.instances), stats.gradient_sparsity,
        stats.psi, stats.rho, stats.avg_conflict_degree,
        static_cast<double>(prepared.config.paper_dimension),
        static_cast<double>(prepared.config.paper_instances),
        prepared.config.paper_sparsity, prepared.config.paper_psi,
        prepared.config.paper_rho);
    if (probe) {
      const auto path = std::filesystem::temp_directory_path() /
                        ("isasgd_t1_" + prepared.config.name + ".bin");
      io::write_dataset_binary_file(path.string(), prepared.data);
      util::ThreadPool pool;
      data::StreamingOptions sopt;
      sopt.shard_rows =
          static_cast<std::size_t>(cli.get_i64("stream-shard-rows"));
      sopt.memory_budget_bytes =
          static_cast<std::size_t>(cli.get_i64("stream-budget-mb")) << 20;
      const data::StreamingSource source(path.string(), sopt, &pool);
      const double mrows = streaming_pass_mrows(source);
      const auto cache = *source.cache_stats();
      stream_table.add_row_values(
          prepared.config.name, static_cast<double>(source.shard_count()),
          mrows, static_cast<double>(cache.loads),
          static_cast<double>(cache.evictions),
          static_cast<double>(cache.prefetch_hits));
      std::filesystem::remove(path);
    }
  }
  std::printf("\nTable 1 — dataset statistics (measured analog vs paper)\n%s\n",
              table.render().c_str());
  std::printf(
      "Note: analogs preserve psi and rho exactly and the sparsity *regime*\n"
      "(dense 1e-3 vs sparse <=1e-5); dims/instances are scaled ~50-100x down\n"
      "for laptop runtimes (see DESIGN.md section 4).\n");
  if (probe) {
    std::printf("\nStreaming probe — one shard-major pass per analog\n%s\n",
                stream_table.render().c_str());
  }
  return 0;
}
