// Table 1 — "Evaluation Datasets": dimension, instances, ∇f_i sparsity, ψ, ρ
// for the four dataset analogs, printed next to the paper's reported values.
//
//   build/bench/table1_datasets [--scale 1.0]
#include <cstdio>

#include "analysis/dataset_stats.hpp"
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("table1_datasets",
                      "Reproduces Table 1: dataset statistics (paper values "
                      "vs this repo's calibrated analogs)");
  bench::add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const double scale = cli.get_double("scale");

  util::TablePrinter table({"Name", "Dim", "Instances", "Spa.", "psi", "rho",
                            "conflict_deg", "paper_dim", "paper_inst",
                            "paper_spa", "paper_psi", "paper_rho"});
  objectives::LogisticLoss loss;
  for (data::PaperDataset id : bench::datasets_from(cli)) {
    const auto prepared = bench::prepare(id, scale, cli.get_double("l1"));
    analysis::DatasetStatsOptions opt;
    opt.conflict_samples = 256;
    const auto stats = analysis::compute_dataset_stats(
        prepared.config.name, prepared.data, loss,
        objectives::Regularization::none(), opt);
    table.add_row_values(
        stats.name, static_cast<double>(stats.dimension),
        static_cast<double>(stats.instances), stats.gradient_sparsity,
        stats.psi, stats.rho, stats.avg_conflict_degree,
        static_cast<double>(prepared.config.paper_dimension),
        static_cast<double>(prepared.config.paper_instances),
        prepared.config.paper_sparsity, prepared.config.paper_psi,
        prepared.config.paper_rho);
  }
  std::printf("\nTable 1 — dataset statistics (measured analog vs paper)\n%s\n",
              table.render().c_str());
  std::printf(
      "Note: analogs preserve psi and rho exactly and the sparsity *regime*\n"
      "(dense 1e-3 vs sparse <=1e-5); dims/instances are scaled ~50-100x down\n"
      "for laptop runtimes (see DESIGN.md section 4).\n");
  return 0;
}
