// Ablation for the paper's §1.2 claims about SVRG's density:
//   (a) per-iteration cost: dense-μ SVRG update vs index-compressed ASGD
//       update, as the dimensionality grows (the "five to seven magnitudes"
//       argument around Figure 1);
//   (b) the "skip-μ" public-version approximation: cheaper per iteration but
//       a visibly different convergence curve than faithful SVRG;
//   (c) the lazy-aggregation rebuttal: deferring the dense term with
//       per-coordinate closed forms computes the *same iterates* at
//       index-compressed cost — §1.2's density is a schedule property, not
//       an algorithm property (for smooth regularizers; L1 keeps it real).
//
//   build/bench/ablation_svrg_cost
#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/asgd.hpp"
#include "solvers/svrg_lazy.hpp"
#include "solvers/svrg_sgd.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_svrg_cost",
                      "Quantifies §1.2: the dense-μ cost of SVRG vs "
                      "index-compressed updates, and the skip-μ approximation");
  cli.add_flag("rows", "4000", "dataset rows");
  cli.add_flag("nnz", "10", "nonzeros per row (fixed)");
  cli.add_flag("dims", "1000,10000,100000,1000000",
               "dimensionalities to sweep");
  cli.add_flag("epochs", "6", "epochs for the convergence comparison");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;

  // ---- (a) per-epoch cost sweep: sparsity is d-invariant, density is not.
  std::printf("=== (a) per-epoch training cost vs dimensionality ===\n");
  util::TablePrinter cost({"dim", "density", "ASGD_s_per_epoch",
                           "SVRG_s_per_epoch", "slowdown",
                           "LAZY_s_per_epoch"});
  for (int dim : cli.get_int_list("dims")) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = static_cast<std::size_t>(dim);
    spec.mean_row_nnz = cli.get_double("nnz");
    spec.nnz_dispersion = 0;
    spec.seed = 4242;
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
    solvers::SolverOptions opt;
    opt.epochs = 2;
    opt.threads = 1;
    opt.step_size = 0.5;
    const auto asgd = run_asgd(data, loss, opt, ev.as_fn());
    opt.step_size = 0.2;
    const auto svrg = run_svrg_sgd(data, loss, opt, ev.as_fn());
    const auto lazy = run_svrg_sgd_lazy(data, loss, opt, ev.as_fn());
    const double a = asgd.train_seconds / static_cast<double>(opt.epochs);
    const double s = svrg.train_seconds / static_cast<double>(opt.epochs);
    const double l = lazy.train_seconds / static_cast<double>(opt.epochs);
    cost.add_row_values(static_cast<double>(dim), data.density(), a, s,
                        s / std::max(a, 1e-12), l);
  }
  std::printf("%s", cost.render().c_str());
  std::printf(
      "expected shape: ASGD cost is flat in d (index-compressed); SVRG cost "
      "grows linearly in d (dense mu each iteration), so the slowdown column "
      "explodes exactly as §1.2 argues. The LAZY column computes the same "
      "iterates as SVRG (tests pin it to ~1e-9) at near-ASGD cost — the "
      "density is the schedule's, not the algorithm's, as long as the "
      "regularizer's lazy recurrence is closed-form (none/L2; the paper's "
      "L1 is where it stays real).\n\n");

  // ---- (b) faithful vs skip-μ convergence.
  std::printf("=== (b) faithful SVRG vs public-version skip-mu ===\n");
  data::SyntheticSpec spec;
  spec.rows = 3000;
  spec.dim = 500;
  spec.mean_row_nnz = 10;
  spec.seed = 99;
  const auto data = data::generate(spec);
  metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = 0.2;
  const auto faithful = run_svrg_sgd(data, loss, opt, ev.as_fn());
  opt.svrg_skip_mu = true;
  const auto skip = run_svrg_sgd(data, loss, opt, ev.as_fn());
  util::TablePrinter conv({"epoch", "faithful_rmse", "skip_mu_rmse"});
  for (std::size_t e = 0; e < faithful.points.size(); ++e) {
    conv.add_row_values(static_cast<double>(e), faithful.points[e].rmse,
                        skip.points[e].rmse);
  }
  std::printf("%s", conv.render().c_str());
  std::printf(
      "expected shape: the curves diverge — the paper found the public "
      "version 'far from the literature version' (§1.2). skip-mu per-epoch "
      "cost: %.4gs vs faithful %.4gs.\n",
      skip.train_seconds / static_cast<double>(opt.epochs),
      faithful.train_seconds / static_cast<double>(opt.epochs));
  return 0;
}
