// Micro benchmarks for the kernels whose cost structure the paper's argument
// rests on, plus the fused/unrolled kernels introduced with the shared
// execution engine:
//   * index-compressed (sparse) update vs dense full-length update — Fig. 1,
//   * scalar reference loops vs the vectorized kernels in sparse/kernels.cpp
//     (unrolled dense_dot, sparse_dot_pair, sparse_dot_residual_axpy,
//     scale_then_sparse_axpy) — the contract is "fused never loses",
//   * alias vs CDF vs uniform sampling — "IS adds no per-iteration cost",
//   * SharedModel wild vs atomic add under a single writer.
//
// Self-contained timing harness (no google-benchmark): every entry reports
// ns/op and Mitems/s, and the whole table is written as machine-readable
// JSON (BENCH_kernels.json by default) for the perf-trajectory files.
//
// With runtime dispatch the table also carries a per-backend ladder: each
// available backend {scalar, avx2, avx512} is timed through its own
// KernelTable on the representative kernels, reported as `kernel/backend`
// rows. The legacy unsuffixed rows keep measuring whatever backend is
// active (so existing baselines stay comparable across checkouts).
//
// Usage:
//   micro_kernels [--out FILE] [--check] [--min-time SECONDS]
//                 [--backend scalar|avx2|avx512]
//     --backend : pin the active dispatch backend before measuring (same
//               effect as ISASGD_KERNEL_BACKEND; fails if unavailable).
//     --check : exit non-zero if (a) any fused/unrolled kernel falls below
//               REGRESSION_FLOOR × its scalar baseline's throughput — the
//               CI smoke gate (the floor is deliberately loose so scheduler
//               noise on shared runners cannot flake the job; locally the
//               fused kernels should simply win) — or (b) any available
//               vector backend produces results that are not bit-identical
//               to the scalar backend on randomized inputs.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "objectives/objective.hpp"
#include "sampling/alias_table.hpp"
#include "sampling/cdf_sampler.hpp"
#include "sampling/fenwick_sampler.hpp"
#include "sampling/sequence.hpp"
#include "solvers/model.hpp"
#include "sparse/dispatch.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/logging.hpp"
#include "util/rng.hpp"

namespace {

using namespace isasgd;

constexpr double kRegressionFloor = 0.75;

// ---------------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------------

struct BenchResult {
  std::string name;
  std::string baseline;  // empty for baselines themselves
  double ns_per_op = 0;
  double items_per_sec = 0;
  double speedup = 0;   // vs baseline's ns_per_op; 0 when no baseline
  bool gated = true;    // false: speedup is informational, not a CI gate
};

double g_min_time_s = 0.05;
std::vector<BenchResult> g_results;
double g_sink = 0;  // defeats dead-code elimination across benches

/// Times `body(iters)` (which must perform `iters` repetitions) until the
/// measurement window exceeds g_min_time_s, and records ns per repetition.
/// `items_per_op` scales the throughput column (e.g. d for a dense pass).
void bench(const std::string& name, const std::string& baseline,
           double items_per_op, const std::function<void(std::size_t)>& body,
           bool gated = true) {
  using clock = std::chrono::steady_clock;
  std::size_t iters = 1;
  double seconds = 0;
  for (;;) {
    const auto t0 = clock::now();
    body(iters);
    seconds = std::chrono::duration<double>(clock::now() - t0).count();
    if (seconds >= g_min_time_s) break;
    const double target = g_min_time_s * 1.4;
    const std::size_t next =
        seconds > 0 ? static_cast<std::size_t>(
                          static_cast<double>(iters) * target / seconds) + 1
                    : iters * 16;
    iters = std::max(next, iters * 2);
  }
  BenchResult r;
  r.name = name;
  r.baseline = baseline;
  r.gated = gated;
  r.ns_per_op = seconds * 1e9 / static_cast<double>(iters);
  r.items_per_sec =
      items_per_op * static_cast<double>(iters) / seconds;
  if (!baseline.empty()) {
    for (const BenchResult& b : g_results) {
      if (b.name == baseline) {
        r.speedup = b.ns_per_op / r.ns_per_op;
        break;
      }
    }
  }
  g_results.push_back(r);
  std::printf("%-34s %12.2f ns/op %12.1f Mitems/s", r.name.c_str(),
              r.ns_per_op, r.items_per_sec / 1e6);
  if (r.speedup > 0) std::printf("   %5.2fx vs %s", r.speedup,
                                 r.baseline.c_str());
  std::printf("\n");
  std::fflush(stdout);
}

sparse::SparseVector make_row(std::size_t dim, std::size_t nnz,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sparse::index_t> idx;
  while (idx.size() < nnz) {
    const auto j =
        static_cast<sparse::index_t>(util::uniform_index(rng, dim));
    if (std::find(idx.begin(), idx.end(), j) == idx.end()) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end());
  std::vector<sparse::value_t> val(nnz);
  for (auto& v : val) v = util::normal_double(rng);
  return sparse::SparseVector(std::move(idx), std::move(val));
}

// ---------------------------------------------------------------------------
// Scalar reference loops — frozen copies of the pre-vectorization solver
// inner loops (including the out-of-line Regularization::subgradient call
// per touched coordinate the old code paid), the baselines the
// fused/unrolled kernels must beat.
// ---------------------------------------------------------------------------

double scalar_dense_dot(std::span<const double> a, std::span<const double> b) {
  double acc = 0;
  for (std::size_t j = 0; j < a.size(); ++j) acc += a[j] * b[j];
  return acc;
}

double scalar_sparse_dot(std::span<const double> w,
                         sparse::SparseVectorView x) {
  const auto idx = x.indices();
  const auto val = x.values();
  double acc = 0;
  for (std::size_t k = 0; k < idx.size(); ++k) acc += w[idx[k]] * val[k];
  return acc;
}

void scalar_sgd_step(std::span<double> w, sparse::SparseVectorView x,
                     double step, double g,
                     const objectives::Regularization& reg) {
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    const std::size_t c = idx[k];
    w[c] -= step * (g * val[k] + reg.subgradient(w[c]));
  }
}

void scalar_svrg_step(std::span<double> w, std::span<const double> mu,
                      double step, const objectives::Regularization& reg,
                      double corr_step, sparse::SparseVectorView x) {
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t k = 0; k < idx.size(); ++k) {
    w[idx[k]] -= corr_step * val[k];
  }
  for (std::size_t j = 0; j < w.size(); ++j) {
    w[j] -= step * (mu[j] + reg.subgradient(w[j]));
  }
}

// ---------------------------------------------------------------------------
// Bench groups
// ---------------------------------------------------------------------------

void bench_dense_kernels() {
  const std::size_t d = std::size_t{1} << 16;
  std::vector<double> a(d), b(d);
  util::Rng rng(1);
  for (auto& v : a) v = util::normal_double(rng);
  for (auto& v : b) v = util::normal_double(rng);

  bench("dense_dot_scalar", "", static_cast<double>(d), [&](std::size_t it) {
    double acc = 0;
    for (std::size_t i = 0; i < it; ++i) acc += scalar_dense_dot(a, b);
    g_sink += acc;
  });
  bench("dense_dot_unrolled", "dense_dot_scalar", static_cast<double>(d),
        [&](std::size_t it) {
          double acc = 0;
          for (std::size_t i = 0; i < it; ++i) acc += sparse::dense_dot(a, b);
          g_sink += acc;
        });
  bench("dense_axpy", "", static_cast<double>(d), [&](std::size_t it) {
    for (std::size_t i = 0; i < it; ++i) {
      sparse::dense_axpy(a, i % 2 ? 1e-9 : -1e-9, b);
    }
    g_sink += a[0];
  });
}

void bench_sparse_vs_dense_update() {
  // The ASGD inner-loop update (sparse dot + sparse step, cost ~ nnz) vs
  // the SVRG dense μ pass (cost ~ d) — the "index-compressed" gap of Fig. 1.
  const std::size_t d = std::size_t{1} << 18;
  const std::size_t nnz = 10;
  const auto row = make_row(d, nnz, 42);
  std::vector<double> w(d, 0.1), mu(d, 0.01);

  bench("sparse_update_nnz10", "", static_cast<double>(nnz),
        [&](std::size_t it) {
          for (std::size_t i = 0; i < it; ++i) {
            const double margin = sparse::sparse_dot(w, row.view());
            sparse::sparse_dot_residual_axpy(w, row.view(), 1e-9, margin, 0.0,
                                             0.0);
          }
          g_sink += w[row.view().index(0)];
        });
  bench("dense_update_d", "", static_cast<double>(d), [&](std::size_t it) {
    for (std::size_t i = 0; i < it; ++i) {
      sparse::dense_axpy(w, i % 2 ? 1e-9 : -1e-9, mu);
    }
    g_sink += w[0];
  });
}

void bench_fused_sgd_step() {
  const std::size_t d = std::size_t{1} << 18;
  const std::size_t nnz = 64;
  const auto row = make_row(d, nnz, 7);
  std::vector<double> w(d, 0.1);
  const auto reg = objectives::Regularization::l2(1e-4);

  bench("sgd_step_scalar", "", static_cast<double>(nnz),
        [&](std::size_t it) {
          for (std::size_t i = 0; i < it; ++i) {
            const double margin = scalar_sparse_dot(w, row.view());
            scalar_sgd_step(w, row.view(), 1e-9, margin, reg);
          }
          g_sink += w[row.view().index(0)];
        });
  bench("sgd_step_fused", "sgd_step_scalar", static_cast<double>(nnz),
        [&](std::size_t it) {
          for (std::size_t i = 0; i < it; ++i) {
            const double margin = sparse::sparse_dot(w, row.view());
            sparse::sparse_dot_residual_axpy(w, row.view(), 1e-9, margin,
                                             reg.eta_l1(), reg.eta_l2());
          }
          g_sink += w[row.view().index(0)];
        });
}

void bench_fused_svrg_step() {
  const std::size_t d = std::size_t{1} << 16;
  const std::size_t nnz = 32;
  const auto row = make_row(d, nnz, 11);
  std::vector<double> w(d, 0.1), s(d, 0.05), mu(d, 0.01);

  bench("svrg_margin_two_dots", "", static_cast<double>(2 * nnz),
        [&](std::size_t it) {
          double acc = 0;
          for (std::size_t i = 0; i < it; ++i) {
            acc += sparse::sparse_dot(w, row.view());
            acc += sparse::sparse_dot(s, row.view());
          }
          g_sink += acc;
        });
  bench("svrg_margin_dot_pair", "svrg_margin_two_dots",
        static_cast<double>(2 * nnz), [&](std::size_t it) {
          double acc = 0;
          for (std::size_t i = 0; i < it; ++i) {
            double mw = 0, ms = 0;
            sparse::sparse_dot_pair(w, s, row.view(), mw, ms);
            acc += mw + ms;
          }
          g_sink += acc;
        });

  const auto reg = objectives::Regularization::l2(1e-4);
  bench("svrg_step_two_pass", "", static_cast<double>(d),
        [&](std::size_t it) {
          for (std::size_t i = 0; i < it; ++i) {
            scalar_svrg_step(w, mu, i % 2 ? 1e-9 : -1e-9, reg, 1e-9,
                             row.view());
          }
          g_sink += w[0];
        });
  bench("svrg_step_fused", "svrg_step_two_pass", static_cast<double>(d),
        [&](std::size_t it) {
          for (std::size_t i = 0; i < it; ++i) {
            sparse::scale_then_sparse_axpy(w, mu, i % 2 ? 1e-9 : -1e-9,
                                           reg.eta_l1(), reg.eta_l2(), 1e-9,
                                           row.view());
          }
          g_sink += w[0];
        });
}

void bench_samplers() {
  // Draw-cost ladder: uniform (the paper's "no IS" reference), the two
  // O(log n) weighted samplers (CDF binary search, Fenwick descent), and
  // the O(1) alias draw — the structure the §1.3 claim "IS adds no
  // per-iteration cost" rests on. The alias entries are GATED against the
  // O(log n) baseline: an alias draw regressing to within 0.75x of a binary
  // search is a structural sampler regression, caught here before it can
  // hide inside end-to-end noise. The block-refill entry times the
  // streamed-sequence hot path (BlockSequence::next over refilled blocks);
  // it is also gated against the O(log n) baseline rather than raw alias
  // draws — its true cost is alias + store (~0.85-0.9x of a bare draw), too
  // thin a guard band for a 0.75 floor on noisy shared runners, while the
  // log-n baseline still catches any structural regression of the refill
  // path. The refill-vs-alias delta stays visible in the JSON.
  const std::size_t n = std::size_t{1} << 20;
  util::Rng wrng(8);
  std::vector<double> weights(n);
  for (auto& v : weights) v = util::uniform_double(wrng) + 0.01;

  {
    util::Rng rng(7);
    bench("sample_uniform", "", 1.0, [&](std::size_t it) {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < it; ++i) sink += util::uniform_index(rng, n);
      g_sink += static_cast<double>(sink & 0xff);
    });
  }
  {
    sampling::CdfSampler sampler(weights);
    util::Rng rng(9);
    bench("sample_cdf", "", 1.0, [&](std::size_t it) {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < it; ++i) sink += sampler.sample(rng);
      g_sink += static_cast<double>(sink & 0xff);
    });
  }
  {
    sampling::FenwickSampler sampler(weights);
    util::Rng rng(10);
    bench("sample_fenwick", "", 1.0, [&](std::size_t it) {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < it; ++i) sink += sampler.sample(rng);
      g_sink += static_cast<double>(sink & 0xff);
    });
  }
  {
    sampling::AliasTable table(weights);
    util::Rng rng(8);
    bench("sample_alias", "sample_cdf", 1.0, [&](std::size_t it) {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < it; ++i) sink += table.sample(rng);
      g_sink += static_cast<double>(sink & 0xff);
    });
  }
  {
    // The solvers' actual draw path: block refill + inline cursor.
    sampling::BlockSequence seq(sampling::BlockSequence::Mode::kIid, weights,
                                n, /*seed=*/0);
    std::size_t left = 0;
    std::uint64_t epoch = 0;
    bench("sample_block_refill", "sample_cdf", 1.0, [&](std::size_t it) {
      std::uint64_t sink = 0;
      for (std::size_t i = 0; i < it; ++i) {
        if (left == 0) {
          seq.begin_epoch(1, ++epoch);
          left = seq.epoch_length();
        }
        sink += seq.next();
        --left;
      }
      g_sink += static_cast<double>(sink & 0xff);
    });
  }
  {
    // Construction cost per element: the once-per-weight-change price the
    // streamed scheme pays (vs once per epoch pre-streaming).
    bench("alias_build_per_elem", "", static_cast<double>(n),
          [&](std::size_t it) {
            for (std::size_t i = 0; i < it; ++i) {
              sampling::AliasTable table(weights);
              g_sink += table.probability(i & (n - 1));
            }
          });
  }
}

void bench_backend_ladder() {
  // Per-ISA ladder: the same representative kernels timed through every
  // available backend's KernelTable, reported as `kernel/backend` rows.
  // Vector rows carry their `/scalar` counterpart as baseline so the JSON
  // shows the realized SIMD speedup, but they are NOT gated: on a gather-
  // bound sparse kernel a vector backend is allowed to tie the scalar one —
  // the dispatch contract is bit-identity, not a throughput floor, and that
  // contract is enforced by check_backend_parity() instead.
  namespace k = sparse::kernels;
  const std::size_t d = std::size_t{1} << 16;
  std::vector<double> a(d), b(d), mu(d, 0.01);
  util::Rng rng(21);
  for (auto& v : a) v = util::normal_double(rng);
  for (auto& v : b) v = util::normal_double(rng);
  const std::size_t nnz = 64;
  const auto row = make_row(d, nnz, 23);
  const auto reg = objectives::Regularization::l2(1e-4);

  for (const k::Backend be : k::available_backends()) {
    const k::KernelTable& t = *k::table_for(be);
    const std::string suffix = "/" + k::backend_name(be);
    const bool is_scalar = be == k::Backend::kScalar;
    const auto base = [&](const char* kernel) {
      return is_scalar ? std::string() : std::string(kernel) + "/scalar";
    };

    bench("dense_dot" + suffix, base("dense_dot"), static_cast<double>(d),
          [&](std::size_t it) {
            double acc = 0;
            for (std::size_t i = 0; i < it; ++i) acc += t.dense_dot(a, b);
            g_sink += acc;
          },
          /*gated=*/false);
    bench("dense_axpy" + suffix, base("dense_axpy"), static_cast<double>(d),
          [&](std::size_t it) {
            for (std::size_t i = 0; i < it; ++i) {
              t.dense_axpy(a, i % 2 ? 1e-9 : -1e-9, b);
            }
            g_sink += a[0];
          },
          /*gated=*/false);
    bench("sgd_step_fused" + suffix, base("sgd_step_fused"),
          static_cast<double>(nnz),
          [&](std::size_t it) {
            for (std::size_t i = 0; i < it; ++i) {
              const double margin = t.sparse_dot(a, row.view());
              t.sparse_dot_residual_axpy(a, row.view(), 1e-9, margin,
                                         reg.eta_l1(), reg.eta_l2());
            }
            g_sink += a[row.view().index(0)];
          },
          /*gated=*/false);
    bench("svrg_step_fused" + suffix, base("svrg_step_fused"),
          static_cast<double>(d),
          [&](std::size_t it) {
            for (std::size_t i = 0; i < it; ++i) {
              t.scale_then_sparse_axpy(a, mu, i % 2 ? 1e-9 : -1e-9,
                                       reg.eta_l1(), reg.eta_l2(), 1e-9,
                                       row.view());
            }
            g_sink += a[0];
          },
          /*gated=*/false);
  }
}

void bench_shared_model() {
  solvers::SharedModel model(std::size_t{1} << 16);
  {
    util::Rng rng(10);
    bench("shared_model_wild_add", "", 1.0, [&](std::size_t it) {
      for (std::size_t i = 0; i < it; ++i) {
        model.add(util::uniform_index(rng, model.dim()), 0.25,
                  solvers::UpdatePolicy::kWild);
      }
    });
  }
  {
    util::Rng rng(11);
    bench("shared_model_atomic_add", "", 1.0, [&](std::size_t it) {
      for (std::size_t i = 0; i < it; ++i) {
        model.add(util::uniform_index(rng, model.dim()), 0.25,
                  solvers::UpdatePolicy::kAtomic);
      }
    });
  }
}

// ---------------------------------------------------------------------------
// Output + regression gate
// ---------------------------------------------------------------------------

void write_json(const std::string& path) {
  namespace k = sparse::kernels;
  std::ofstream out(path);
  out << "{\n  \"backend\": \"" << k::backend_name(k::active_backend())
      << "\",\n  \"benchmarks\": [\n";
  for (std::size_t i = 0; i < g_results.size(); ++i) {
    const BenchResult& r = g_results[i];
    out << "    {\"name\": \"" << r.name << "\", \"baseline\": \""
        << r.baseline << "\", \"ns_per_op\": " << r.ns_per_op
        << ", \"items_per_sec\": " << r.items_per_sec
        << ", \"speedup\": " << r.speedup
        << ", \"gated\": " << (r.gated ? "true" : "false") << "}"
        << (i + 1 < g_results.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::cout << "wrote " << path << "\n";
}

int check_regressions() {
  int failures = 0;
  for (const BenchResult& r : g_results) {
    if (r.baseline.empty() || !r.gated) continue;
    if (r.speedup < kRegressionFloor) {
      isasgd::util::log_error()
          << "REGRESSION: " << r.name << " is " << r.speedup
          << "x its baseline " << r.baseline << " (floor " << kRegressionFloor
          << ")";
      ++failures;
    }
  }
  return failures;
}

/// The dispatch contract under --check: every available vector backend must
/// be bit-identical to scalar on randomized sparse/dense inputs, including
/// the fused kernels under every regularizer kind. EXPECT_EQ-strength
/// equality — the TUs share one arithmetic body compiled with
/// -ffp-contract=off, so any drift is a build-flag or codegen bug.
int check_backend_parity() {
  namespace k = sparse::kernels;
  const k::KernelTable& scalar = *k::table_for(k::Backend::kScalar);
  int failures = 0;
  const std::size_t d = 1337;  // odd: exercises every unroll remainder
  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    util::Rng rng(500 + trial);
    std::vector<double> w0(d), s0(d);
    for (auto& v : w0) v = util::normal_double(rng);
    for (auto& v : s0) v = util::normal_double(rng);
    const auto x = make_row(d, 5 + trial * 13, 600 + trial);
    for (const k::Backend be : k::available_backends()) {
      if (be == k::Backend::kScalar) continue;
      const k::KernelTable& t = *k::table_for(be);
      const auto expect = [&](bool ok, const char* kernel) {
        if (ok) return;
        util::log_error() << "PARITY: " << kernel << " under "
                          << k::backend_name(be)
                          << " is not bit-identical to scalar (trial "
                          << trial << ")";
        ++failures;
      };
      expect(t.sparse_dot(w0, x.view()) == scalar.sparse_dot(w0, x.view()),
             "sparse_dot");
      expect(t.dense_dot(w0, s0) == scalar.dense_dot(w0, s0), "dense_dot");
      expect(t.dense_norm(w0) == scalar.dense_norm(w0), "dense_norm");
      expect(t.dense_squared_distance(w0, s0) ==
                 scalar.dense_squared_distance(w0, s0),
             "dense_squared_distance");
      expect(t.dense_l1_norm(w0) == scalar.dense_l1_norm(w0), "dense_l1_norm");
      double aw = 0, as = 0, bw = 0, bs = 0;
      scalar.sparse_dot_pair(w0, s0, x.view(), aw, as);
      t.sparse_dot_pair(w0, s0, x.view(), bw, bs);
      expect(aw == bw && as == bs, "sparse_dot_pair");
      auto ref = w0, cand = w0;
      scalar.sparse_axpy(ref, 0.37, x.view());
      t.sparse_axpy(cand, 0.37, x.view());
      expect(ref == cand, "sparse_axpy");
      ref = w0, cand = w0;
      scalar.dense_axpy(ref, -1.25, s0);
      t.dense_axpy(cand, -1.25, s0);
      expect(ref == cand, "dense_axpy");
      ref = w0, cand = w0;
      scalar.dense_scale(ref, 0.99);
      t.dense_scale(cand, 0.99);
      expect(ref == cand, "dense_scale");
      for (const auto& [l1, l2] :
           {std::pair{0.0, 0.0}, {0.0, 1e-3}, {1e-4, 0.0}}) {
        ref = w0, cand = w0;
        scalar.sparse_dot_residual_axpy(ref, x.view(), 0.05, 0.8, l1, l2);
        t.sparse_dot_residual_axpy(cand, x.view(), 0.05, 0.8, l1, l2);
        expect(ref == cand, "sparse_dot_residual_axpy");
        ref = w0, cand = w0;
        scalar.scale_then_sparse_axpy(ref, s0, 0.05, l1, l2, 0.02, x.view());
        t.scale_then_sparse_axpy(cand, s0, 0.05, l1, l2, 0.02, x.view());
        expect(ref == cand, "scale_then_sparse_axpy");
      }
    }
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  namespace k = isasgd::sparse::kernels;
  std::string out_path = "BENCH_kernels.json";
  std::string backend;
  bool check = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--min-time") == 0 && i + 1 < argc) {
      g_min_time_s = std::stod(argv[++i]);
    } else if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
      backend = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: micro_kernels [--out FILE] [--check] "
                   "[--min-time SECONDS] [--backend scalar|avx2|avx512]\n");
      return 2;
    }
  }
  if (!backend.empty()) {
    try {
      if (!k::set_backend(k::backend_from_name(backend))) {
        std::fprintf(stderr, "backend '%s' is not available on this host\n",
                     backend.c_str());
        return 2;
      }
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s\n", e.what());
      return 2;
    }
  }
  std::printf("active kernel backend: %s\n",
              k::backend_name(k::active_backend()).c_str());

  bench_dense_kernels();
  bench_sparse_vs_dense_update();
  bench_fused_sgd_step();
  bench_fused_svrg_step();
  bench_samplers();
  bench_backend_ladder();
  bench_shared_model();

  write_json(out_path);
  if (g_sink == 12345.6789) std::cout << " ";  // keep the sink observable

  if (check) {
    int failures = check_regressions();
    if (!failures) {
      std::cout << "all fused/unrolled kernels within " << kRegressionFloor
                << "x of their scalar baselines or better\n";
    }
    const int parity = check_backend_parity();
    if (!parity) {
      std::cout << "all available backends bit-identical to scalar\n";
    }
    if (failures + parity) return 1;
  }
  return 0;
}
