// Micro benchmarks (google-benchmark) for the kernels whose cost structure
// the paper's argument rests on:
//   * index-compressed (sparse) update vs dense full-length update — Fig. 1,
//   * alias vs CDF vs uniform sampling — "IS adds no per-iteration cost",
//   * SharedModel wild vs atomic add under a single writer.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "sampling/alias_table.hpp"
#include "sampling/cdf_sampler.hpp"
#include "sampling/fenwick_sampler.hpp"
#include "solvers/model.hpp"
#include "sparse/kernels.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/rng.hpp"

namespace {

using namespace isasgd;

sparse::SparseVector make_row(std::size_t dim, std::size_t nnz,
                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<sparse::index_t> idx;
  while (idx.size() < nnz) {
    const auto j =
        static_cast<sparse::index_t>(util::uniform_index(rng, dim));
    if (std::find(idx.begin(), idx.end(), j) == idx.end()) idx.push_back(j);
  }
  std::sort(idx.begin(), idx.end());
  std::vector<sparse::value_t> val(nnz);
  for (auto& v : val) v = util::normal_double(rng);
  return sparse::SparseVector(std::move(idx), std::move(val));
}

/// The ASGD inner-loop update: sparse dot + sparse axpy. Cost ~ nnz,
/// independent of d — the "index-compressed" row of Figure 1.
void BM_SparseUpdate(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  const std::size_t nnz = 10;
  const auto row = make_row(dim, nnz, 42);
  std::vector<double> w(dim, 0.1);
  for (auto _ : state) {
    const double margin = sparse::sparse_dot(w, row.view());
    sparse::sparse_axpy(w, -0.5 * margin, row.view());
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * nnz);
}
BENCHMARK(BM_SparseUpdate)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

/// The SVRG inner-loop dense term: one full-length axpy per iteration. Cost
/// ~ d — the dense μ row of Figure 1.
void BM_DenseUpdate(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  std::vector<double> w(dim, 0.1);
  std::vector<double> mu(dim, 0.01);
  for (auto _ : state) {
    sparse::dense_axpy(w, -0.5, mu);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * dim);
}
BENCHMARK(BM_DenseUpdate)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18)->Arg(1 << 22);

void BM_UniformSample(benchmark::State& state) {
  util::Rng rng(7);
  const std::size_t n = 1 << 20;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += util::uniform_index(rng, n);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_UniformSample);

void BM_AliasSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(8);
  std::vector<double> weights(n);
  for (auto& w : weights) w = util::uniform_double(rng) + 0.01;
  sampling::AliasTable table(weights);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += table.sample(rng);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_AliasSample)->Arg(1 << 10)->Arg(1 << 20);

void BM_CdfSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(9);
  std::vector<double> weights(n);
  for (auto& w : weights) w = util::uniform_double(rng) + 0.01;
  sampling::CdfSampler sampler(weights);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += sampler.sample(rng);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_CdfSample)->Arg(1 << 10)->Arg(1 << 20);

void BM_FenwickSample(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(10);
  std::vector<double> weights(n);
  for (auto& w : weights) w = util::uniform_double(rng) + 0.01;
  sampling::FenwickSampler sampler(weights);
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += sampler.sample(rng);
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_FenwickSample)->Arg(1 << 10)->Arg(1 << 20);

void BM_FenwickUpdate(benchmark::State& state) {
  // The adaptive-importance refresh path: one weight change per iteration.
  // Compare against BM_AliasRebuild — the O(n) cost an alias table pays for
  // the same refresh.
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(11);
  std::vector<double> weights(n);
  for (auto& w : weights) w = util::uniform_double(rng) + 0.01;
  sampling::FenwickSampler sampler(weights);
  std::size_t i = 0;
  for (auto _ : state) {
    sampler.set_weight(i, 0.01 + util::uniform_double(rng));
    i = (i + 7919) % n;  // stride over the table
  }
  benchmark::DoNotOptimize(sampler.total());
}
BENCHMARK(BM_FenwickUpdate)->Arg(1 << 10)->Arg(1 << 20);

void BM_AliasRebuild(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(12);
  std::vector<double> weights(n);
  for (auto& w : weights) w = util::uniform_double(rng) + 0.01;
  for (auto _ : state) {
    weights[0] += 0.001;  // any change forces a full rebuild
    sampling::AliasTable table(weights);
    benchmark::DoNotOptimize(table.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AliasRebuild)->Arg(1 << 10)->Arg(1 << 20);

void BM_SharedModelWildAdd(benchmark::State& state) {
  solvers::SharedModel model(1 << 16);
  util::Rng rng(10);
  for (auto _ : state) {
    model.add(util::uniform_index(rng, model.dim()), 0.25,
              solvers::UpdatePolicy::kWild);
  }
}
BENCHMARK(BM_SharedModelWildAdd);

void BM_SharedModelAtomicAdd(benchmark::State& state) {
  solvers::SharedModel model(1 << 16);
  util::Rng rng(11);
  for (auto _ : state) {
    model.add(util::uniform_index(rng, model.dim()), 0.25,
              solvers::UpdatePolicy::kAtomic);
  }
}
BENCHMARK(BM_SharedModelAtomicAdd);

}  // namespace
