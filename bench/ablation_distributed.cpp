// Distributed ablation: the paper's sparsity argument at cluster scale.
//
// Three panels over the simulated cluster (src/distributed/):
//   1. dimension sweep — async sparse-push parameter server vs synchronous
//      dense ring-allreduce SGD: same epochs, simulated seconds. The dense
//      collective pays Θ(d) per round (SVRG-μ economics on the wire), so the
//      async server's advantage grows with d; the bench locates the
//      crossover.
//   2. node sweep — parameter-server IS-ASGD scaling and its emergent
//      staleness (the paper's "τ is linearly related to the concurrency").
//   3. node-level importance balancing — Φ spread across node shards per
//      partition strategy (§2.3/2.4 at node granularity), including the
//      greedy-LPT and Karmarkar–Karp extensions.
//
//   build/bench/ablation_distributed
#include <cstdio>

#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/param_server.hpp"
#include "metrics/evaluator.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_distributed",
                      "Simulated cluster: sparse async push vs dense "
                      "all-reduce, node scaling, node-level balancing");
  cli.add_flag("rows", "4000", "dataset rows");
  cli.add_flag("epochs", "3", "epoch budget");
  cli.add_flag("dims", "1000,10000,100000,1000000", "dimension sweep");
  cli.add_flag("nodes", "2,4,8,16", "node-count sweep");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = 0.5;
  opt.seed = 7;

  // ---- Panel 1: dimension sweep, async-sparse vs sync-dense ----
  std::printf("=== async sparse push vs dense ring all-reduce (4 nodes) ===\n");
  util::TablePrinter dim_table({"dim", "ps_sim_s", "ar_sim_s", "ar/ps",
                                "ar_comm_frac", "ps_rmse", "ar_rmse"});
  for (int dim : cli.get_int_list("dims")) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = static_cast<std::size_t>(dim);
    spec.mean_row_nnz = 10;
    spec.label_noise = 0.02;
    spec.seed = 31;
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 8);
    distributed::ClusterSpec cluster;
    cluster.nodes = 4;
    distributed::ParamServerReport ps_rep;
    distributed::AllreduceReport ar_rep;
    const auto ps = distributed::run_param_server(data, loss, opt, cluster,
                                                  true, ev.as_fn(), &ps_rep);
    auto ar_opt = opt;
    ar_opt.batch_size = 2;
    const auto ar = distributed::run_allreduce_sgd(
        data, loss, ar_opt, cluster, false, ev.as_fn(), &ar_rep);
    dim_table.add_row_values(
        static_cast<double>(dim), ps_rep.simulated_seconds,
        ar_rep.simulated_seconds,
        ar_rep.simulated_seconds / std::max(ps_rep.simulated_seconds, 1e-12),
        ar_rep.comm_fraction, ps.points.back().rmse, ar.points.back().rmse);
  }
  std::printf("%s\n", dim_table.render().c_str());

  // ---- Panel 2: node scaling + emergent staleness ----
  std::printf("=== parameter-server IS-ASGD node scaling ===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = 50000;
    spec.mean_row_nnz = 10;
    spec.label_noise = 0.02;
    spec.seed = 32;
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 8);
    util::TablePrinter node_table(
        {"nodes", "sim_s", "speedup", "staleness", "rmse"});
    double base_seconds = 0;
    for (int nodes : cli.get_int_list("nodes")) {
      distributed::ClusterSpec cluster;
      cluster.nodes = static_cast<std::size_t>(nodes);
      distributed::ParamServerReport rep;
      const auto t = distributed::run_param_server(data, loss, opt, cluster,
                                                   true, ev.as_fn(), &rep);
      if (base_seconds == 0) {
        base_seconds =
            rep.simulated_seconds * static_cast<double>(nodes);
      }
      node_table.add_row_values(
          static_cast<double>(nodes), rep.simulated_seconds,
          base_seconds / static_cast<double>(nodes) /
              std::max(rep.simulated_seconds, 1e-12),
          rep.mean_staleness_updates, t.points.back().rmse);
    }
    std::printf("%s\n", node_table.render().c_str());
  }

  // ---- Panel 3: node-level importance balancing ----
  std::printf("=== node-level importance balancing (8 nodes, skewed L) ===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = 3000;
    spec.dim = 2000;
    spec.mean_row_nnz = 10;
    spec.target_psi = 0.6;  // wide Lipschitz spread: balancing matters
    spec.seed = 33;
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 8);
    util::TablePrinter bal_table({"strategy", "phi_imbalance", "rmse"});
    for (const auto strategy :
         {partition::Strategy::kNone, partition::Strategy::kShuffle,
          partition::Strategy::kHeadTail, partition::Strategy::kGreedyLpt,
          partition::Strategy::kKarmarkarKarp}) {
      distributed::ClusterSpec cluster;
      cluster.nodes = 8;
      auto popt = opt;
      popt.partition.strategy = strategy;
      distributed::ParamServerReport rep;
      const auto t = distributed::run_param_server(data, loss, popt, cluster,
                                                   true, ev.as_fn(), &rep);
      bal_table.add_row_values(partition::strategy_name(strategy),
                               rep.phi_imbalance, t.points.back().rmse);
    }
    std::printf("%s\n", bal_table.render().c_str());
  }

  std::printf(
      "expected shape: panel 1's ar/ps ratio grows with d (the dense "
      "collective is the wire-side SVRG-μ); panel 2's staleness grows "
      "~linearly with nodes while sim time falls near-linearly; panel 3's "
      "Φ spread puts greedy_lpt ≈ karmarkar_karp orders of magnitude below "
      "shuffle/none — while head_tail is *worst* here: Algorithm 3's pairing "
      "only balances pair sums for numT = 2 (the paper's Fig. 2 case); with "
      "more shards the contiguous split hands every globally-heavy sample to "
      "the first shard. See EXPERIMENTS.md §2.3–2.4 notes.\n");
  return 0;
}
