// Distributed ablation: the paper's sparsity argument at cluster scale,
// driven entirely through the unified TrainerBuilder → SolverRegistry path
// (the dist.* solvers; reports via the observer pipeline).
//
// Three panels over the simulated cluster (src/distributed/ + src/sim/):
//   1. dimension sweep — async sparse-push parameter server vs synchronous
//      dense ring-allreduce SGD: same epochs, simulated seconds. The dense
//      collective pays Θ(d) per round (SVRG-μ economics on the wire), so the
//      async server's advantage grows with d; the bench locates the
//      crossover.
//   2. node sweep — parameter-server IS-ASGD scaling and its emergent
//      staleness (the paper's "τ is linearly related to the concurrency").
//   3. node-level importance balancing — Φ spread across node shards per
//      partition strategy (§2.3/2.4 at node granularity), including the
//      greedy-LPT and Karmarkar–Karp extensions.
//
//   build/bench/ablation_distributed [--check] [--out FILE]
//     --out FILE : write the panel numbers as JSON (release CI uploads
//                  BENCH_distributed.json alongside BENCH_kernels.json)
//     --check    : exit non-zero unless the crossover sanity holds under
//                  the fixed default ClusterSpec — the ar/ps simulated-time
//                  ratio must grow with d, and the sparse async server must
//                  win clearly at the top dimension.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/param_server.hpp"
#include "objectives/logistic.hpp"

namespace {

using namespace isasgd;

struct DimPoint {
  std::size_t dim = 0;
  double ps_seconds = 0;
  double ar_seconds = 0;
  double ar_over_ps = 0;
  double ar_comm_fraction = 0;
};

struct NodePoint {
  std::size_t nodes = 0;
  double seconds = 0;
  double staleness = 0;
};

struct BalancePoint {
  std::string strategy;
  double phi_imbalance = 0;
};

void write_json(const std::string& path, const std::vector<DimPoint>& dims,
                const std::vector<NodePoint>& nodes,
                const std::vector<BalancePoint>& balance) {
  std::ofstream out(path);
  out << "{\n  \"dimension_sweep\": [\n";
  for (std::size_t i = 0; i < dims.size(); ++i) {
    const DimPoint& p = dims[i];
    out << "    {\"dim\": " << p.dim << ", \"ps_sim_seconds\": " << p.ps_seconds
        << ", \"ar_sim_seconds\": " << p.ar_seconds
        << ", \"ar_over_ps\": " << p.ar_over_ps
        << ", \"ar_comm_fraction\": " << p.ar_comm_fraction << "}"
        << (i + 1 < dims.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"node_sweep\": [\n";
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const NodePoint& p = nodes[i];
    out << "    {\"nodes\": " << p.nodes << ", \"sim_seconds\": " << p.seconds
        << ", \"mean_staleness\": " << p.staleness << "}"
        << (i + 1 < nodes.size() ? "," : "") << "\n";
  }
  out << "  ],\n  \"balancing\": [\n";
  for (std::size_t i = 0; i < balance.size(); ++i) {
    const BalancePoint& p = balance[i];
    out << "    {\"strategy\": \"" << p.strategy
        << "\", \"phi_imbalance\": " << p.phi_imbalance << "}"
        << (i + 1 < balance.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  std::printf("wrote %s\n", path.c_str());
}

/// The crossover sanity gate behind --check: under the fixed default
/// ClusterSpec the dense collective's disadvantage must widen with d, and
/// the sparse async server must win clearly at the top dimension. Any
/// violation means the cost model (or a solver riding it) regressed.
int check_crossover(const std::vector<DimPoint>& dims) {
  if (dims.empty()) {
    std::fprintf(stderr,
                 "CHECK FAILED: empty dimension sweep — nothing was gated\n");
    return 1;
  }
  int failures = 0;
  for (std::size_t i = 1; i < dims.size(); ++i) {
    if (dims[i].ar_over_ps <= dims[i - 1].ar_over_ps) {
      std::fprintf(stderr,
                   "CHECK FAILED: ar/ps ratio did not grow from d=%zu "
                   "(%.3g) to d=%zu (%.3g)\n",
                   dims[i - 1].dim, dims[i - 1].ar_over_ps, dims[i].dim,
                   dims[i].ar_over_ps);
      ++failures;
    }
  }
  if (dims.back().ar_over_ps < 5.0) {
    std::fprintf(stderr,
                 "CHECK FAILED: at d=%zu the async sparse server should win "
                 "by >= 5x in simulated time (got %.3g)\n",
                 dims.back().dim, dims.back().ar_over_ps);
    ++failures;
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("ablation_distributed",
                      "Simulated cluster: sparse async push vs dense "
                      "all-reduce, node scaling, node-level balancing — all "
                      "through the dist.* registry solvers");
  cli.add_flag("rows", "4000", "dataset rows");
  cli.add_flag("epochs", "3", "epoch budget");
  cli.add_flag("dims", "1000,10000,100000,1000000", "dimension sweep");
  cli.add_flag("nodes", "2,4,8,16", "node-count sweep");
  cli.add_flag("out", "", "also write the panel numbers as JSON to this file");
  cli.add_flag("check", "false",
               "fail unless the ps-vs-allreduce crossover sanity holds");
  if (!cli.parse(argc, argv)) return 0;
  const bool check = cli.get_bool("check");

  objectives::LogisticLoss loss;
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = 0.5;
  opt.seed = 7;

  std::vector<DimPoint> dim_points;
  std::vector<NodePoint> node_points;
  std::vector<BalancePoint> balance_points;

  // ---- Panel 1: dimension sweep, async-sparse vs sync-dense ----
  std::printf("=== async sparse push vs dense ring all-reduce (4 nodes) ===\n");
  util::TablePrinter dim_table({"dim", "ps_sim_s", "ar_sim_s", "ar/ps",
                                "ar_comm_frac", "ps_rmse", "ar_rmse"});
  for (int dim : cli.get_int_list("dims")) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = static_cast<std::size_t>(dim);
    spec.mean_row_nnz = 10;
    spec.label_noise = 0.02;
    spec.seed = 31;
    const auto data = data::generate(spec);
    distributed::ClusterSpec cluster;
    cluster.nodes = 4;
    const core::Trainer trainer = core::TrainerBuilder()
                                      .data(data)
                                      .objective(loss)
                                      .cluster(cluster)
                                      .eval_threads(8)
                                      .build();
    solvers::DiagnosticsCapture<distributed::ParamServerReport> ps_rep;
    const auto ps = trainer.train("dist.ps.is_asgd", opt, &ps_rep);
    auto ar_opt = opt;
    ar_opt.batch_size = 2;
    solvers::DiagnosticsCapture<distributed::AllreduceReport> ar_rep;
    const auto ar = trainer.train("dist.allreduce.sgd", ar_opt, &ar_rep);
    DimPoint p;
    p.dim = static_cast<std::size_t>(dim);
    p.ps_seconds = ps_rep.value().simulated_seconds;
    p.ar_seconds = ar_rep.value().simulated_seconds;
    p.ar_over_ps = p.ar_seconds / std::max(p.ps_seconds, 1e-12);
    p.ar_comm_fraction = ar_rep.value().comm_fraction;
    dim_points.push_back(p);
    dim_table.add_row_values(static_cast<double>(dim), p.ps_seconds,
                             p.ar_seconds, p.ar_over_ps, p.ar_comm_fraction,
                             ps.points.back().rmse, ar.points.back().rmse);
  }
  std::printf("%s\n", dim_table.render().c_str());

  // ---- Panel 2: node scaling + emergent staleness ----
  std::printf("=== parameter-server IS-ASGD node scaling ===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = 50000;
    spec.mean_row_nnz = 10;
    spec.label_noise = 0.02;
    spec.seed = 32;
    const auto data = data::generate(spec);
    util::TablePrinter node_table(
        {"nodes", "sim_s", "speedup", "staleness", "rmse"});
    double base_seconds = 0;
    for (int nodes : cli.get_int_list("nodes")) {
      distributed::ClusterSpec cluster;
      cluster.nodes = static_cast<std::size_t>(nodes);
      const core::Trainer trainer = core::TrainerBuilder()
                                        .data(data)
                                        .objective(loss)
                                        .cluster(cluster)
                                        .eval_threads(8)
                                        .build();
      solvers::DiagnosticsCapture<distributed::ParamServerReport> rep;
      const auto t = trainer.train("dist.ps.is_asgd", opt, &rep);
      if (base_seconds == 0) {
        base_seconds =
            rep.value().simulated_seconds * static_cast<double>(nodes);
      }
      NodePoint p;
      p.nodes = static_cast<std::size_t>(nodes);
      p.seconds = rep.value().simulated_seconds;
      p.staleness = rep.value().mean_staleness_updates;
      node_points.push_back(p);
      node_table.add_row_values(
          static_cast<double>(nodes), p.seconds,
          base_seconds / static_cast<double>(nodes) /
              std::max(p.seconds, 1e-12),
          p.staleness, t.points.back().rmse);
    }
    std::printf("%s\n", node_table.render().c_str());
  }

  // ---- Panel 3: node-level importance balancing ----
  std::printf("=== node-level importance balancing (8 nodes, skewed L) ===\n");
  {
    data::SyntheticSpec spec;
    spec.rows = 3000;
    spec.dim = 2000;
    spec.mean_row_nnz = 10;
    spec.target_psi = 0.6;  // wide Lipschitz spread: balancing matters
    spec.seed = 33;
    const auto data = data::generate(spec);
    util::TablePrinter bal_table({"strategy", "phi_imbalance", "rmse"});
    for (const auto strategy :
         {partition::Strategy::kNone, partition::Strategy::kShuffle,
          partition::Strategy::kHeadTail, partition::Strategy::kGreedyLpt,
          partition::Strategy::kKarmarkarKarp}) {
      distributed::ClusterSpec cluster;
      cluster.nodes = 8;
      const core::Trainer trainer = core::TrainerBuilder()
                                        .data(data)
                                        .objective(loss)
                                        .cluster(cluster)
                                        .eval_threads(8)
                                        .build();
      auto popt = opt;
      popt.partition.strategy = strategy;
      solvers::DiagnosticsCapture<distributed::ParamServerReport> rep;
      const auto t = trainer.train("dist.ps.is_asgd", popt, &rep);
      balance_points.push_back(BalancePoint{partition::strategy_name(strategy),
                                            rep.value().phi_imbalance});
      bal_table.add_row_values(partition::strategy_name(strategy),
                               rep.value().phi_imbalance,
                               t.points.back().rmse);
    }
    std::printf("%s\n", bal_table.render().c_str());
  }

  std::printf(
      "expected shape: panel 1's ar/ps ratio grows with d (the dense "
      "collective is the wire-side SVRG-μ); panel 2's staleness grows "
      "~linearly with nodes while sim time falls near-linearly; panel 3's "
      "Φ spread puts greedy_lpt ≈ karmarkar_karp orders of magnitude below "
      "shuffle/none — while head_tail is *worst* here: Algorithm 3's pairing "
      "only balances pair sums for numT = 2 (the paper's Fig. 2 case); with "
      "more shards the contiguous split hands every globally-heavy sample to "
      "the first shard. See EXPERIMENTS.md §2.3–2.4 notes.\n");

  if (!cli.get("out").empty()) {
    write_json(cli.get("out"), dim_points, node_points, balance_points);
  }
  if (check) {
    const int failures = check_crossover(dim_points);
    if (failures) return 1;
    std::printf(
        "crossover sanity holds: ar/ps grows monotonically in d and the "
        "sparse async server wins >= 5x at d=%zu\n",
        dim_points.back().dim);
  }
  return 0;
}
