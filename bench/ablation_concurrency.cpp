// Ablation for the paper's concurrency-robustness observation (§4.1,
// Fig. 3c): as threads rise, ASGD's convergence quality degrades on denser
// data while IS-ASGD "seems non-effected". Also prints Eq. 27's τ bound next
// to the measured degradation onset.
//
//   build/bench/ablation_concurrency
#include <cstdio>

#include "analysis/bounds.hpp"
#include "analysis/conflict_graph.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "solvers/asgd.hpp"
#include "solvers/is_asgd.hpp"
#include "sparse/inverted_index.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_concurrency",
                      "Thread sweep: ASGD vs IS-ASGD final quality on dense "
                      "vs sparse data (Fig. 3 robustness claim + Eq. 27)");
  cli.add_flag("rows", "8000", "dataset rows");
  cli.add_flag("epochs", "8", "epoch budget");
  cli.add_flag("threads", "1,2,4,8,16", "thread counts to sweep");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;
  struct Regime {
    const char* name;
    std::size_t dim;
    double nnz;
  };
  // Dense regime (News20-like density 1e-2 at this scale) vs sparse regime.
  const Regime regimes[] = {{"dense", 2000, 40}, {"sparse", 60000, 8}};

  for (const Regime& regime : regimes) {
    data::SyntheticSpec spec;
    spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
    spec.dim = regime.dim;
    spec.mean_row_nnz = regime.nnz;
    spec.target_psi = 0.9;
    spec.feature_skew = 1.8;
    spec.seed = 1337;
    const auto data = data::generate(spec);
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 4);
    const auto lip = objectives::per_sample_lipschitz(
        data, loss, objectives::Regularization::none());

    // Eq. 27 context: n/Δ̄.
    const sparse::InvertedIndex index(data);
    const auto conflict =
        analysis::conflict_stats_sampled(data, index, 300, 5);
    std::printf(
        "\n=== %s regime: density=%.2g, avg conflict degree=%.1f, "
        "n/conflict=%.1f (Eq. 27 structural tau bound) ===\n",
        regime.name, data.density(), conflict.average_degree,
        static_cast<double>(data.rows()) /
            std::max(conflict.average_degree, 1e-9));

    util::TablePrinter table({"threads", "ASGD_rmse", "IS-ASGD_rmse",
                              "ASGD_err", "IS-ASGD_err"});
    for (int threads : cli.get_int_list("threads")) {
      solvers::SolverOptions opt;
      opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
      opt.threads = static_cast<std::size_t>(threads);
      opt.step_size = 0.5;
      const auto asgd = run_asgd(data, loss, opt, ev.as_fn());
      const auto is = run_is_asgd(data, loss, opt, ev.as_fn());
      table.add_row_values(static_cast<double>(threads),
                           asgd.points.back().rmse, is.points.back().rmse,
                           asgd.best_error_rate(), is.best_error_rate());
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nexpected shape: in the dense regime ASGD's final RMSE worsens as "
      "threads grow past the Eq. 27 bound while IS-ASGD stays close to its "
      "single-thread quality; in the sparse regime both stay flat "
      "(conflicts are rare).\n");
  return 0;
}
