// Preprocessing ablation: what the data pipeline does to the IS mechanism.
//
// The Eq. 12 distribution is a function of row norms, so preprocessing —
// which the paper never specifies — decides whether importance sampling can
// help at all:
//   1. L2-normalising rows forces ψ = 1, ρ = 0 exactly: IS ≡ uniform.
//      Measured before/after on a skewed analog.
//   2. Feature hashing compresses d by orders of magnitude while leaving
//      row norms (hence ψ, hence the IS story) approximately intact —
//      the practical route for running URL/KDD-scale data at laptop d.
//   3. The regularizer treatment: the subgradient handling (this repo's
//      main solvers, the paper's code base) vs the exact prox of the
//      Zhao–Zhang formulation the paper's analysis actually cites. Prox
//      hard-zeroes coordinates; subgradient L1 never does.
//
//   build/bench/ablation_preprocessing
#include <cstdio>

#include "analysis/bounds.hpp"
#include "bench_common.hpp"
#include "data/synthetic.hpp"
#include "data/transforms.hpp"
#include "metrics/evaluator.hpp"
#include "partition/importance.hpp"
#include "solvers/is_sgd.hpp"
#include "solvers/prox_sgd.hpp"
#include "solvers/sgd.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("ablation_preprocessing",
                      "Row normalisation vs psi, feature hashing vs quality, "
                      "prox vs subgradient L1");
  cli.add_flag("rows", "4000", "dataset rows");
  cli.add_flag("dim", "20000", "raw dimensionality");
  cli.add_flag("epochs", "8", "epoch budget");
  cli.add_flag("psi", "0.8", "target psi of the raw data");
  if (!cli.parse(argc, argv)) return 0;

  objectives::LogisticLoss loss;
  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = 10;
  spec.target_psi = cli.get_double("psi");
  spec.difficulty_coupling = 2.0;
  spec.label_noise = 0.05;
  spec.seed = 777;
  const auto raw = data::generate(spec);

  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = 0.5;
  opt.seed = 7;

  auto run_pair = [&](const sparse::CsrMatrix& data) {
    metrics::Evaluator ev(data, loss, objectives::Regularization::none(), 8);
    const auto sgd = run_sgd(data, loss, opt, ev.as_fn());
    const auto is = run_is_sgd(data, loss, opt, ev.as_fn());
    return std::pair{sgd.best_error_rate(), is.best_error_rate()};
  };
  auto stats = [&](const sparse::CsrMatrix& data) {
    const auto lip = objectives::per_sample_lipschitz(
        data, loss, objectives::Regularization::none());
    return std::pair{analysis::psi(lip),
                     partition::importance_variance(lip)};
  };

  // ---- Panel 1: normalisation deletes the mechanism ----
  std::printf("=== (1) raw vs L2-normalised rows ===\n");
  {
    util::TablePrinter table(
        {"variant", "psi", "rho", "SGD_err", "IS_err", "IS_gain"});
    for (const bool normalize : {false, true}) {
      const auto data = normalize ? data::l2_normalize_rows(raw) : raw;
      const auto [psi, rho] = stats(data);
      const auto [sgd_err, is_err] = run_pair(data);
      table.add_row_values(normalize ? "normalised" : "raw", psi, rho,
                           sgd_err, is_err, sgd_err / std::max(is_err, 1e-9));
    }
    std::printf("%s\n", table.render().c_str());
  }

  // ---- Panel 2: feature hashing preserves the story at a fraction of d ----
  std::printf("=== (2) feature hashing: buckets sweep ===\n");
  {
    util::TablePrinter table({"dim", "psi", "SGD_err", "IS_err"});
    {
      const auto [psi, rho] = stats(raw);
      const auto [sgd_err, is_err] = run_pair(raw);
      table.add_row_values(static_cast<double>(raw.dim()), psi, sgd_err,
                           is_err);
    }
    for (const std::size_t buckets : {4096u, 1024u, 256u}) {
      const auto hashed = data::hash_features(raw, buckets);
      const auto [psi, rho] = stats(hashed);
      const auto [sgd_err, is_err] = run_pair(hashed);
      table.add_row_values(static_cast<double>(buckets), psi, sgd_err,
                           is_err);
    }
    std::printf("%s\n", table.render().c_str());
  }

  // ---- Panel 3: prox vs subgradient L1 ----
  std::printf("=== (3) L1 treatment: prox vs subgradient ===\n");
  {
    util::TablePrinter table(
        {"l1_eta", "sub_err", "prox_err", "sub_zeros", "prox_zeros"});
    for (const double eta : {1e-6, 1e-5, 1e-4}) {
      const auto reg = objectives::Regularization::l1(eta);
      metrics::Evaluator ev(raw, loss, reg, 8);
      auto ropt = opt;
      ropt.reg = reg;
      ropt.keep_final_model = true;
      const auto sub = run_sgd(raw, loss, ropt, ev.as_fn());
      solvers::ProxReport report;
      const auto prox =
          run_prox_sgd(raw, loss, ropt, /*use_importance=*/true, ev.as_fn(),
                       &report);
      std::size_t sub_zeros = 0;
      for (double v : sub.final_model) sub_zeros += v == 0.0;
      std::size_t prox_zeros = 0;
      for (double v : prox.final_model) prox_zeros += v == 0.0;
      table.add_row_values(eta, sub.best_error_rate(),
                           prox.best_error_rate(),
                           static_cast<double>(sub_zeros),
                           static_cast<double>(prox_zeros));
    }
    std::printf("%s\n", table.render().c_str());
  }
  std::printf(
      "expected shape: (1) normalisation forces psi to exactly 1 and rho to "
      "0 — the IS mechanism is deleted by the pipeline (at the paper's "
      "fixed lambda the gain column is ~1 on both rows anyway; see the "
      "EXPERIMENTS.md Fig-3 covariance note — psi/rho are where the effect "
      "is visible); (2) psi survives hashing essentially unchanged (the IS "
      "story is compression-proof) while accuracy pays for collisions as "
      "the budget shrinks below the planted signal's size; (3) prox "
      "zero-counts dominate subgradient's (which only counts never-touched "
      "coordinates), growing with eta at comparable error until the "
      "threshold starts eating signal coordinates.\n");
  return 0;
}
