// Malicious-URL detection scenario (the paper's URL workload): millions of
// lexical features, ~1e-5 density, tight latency budget — the regime where
// ASGD is standard and where the paper observes ASGD's quality degrading
// with concurrency while IS-ASGD stays robust. This example sweeps the
// thread count and prints the robustness comparison.
//
//   build/examples/url_detection [--threads 2,4,8,16]
#include <cstdio>

#include "core/trainer.hpp"
#include "data/paper_datasets.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("url_detection",
                      "URL-style high-dimensional sparse classification: "
                      "concurrency-robustness of IS-ASGD vs ASGD");
  cli.add_flag("threads", "2,4,8,16", "thread counts to sweep");
  cli.add_flag("epochs", "8", "training epochs");
  cli.add_flag("scale", "0.25", "dataset scale");
  if (!cli.parse(argc, argv)) return 0;

  const auto config = data::paper_dataset_config(data::PaperDataset::kUrl,
                                                 cli.get_double("scale"));
  std::printf("generating %s analog (n=%zu, d=%zu, density=%.1e)...\n",
              config.paper_name.c_str(), config.spec.rows, config.spec.dim,
              config.spec.mean_row_nnz / static_cast<double>(config.spec.dim));
  const auto data = data::generate(config.spec);
  objectives::LogisticLoss loss;
  core::Trainer trainer(data, loss, objectives::Regularization::l1(1e-6));

  util::TablePrinter table({"threads", "ASGD_best_err", "IS-ASGD_best_err",
                            "ASGD_rmse", "IS-ASGD_rmse", "IS_train_s"});
  for (int threads : cli.get_int_list("threads")) {
    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.threads = static_cast<std::size_t>(threads);
    opt.step_size = config.lambda;  // 0.05 for URL in the paper
    const auto asgd = trainer.train("ASGD", opt);
    const auto is = trainer.train("IS-ASGD", opt);
    table.add_row_values(static_cast<double>(threads),
                         asgd.best_error_rate(), is.best_error_rate(),
                         asgd.points.back().rmse, is.points.back().rmse,
                         is.train_seconds);
  }
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nreading: if ASGD's error drifts up with the thread count while "
      "IS-ASGD's stays flat, you are seeing Fig. 3c's concurrency "
      "sensitivity.\n");
  return 0;
}
