// Lasso path: sweeping the L1 strength with proximal importance-sampled SGD.
//
// A realistic sparse-model workflow on the public API: train IS-prox-SGD
// (the Zhao–Zhang algorithm the paper's analysis cites) across a grid of L1
// strengths and print the regularisation path — active-coordinate count and
// error at each η. Because the prox hard-zeroes coordinates (unlike the
// subgradient treatment, which oscillates around zero), the path shows
// genuine support shrinkage.
//
//   build/examples/lasso_path
#include <cstdio>

#include "data/synthetic.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"
#include "solvers/prox_sgd.hpp"

int main() {
  using namespace isasgd;

  // A planted-model problem where only a fraction of features matter: the
  // path should find small supports at strong η without losing accuracy
  // until the support drops below the planted signal's size.
  data::SyntheticSpec spec;
  spec.rows = 8'000;
  spec.dim = 4'000;
  spec.mean_row_nnz = 15;
  spec.target_psi = 0.85;
  spec.label_noise = 0.03;
  spec.seed = 12;
  const sparse::CsrMatrix data = data::generate(spec);
  objectives::LogisticLoss loss;
  std::printf("dataset: %s\n\n", data.summary().c_str());

  std::printf("%-10s %-12s %-12s %-12s %-10s\n", "l1_eta", "active", "of_dim",
              "error", "rmse");
  for (const double eta : {0.0, 1e-6, 1e-5, 1e-4, 3e-4, 1e-3}) {
    const auto reg = eta == 0.0 ? objectives::Regularization::none()
                                : objectives::Regularization::l1(eta);
    metrics::Evaluator evaluator(data, loss, reg, 8);
    solvers::SolverOptions options;
    options.epochs = 10;
    options.step_size = 0.5;
    options.seed = 5;
    options.reg = reg;
    options.keep_final_model = true;
    solvers::ProxReport report;
    const solvers::Trace trace = solvers::run_prox_sgd(
        data, loss, options, /*use_importance=*/true, evaluator.as_fn(),
        &report);
    const auto active = static_cast<std::size_t>(
        (1.0 - report.sparsity) * static_cast<double>(data.dim()) + 0.5);
    std::printf("%-10.1e %-12zu %-12.3f %-12.4f %-10.4f\n", eta, active,
                1.0 - report.sparsity, trace.best_error_rate(),
                trace.points.back().rmse);
  }
  std::printf(
      "\nReading: as eta rises the active set shrinks (the prox's soft "
      "threshold removes coordinates exactly); error stays near the "
      "unregularised floor until the support is forced below the planted "
      "signal, then climbs — the classic lasso path, produced by the IS "
      "solver the paper's analysis is built on.\n");
  return 0;
}
