// Delay study: watching asynchrony hurt — and importance sampling resist.
//
// The perturbed-iterate simulator (registry solvers sim.delayed_sgd /
// sim.delayed_is_sgd) makes the staleness τ of asynchronous SGD a
// controlled input instead of a hardware accident: set
// SolverOptions::delay_law / delay_tau and train through the ordinary
// TrainerBuilder facade. This example walks a least-squares problem with
// heavy support overlap through rising τ, printing the final objective for
// uniform sampling (ASGD's serialisation) and Eq. 12 importance sampling
// (IS-ASGD's) side by side, plus the staleness diagnostics the simulator
// publishes through the observer pipeline.
//
//   build/examples/delay_study
#include <cmath>
#include <cstdio>
#include <string>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/least_squares.hpp"
#include "simulate/delayed_sgd.hpp"

int main() {
  using namespace isasgd;

  // Dense-overlap regression: every pair of rows shares coordinates and the
  // label noise keeps the residual positive at the optimum — the regime
  // where stale gradients genuinely destabilise the recursion.
  data::SyntheticSpec spec;
  spec.rows = 1000;
  spec.dim = 50;
  spec.mean_row_nnz = 12;
  spec.smoothness_beta = 1.0;
  spec.mean_lipschitz = 1.0;
  spec.target_psi = 0.85;
  spec.label_noise = 0.1;
  spec.seed = 7;
  const sparse::CsrMatrix data = data::generate(spec);
  objectives::LeastSquaresLoss loss;
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .eval_threads(4)
                                    .build();

  solvers::SolverOptions options;
  options.epochs = 6;
  options.step_size = 0.5;
  options.seed = 11;

  std::printf("dataset: %s\n\n", data.summary().c_str());
  std::printf("%-8s %-12s %-14s %-14s %-12s\n", "tau", "mean-delay",
              "uniform-rmse", "IS-rmse", "in-flight");
  for (std::size_t tau : {0u, 8u, 32u, 128u, 512u}) {
    options.delay_law = tau == 0 ? solvers::SolverOptions::DelayLaw::kNone
                                 : solvers::SolverOptions::DelayLaw::kFixed;
    options.delay_tau = tau;
    solvers::DiagnosticsCapture<simulate::DelayReport> uniform_report;
    const solvers::Trace uniform =
        trainer.train("sim.delayed_sgd", options, &uniform_report);
    const solvers::Trace is = trainer.train("sim.delayed_is_sgd", options);
    const double u = uniform.points.back().rmse;
    const double i = is.points.back().rmse;
    std::printf("%-8zu %-12.1f %-14s %-14s %-12zu\n", tau,
                uniform_report.value().mean_applied_delay,
                std::isfinite(u) ? std::to_string(u).c_str() : "diverged",
                std::isfinite(i) ? std::to_string(i).c_str() : "diverged",
                uniform_report.value().max_in_flight);
  }
  std::printf(
      "\nReading: both columns match serial SGD at tau=0, drift as tau "
      "grows, and blow up past the stability threshold — with the IS column "
      "holding on longer because the 1/(n*p_i) weights shrink exactly the "
      "heavy (large-L) samples' steps. This is Fig. 3c's concurrency story "
      "with the delay made explicit.\n");
  return 0;
}
