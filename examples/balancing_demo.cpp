// Importance balancing walk-through — reproduces the paper's Figure-2
// example exactly ({L1..L4} = {1,2,3,4} over two workers), then shows the
// same machinery on a realistically skewed dataset.
//
//   build/examples/balancing_demo
#include <cstdio>

#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "partition/balancer.hpp"
#include "partition/importance.hpp"
#include "partition/partition.hpp"
#include "util/table.hpp"

int main() {
  using namespace isasgd;

  // ---- The paper's Figure-2 example ----
  std::printf("=== Figure 2 example: L = {1,2,3,4}, two workers ===\n\n");
  const std::vector<double> lip = {1, 2, 3, 4};

  // Raw segmentation: worker 0 gets {x1,x2}, worker 1 gets {x3,x4}.
  {
    const std::vector<std::uint32_t> assign = {0, 0, 1, 1};
    const auto phi = partition::partition_importance(lip, assign, 2);
    std::printf("raw split:       Phi = {%.0f, %.0f}", phi[0], phi[1]);
    std::printf("  worst sampling distortion = %.2f\n",
                partition::sampling_distortion(lip, assign, 2));
    std::printf(
        "  (globally p4 = 0.4 is twice p2 = 0.2; locally x4 gets %.2f — the "
        "paper's 'heavy distortion')\n\n",
        (4.0 / 7.0) / 2.0);
  }

  // Algorithm 3: head-tail balancing.
  {
    const auto order = partition::head_tail_balance(lip);
    std::printf("head-tail order: {");
    for (std::size_t k = 0; k < order.size(); ++k) {
      std::printf("%sx%u", k ? ", " : "", order[k] + 1);
    }
    std::printf("}  (paper: x1,x4 | x3,x2 up to pair order)\n");
    std::vector<std::uint32_t> assign(4);
    std::vector<double> reordered;
    for (std::size_t k = 0; k < order.size(); ++k) {
      assign[order[k]] = static_cast<std::uint32_t>(k / 2);
      reordered.push_back(lip[order[k]]);
    }
    const std::vector<std::uint32_t> block_assign = {0, 0, 1, 1};
    const auto phi =
        partition::partition_importance(reordered, block_assign, 2);
    std::printf("balanced split:  Phi = {%.0f, %.0f}", phi[0], phi[1]);
    std::printf("  worst sampling distortion = %.2f  (Eq. 19 satisfied)\n\n",
                partition::sampling_distortion(lip, assign, 2));
  }

  // ---- A realistic skewed dataset ----
  std::printf("=== Skewed dataset (psi = 0.85), 8 workers ===\n\n");
  data::SyntheticSpec spec;
  spec.rows = 20'000;
  spec.dim = 2'000;
  spec.target_psi = 0.85;
  spec.seed = 31415;
  const auto data = data::generate(spec);
  objectives::LogisticLoss loss;
  const auto big_lip = objectives::per_sample_lipschitz(
      data, loss, objectives::Regularization::none());
  std::printf("rho (Eq. 20) = %.3e; zeta = 5e-4 -> %s\n\n",
              partition::importance_variance(big_lip),
              partition::importance_variance(big_lip) >= 5e-4
                  ? "importance balancing"
                  : "random shuffling suffices");

  util::TablePrinter table({"strategy", "phi_spread", "worst_distortion"});
  for (auto strategy :
       {partition::Strategy::kNone, partition::Strategy::kShuffle,
        partition::Strategy::kHeadTail, partition::Strategy::kGreedyLpt}) {
    partition::PartitionOptions opt;
    opt.strategy = strategy;
    partition::PartitionPlan plan(big_lip, 8, opt);
    std::vector<std::uint32_t> assign(big_lip.size());
    for (std::size_t tid = 0; tid < 8; ++tid) {
      for (auto row : plan.shard(tid).rows) {
        assign[row] = static_cast<std::uint32_t>(tid);
      }
    }
    table.add_row_values(
        partition::strategy_name(strategy), plan.imbalance(),
        partition::sampling_distortion(big_lip, assign, 8));
  }
  std::printf("%s", table.render().c_str());
  return 0;
}
