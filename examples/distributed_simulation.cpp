// Distributed simulation: IS-ASGD on a (simulated) cluster, through the
// unified solver architecture.
//
// The paper's story for "cores/nodes" at node scale: shard the dataset
// across parameter-server workers with importance balancing (§2.3–2.4),
// sample each shard by the local Eq. 12 law, and push index-compressed
// sparse updates asynchronously. The ClusterSpec — configured once on the
// TrainerBuilder — prices compute, latency and bandwidth, so the printed
// times are simulated cluster seconds, comparable across algorithms
// without owning a cluster.
//
// The example contrasts three registry solvers on the same
// high-dimensional sparse dataset:
//   1. dist.ps.is_asgd    parameter-server IS-ASGD (balanced shards,
//                         sparse async pushes),
//   2. dist.ps.asgd       parameter-server ASGD (uniform sampling — the
//                         async baseline),
//   3. dist.allreduce.sgd synchronous all-reduce SGD (dense collectives —
//                         the wire-side equivalent of SVRG's dense μ,
//                         paper §1.2).
// Typed reports arrive through the TrainingObserver pipeline
// (DiagnosticsCapture), exactly like the serial solvers' diagnostics.
//
//   build/examples/distributed_simulation
#include <cstdio>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/param_server.hpp"
#include "objectives/logistic.hpp"

int main() {
  using namespace isasgd;

  data::SyntheticSpec spec;
  spec.rows = 6'000;
  spec.dim = 200'000;  // high-dimensional & sparse: the regime ASGD owns
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.85;
  spec.label_noise = 0.03;
  spec.seed = 21;
  const sparse::CsrMatrix data = data::generate(spec);
  objectives::LogisticLoss loss;
  std::printf("dataset: %s\n", data.summary().c_str());

  distributed::ClusterSpec cluster;  // 10 GbE, 50 us latency, 4 nodes
  cluster.nodes = 4;
  std::printf(
      "cluster: %zu nodes, %.0f us latency, %.1f GB/s links, window %zu\n\n",
      cluster.nodes, cluster.latency_seconds * 1e6,
      cluster.bandwidth_bytes_per_second / 1e9,
      cluster.max_outstanding_pushes);

  // One builder wires dataset + objective + cluster; every dist.* solver is
  // then a registry name away.
  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .cluster(cluster)
                                    .eval_threads(8)
                                    .build();

  solvers::SolverOptions options;
  options.epochs = 4;
  options.step_size = 0.5;
  options.seed = 3;
  options.partition.strategy = partition::Strategy::kGreedyLpt;

  solvers::DiagnosticsCapture<distributed::ParamServerReport> is_report;
  const solvers::Trace is = trainer.train("dist.ps.is_asgd", options, &is_report);

  solvers::DiagnosticsCapture<distributed::ParamServerReport> asgd_report;
  const solvers::Trace asgd =
      trainer.train("dist.ps.asgd", options, &asgd_report);

  auto ar_options = options;
  ar_options.batch_size = 2;
  solvers::DiagnosticsCapture<distributed::AllreduceReport> ar_report;
  const solvers::Trace ar =
      trainer.train("dist.allreduce.sgd", ar_options, &ar_report);

  std::printf("%-18s %-14s %-12s %-12s %s\n", "algorithm", "sim-seconds",
              "final-rmse", "best-err", "notes");
  std::printf(
      "%-18s %-14.4f %-12.4f %-12.4f staleness %.1f, shard Phi spread %.4f\n",
      is.algorithm.c_str(), is_report.value().simulated_seconds,
      is.points.back().rmse, is.best_error_rate(),
      is_report.value().mean_staleness_updates,
      is_report.value().phi_imbalance);
  std::printf("%-18s %-14.4f %-12.4f %-12.4f staleness %.1f\n",
              asgd.algorithm.c_str(), asgd_report.value().simulated_seconds,
              asgd.points.back().rmse, asgd.best_error_rate(),
              asgd_report.value().mean_staleness_updates);
  std::printf(
      "%-18s %-14.4f %-12.4f %-12.4f %.0f%% of time in the dense collective\n",
      ar.algorithm.c_str(), ar_report.value().simulated_seconds,
      ar.points.back().rmse, ar.best_error_rate(),
      100 * ar_report.value().comm_fraction);

  std::printf(
      "\nReading: the two async runs finish orders of magnitude sooner in "
      "simulated time because each update ships ~%zu bytes while every "
      "all-reduce round ships %.1f MB per node (d = %zu dense coordinates) — "
      "the paper's index-compression argument, priced on the wire.\n",
      10 * cluster.bytes_per_nnz,
      ar_report.value().bytes_per_node_per_round / 1e6, data.dim());
  return is_report.has_value() && asgd_report.has_value() &&
                 ar_report.has_value()
             ? 0
             : 1;
}
