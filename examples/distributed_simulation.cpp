// Distributed simulation: IS-ASGD on a (simulated) cluster.
//
// The paper's story for "cores/nodes" at node scale: shard the dataset
// across parameter-server workers with importance balancing (§2.3–2.4),
// sample each shard by the local Eq. 12 law, and push index-compressed
// sparse updates asynchronously. The ClusterSpec prices compute, latency
// and bandwidth, so the printed times are simulated cluster seconds —
// comparable across algorithms without owning a cluster.
//
// The example contrasts three runs on the same high-dimensional sparse
// dataset:
//   1. parameter-server IS-ASGD (balanced shards, sparse async pushes),
//   2. parameter-server ASGD (uniform sampling — the async baseline),
//   3. synchronous all-reduce SGD (dense collectives — the wire-side
//      equivalent of SVRG's dense μ, paper §1.2).
//
//   build/examples/distributed_simulation
#include <cstdio>

#include "data/synthetic.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/param_server.hpp"
#include "metrics/evaluator.hpp"
#include "objectives/logistic.hpp"

int main() {
  using namespace isasgd;

  data::SyntheticSpec spec;
  spec.rows = 6'000;
  spec.dim = 200'000;  // high-dimensional & sparse: the regime ASGD owns
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.85;
  spec.label_noise = 0.03;
  spec.seed = 21;
  const sparse::CsrMatrix data = data::generate(spec);
  objectives::LogisticLoss loss;
  metrics::Evaluator evaluator(data, loss, objectives::Regularization::none(),
                               8);
  std::printf("dataset: %s\n", data.summary().c_str());

  distributed::ClusterSpec cluster;  // 10 GbE, 50 us latency, 4 nodes
  cluster.nodes = 4;
  std::printf(
      "cluster: %zu nodes, %.0f us latency, %.1f GB/s links, window %zu\n\n",
      cluster.nodes, cluster.latency_seconds * 1e6,
      cluster.bandwidth_bytes_per_second / 1e9,
      cluster.max_outstanding_pushes);

  solvers::SolverOptions options;
  options.epochs = 4;
  options.step_size = 0.5;
  options.seed = 3;
  options.partition.strategy = partition::Strategy::kGreedyLpt;

  distributed::ParamServerReport is_report;
  const solvers::Trace is = distributed::run_param_server(
      data, loss, options, cluster, /*use_importance=*/true,
      evaluator.as_fn(), &is_report);

  distributed::ParamServerReport asgd_report;
  const solvers::Trace asgd = distributed::run_param_server(
      data, loss, options, cluster, /*use_importance=*/false,
      evaluator.as_fn(), &asgd_report);

  auto ar_options = options;
  ar_options.batch_size = 2;
  distributed::AllreduceReport ar_report;
  const solvers::Trace ar = distributed::run_allreduce_sgd(
      data, loss, ar_options, cluster, /*use_importance=*/false,
      evaluator.as_fn(), &ar_report);

  std::printf("%-18s %-14s %-12s %-12s %s\n", "algorithm", "sim-seconds",
              "final-rmse", "best-err", "notes");
  std::printf("%-18s %-14.4f %-12.4f %-12.4f staleness %.1f, shard Phi spread %.4f\n",
              is.algorithm.c_str(), is_report.simulated_seconds,
              is.points.back().rmse, is.best_error_rate(),
              is_report.mean_staleness_updates, is_report.phi_imbalance);
  std::printf("%-18s %-14.4f %-12.4f %-12.4f staleness %.1f\n",
              asgd.algorithm.c_str(), asgd_report.simulated_seconds,
              asgd.points.back().rmse, asgd.best_error_rate(),
              asgd_report.mean_staleness_updates);
  std::printf("%-18s %-14.4f %-12.4f %-12.4f %.0f%% of time in the dense collective\n",
              ar.algorithm.c_str(), ar_report.simulated_seconds,
              ar.points.back().rmse, ar.best_error_rate(),
              100 * ar_report.comm_fraction);

  std::printf(
      "\nReading: the two async runs finish orders of magnitude sooner in "
      "simulated time because each update ships ~%zu bytes while every "
      "all-reduce round ships %.1f MB per node (d = %zu dense coordinates) — "
      "the paper's index-compression argument, priced on the wire.\n",
      10 * cluster.bytes_per_nnz, ar_report.bytes_per_node_per_round / 1e6,
      data.dim());
  return 0;
}
