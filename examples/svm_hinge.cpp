// L2-regularized squared-hinge SVM — the paper's worked IS example (Eq. 16).
// Compares the two importance definitions the library supports:
// smoothness-based (Eq. 12) and gradient-norm-bound-based (Eq. 16).
//
//   build/examples/svm_hinge
#include <cstdio>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/squared_hinge.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("svm_hinge",
                      "Squared-hinge SVM with Eq. 12 vs Eq. 16 importance");
  cli.add_flag("rows", "15000", "dataset rows");
  cli.add_flag("dim", "5000", "dimensionality");
  cli.add_flag("epochs", "8", "training epochs");
  cli.add_flag("lambda-reg", "1e-3", "L2 regularization factor (Eq. 16's λ)");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = 15;
  spec.target_psi = 0.88;
  spec.smoothness_beta = 2.0;  // squared hinge
  spec.mean_lipschitz = 0.6;
  spec.seed = 2718;
  const auto data = data::generate(spec);
  std::printf("dataset: %s\n", data.summary().c_str());

  objectives::SquaredHingeLoss loss;
  const auto reg =
      objectives::Regularization::l2(cli.get_double("lambda-reg"));
  core::Trainer trainer(data, loss, reg);

  util::TablePrinter table(
      {"run", "importance", "final_rmse", "best_error", "train_s"});
  for (auto importance : {solvers::ImportanceKind::kLipschitz,
                          solvers::ImportanceKind::kGradientBound}) {
    solvers::SolverOptions opt;
    opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
    opt.threads = 8;
    opt.step_size = 0.1;
    opt.importance = importance;
    const auto trace = trainer.train("IS-ASGD", opt);
    table.add_row_values(
        "IS-ASGD",
        importance == solvers::ImportanceKind::kLipschitz
            ? "Eq.12 smoothness"
            : "Eq.16 gradient bound",
        trace.points.back().rmse, trace.best_error_rate(),
        trace.train_seconds);
  }
  // Uniform baseline for reference.
  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.threads = 8;
  opt.step_size = 0.1;
  const auto asgd = trainer.train("ASGD", opt);
  table.add_row_values("ASGD", "uniform", asgd.points.back().rmse,
                       asgd.best_error_rate(), asgd.train_seconds);
  std::printf("\n%s", table.render().c_str());
  std::printf(
      "\nboth importance definitions weight samples by (scaled) row norms; "
      "Eq. 16 additionally folds in the regularizer's λ, matching the "
      "paper's SVM example.\n");
  return 0;
}
