// Command-line trainer for real LibSVM files — for users who have actual
// copies of News20/URL/KDD (or any binary-classification LibSVM dataset).
//
//   build/examples/libsvm_train --file news20.binary --algorithm is_asgd \
//       --threads 16 --epochs 15 --lambda 0.5
#include <cstdio>

#include "core/trainer.hpp"
#include "io/binary.hpp"
#include "io/libsvm.hpp"
#include "objectives/objective.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("libsvm_train",
                      "Train any registered solver on a LibSVM file");
  cli.add_flag("file", "", "path to the LibSVM dataset (required)");
  cli.add_flag("algorithm", "is_asgd",
               "registry name of the solver (see --list-solvers)");
  cli.add_flag("list-solvers", "0", "print the registered solvers and exit");
  cli.add_flag("objective", "logistic",
               "logistic|squared_hinge|least_squares");
  cli.add_flag("reg", "l1", "none|l1|l2");
  cli.add_flag("eta", "1e-6", "regularization factor");
  cli.add_flag("lambda", "0.5", "step size");
  cli.add_flag("epochs", "15", "training epochs");
  cli.add_flag("threads", "8", "worker threads (async solvers)");
  cli.add_flag("max-rows", "0", "subsample the file to this many rows (0 = all)");
  cli.add_flag("seed", "7", "RNG seed");
  cli.add_flag("save-model", "", "write the trained model to this file (binary)");
  cli.add_flag("eval-model", "",
               "skip training; load this model file and just score it");
  if (!cli.parse(argc, argv)) return 0;

  if (cli.get_int("list-solvers") != 0) {
    for (const std::string& name :
         solvers::SolverRegistry::instance().list()) {
      std::printf("%s\n", name.c_str());
    }
    return 0;
  }

  const std::string path = cli.get("file");
  if (path.empty()) {
    std::fprintf(stderr, "error: --file is required\n%s", cli.usage().c_str());
    return 1;
  }
  io::LibsvmReadOptions read_opts;
  read_opts.max_rows = static_cast<std::size_t>(cli.get_i64("max-rows"));
  std::printf("reading %s...\n", path.c_str());
  const auto data = io::read_libsvm_file(path, read_opts);
  std::printf("dataset: %s\n", data.summary().c_str());

  const auto objective = objectives::make_objective(cli.get("objective"));
  objectives::Regularization reg = objectives::Regularization::none();
  if (cli.get("reg") == "l1") {
    reg = objectives::Regularization::l1(cli.get_double("eta"));
  } else if (cli.get("reg") == "l2") {
    reg = objectives::Regularization::l2(cli.get_double("eta"));
  } else if (cli.get("reg") != "none") {
    std::fprintf(stderr, "error: unknown --reg '%s'\n", cli.get("reg").c_str());
    return 1;
  }

  core::Trainer trainer(data, *objective, reg);

  if (const std::string model_path = cli.get("eval-model");
      !model_path.empty()) {
    std::vector<double> w = io::read_model_binary_file(model_path);
    if (w.size() < data.dim()) w.resize(data.dim(), 0.0);
    const auto r = trainer.evaluate(w);
    std::printf("model %s on %s: objective %.6f rmse %.4f error %.4f\n",
                model_path.c_str(), path.c_str(), r.objective, r.rmse,
                r.error_rate);
    return 0;
  }

  solvers::SolverOptions opt;
  opt.step_size = cli.get_double("lambda");
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.threads = static_cast<std::size_t>(cli.get_int("threads"));
  opt.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  opt.keep_final_model = !cli.get("save-model").empty();

  solvers::Trace trace;
  try {
    trace = trainer.train(cli.get("algorithm"), opt);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("\n%-6s %-10s %-10s %-10s\n", "epoch", "seconds", "rmse",
              "error");
  for (const auto& p : trace.points) {
    std::printf("%-6zu %-10.3f %-10.4f %-10.4f\n", p.epoch, p.seconds, p.rmse,
                p.error_rate);
  }
  std::printf("\n%s: train %.3fs (+%.3fs setup), best error %.4f\n",
              trace.algorithm.c_str(), trace.train_seconds,
              trace.setup_seconds, trace.best_error_rate());
  if (const std::string out = cli.get("save-model"); !out.empty()) {
    io::write_model_binary_file(out, trace.final_model);
    std::printf("model written to %s (%zu weights)\n", out.c_str(),
                trace.final_model.size());
  }
  return 0;
}
