// The training daemon, its client, and a self-contained demo — the CLI face
// of src/service/.
//
// Serve (blocks until a `shutdown` command arrives):
//   build/examples/serve_train --mode serve --socket /tmp/isasgd.sock \
//       --max-concurrent 2 --mem-budget-mb 512 --log daemon.log
//
// One protocol round-trip as a client (response line goes to stdout; exit
// status 1 on an `err` response):
//   build/examples/serve_train --mode send --socket /tmp/isasgd.sock \
//       --cmd "submit solver=is_sgd data=train.libsvm epochs=8 ckpt=j1.ckpt"
//   build/examples/serve_train --mode send --socket /tmp/isasgd.sock \
//       --cmd "wait id=1"
//
// Generate a small synthetic LibSVM file (for smoke tests and demos):
//   build/examples/serve_train --mode gen --out train.libsvm --rows 512
//
// In-process demo (no socket): runs two concurrent jobs on one shared pool
// and prints their final statuses:
//   build/examples/serve_train --mode demo
#include <cstdio>
#include <fstream>

#include "data/synthetic.hpp"
#include "io/libsvm.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/training_service.hpp"
#include "util/cli.hpp"
#include "util/logging.hpp"

namespace {

using namespace isasgd;

int run_serve(const util::CliParser& cli) {
  // Redirect the library's log stream into a file so the daemon can run
  // detached and the CI job can upload the log on failure.
  std::ofstream log_file;
  const std::string log_path = cli.get("log");
  if (!log_path.empty()) {
    log_file.open(log_path, std::ios::app);
    if (!log_file) {
      std::fprintf(stderr, "error: cannot open log file '%s'\n",
                   log_path.c_str());
      return 1;
    }
    util::set_log_sink([&log_file](util::LogLevel level,
                                   const std::string& message) {
      log_file << "[" << util::log_level_name(level) << "] " << message
               << "\n";
      log_file.flush();
    });
  }

  service::TrainingService::Options options;
  options.max_concurrent = static_cast<std::size_t>(
      cli.get_int("max-concurrent"));
  options.memory_budget_bytes =
      static_cast<std::size_t>(cli.get_i64("mem-budget-mb")) << 20;
  options.eval_threads = static_cast<std::size_t>(cli.get_int("eval-threads"));
  service::TrainingService svc(options);
  service::ProtocolHandler handler(svc);
  service::SocketServer server(cli.get("socket"), handler);
  std::printf("serving on %s (max_concurrent=%zu, budget=%zu MiB)\n",
              server.socket_path().c_str(), options.max_concurrent,
              options.memory_budget_bytes >> 20);
  std::fflush(stdout);
  server.run();
  svc.wait_all();
  util::set_log_sink({});
  return 0;
}

int run_send(const util::CliParser& cli) {
  const std::string cmd = cli.get("cmd");
  if (cmd.empty()) {
    std::fprintf(stderr, "error: --cmd is required for --mode send\n");
    return 1;
  }
  const std::string response = service::send_command(cli.get("socket"), cmd);
  std::printf("%s\n", response.c_str());
  return response.rfind("err", 0) == 0 ? 1 : 0;
}

int run_gen(const util::CliParser& cli) {
  const std::string out = cli.get("out");
  if (out.empty()) {
    std::fprintf(stderr, "error: --out is required for --mode gen\n");
    return 1;
  }
  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_i64("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_i64("dim"));
  spec.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  const sparse::CsrMatrix data = data::generate(spec);
  io::write_libsvm_file(out, data);
  std::printf("wrote %s: %s\n", out.c_str(), data.summary().c_str());
  return 0;
}

int run_demo() {
  data::SyntheticSpec spec;
  spec.rows = 512;
  spec.dim = 64;
  const auto matrix =
      std::make_shared<const sparse::CsrMatrix>(data::generate(spec));

  service::TrainingService svc(
      {.max_concurrent = 2, .memory_budget_bytes = std::size_t{64} << 20});
  service::JobSpec job;
  job.matrix = matrix;
  job.objective = "logistic";
  job.options.epochs = 6;
  job.options.threads = 2;

  job.solver = "sgd";
  const std::uint64_t a = svc.submit(job);
  job.solver = "is_sgd";
  const std::uint64_t b = svc.submit(job);
  svc.wait_all();

  for (const std::uint64_t id : {a, b}) {
    std::printf("%s\n", service::format_status(svc.status(id)).c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("serve_train",
                      "Multi-tenant training daemon, client, and demo");
  cli.add_flag("mode", "demo", "serve|send|gen|demo");
  cli.add_flag("socket", "/tmp/isasgd.sock", "AF_UNIX socket path");
  cli.add_flag("cmd", "", "protocol line to send (mode send)");
  cli.add_flag("max-concurrent", "2", "jobs inside epochs at once (serve)");
  cli.add_flag("mem-budget-mb", "512", "admission memory budget (serve)");
  cli.add_flag("eval-threads", "1", "snapshot-scoring threads (serve)");
  cli.add_flag("log", "", "redirect library logs to this file (serve)");
  cli.add_flag("out", "", "output LibSVM path (mode gen)");
  cli.add_flag("rows", "512", "synthetic rows (gen)");
  cli.add_flag("dim", "64", "synthetic dim (gen)");
  cli.add_flag("seed", "7", "synthetic seed (gen)");
  if (!cli.parse(argc, argv)) return 0;

  try {
    const std::string mode = cli.get("mode");
    if (mode == "serve") return run_serve(cli);
    if (mode == "send") return run_send(cli);
    if (mode == "gen") return run_gen(cli);
    if (mode == "demo") return run_demo();
    std::fprintf(stderr, "error: unknown --mode '%s'\n%s", mode.c_str(),
                 cli.usage().c_str());
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
