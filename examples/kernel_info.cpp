// Host introspection for the runtime kernel dispatch and NUMA placement:
// prints the detected ISA backends, which one dispatch resolved, the node
// topology, and the model stripe / shard→node maps a training run of the
// requested geometry would use.
//
//   build/examples/kernel_info [--dim N] [--shards K]
//
// The selection honours ISASGD_KERNEL_BACKEND=scalar|avx2|avx512, so
//
//   ISASGD_KERNEL_BACKEND=scalar build/examples/kernel_info
//
// shows the override taking effect.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/numa.hpp"
#include "sparse/dispatch.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  namespace k = sparse::kernels;

  std::size_t dim = 1u << 20;
  std::size_t shards = 4;
  for (int a = 1; a < argc; ++a) {
    if (!std::strcmp(argv[a], "--dim") && a + 1 < argc) {
      dim = std::strtoull(argv[++a], nullptr, 10);
    } else if (!std::strcmp(argv[a], "--shards") && a + 1 < argc) {
      shards = std::strtoull(argv[++a], nullptr, 10);
    } else {
      std::fprintf(stderr, "usage: %s [--dim N] [--shards K]\n", argv[0]);
      return 2;
    }
  }

  std::printf("=== Kernel backends ===\n");
  for (k::Backend b : {k::Backend::kScalar, k::Backend::kAvx2,
                       k::Backend::kAvx512}) {
    std::printf("  %-7s compiled=%s cpu=%s%s\n",
                k::backend_name(b).c_str(), k::compiled(b) ? "yes" : "no",
                k::cpu_supports(b) ? "yes" : "no",
                k::available(b) ? "  [selectable]" : "");
  }
  const char* env = std::getenv("ISASGD_KERNEL_BACKEND");
  std::printf("  ISASGD_KERNEL_BACKEND=%s\n", env ? env : "(unset)");
  std::printf("  active: %s\n\n", k::backend_name(k::active_backend()).c_str());

  std::printf("=== NUMA topology ===\n");
  const core::NumaTopology topo = core::NumaTopology::detect();
  for (const core::NumaNode& node : topo.nodes) {
    std::printf("  node%d: %zu cpus [", node.id, node.cpus.size());
    for (std::size_t i = 0; i < node.cpus.size(); ++i) {
      std::printf("%s%d", i ? "," : "", node.cpus[i]);
    }
    std::printf("]\n");
  }
  const core::NumaPolicy policy{core::NumaOptions{}, topo};
  std::printf("  %s\n\n", policy.describe().c_str());

  std::printf("=== Placement plan (dim=%zu, %zu shards, uniform mass) ===\n",
              dim, shards);
  // kOn instead of kAuto so the stripe/shard maps print even on the
  // single-node boxes this introspection is most often run from.
  const core::NumaPolicy forced{
      core::NumaOptions{core::NumaOptions::Mode::kOn}, topo};
  const std::vector<double> phis(shards, 1.0);
  const core::NumaPlacement plan = core::plan_placement(&forced, phis, dim);
  std::printf("  %s\n", plan.describe().c_str());
  const std::vector<int> cpus = core::worker_cpu_plan(plan, shards);
  std::printf("  worker pins: [");
  for (std::size_t t = 0; t < cpus.size(); ++t) {
    std::printf("%s%d", t ? "," : "", cpus[t]);
  }
  std::printf("]\n");
  std::printf("  (auto mode would be %s on this host)\n",
              policy.active() ? "ACTIVE" : "inactive");
  return 0;
}
