// Quickstart: the five-minute tour of the public API.
//
//   1. generate (or load) a sparse classification dataset,
//   2. pick an objective + regularizer,
//   3. build a core::Trainer with TrainerBuilder,
//   4. train by solver name ("is_asgd") with a TrainingObserver watching
//      per-epoch progress and collecting the partition diagnostics,
//   5. read the convergence trace.
//
//   build/examples/quickstart
#include <any>
#include <cmath>
#include <cstdio>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"
#include "solvers/is_asgd.hpp"

namespace {

/// Observes the run: prints one line per epoch and captures the IS-ASGD
/// partition diagnostics published through the observer pipeline.
class ProgressObserver final : public isasgd::solvers::TrainingObserver {
 public:
  void on_train_begin(const std::string& solver_name,
                      const isasgd::solvers::SolverOptions& options) override {
    std::printf("training %s: %zu epochs, %zu threads\n", solver_name.c_str(),
                options.epochs, options.threads);
    std::printf("%-6s %-10s %-10s %-10s\n", "epoch", "seconds", "rmse",
                "error");
  }

  bool on_epoch(const isasgd::solvers::TracePoint& p) override {
    std::printf("%-6zu %-10.3f %-10.4f %-10.4f\n", p.epoch, p.seconds, p.rmse,
                p.error_rate);
    return true;  // return false here to stop the run early
  }

  void on_diagnostics(const std::any& diagnostics) override {
    if (const auto* r =
            std::any_cast<isasgd::solvers::IsAsgdReport>(&diagnostics)) {
      report = *r;
      have_report = true;
    }
  }

  isasgd::solvers::IsAsgdReport report;
  bool have_report = false;
};

}  // namespace

int main() {
  using namespace isasgd;

  // 1. A synthetic sparse dataset: 20k samples, 10k features, ~12 nnz/row,
  //    with a skewed importance distribution (ψ = 0.9) so importance
  //    sampling has something to exploit.
  data::SyntheticSpec spec;
  spec.rows = 20'000;
  spec.dim = 10'000;
  spec.mean_row_nnz = 12;
  spec.target_psi = 0.9;
  spec.seed = 42;
  const sparse::CsrMatrix data = data::generate(spec);
  std::printf("dataset: %s\n", data.summary().c_str());

  // 2. L1-regularized logistic regression — the objective the IS-ASGD paper
  //    evaluates.
  objectives::LogisticLoss loss;

  // 3. Build the Trainer. The builder wires the dataset + objective +
  //    regularizer; any solver in the SolverRegistry is then one string away.
  const core::Trainer trainer =
      core::TrainerBuilder().data(data).objective(loss).l1(1e-6).build();

  std::printf("registered solvers:");
  for (const std::string& name : solvers::SolverRegistry::instance().list()) {
    std::printf(" %s", name.c_str());
  }
  std::printf("\n");

  // 4. Train IS-ASGD — the paper's contribution — by name, with an observer
  //    streaming progress and collecting the partition diagnostics.
  solvers::SolverOptions options;
  options.epochs = 10;
  options.threads = 8;
  options.step_size = 0.5;
  ProgressObserver observer;
  const solvers::Trace trace = trainer.train("is_asgd", options, &observer);

  // 5. Inspect the run.
  if (observer.have_report) {
    std::printf(
        "partitioning: rho=%.2e -> %s strategy, shard importance spread "
        "%.3f\n",
        observer.report.rho,
        partition::strategy_name(observer.report.applied_strategy).c_str(),
        observer.report.phi_imbalance);
  }
  std::printf("setup %.3fs, training %.3fs across %zu threads\n",
              trace.setup_seconds, trace.train_seconds, trace.threads);
  std::printf("best error rate: %.4f\n", trace.best_error_rate());

  // Appendix: registry lookup is spelling-insensitive, and a single-threaded
  // run is deterministic for a fixed seed — so any spelling of the same
  // solver must reproduce the same trace exactly. (The deprecated Algorithm
  // enum shim this check used to exercise is gone; names are the only path.)
  solvers::SolverOptions check = options;
  check.threads = 1;
  check.epochs = 3;
  const solvers::Trace by_name = trainer.train("is_asgd", check);
  const solvers::Trace by_spelling = trainer.train("IS-ASGD", check);
  const double delta = std::abs(by_name.points.back().objective -
                                by_spelling.points.back().objective);
  std::printf(
      "spelling-insensitivity check: |objective(is_asgd) - objective(IS-ASGD)|"
      " = %.3g %s\n",
      delta, delta == 0.0 ? "(identical)" : "(MISMATCH)");
  return delta == 0.0 ? 0 : 1;
}
