// Quickstart: the five-minute tour of the public API.
//
//   1. generate (or load) a sparse classification dataset,
//   2. pick an objective + regularizer,
//   3. train with IS-ASGD through the core::Trainer facade,
//   4. read the convergence trace.
//
//   build/examples/quickstart
#include <cstdio>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "objectives/logistic.hpp"

int main() {
  using namespace isasgd;

  // 1. A synthetic sparse dataset: 20k samples, 10k features, ~12 nnz/row,
  //    with a skewed importance distribution (ψ = 0.9) so importance
  //    sampling has something to exploit.
  data::SyntheticSpec spec;
  spec.rows = 20'000;
  spec.dim = 10'000;
  spec.mean_row_nnz = 12;
  spec.target_psi = 0.9;
  spec.seed = 42;
  const sparse::CsrMatrix data = data::generate(spec);
  std::printf("dataset: %s\n", data.summary().c_str());

  // 2. L1-regularized logistic regression — the objective the IS-ASGD paper
  //    evaluates.
  objectives::LogisticLoss loss;
  const auto reg = objectives::Regularization::l1(1e-6);

  // 3. Train. The Trainer wires the dataset + objective to any of the six
  //    solvers; IS-ASGD is the paper's contribution.
  core::Trainer trainer(data, loss, reg);
  solvers::SolverOptions options;
  options.epochs = 10;
  options.threads = 8;
  options.step_size = 0.5;
  solvers::IsAsgdReport report;
  const solvers::Trace trace = trainer.train_is_asgd(options, &report);

  // 4. Inspect the run.
  std::printf(
      "partitioning: rho=%.2e -> %s strategy, shard importance spread %.3f\n",
      report.rho,
      partition::strategy_name(report.applied_strategy).c_str(),
      report.phi_imbalance);
  std::printf("setup %.3fs, training %.3fs across %zu threads\n",
              trace.setup_seconds, trace.train_seconds, trace.threads);
  std::printf("%-6s %-10s %-10s %-10s\n", "epoch", "seconds", "rmse", "error");
  for (const auto& p : trace.points) {
    std::printf("%-6zu %-10.3f %-10.4f %-10.4f\n", p.epoch, p.seconds, p.rmse,
                p.error_rate);
  }
  std::printf("best error rate: %.4f\n", trace.best_error_rate());
  return 0;
}
