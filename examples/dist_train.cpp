// Real multi-process distributed training: fork a 1-server/k-worker group
// out of this process and train dist.ps.is_asgd over an actual transport
// (shared-memory rings or TCP loopback) instead of the event-clock
// simulator.
//
// The headline property is checkable from the command line: with --check the
// example reruns the exact configuration through the fenced simulator
// (ClusterSpec::Schedule::kFencedRoundRobin) and compares final models bit
// for bit — the process group and the simulator execute the same schedule,
// so they must agree on every last ulp.
//
//   build/examples/dist_train                        # shm, 2 workers
//   build/examples/dist_train --transport tcp --nodes 4
//   build/examples/dist_train --check                # assert sim parity
#include <cstdio>
#include <cstring>

#include "core/trainer.hpp"
#include "data/synthetic.hpp"
#include "distributed/cluster.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;

  util::CliParser cli("dist_train",
                      "train IS-ASGD on a real 1-server/k-worker process "
                      "group, optionally checking bit-parity with the fenced "
                      "simulator");
  cli.add_flag("transport", "shm", "transport backend: shm | tcp");
  cli.add_flag("nodes", "2", "worker process count");
  cli.add_flag("rows", "4000", "synthetic dataset rows");
  cli.add_flag("dim", "50000", "synthetic dataset dimension");
  cli.add_flag("epochs", "5", "training epochs");
  cli.add_flag("step", "0.3", "step size");
  cli.add_flag("seed", "7", "RNG seed");
  cli.add_flag("check", "0",
               "also run the fenced simulator and assert the final models "
               "are bit-identical (1 = on)");
  if (!cli.parse(argc, argv)) return 0;

  data::SyntheticSpec spec;
  spec.rows = static_cast<std::size_t>(cli.get_int("rows"));
  spec.dim = static_cast<std::size_t>(cli.get_int("dim"));
  spec.mean_row_nnz = 10;
  spec.target_psi = 0.85;
  spec.label_noise = 0.03;
  spec.seed = 21;
  const sparse::CsrMatrix data = data::generate(spec);
  objectives::LogisticLoss loss;
  std::printf("dataset: %s\n", data.summary().c_str());

  distributed::ClusterSpec cluster;
  cluster.nodes = static_cast<std::size_t>(cli.get_int("nodes"));
  cluster.backend = distributed::Backend::kProcess;
  cluster.schedule = distributed::Schedule::kFencedRoundRobin;
  cluster.transport = cli.get("transport");

  solvers::SolverOptions opt;
  opt.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  opt.step_size = cli.get_double("step");
  opt.seed = static_cast<std::uint64_t>(cli.get_i64("seed"));
  opt.keep_final_model = true;

  const core::Trainer trainer = core::TrainerBuilder()
                                    .data(data)
                                    .objective(loss)
                                    .cluster(cluster)
                                    .build();
  std::printf("process group: 1 server + %zu workers over %s\n\n",
              cluster.nodes, cluster.transport.c_str());
  const solvers::Trace real = trainer.train("dist.ps.is_asgd", opt);
  for (const solvers::TracePoint& p : real.points) {
    std::printf("  epoch %2zu  %8.3f ms wall  objective %.6f\n", p.epoch,
                p.seconds * 1e3, p.objective);
  }

  if (cli.get_bool("check")) {
    distributed::ClusterSpec sim = cluster;
    sim.backend = distributed::Backend::kSimulate;
    const core::Trainer sim_trainer = core::TrainerBuilder()
                                          .data(data)
                                          .objective(loss)
                                          .cluster(sim)
                                          .build();
    const solvers::Trace simulated = sim_trainer.train("dist.ps.is_asgd", opt);
    if (real.final_model.size() != simulated.final_model.size()) {
      std::printf("\nPARITY FAIL: model dims differ (%zu vs %zu)\n",
                  real.final_model.size(), simulated.final_model.size());
      return 1;
    }
    std::size_t diverged = 0;
    for (std::size_t j = 0; j < real.final_model.size(); ++j) {
      if (std::memcmp(&real.final_model[j], &simulated.final_model[j],
                      sizeof(double)) != 0) {
        ++diverged;
      }
    }
    if (diverged != 0) {
      std::printf("\nPARITY FAIL: %zu of %zu coordinates diverged\n", diverged,
                  real.final_model.size());
      return 1;
    }
    std::printf(
        "\nPARITY OK: process group == fenced simulator, all %zu coordinates "
        "bit-identical\n",
        real.final_model.size());
  }
  return 0;
}
