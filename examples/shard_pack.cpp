// Dataset compiler: converts a LibSVM text / ISASGD binary file into an
// io::shardpack (ISSP) — the mmap-served columnar format data::PackedSource
// trains from with zero setup passes.
//
//   build/examples/shard_pack --in news20.binary --out news20.issp \
//       --shard-rows 8192 --verify
//
// Conversion streams shard-by-shard through a StreamingSource, so peak
// memory is one shard regardless of file size. --verify re-opens both files
// and proves the round trip: identical geometry, bit-identical rows/labels
// (for f64 packs), and a sidecar that matches freshly computed squared
// norms.
#include <cmath>
#include <cstdio>
#include <cstring>

#include "data/packed_source.hpp"
#include "data/streaming_source.hpp"
#include "io/shardpack.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace isasgd;

/// Byte-for-byte shard comparison between the original source and the
/// pack. Returns the number of mismatching shards (0 = identical).
std::size_t verify_pack(const data::StreamingSource& original,
                        const data::PackedSource& packed, bool lossless) {
  if (original.rows() != packed.rows() || original.dim() != packed.dim() ||
      original.nnz() != packed.nnz() ||
      original.shard_count() != packed.shard_count()) {
    std::fprintf(stderr, "verify: geometry mismatch (n=%zu/%zu d=%zu/%zu)\n",
                 original.rows(), packed.rows(), original.dim(), packed.dim());
    return 1;
  }
  std::size_t bad = 0;
  for (std::size_t s = 0; s < original.shard_count(); ++s) {
    const data::ShardPtr a = original.shard(s);
    const data::ShardPtr b = packed.shard(s);
    const sparse::CsrMatrix& ma = *a->matrix;
    const sparse::CsrMatrix& mb = *b->matrix;
    bool ok = a->row_begin == b->row_begin && ma.rows() == mb.rows() &&
              ma.nnz() == mb.nnz() &&
              ma.row_ptr() == mb.row_ptr() && ma.col_idx() == mb.col_idx() &&
              ma.labels().size() == mb.labels().size() &&
              std::memcmp(ma.labels().data(), mb.labels().data(),
                          ma.labels().size() * sizeof(double)) == 0;
    if (ok) {
      if (lossless) {
        // f64 pack: values must round-trip to the exact bits.
        ok = std::memcmp(ma.values().data(), mb.values().data(),
                         ma.values().size() * sizeof(double)) == 0;
      } else {
        for (std::size_t k = 0; ok && k < ma.values().size(); ++k) {
          ok = static_cast<float>(ma.values()[k]) ==
               static_cast<float>(mb.values()[k]);
        }
      }
    }
    if (ok && lossless) {
      // Sidecar audit: stored squared norms must equal a fresh computation
      // over the original rows, bitwise.
      for (std::size_t r = 0; ok && r < ma.rows(); ++r) {
        const double fresh = ma.row(r).squared_norm();
        const double stored =
            packed.reader().row_squared_norm(a->row_begin + r);
        ok = fresh == stored;
      }
    }
    if (!ok) {
      std::fprintf(stderr, "verify: shard %zu mismatch\n", s);
      ++bad;
    }
  }
  return bad;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("shard_pack",
                      "Compile a LibSVM/binary dataset into an ISSP shardpack");
  cli.add_flag("in", "", "input dataset (LibSVM text or ISASGD binary)");
  cli.add_flag("out", "", "output shardpack path (required)");
  cli.add_flag("shard-rows", "4096", "rows per shard");
  cli.add_flag("values", "f64", "value column width: f64 (lossless) | f32");
  cli.add_flag("verify", "false",
               "re-open both files and compare every shard byte-for-byte");
  if (!cli.parse(argc, argv)) return 0;

  const std::string in = cli.get("in");
  const std::string out = cli.get("out");
  if (in.empty() || out.empty()) {
    std::fprintf(stderr, "error: --in and --out are required\n%s",
                 cli.usage().c_str());
    return 1;
  }
  io::ShardPackWriteOptions opts;
  opts.shard_rows = static_cast<std::size_t>(cli.get_i64("shard-rows"));
  if (cli.get("values") == "f32") {
    opts.values = io::PackValueKind::kF32;
  } else if (cli.get("values") != "f64") {
    std::fprintf(stderr, "error: unknown --values '%s'\n",
                 cli.get("values").c_str());
    return 1;
  }

  try {
    data::StreamingOptions sopts;
    sopts.shard_rows = opts.shard_rows;
    sopts.prefetch = false;  // conversion is a sequential single pass
    const data::StreamingSource source(in, sopts);
    std::printf("packing %s: n=%zu d=%zu nnz=%zu, %zu shards of %zu rows\n",
                in.c_str(), source.rows(), source.dim(), source.nnz(),
                source.shard_count(), opts.shard_rows);
    io::write_shardpack(out, source, opts);
    std::printf("wrote %s\n", out.c_str());

    if (cli.get_bool("verify")) {
      const data::PackedSource packed(out);
      const std::size_t bad =
          verify_pack(source, packed, opts.values == io::PackValueKind::kF64);
      if (bad != 0) {
        std::fprintf(stderr, "verify FAILED: %zu shard(s) differ\n", bad);
        return 1;
      }
      std::printf("verify ok: %zu shards identical, sidecar consistent\n",
                  packed.shard_count());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
