// Text-classification scenario (the paper's News20 workload): bag-of-words
// features, moderate dimensionality, relatively dense rows. Trains all four
// paper algorithms and prints the wall-clock comparison — a miniature of
// Figures 3a/4a, including SVRG-ASGD's wall-clock collapse.
//
//   build/examples/news_classification [--threads N]
#include <cstdio>

#include "core/experiment.hpp"
#include "core/trainer.hpp"
#include "data/paper_datasets.hpp"
#include "metrics/speedup.hpp"
#include "objectives/logistic.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace isasgd;
  util::CliParser cli("news_classification",
                      "News20-style text classification with all four "
                      "algorithms (mini Figure 4a)");
  cli.add_flag("threads", "8", "worker threads for the async solvers");
  cli.add_flag("epochs", "10", "training epochs");
  cli.add_flag("scale", "0.5", "dataset scale");
  if (!cli.parse(argc, argv)) return 0;

  const auto config =
      data::paper_dataset_config(data::PaperDataset::kNews20,
                                 cli.get_double("scale"));
  std::printf("generating %s analog (n=%zu, d=%zu)...\n",
              config.paper_name.c_str(), config.spec.rows, config.spec.dim);
  const auto data = data::generate(config.spec);

  objectives::LogisticLoss loss;
  core::Trainer trainer(data, loss, objectives::Regularization::l1(1e-6));

  core::ExperimentSpec spec;
  spec.dataset_name = config.name;
  spec.solvers = {"SGD", "ASGD", "IS-ASGD", "SVRG-ASGD"};
  spec.thread_counts = {static_cast<std::size_t>(cli.get_int("threads"))};
  spec.base_options.epochs = static_cast<std::size_t>(cli.get_int("epochs"));
  spec.base_options.step_size = config.lambda;
  const auto result = core::run_experiment(trainer, spec);

  util::TablePrinter table(
      {"algorithm", "wall_clock_s", "final_rmse", "best_error"});
  for (const auto& run : result.runs) {
    table.add_row_values(run.solver,
                         run.trace.train_seconds + run.trace.setup_seconds,
                         run.trace.points.back().rmse,
                         run.trace.best_error_rate());
  }
  std::printf("\n%s", table.render().c_str());

  const std::size_t threads = spec.thread_counts[0];
  const auto* asgd = result.find("ASGD", threads);
  const auto* is = result.find("IS-ASGD", threads);
  const auto speedup = metrics::compute_speedup(asgd->trace, is->trace);
  if (!speedup.slices.empty()) {
    std::printf(
        "\nIS-ASGD vs ASGD: average speedup %.2fx, at ASGD's optimum %.2fx "
        "(paper: 1.26-1.97x / 1.13-1.54x)\n",
        speedup.average_speedup, speedup.optimum_speedup);
  }
  std::printf(
      "note SVRG-ASGD's wall clock: per-epoch leader, absolute laggard — "
      "the effect the IS-ASGD paper is built around.\n");
  return 0;
}
