#include "data/transforms.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd::data {

using sparse::index_t;
using sparse::value_t;

sparse::CsrMatrix l2_normalize_rows(const sparse::CsrMatrix& m) {
  sparse::CsrBuilder builder(m.dim());
  builder.reserve(m.rows(), static_cast<std::size_t>(m.mean_row_nnz()) + 1);
  std::vector<value_t> scaled;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto x = m.row(i);
    const double norm = x.norm();
    scaled.assign(x.values().begin(), x.values().end());
    if (norm > 0) {
      for (auto& v : scaled) v = static_cast<value_t>(v / norm);
    }
    builder.add_row(x.indices(), scaled, m.label(i));
  }
  return builder.build();
}

sparse::CsrMatrix scale_values(const sparse::CsrMatrix& m, double c) {
  if (c == 0.0 || !std::isfinite(c)) {
    throw std::invalid_argument("scale_values: c must be finite and nonzero");
  }
  sparse::CsrBuilder builder(m.dim());
  builder.reserve(m.rows(), static_cast<std::size_t>(m.mean_row_nnz()) + 1);
  std::vector<value_t> scaled;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto x = m.row(i);
    scaled.assign(x.values().begin(), x.values().end());
    for (auto& v : scaled) v = static_cast<value_t>(v * c);
    builder.add_row(x.indices(), scaled, m.label(i));
  }
  return builder.build();
}

sparse::CsrMatrix hash_features(const sparse::CsrMatrix& m,
                                std::size_t buckets, std::uint64_t seed) {
  if (buckets == 0) {
    throw std::invalid_argument("hash_features: zero buckets");
  }
  // SplitMix64 as the hash: one mixed word per feature gives both the
  // bucket (high bits via Lemire reduction) and the sign (low bit).
  auto mixed = [seed](index_t j) {
    util::SplitMix64 sm(seed ^ (0x9e3779b97f4a7c15ULL * (j + 1)));
    return sm();
  };
  sparse::CsrBuilder builder(buckets);
  builder.reserve(m.rows(), static_cast<std::size_t>(m.mean_row_nnz()) + 1);
  std::vector<index_t> idx;
  std::vector<value_t> val;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const auto x = m.row(i);
    const auto xi = x.indices();
    const auto xv = x.values();
    idx.clear();
    val.clear();
    for (std::size_t k = 0; k < xi.size(); ++k) {
      const std::uint64_t h = mixed(xi[k]);
      // Lemire reduction on the full word for the bucket; the lowest bit
      // (uncorrelated with the high bits after mixing) for the sign.
      const auto bucket = static_cast<index_t>(
          (static_cast<__uint128_t>(h) * buckets) >> 64);
      const double sign = (h & 1u) ? 1.0 : -1.0;
      idx.push_back(bucket);
      val.push_back(static_cast<value_t>(sign * xv[k]));
    }
    builder.add_row_unsorted(idx, val, m.label(i));
  }
  return builder.build();
}

sparse::CsrMatrix subsample_rows(const sparse::CsrMatrix& m, double fraction,
                                 std::uint64_t seed) {
  if (!(fraction > 0.0) || fraction > 1.0) {
    throw std::invalid_argument("subsample_rows: need 0 < fraction <= 1");
  }
  util::Rng rng(seed);
  sparse::CsrBuilder builder(m.dim());
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (util::uniform_double(rng) < fraction) {
      const auto x = m.row(i);
      builder.add_row(x.indices(), x.values(), m.label(i));
    }
  }
  if (builder.rows() == 0 && m.rows() > 0) {
    const auto x = m.row(0);
    builder.add_row(x.indices(), x.values(), m.label(0));
  }
  return builder.build();
}

}  // namespace isasgd::data
