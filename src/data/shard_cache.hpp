// Shared shard-cache machinery for the out-of-core DataSource backends.
//
// StreamingSource (PR 3) and PackedSource (this layer) both serve shards
// through the same discipline: an LRU cache bounded by a byte budget,
// single-flight loads (a demand fetch and a background prefetch of the same
// shard never read the file twice), and a background-lane prefetch that
// overlaps the next shard's I/O with the current shard's compute. ShardCache
// is that discipline extracted once — a backend supplies only its loader
// (read shard s from the file) and the cache owns residency, eviction,
// waiting, and every counter.
//
// The cache also owns the *prefetch autotuner*: shard-major epoch drivers
// prefetch `prefetch_depth()` shards ahead and call `end_epoch()` at each
// epoch fence, where the tuner inspects the epoch's counter deltas and
// adapts the depth — deeper when demand fetches still miss or race an
// in-flight prefetch (I/O not hidden), shallower when prefetched shards get
// evicted unused (lookahead overrunning the budget). Depth is wall-clock
// tuning only; the arithmetic contract (streaming ≡ in-memory bit parity)
// is untouched by any depth choice.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "data/data_source.hpp"
#include "util/backoff.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::data {

/// Adapts the prefetch lookahead depth from per-epoch CacheStats deltas.
/// Pure policy, no locking — ShardCache drives it under its own mutex, and
/// tests drive it directly with synthetic deltas. Deterministic: the depth
/// sequence is a function of the observed counter sequence only.
class PrefetchAutotuner {
 public:
  struct Options {
    std::size_t initial_depth = 1;
    std::size_t max_depth = 8;
    /// Fraction of an epoch's prefetches that may race a demand fetch
    /// before the tuner deepens the lookahead.
    double race_tolerance = 0.10;
    /// Fraction of an epoch's prefetches that may be evicted unused before
    /// the tuner backs off.
    double waste_tolerance = 0.25;
    /// Race rate above which an epoch counts as *severely* racing: the
    /// consumer blocked on nearly every prefetch, so lookahead hid nothing.
    double severe_race_rate = 0.5;
    /// After this many consecutive severely-racing epochs (deepening had
    /// its chance and changed nothing — e.g. no spare core to decode on),
    /// prefetch is futile: depth drops to 0 and stays there, so demand
    /// loads run inline on the consumer and stop paying wake-up latency.
    std::size_t futility_epochs = 2;
  };

  PrefetchAutotuner() : PrefetchAutotuner(Options{}) {}
  explicit PrefetchAutotuner(Options options);

  [[nodiscard]] std::size_t depth() const noexcept { return depth_; }

  /// One tuning step from the counter deltas of the window just ended
  /// (typically one epoch). `capacity_shards` is the current estimate of
  /// how many shards the budget holds resident (caps useful lookahead at
  /// capacity − 1 — the current shard needs a slot too). Returns the new
  /// depth. Windows with no demand traffic leave the depth unchanged.
  /// Depth 0 means prefetch was declared futile (see
  /// Options::futility_epochs) and is permanently off for this tuner.
  std::size_t update(const CacheStats& delta, std::size_t capacity_shards);

  /// Tuning steps that changed the depth (observability for --stats).
  [[nodiscard]] std::uint64_t adjustments() const noexcept {
    return adjustments_;
  }

 private:
  Options options_;
  std::size_t depth_;
  std::uint64_t adjustments_ = 0;
  std::size_t severe_epochs_ = 0;
  bool disabled_ = false;
};

/// LRU shard cache with single-flight loads and background prefetch.
/// Thread-safe. `Loader` reads one shard from the backing store and may
/// throw; it is always invoked without the cache lock held.
class ShardCache {
 public:
  using Loader = std::function<ShardPtr(std::size_t)>;

  struct Options {
    std::size_t memory_budget_bytes = std::size_t{64} << 20;
    /// Allow prefetch() to schedule background loads (needs a pool).
    bool prefetch = true;
    /// Estimated resident footprint of one loaded shard, for the budget.
    std::function<std::size_t(const Shard&)> shard_bytes;
    PrefetchAutotuner::Options autotune;
    /// Times a *failed* background load is retried in place before the
    /// prefetch claim is dropped (0 = legacy behaviour: first failure drops
    /// the claim and the blocking get() reloads). Retries ride the same
    /// background-lane task, sleeping `retry_backoff` between attempts with
    /// the schedule seeded per shard — transient I/O errors (NFS hiccup,
    /// EINTR-ish loader failures) heal without ever blocking a consumer,
    /// while a persistent error still falls through to get()'s synchronous
    /// reload, which surfaces it unchanged.
    std::size_t prefetch_retries = 0;
    util::Backoff::Options retry_backoff;
  };

  /// `loader` and `pool` must outlive the cache; null pool disables
  /// prefetch (everything else works).
  ShardCache(std::size_t shard_count, Options options, Loader loader,
             util::ThreadPool* pool);

  /// Waits for every in-flight background load. Call from the owning
  /// source's destructor BEFORE the members the loader touches disappear.
  ~ShardCache();

  /// Fetches shard s, blocking on I/O when not resident. Single-flight:
  /// concurrent callers (and a racing prefetch) share one read.
  [[nodiscard]] ShardPtr get(std::size_t s);

  /// Hint: schedule a background load of shard s on the pool's background
  /// lane. No-op when resident, loading, out of range, or prefetch is off.
  /// Failures are dropped — the blocking get() reloads and surfaces them.
  void prefetch(std::size_t s);

  /// Epoch fence: feed the epoch's counter deltas to the autotuner.
  void end_epoch();

  /// Current adaptive lookahead depth for shard-major drivers.
  [[nodiscard]] std::size_t prefetch_depth() const;

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] std::uint64_t autotune_adjustments() const;

  ShardCache(const ShardCache&) = delete;
  ShardCache& operator=(const ShardCache&) = delete;

 private:
  struct Entry {
    ShardPtr shard;  ///< null while loading
    std::size_t bytes = 0;
    std::uint64_t last_used = 0;
    bool loading = false;
    bool prefetched = false;  ///< claimed/installed by a background load
    bool raced = false;       ///< a get() already blocked on this prefetch
  };

  void install_locked(std::size_t s, ShardPtr shard, bool prefetched);
  void evict_to_budget_locked(std::size_t keep);
  [[nodiscard]] std::size_t capacity_shards_locked() const;

  const std::size_t shard_count_;
  const Options options_;
  const Loader loader_;
  util::ThreadPool* pool_;

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::unordered_map<std::size_t, Entry> cache_;
  std::uint64_t tick_ = 0;
  std::size_t inflight_ = 0;  ///< loads in progress (sync + async)
  CacheStats stats_;
  CacheStats epoch_mark_;  ///< stats_ snapshot at the last end_epoch()
  PrefetchAutotuner tuner_;
  /// Running mean of observed shard bytes (capacity estimate feed).
  double mean_shard_bytes_ = 0;
  std::uint64_t observed_shards_ = 0;
};

}  // namespace isasgd::data
