// DataSource: the dataset abstraction behind out-of-core training.
//
// The seed library trained every solver against one in-memory CsrMatrix,
// which caps workloads at whatever fits in RAM. A DataSource instead exposes
// a dataset as an ordered list of *shards* — contiguous row ranges, each
// materialised as its own CsrMatrix over the full feature dimensionality —
// so a training loop can walk shard-by-shard and never needs more than a
// bounded window of the data resident at once.
//
// Two backends:
//   * InMemorySource  — wraps an existing CsrMatrix. Single-shard by default
//     (zero-copy; solvers see exactly the seed behaviour), or chunked into
//     `shard_rows`-row shards to share the shard-major code path with the
//     streaming backend — chunked-but-resident is the reference the
//     streaming parity tests compare against.
//   * StreamingSource — streaming_source.hpp: reads libsvm/binary files
//     shard-by-shard under a memory budget with an LRU cache + prefetch.
//
// Global row ids: shard s covers rows [shard_begin(s), shard_begin(s) +
// shard_rows(s)); a shard matrix's row r is global row shard_begin(s) + r.
// Shard matrices keep the full dim(), so one model vector indexes
// identically against any shard or the full matrix.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sparse/csr_matrix.hpp"

namespace isasgd::data {

/// Cache behaviour counters of an out-of-core backend (monotonic since
/// construction, except the resident_*/prefetch_inflight gauges). Shared by
/// every cached backend — StreamingSource::CacheStats aliases it — and
/// surfaced through DataSource::cache_stats() so bench/service layers report
/// uniformly.
struct CacheStats {
  std::uint64_t loads = 0;       ///< shard reads that hit the file
  std::uint64_t hits = 0;        ///< shard() served from cache
  std::uint64_t misses = 0;      ///< shard() had to read the file
  std::uint64_t evictions = 0;   ///< shards dropped for the budget
  std::uint64_t prefetch_issued = 0;
  std::uint64_t prefetch_hits = 0;  ///< cache hits on a prefetched shard
  /// shard() arrived while the shard's background prefetch was still
  /// loading: the caller blocked on the in-flight read instead of issuing
  /// its own. A racing prefetch beats a cold miss (the I/O was already in
  /// motion) but loses to a hit — a high race rate means prefetches are
  /// issued too late, i.e. the lookahead depth is too shallow.
  std::uint64_t prefetch_races = 0;
  /// Prefetched shards evicted before any shard() call touched them: I/O
  /// and budget spent for nothing. A high wasted rate means the lookahead
  /// overruns what the budget can hold resident.
  std::uint64_t prefetch_wasted = 0;
  /// Failed background loads retried in place (transient I/O errors; see
  /// ShardCache::Options::prefetch_retries). Only the retries themselves —
  /// a load that fails past its retry budget is dropped as before, and the
  /// blocking shard() reload surfaces the error.
  std::uint64_t prefetch_retries = 0;
  /// Background loads in flight right now (gauge, not monotonic).
  std::uint64_t prefetch_inflight = 0;
  std::size_t resident_bytes = 0;  ///< current estimated cache footprint
  std::size_t resident_shards = 0;
};

/// Per-row statistics recorded at pack time (io::shardpack sidecars) so
/// adaptive-IS setup and PartitionPlan construction need no data pass.
/// Values are the *exact* f64 results of the loaded-path arithmetic —
/// row_squared_norm(i) is bit-identical to data.row(i).squared_norm() —
/// so sidecar-fed setup produces bit-identical models.
class RowStats {
 public:
  virtual ~RowStats() = default;
  /// Exact row(i).squared_norm() of global row i.
  [[nodiscard]] virtual double row_squared_norm(std::size_t row) const = 0;
};

/// One materialised shard. `matrix` may alias the full dataset (in-memory
/// single shard) or own just this row range (chunked/streaming); holders
/// keep it alive via the shared_ptr regardless of cache eviction.
struct Shard {
  std::size_t index = 0;      ///< shard ordinal
  std::size_t row_begin = 0;  ///< global row id of matrix->row(0)
  std::shared_ptr<const sparse::CsrMatrix> matrix;
};

using ShardPtr = std::shared_ptr<const Shard>;

/// Abstract dataset: global shape plus blocking shard access. Thread-safe:
/// shard()/prefetch() may be called concurrently (the streaming backend
/// locks internally; the in-memory one is immutable after construction).
class DataSource {
 public:
  virtual ~DataSource() = default;

  [[nodiscard]] virtual std::size_t rows() const = 0;
  [[nodiscard]] virtual std::size_t dim() const = 0;
  [[nodiscard]] virtual std::size_t nnz() const = 0;

  [[nodiscard]] virtual std::size_t shard_count() const = 0;
  /// Rows in shard s.
  [[nodiscard]] virtual std::size_t shard_rows(std::size_t s) const = 0;
  /// Global row id of shard s's first row.
  [[nodiscard]] virtual std::size_t shard_begin(std::size_t s) const = 0;

  /// Fetches shard s, blocking on I/O when it is not resident. Throws
  /// std::out_of_range on an invalid ordinal and propagates backend read
  /// errors.
  [[nodiscard]] virtual ShardPtr shard(std::size_t s) const = 0;

  /// Hint that shard s will be needed soon; backends may load it in the
  /// background. Default: no-op. Never throws for in-range ordinals
  /// (failures resurface on the blocking shard() call).
  virtual void prefetch(std::size_t s) const { (void)s; }

  /// How many shards ahead a shard-major driver should prefetch (≥ 1).
  /// Cached backends adapt this per epoch (see data::PrefetchAutotuner);
  /// resident backends return 1 and ignore prefetch anyway.
  [[nodiscard]] virtual std::size_t prefetch_depth() const { return 1; }

  /// Epoch fence hook: cached backends feed the epoch's counter deltas to
  /// their prefetch autotuner here. Default: no-op. Called by shard-major
  /// epoch drivers; wall-clock tuning only, never affects results.
  virtual void end_epoch() const {}

  /// Cache/prefetch counters for out-of-core backends; nullopt when the
  /// backend has no cache (fully resident).
  [[nodiscard]] virtual std::optional<CacheStats> cache_stats() const {
    return std::nullopt;
  }

  /// Pack-time per-row statistics, or null when the backend has none (only
  /// io::shardpack files carry them). Borrowed pointer, valid for the
  /// source's lifetime.
  [[nodiscard]] virtual const RowStats* row_stats() const { return nullptr; }

  /// True when the whole dataset is resident in memory — shard() never does
  /// I/O and materialize() is free or cheap.
  [[nodiscard]] virtual bool resident() const = 0;

  /// The dataset as one full CsrMatrix. In-memory sources return their
  /// wrapped matrix; a streaming source materialises (and caches) the whole
  /// file on first call — a documented escape hatch for solvers without
  /// streaming support, which defeats the memory budget.
  [[nodiscard]] virtual const sparse::CsrMatrix& materialize() const = 0;

  /// shard_rows(s) for every shard — the shape ShardedSequence schedules
  /// over.
  [[nodiscard]] std::vector<std::size_t> shard_sizes() const;

  /// Stable 64-bit identity of the dataset, used by checkpoint/resume to
  /// refuse restoring a model trained on different data (io/checkpoint.hpp
  /// records it; the service layer enforces the match). The default is an
  /// FNV-1a hash of the geometry — rows, dim, nnz, shard layout — which is
  /// cheap for any backend; InMemorySource strengthens it with a content
  /// sample. Deterministic across processes and platforms for a given
  /// source configuration.
  [[nodiscard]] virtual std::uint64_t fingerprint() const;

  /// Estimated bytes this source keeps resident while training — the
  /// admission currency of the service layer's MemoryGovernor. Resident
  /// backends estimate their full CSR footprint; the streaming backend
  /// reports its configured cache budget (its actual cap) instead.
  [[nodiscard]] virtual std::size_t resident_bytes() const;
};

/// Fully-resident DataSource over a borrowed CsrMatrix (which must outlive
/// the source). `shard_rows` = 0 exposes the matrix as a single zero-copy
/// shard; > 0 splits it into ⌈rows/shard_rows⌉ chunked shards (each copied
/// once at construction) so resident data can exercise the exact shard-major
/// path the streaming backend uses.
class InMemorySource final : public DataSource {
 public:
  explicit InMemorySource(const sparse::CsrMatrix& matrix,
                          std::size_t shard_rows = 0);

  [[nodiscard]] std::size_t rows() const override { return matrix_->rows(); }
  [[nodiscard]] std::size_t dim() const override { return matrix_->dim(); }
  [[nodiscard]] std::size_t nnz() const override { return matrix_->nnz(); }
  [[nodiscard]] std::size_t shard_count() const override {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_rows(std::size_t s) const override;
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override;
  [[nodiscard]] ShardPtr shard(std::size_t s) const override;
  [[nodiscard]] bool resident() const override { return true; }
  [[nodiscard]] const sparse::CsrMatrix& materialize() const override {
    return *matrix_;
  }
  /// Geometry hash strengthened with a strided sample of the matrix content
  /// (labels, column indices, value bits) — two same-shape datasets with
  /// different content fingerprint differently.
  [[nodiscard]] std::uint64_t fingerprint() const override;

 private:
  const sparse::CsrMatrix* matrix_;
  std::vector<ShardPtr> shards_;
};

/// Copies rows [row_begin, row_begin + rows) of `data` into a standalone
/// CsrMatrix that keeps the full dim(). Shared by the chunked in-memory
/// source and tests.
[[nodiscard]] sparse::CsrMatrix slice_rows(const sparse::CsrMatrix& data,
                                           std::size_t row_begin,
                                           std::size_t rows);

}  // namespace isasgd::data
