// DataSource over an io::shardpack file: mmap reads, pooled decode buffers,
// sidecar-fed setup.
//
// Where StreamingSource re-parses text on every shard fault, PackedSource
// serves shards straight off a read-only mmap of the compiled pack: a fault
// costs one CRC pass (first touch only), a varint scan for the column
// indices, and three memcpys — no parsing, no validation walk (the format's
// delta encoding cannot express an invalid row, and the CRC vouches for
// integrity, so decoding uses CsrMatrix::from_trusted_parts). Decode
// buffers are pooled: evicting a shard recycles its four arrays into the
// next decode, so a steady-state epoch allocates nothing on the data path.
//
// The pack's sidecars (per-row squared norms, per-shard totals) are exposed
// through DataSource::row_stats(), which lets adaptive-IS setup and
// PartitionPlan construction run with zero data passes — and because the
// sidecar values were produced by the same `row.squared_norm()` arithmetic
// the loaded path uses, the resulting models are bit-identical.
//
// Shards ride the same data::ShardCache as StreamingSource (LRU under
// memory_budget_bytes, background prefetch lane, prefetch autotuner).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/data_source.hpp"
#include "data/shard_cache.hpp"
#include "io/shardpack.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::data {

struct PackedOptions {
  /// Soft cap on the summed decoded footprint of cached shards; the cache
  /// always retains the most recently used shard.
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
  /// Allow prefetch() to schedule background decodes (needs a ThreadPool).
  bool prefetch = true;
  PrefetchAutotuner::Options autotune;
};

/// File-backed DataSource over a shardpack. Thread-safe; see file comment.
class PackedSource final : public DataSource, private RowStats {
 public:
  /// Maps and validates `path` (must be an ISSP shardpack; throws
  /// io::ShardPackError on any defect). `pool` serves background prefetch;
  /// null disables prefetch but everything else works.
  explicit PackedSource(std::string path, PackedOptions options = {},
                        util::ThreadPool* pool = nullptr);
  ~PackedSource() override;

  [[nodiscard]] std::size_t rows() const override { return reader_.rows(); }
  [[nodiscard]] std::size_t dim() const override { return reader_.dim(); }
  [[nodiscard]] std::size_t nnz() const override { return reader_.nnz(); }
  [[nodiscard]] std::size_t shard_count() const override {
    return reader_.shard_count();
  }
  [[nodiscard]] std::size_t shard_rows(std::size_t s) const override {
    return reader_.shard_rows(s);
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override {
    return reader_.shard_begin(s);
  }
  [[nodiscard]] ShardPtr shard(std::size_t s) const override;
  void prefetch(std::size_t s) const override;
  [[nodiscard]] std::size_t prefetch_depth() const override;
  void end_epoch() const override;
  [[nodiscard]] bool resident() const override { return false; }
  [[nodiscard]] const sparse::CsrMatrix& materialize() const override;
  [[nodiscard]] std::optional<CacheStats> cache_stats() const override {
    return cache_->stats();
  }
  [[nodiscard]] const RowStats* row_stats() const override { return this; }
  /// The configured cache budget — what this source actually holds resident
  /// while training.
  [[nodiscard]] std::size_t resident_bytes() const override {
    return options_.memory_budget_bytes;
  }

  [[nodiscard]] const std::string& path() const noexcept {
    return reader_.path();
  }
  [[nodiscard]] const io::ShardPackReader& reader() const noexcept {
    return reader_;
  }
  /// Decodes served from recycled buffers (steady-state epochs should be
  /// all reuses after the first pass fills the pool).
  [[nodiscard]] std::uint64_t buffer_pool_reuses() const;
  [[nodiscard]] std::uint64_t autotune_adjustments() const {
    return cache_->autotune_adjustments();
  }

 private:
  struct BufferPool;

  // RowStats: straight out of the mmap'd sidecar.
  [[nodiscard]] double row_squared_norm(std::size_t row) const override {
    return reader_.row_squared_norm(row);
  }

  [[nodiscard]] ShardPtr load_shard(std::size_t s) const;

  PackedOptions options_;
  util::ThreadPool* pool_;
  io::ShardPackReader reader_;
  /// Shared with every decoded matrix's deleter, so buffers recycle even
  /// when a shard outlives the source.
  std::shared_ptr<BufferPool> buffers_;

  // materialize() single-flight state.
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool materializing_ = false;
  mutable std::shared_ptr<const sparse::CsrMatrix> materialized_;

  /// Declared last: its destructor drains in-flight background decodes,
  /// which read reader_ and buffers_ above.
  mutable std::unique_ptr<ShardCache> cache_;
};

}  // namespace isasgd::data
