#include "data/synthetic.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "sparse/csr_builder.hpp"
#include "util/rng.hpp"

namespace isasgd::data {

namespace {

/// Poisson via inversion for small means, normal approximation above 30.
template <class Gen>
std::size_t poisson(Gen& rng, double mean) {
  if (mean <= 0) return 0;
  if (mean > 30) {
    const double v = mean + std::sqrt(mean) * util::normal_double(rng);
    return v > 0 ? static_cast<std::size_t>(std::lround(v)) : 0;
  }
  const double limit = std::exp(-mean);
  double prod = util::uniform_double(rng);
  std::size_t k = 0;
  while (prod > limit) {
    prod *= util::uniform_double(rng);
    ++k;
  }
  return k;
}

}  // namespace

double sigma_for_psi(double target_psi) {
  if (!(target_psi > 0.0) || target_psi > 1.0) {
    throw std::invalid_argument("sigma_for_psi: psi must be in (0, 1]");
  }
  return std::sqrt(-std::log(target_psi)) / 2.0;
}

double rho_for(const SyntheticSpec& spec) {
  return spec.mean_lipschitz * spec.mean_lipschitz *
         (1.0 / spec.target_psi - 1.0);
}

double mean_lipschitz_for_rho(double target_rho, double target_psi) {
  if (target_psi >= 1.0) {
    throw std::invalid_argument(
        "mean_lipschitz_for_rho: rho is 0 for psi = 1; pick psi < 1");
  }
  return std::sqrt(target_rho * target_psi / (1.0 - target_psi));
}

double teacher_weight(std::uint64_t seed, std::uint64_t j) {
  // Two independent hashed uniforms → one Box–Muller normal. Stateless.
  util::SplitMix64 h(seed ^ (j * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL));
  (void)h();
  util::SplitMix64 g(h());
  return util::normal_double(g);
}

sparse::CsrMatrix generate(const SyntheticSpec& spec) {
  if (spec.rows == 0 || spec.dim == 0) {
    throw std::invalid_argument("generate: rows and dim must be positive");
  }
  if (spec.mean_row_nnz <= 0 || spec.mean_row_nnz > static_cast<double>(spec.dim)) {
    throw std::invalid_argument("generate: mean_row_nnz must be in (0, dim]");
  }
  if (spec.feature_skew < 1.0) {
    throw std::invalid_argument("generate: feature_skew must be >= 1");
  }
  if (spec.mean_lipschitz <= 0 || spec.smoothness_beta <= 0) {
    throw std::invalid_argument("generate: lipschitz/beta must be positive");
  }
  if (spec.label_noise < 0 || spec.label_noise >= 0.5) {
    throw std::invalid_argument("generate: label_noise must be in [0, 0.5)");
  }
  if (spec.duplicate_fraction < 0 || spec.duplicate_fraction >= 1.0) {
    throw std::invalid_argument("generate: duplicate_fraction must be in [0, 1)");
  }
  const double sigma = sigma_for_psi(spec.target_psi);

  util::Rng rng(spec.seed);
  sparse::CsrBuilder builder(spec.dim);
  builder.reserve(spec.rows, static_cast<std::size_t>(spec.mean_row_nnz) + 1);

  // Mean of e^{2Z} is e^{2σ²}; divide it out so E[L] hits mean_lipschitz.
  const double norm_sq_base =
      spec.mean_lipschitz / spec.smoothness_beta * std::exp(-2.0 * sigma * sigma);

  std::vector<sparse::index_t> idx;
  std::vector<sparse::value_t> val;
  // Reservoir of prototype rows for the duplicate mechanism. A duplicate
  // copies a prototype's features verbatim and redraws only the label, so
  // conflicting labels on identical inputs create an irreducible error.
  struct Prototype {
    std::vector<sparse::index_t> idx;
    std::vector<sparse::value_t> val;
    double margin = 0;       // normalised teacher margin
    double noise_scale = 0;  // its difficulty-coupled noise std
  };
  std::vector<Prototype> pool;
  constexpr std::size_t kPoolCapacity = 512;
  auto draw_label = [&](double margin, double noise_scale) {
    const double noisy = margin + noise_scale * util::normal_double(rng);
    double label = noisy >= 0 ? 1.0 : -1.0;
    if (util::uniform_double(rng) < spec.label_noise) label = -label;
    return label;
  };
  for (std::size_t i = 0; i < spec.rows; ++i) {
    if (spec.duplicate_fraction > 0 && !pool.empty() &&
        util::uniform_double(rng) < spec.duplicate_fraction) {
      const Prototype& p =
          pool[util::uniform_index(rng, pool.size())];
      builder.add_row(p.idx, p.val, draw_label(p.margin, p.noise_scale));
      continue;
    }
    // Row support size.
    std::size_t nnz;
    if (spec.nnz_dispersion <= 0) {
      nnz = static_cast<std::size_t>(std::lround(spec.mean_row_nnz));
    } else {
      nnz = poisson(rng, spec.mean_row_nnz);
    }
    nnz = std::clamp<std::size_t>(nnz, 1, spec.dim);

    // Draw distinct features under the popularity power law. Collisions are
    // redrawn; with nnz ≪ d the loop terminates in ~nnz iterations.
    idx.clear();
    std::size_t attempts = 0;
    const std::size_t max_attempts = 64 * nnz + 256;
    while (idx.size() < nnz && attempts++ < max_attempts) {
      const double u = util::uniform_double(rng);
      const auto j = static_cast<sparse::index_t>(
          std::min<double>(static_cast<double>(spec.dim) - 1.0,
                           std::pow(u, spec.feature_skew) *
                               static_cast<double>(spec.dim)));
      if (std::find(idx.begin(), idx.end(), j) == idx.end()) {
        idx.push_back(j);
      }
    }
    std::sort(idx.begin(), idx.end());

    // Values: standard normals scaled so ‖x_i‖² = norm_sq_base · e^{2Z}.
    val.resize(idx.size());
    double sq = 0;
    for (auto& v : val) {
      v = util::normal_double(rng);
      sq += v * v;
    }
    if (sq <= 0) {
      val.assign(val.size(), 1.0);
      sq = static_cast<double>(val.size());
    }
    const double z = sigma * util::normal_double(rng);
    const double target_norm = std::sqrt(norm_sq_base) * std::exp(z);
    const double rescale = target_norm / std::sqrt(sq);
    for (auto& v : val) v *= rescale;

    // Teacher label. Margin is normalised by the row norm so the decision
    // boundary's sharpness does not depend on the importance scale; the
    // difficulty coupling then re-introduces importance-correlated noise in
    // a controlled way (heavier rows get noisier margins).
    double margin = 0;
    for (std::size_t k = 0; k < idx.size(); ++k) {
      margin += teacher_weight(spec.seed, idx[k]) * val[k];
    }
    margin /= target_norm;
    double noise_scale = spec.margin_noise;
    if (spec.difficulty_coupling != 0.0) {
      // L_i/L̄ = ‖x_i‖²/E‖x‖² = e^{2z}/e^{2σ²}; exponentiate by coupling/2.
      const double rel = std::exp(2.0 * z) * std::exp(-2.0 * sigma * sigma);
      noise_scale *= std::pow(rel, 0.5 * spec.difficulty_coupling);
    }
    const double label = draw_label(margin, noise_scale);

    if (spec.duplicate_fraction > 0) {
      if (pool.size() < kPoolCapacity) {
        pool.push_back(Prototype{idx, val, margin, noise_scale});
      } else {
        pool[util::uniform_index(rng, pool.size())] =
            Prototype{idx, val, margin, noise_scale};
      }
    }
    builder.add_row(idx, val, label);
  }
  return builder.build();
}

}  // namespace isasgd::data
