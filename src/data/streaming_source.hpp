// Out-of-core DataSource: reads a LibSVM text or ISASGD binary dataset file
// shard-by-shard under a configurable memory budget.
//
// Construction makes one indexing pass (LibSVM: a validating scan recording
// shard byte offsets, shape and the label alphabet; binary: the header plus
// the row_ptr array, which *is* the index) and loads no feature data. After
// that, shard(s) seeks and parses just that shard, an LRU cache keeps
// recently used shards resident while their total estimated footprint stays
// under `memory_budget_bytes`, and prefetch(s) loads shards ahead of the
// training loop on the ThreadPool's background lane — so a shard-major
// epoch overlaps the next shard's I/O with the current shard's compute.
//
// The arithmetic contract: training from a StreamingSource and from an
// InMemorySource chunked with the same shard_rows visits identical rows
// with identical values in an identical order (see ShardedSequence), so the
// streaming machinery — cache hits, evictions, prefetch races — can never
// change a result, only wall-clock. tests/determinism_test.cpp holds this
// line.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "data/data_source.hpp"
#include "data/shard_cache.hpp"
#include "io/libsvm.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::data {

struct StreamingOptions {
  /// Rows per shard. Smaller shards = finer cache granularity and lower
  /// peak memory; larger shards = fewer seeks and better parse throughput.
  std::size_t shard_rows = 4096;
  /// Soft cap on the summed estimated footprint of cached shards. The cache
  /// always retains at least the most recently installed shard, so a budget
  /// smaller than one shard degrades to "no reuse", never to a failure.
  std::size_t memory_budget_bytes = std::size_t{64} << 20;
  /// Allow prefetch() to schedule background loads (needs a ThreadPool).
  bool prefetch = true;
  /// Floor on the reported dim (LibSVM files do not record it; binary files
  /// ignore the hint).
  std::size_t dim_hint = 0;
  /// Match io::LibsvmReadOptions: map a two-valued label alphabet onto ±1.
  /// Decided from the *whole file's* alphabet collected by the index pass —
  /// a shard that happens to contain a single class still maps correctly.
  bool normalize_binary_labels = true;
};

/// File-backed DataSource. Thread-safe; see class comment.
class StreamingSource final : public DataSource {
 public:
  /// Opens and indexes `path` (format auto-detected: ISASGD binary magic,
  /// else LibSVM text). `pool` serves background prefetch; null disables
  /// prefetch but everything else works. Throws std::runtime_error on open
  /// or parse failure.
  explicit StreamingSource(std::string path, StreamingOptions options = {},
                           util::ThreadPool* pool = nullptr);
  ~StreamingSource() override;

  [[nodiscard]] std::size_t rows() const override { return rows_; }
  [[nodiscard]] std::size_t dim() const override { return dim_; }
  [[nodiscard]] std::size_t nnz() const override { return nnz_; }
  [[nodiscard]] std::size_t shard_count() const override {
    return shard_rows_.size();
  }
  [[nodiscard]] std::size_t shard_rows(std::size_t s) const override {
    return shard_rows_.at(s);
  }
  [[nodiscard]] std::size_t shard_begin(std::size_t s) const override {
    return shard_begin_.at(s);
  }
  [[nodiscard]] ShardPtr shard(std::size_t s) const override;
  void prefetch(std::size_t s) const override;
  [[nodiscard]] std::size_t prefetch_depth() const override;
  void end_epoch() const override;
  [[nodiscard]] bool resident() const override { return false; }
  [[nodiscard]] const sparse::CsrMatrix& materialize() const override;
  /// The configured cache budget — what this source actually holds resident
  /// while training, as opposed to the full-file estimate of the default.
  [[nodiscard]] std::size_t resident_bytes() const override {
    return options_.memory_budget_bytes;
  }

  /// Cache behaviour counters (monotonic since construction). The struct is
  /// the shared data::CacheStats; kept as a nested alias for existing users.
  using CacheStats = data::CacheStats;
  [[nodiscard]] std::optional<CacheStats> cache_stats() const override;

  [[nodiscard]] const std::string& path() const noexcept { return path_; }

 private:
  enum class Format { kLibsvm, kBinary };

  /// Reads shard s from the file (no locks held).
  [[nodiscard]] ShardPtr load_shard(std::size_t s) const;
  [[nodiscard]] sparse::CsrMatrix load_shard_libsvm(std::size_t s) const;
  [[nodiscard]] sparse::CsrMatrix load_shard_binary(std::size_t s) const;
  /// Applies the global ±1 label mapping decided at index time.
  void apply_label_map(sparse::CsrMatrix& shard) const;

  std::string path_;
  StreamingOptions options_;
  util::ThreadPool* pool_;
  Format format_ = Format::kLibsvm;

  // Immutable after construction (the index).
  std::size_t rows_ = 0;
  std::size_t dim_ = 0;
  std::size_t nnz_ = 0;
  std::vector<std::size_t> shard_rows_;
  std::vector<std::size_t> shard_begin_;
  io::LibsvmIndex libsvm_index_;            ///< kLibsvm only
  std::vector<std::uint64_t> binary_row_ptr_;  ///< kBinary only: the file's row_ptr
  bool map_labels_ = false;
  /// The smaller of the file's two label values; it maps to -1, everything
  /// else to +1 (the index pass proved the alphabet has exactly two).
  double label_lo_ = 0;

  // materialize() single-flight state.
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  mutable bool materializing_ = false;
  mutable std::shared_ptr<const sparse::CsrMatrix> materialized_;

  /// Declared last: its destructor drains in-flight background loads, and
  /// those loads read the index members above.
  mutable std::unique_ptr<ShardCache> cache_;
};

}  // namespace isasgd::data
