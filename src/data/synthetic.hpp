// Synthetic sparse classification dataset generator.
//
// This is the library's substitution for the paper's LibSVM datasets (see
// DESIGN.md §4): a planted-model generator whose knobs map one-to-one onto
// the quantities the paper's analysis depends on:
//
//   rows/dim/mean_row_nnz → n, d and the ∇f_i sparsity of Table 1,
//   feature_skew          → feature-popularity power law, which controls the
//                           conflict-graph degree Δ̄ (paper §3.1),
//   target_psi            → ψ (Eq. 15) via the lognormal spread of row norms
//                           (closed form: σ = √(−ln ψ)/2),
//   mean_lipschitz        → together with ψ fixes ρ (Eq. 20):
//                           ρ = mean² · (1/ψ − 1).
//
// Labels come from a planted hashed hyperplane plus noise, so error-rate
// curves decay like real classification tasks. The teacher needs no storage:
// w*_j is derived from a hash of j, which keeps generation O(nnz) even at
// d in the millions.
#pragma once

#include <cstdint>

#include "sparse/csr_matrix.hpp"

namespace isasgd::data {

/// Generator parameters. Defaults produce a small well-conditioned problem
/// suitable for unit tests.
struct SyntheticSpec {
  std::size_t rows = 1000;
  std::size_t dim = 500;
  /// Mean nonzeros per row (Poisson-dispersed unless dispersion = 0).
  double mean_row_nnz = 10;
  /// 0 → every row has exactly mean_row_nnz features; 1 → Poisson spread.
  double nnz_dispersion = 1.0;
  /// Feature-popularity skew γ ≥ 1: feature = ⌊d·u^γ⌋ for u ~ U[0,1).
  /// γ = 1 is uniform; larger γ concentrates mass on low feature ids,
  /// raising Δ̄ (more conflicts) like real bag-of-words data.
  double feature_skew = 1.0;
  /// Target ψ ∈ (0, 1]; 1 means all rows get equal norm (IS ≡ uniform).
  double target_psi = 0.95;
  /// Mean per-sample Lipschitz constant E[L_i] = β·E[‖x_i‖²]. Together with
  /// target_psi this pins ρ (see rho_for()).
  double mean_lipschitz = 0.25;
  /// Smoothness β of the objective the dataset will be trained with
  /// (logistic = 0.25). Only used to convert mean_lipschitz into row norms.
  double smoothness_beta = 0.25;
  /// Probability a label is flipped after the teacher's decision.
  double label_noise = 0.05;
  /// Scale of the additive pre-sign margin noise (relative to margin std).
  double margin_noise = 0.1;
  /// Couples sample difficulty to importance: the margin-noise std of row i
  /// is multiplied by (L_i/L̄)^(coupling/2). 0 (default) makes difficulty
  /// independent of importance; positive values reproduce the property of
  /// real text/KDD data that high-norm rows are intrinsically noisier —
  /// which is precisely the regime where importance sampling pays off at a
  /// fixed step size (IS gains require corr(residual², L) > 0; see
  /// DESIGN.md §4 and the Lemma-1 variance identity).
  double difficulty_coupling = 0.0;
  /// Fraction of rows that exactly duplicate an earlier row's features while
  /// drawing an independent label (fresh margin noise + flip). Conflicting
  /// duplicates give the dataset a positive Bayes error floor, like the
  /// repeated student-item interactions in KDD or repeat URLs — without it,
  /// d ≫ n lets every solver memorize to train-error 0 and the paper's
  /// "time to the optimum error" metric degenerates into a race over the
  /// last handful of samples.
  double duplicate_fraction = 0.0;
  std::uint64_t seed = 1234;
};

/// Generates the dataset. Throws std::invalid_argument on nonsensical specs
/// (zero rows/dim, ψ outside (0,1], negative knobs).
sparse::CsrMatrix generate(const SyntheticSpec& spec);

/// The lognormal σ that yields ψ = target for row scale s = e^Z, Z ~ N(0,σ²)
/// (L ∝ s² ⇒ ψ = E[L]²/E[L²] = e^{−4σ²}).
double sigma_for_psi(double target_psi);

/// The ρ (Eq. 20) implied by a spec: ρ = mean_lipschitz²·(1/ψ − 1).
double rho_for(const SyntheticSpec& spec);

/// Inverse of rho_for: mean_lipschitz achieving a target ρ at given ψ.
double mean_lipschitz_for_rho(double target_rho, double target_psi);

/// Deterministic pseudo-random teacher weight for feature j under `seed`
/// (standard-normal marginal). Exposed so tests can recompute margins.
double teacher_weight(std::uint64_t seed, std::uint64_t j);

}  // namespace isasgd::data
