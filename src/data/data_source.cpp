#include "data/data_source.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>
#include <string>

namespace isasgd::data {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// FNV-1a over the 8 bytes of one word — the mixing step both fingerprint
/// implementations share.
inline std::uint64_t fnv1a_word(std::uint64_t h, std::uint64_t word) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (word >> shift) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

std::vector<std::size_t> DataSource::shard_sizes() const {
  std::vector<std::size_t> sizes(shard_count());
  for (std::size_t s = 0; s < sizes.size(); ++s) sizes[s] = shard_rows(s);
  return sizes;
}

std::uint64_t DataSource::fingerprint() const {
  std::uint64_t h = kFnvOffset;
  h = fnv1a_word(h, rows());
  h = fnv1a_word(h, dim());
  h = fnv1a_word(h, nnz());
  h = fnv1a_word(h, shard_count());
  for (std::size_t s = 0; s < shard_count(); ++s) {
    h = fnv1a_word(h, shard_rows(s));
  }
  return h;
}

std::size_t DataSource::resident_bytes() const {
  // CSR footprint estimate: values + column indices per non-zero, one label
  // and one row_ptr entry per row.
  return nnz() * (sizeof(sparse::value_t) + sizeof(sparse::index_t)) +
         rows() * (sizeof(sparse::value_t) + sizeof(std::size_t));
}

sparse::CsrMatrix slice_rows(const sparse::CsrMatrix& data,
                             std::size_t row_begin, std::size_t rows) {
  if (row_begin + rows > data.rows()) {
    throw std::out_of_range("slice_rows: range exceeds dataset");
  }
  const auto& ptr = data.row_ptr();
  const std::size_t nnz_begin = ptr[row_begin];
  const std::size_t nnz_end = ptr[row_begin + rows];
  std::vector<std::size_t> row_ptr(rows + 1);
  for (std::size_t r = 0; r <= rows; ++r) {
    row_ptr[r] = ptr[row_begin + r] - nnz_begin;
  }
  std::vector<sparse::index_t> col(data.col_idx().begin() + nnz_begin,
                                   data.col_idx().begin() + nnz_end);
  std::vector<sparse::value_t> val(data.values().begin() + nnz_begin,
                                   data.values().begin() + nnz_end);
  std::vector<sparse::value_t> lab(data.labels().begin() + row_begin,
                                   data.labels().begin() + row_begin + rows);
  return sparse::CsrMatrix(data.dim(), std::move(row_ptr), std::move(col),
                           std::move(val), std::move(lab));
}

InMemorySource::InMemorySource(const sparse::CsrMatrix& matrix,
                               std::size_t shard_rows)
    : matrix_(&matrix) {
  const std::size_t n = matrix.rows();
  if (shard_rows == 0 || shard_rows >= n) {
    // Zero-copy single shard: the shard matrix aliases the borrowed full
    // matrix (non-owning shared_ptr — lifetime is the caller's contract,
    // exactly as for materialize()).
    auto whole = std::make_shared<Shard>();
    whole->index = 0;
    whole->row_begin = 0;
    whole->matrix = std::shared_ptr<const sparse::CsrMatrix>(
        std::shared_ptr<const void>(), matrix_);
    shards_.push_back(std::move(whole));
    return;
  }
  for (std::size_t begin = 0, s = 0; begin < n; begin += shard_rows, ++s) {
    const std::size_t count = std::min(shard_rows, n - begin);
    auto shard = std::make_shared<Shard>();
    shard->index = s;
    shard->row_begin = begin;
    shard->matrix = std::make_shared<const sparse::CsrMatrix>(
        slice_rows(matrix, begin, count));
    shards_.push_back(std::move(shard));
  }
}

std::size_t InMemorySource::shard_rows(std::size_t s) const {
  return shards_.at(s)->matrix->rows();
}

std::size_t InMemorySource::shard_begin(std::size_t s) const {
  return shards_.at(s)->row_begin;
}

std::uint64_t InMemorySource::fingerprint() const {
  std::uint64_t h = DataSource::fingerprint();
  // Content sample: every label, plus up to 256 strided (column, value-bits)
  // pairs — cheap, stable across processes, and sensitive to the data
  // itself rather than just its shape.
  for (double y : matrix_->labels()) {
    h = fnv1a_word(h, std::bit_cast<std::uint64_t>(y));
  }
  const auto& col = matrix_->col_idx();
  const auto& val = matrix_->values();
  const std::size_t count = col.size();
  const std::size_t stride = std::max<std::size_t>(1, count / 256);
  for (std::size_t k = 0; k < count; k += stride) {
    h = fnv1a_word(h, col[k]);
    h = fnv1a_word(h, std::bit_cast<std::uint64_t>(val[k]));
  }
  return h;
}

ShardPtr InMemorySource::shard(std::size_t s) const {
  if (s >= shards_.size()) {
    throw std::out_of_range("InMemorySource::shard: ordinal " +
                            std::to_string(s) + " of " +
                            std::to_string(shards_.size()));
  }
  return shards_[s];
}

}  // namespace isasgd::data
