#include "data/shard_cache.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/thread_pool.hpp"

namespace isasgd::data {

namespace {

/// Default resident-footprint estimate of one shard, matching what
/// StreamingSource has always charged the budget: the four CSR arrays plus
/// a small fixed overhead for the control blocks.
std::size_t default_shard_bytes(const Shard& shard) {
  const sparse::CsrMatrix& m = *shard.matrix;
  return m.nnz() * (sizeof(sparse::index_t) + sizeof(sparse::value_t)) +
         m.rows() * (sizeof(std::size_t) + sizeof(sparse::value_t)) + 128;
}

}  // namespace

PrefetchAutotuner::PrefetchAutotuner(Options options)
    : options_(options), depth_(std::max<std::size_t>(1, options.initial_depth)) {}

std::size_t PrefetchAutotuner::update(const CacheStats& delta,
                                      std::size_t capacity_shards) {
  if (disabled_) return depth_;  // futility latch: prefetch stays off
  // Useful lookahead is bounded by what the budget can hold resident at
  // once minus the shard being consumed; a capacity-1 cache cannot benefit
  // from any lookahead.
  const std::size_t cap =
      std::min(options_.max_depth,
               capacity_shards > 1 ? capacity_shards - 1 : std::size_t{1});
  const std::size_t before = depth_;
  if (delta.hits + delta.misses == 0) {
    // No demand traffic this window (e.g. a setup-only epoch): nothing to
    // learn, but still respect a shrunken capacity bound.
    depth_ = std::min(depth_, cap);
    if (depth_ != before) ++adjustments_;
    return depth_;
  }
  const double issued =
      static_cast<double>(std::max<std::uint64_t>(1, delta.prefetch_issued));
  const double waste_rate = static_cast<double>(delta.prefetch_wasted) / issued;
  const double race_rate = static_cast<double>(delta.prefetch_races) / issued;
  if (delta.prefetch_issued > 0 && race_rate > options_.severe_race_rate) {
    // The consumer blocked on nearly every prefetch — lookahead is not
    // hiding I/O, it is adding hand-off latency (typical when there is no
    // spare core for the background decode). A run of such epochs proves
    // deepening cannot help; turn prefetch off for good so demand loads
    // decode inline on the consumer.
    if (++severe_epochs_ >= options_.futility_epochs) {
      depth_ = 0;
      disabled_ = true;
      ++adjustments_;
      return depth_;
    }
  } else {
    severe_epochs_ = 0;
  }
  if (delta.prefetch_issued > 0 && waste_rate > options_.waste_tolerance) {
    // Lookahead overruns the budget: prefetched shards die unused.
    depth_ = depth_ > 1 ? depth_ - 1 : 1;
  } else if (delta.misses > 0 || race_rate > options_.race_tolerance) {
    // I/O is not hidden — demand fetches still fault (or block on reads
    // already in flight). Look further ahead.
    depth_ = depth_ + 1;
  }
  depth_ = std::clamp<std::size_t>(depth_, 1, cap);
  if (depth_ != before) ++adjustments_;
  return depth_;
}

ShardCache::ShardCache(std::size_t shard_count, Options options, Loader loader,
                       util::ThreadPool* pool)
    : shard_count_(shard_count),
      options_(std::move(options)),
      loader_(std::move(loader)),
      pool_(pool),
      tuner_(options_.autotune) {}

ShardCache::~ShardCache() {
  // Prefetch tasks capture `this`; wait for every in-flight load before the
  // members they touch disappear.
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return inflight_ == 0; });
}

std::size_t ShardCache::capacity_shards_locked() const {
  if (observed_shards_ == 0 || mean_shard_bytes_ <= 0) return 1;
  const double cap = static_cast<double>(options_.memory_budget_bytes) /
                     mean_shard_bytes_;
  // The cache always retains at least the most recent shard, so capacity is
  // never reported below 1 even when one shard exceeds the budget.
  return cap < 1.0 ? 1 : static_cast<std::size_t>(cap);
}

void ShardCache::install_locked(std::size_t s, ShardPtr shard,
                                bool prefetched) {
  const std::size_t bytes = options_.shard_bytes
                                ? options_.shard_bytes(*shard)
                                : default_shard_bytes(*shard);
  Entry& entry = cache_[s];
  entry.bytes = bytes;
  entry.shard = std::move(shard);
  entry.loading = false;
  entry.prefetched = prefetched;
  entry.last_used = ++tick_;
  ++stats_.loads;
  stats_.resident_bytes += entry.bytes;
  ++stats_.resident_shards;
  // Feed the capacity estimate the autotuner clamps against.
  ++observed_shards_;
  mean_shard_bytes_ += (static_cast<double>(bytes) - mean_shard_bytes_) /
                       static_cast<double>(observed_shards_);
  evict_to_budget_locked(s);
}

void ShardCache::evict_to_budget_locked(std::size_t keep) {
  while (stats_.resident_bytes > options_.memory_budget_bytes) {
    auto victim = cache_.end();
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      if (it->first == keep || it->second.loading || !it->second.shard) {
        continue;
      }
      if (victim == cache_.end() ||
          it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == cache_.end()) break;  // only `keep`/loading entries remain
    stats_.resident_bytes -= victim->second.bytes;
    --stats_.resident_shards;
    ++stats_.evictions;
    if (victim->second.prefetched) {
      // Evicted before any get() consumed it: the prefetch I/O was wasted.
      ++stats_.prefetch_wasted;
    }
    cache_.erase(victim);
  }
}

ShardPtr ShardCache::get(std::size_t s) {
  if (s >= shard_count_) {
    throw std::out_of_range("ShardCache::get: ordinal " + std::to_string(s) +
                            " of " + std::to_string(shard_count_));
  }
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    auto it = cache_.find(s);
    if (it != cache_.end() && it->second.shard) {
      ++stats_.hits;
      if (it->second.prefetched) {
        // Count the prefetch as useful once; later hits on the same entry
        // are ordinary cache hits, so prefetch_hits ≤ prefetch_issued.
        ++stats_.prefetch_hits;
        it->second.prefetched = false;
      }
      it->second.last_used = ++tick_;
      return it->second.shard;
    }
    if (it != cache_.end() && it->second.loading) {
      if (it->second.prefetched && !it->second.raced) {
        // Demand caught up with its own lookahead: the prefetch was issued
        // too late to hide the read. Once per prefetch, not per waiter.
        it->second.raced = true;
        ++stats_.prefetch_races;
      }
      // A prefetch (or another caller) is already reading it; wait.
      cv_.wait(lock);
      continue;
    }
    ++stats_.misses;
    cache_[s].loading = true;
    ++inflight_;
    lock.unlock();
    ShardPtr loaded;
    std::exception_ptr error;
    try {
      loaded = loader_(s);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    --inflight_;
    if (error) {
      cache_.erase(s);
      cv_.notify_all();
      std::rethrow_exception(error);
    }
    install_locked(s, std::move(loaded), /*prefetched=*/false);
    cv_.notify_all();
    return cache_[s].shard;
  }
}

void ShardCache::prefetch(std::size_t s) {
  if (s >= shard_count_ || !pool_ || !options_.prefetch) return;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (tuner_.depth() == 0) return;  // autotuner declared prefetch futile
    if (cache_.count(s)) return;  // resident or already loading
    Entry& entry = cache_[s];
    entry.loading = true;
    entry.prefetched = true;
    ++inflight_;
    ++stats_.prefetch_issued;
    ++stats_.prefetch_inflight;
  }
  pool_->submit([this, s] {
    // Per-shard deterministic retry schedule: same options + same shard ⇒
    // same delays, independent of which pool thread runs the task.
    util::Backoff::Options bopt = options_.retry_backoff;
    bopt.seed ^= static_cast<std::uint64_t>(s) * 0x9e3779b97f4a7c15ull;
    util::Backoff backoff(bopt);
    ShardPtr loaded;
    bool failed = false;
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        loaded = loader_(s);
        failed = false;
        break;
      } catch (...) {
        // A prefetch is a hint: once the retry budget is spent, drop the
        // claim and let the blocking get() reload and surface the error
        // synchronously.
        failed = true;
      }
      if (attempt >= options_.prefetch_retries) break;
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++stats_.prefetch_retries;
      }
      std::this_thread::sleep_for(
          std::chrono::duration<double, std::milli>(backoff.next_ms()));
    }
    const std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
    --stats_.prefetch_inflight;
    if (failed) {
      cache_.erase(s);
    } else {
      install_locked(s, std::move(loaded), /*prefetched=*/true);
    }
    cv_.notify_all();
  });
}

void ShardCache::end_epoch() {
  const std::lock_guard<std::mutex> lock(mu_);
  CacheStats delta;
  delta.loads = stats_.loads - epoch_mark_.loads;
  delta.hits = stats_.hits - epoch_mark_.hits;
  delta.misses = stats_.misses - epoch_mark_.misses;
  delta.evictions = stats_.evictions - epoch_mark_.evictions;
  delta.prefetch_issued = stats_.prefetch_issued - epoch_mark_.prefetch_issued;
  delta.prefetch_hits = stats_.prefetch_hits - epoch_mark_.prefetch_hits;
  delta.prefetch_races = stats_.prefetch_races - epoch_mark_.prefetch_races;
  delta.prefetch_wasted = stats_.prefetch_wasted - epoch_mark_.prefetch_wasted;
  delta.prefetch_retries =
      stats_.prefetch_retries - epoch_mark_.prefetch_retries;
  tuner_.update(delta, capacity_shards_locked());
  epoch_mark_ = stats_;
}

std::size_t ShardCache::prefetch_depth() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tuner_.depth();
}

CacheStats ShardCache::stats() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t ShardCache::autotune_adjustments() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return tuner_.adjustments();
}

}  // namespace isasgd::data
