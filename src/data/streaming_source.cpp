#include "data/streaming_source.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "io/binary.hpp"
#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::data {

namespace {

constexpr char kDatasetMagic[8] = {'I', 'S', 'A', 'S', 'G', 'D', 'D', '1'};

// Binary file layout (io/binary.cpp): 8-byte magic, three u64 header words,
// then the four CSR arrays back to back.
constexpr std::uint64_t kHeaderBytes = 8 + 3 * sizeof(std::uint64_t);

void read_at(std::ifstream& in, std::uint64_t offset, void* out,
             std::size_t bytes, const std::string& path) {
  in.seekg(static_cast<std::streamoff>(offset));
  in.read(static_cast<char*>(out), static_cast<std::streamsize>(bytes));
  if (static_cast<std::size_t>(in.gcount()) != bytes) {
    throw std::runtime_error("StreamingSource: truncated read from '" + path +
                             "' (file changed since indexing?)");
  }
}

}  // namespace

StreamingSource::StreamingSource(std::string path, StreamingOptions options,
                                 util::ThreadPool* pool)
    : path_(std::move(path)), options_(options), pool_(pool) {
  if (options_.shard_rows == 0) {
    throw std::invalid_argument("StreamingSource: shard_rows must be > 0");
  }
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("StreamingSource: cannot open '" + path_ + "'");
  }
  char magic[8] = {};
  in.read(magic, sizeof magic);
  const bool is_binary = static_cast<std::size_t>(in.gcount()) ==
                             sizeof magic &&
                         std::memcmp(magic, kDatasetMagic, sizeof magic) == 0;
  in.clear();
  in.seekg(0);

  if (is_binary) {
    format_ = Format::kBinary;
    std::uint64_t header[3];  // dim, rows, nnz
    read_at(in, 8, header, sizeof header, path_);
    dim_ = header[0];
    rows_ = header[1];
    nnz_ = header[2];
    // Same plausibility bounds as io::read_dataset_binary: a corrupt header
    // must fail before the row_ptr allocation, not inside it. The nnz bound
    // divides instead of multiplying so rows·dim cannot overflow u64.
    if (dim_ > (std::uint64_t{1} << 40) || rows_ > (std::uint64_t{1} << 34) ||
        nnz_ / std::max<std::uint64_t>(1, dim_) > rows_) {
      throw std::runtime_error("StreamingSource: corrupt header in '" + path_ +
                               "'");
    }
    // The row_ptr array is the shard index: 8 bytes per row buys O(1) seeks
    // into the three data arrays.
    binary_row_ptr_.resize(rows_ + 1);
    read_at(in, kHeaderBytes, binary_row_ptr_.data(),
            binary_row_ptr_.size() * sizeof(std::uint64_t), path_);
    if (binary_row_ptr_.front() != 0 || binary_row_ptr_.back() != nnz_ ||
        !std::is_sorted(binary_row_ptr_.begin(), binary_row_ptr_.end())) {
      throw std::runtime_error("StreamingSource: corrupt row_ptr in '" +
                               path_ + "'");
    }
  } else {
    format_ = Format::kLibsvm;
    libsvm_index_ = io::index_libsvm(in, options_.shard_rows,
                                     options_.dim_hint);
    rows_ = libsvm_index_.rows;
    dim_ = libsvm_index_.dim;
    nnz_ = libsvm_index_.nnz;
    const auto& labels = libsvm_index_.distinct_labels;
    if (options_.normalize_binary_labels && labels.size() == 2 &&
        !(labels[0] == -1.0 && labels[1] == 1.0)) {
      map_labels_ = true;
      label_lo_ = labels[0];
    }
  }

  for (std::size_t begin = 0; begin < rows_; begin += options_.shard_rows) {
    shard_begin_.push_back(begin);
    shard_rows_.push_back(std::min(options_.shard_rows, rows_ - begin));
  }

  ShardCache::Options cache_options;
  cache_options.memory_budget_bytes = options_.memory_budget_bytes;
  cache_options.prefetch = options_.prefetch;
  cache_ = std::make_unique<ShardCache>(
      shard_begin_.size(), std::move(cache_options),
      [this](std::size_t s) { return load_shard(s); }, pool_);
}

// The ShardCache destructor (last member, destroyed first) drains in-flight
// background loads before the index members they read disappear.
StreamingSource::~StreamingSource() = default;

void StreamingSource::apply_label_map(sparse::CsrMatrix& shard) const {
  if (!map_labels_) return;
  std::vector<sparse::value_t> mapped;
  mapped.reserve(shard.rows());
  for (double y : shard.labels()) {
    mapped.push_back(y == label_lo_ ? -1.0 : 1.0);
  }
  shard = sparse::CsrMatrix(shard.dim(), shard.row_ptr(), shard.col_idx(),
                            shard.values(), std::move(mapped));
}

sparse::CsrMatrix StreamingSource::load_shard_libsvm(std::size_t s) const {
  // Binary mode to match the indexing stream: shard offsets are raw byte
  // positions, and a text-mode seekg on a CRLF platform would land
  // mid-line. The parser strips '\r' itself either way.
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("StreamingSource: cannot reopen '" + path_ + "'");
  }
  in.seekg(static_cast<std::streamoff>(libsvm_index_.shard_offset[s]));
  io::LibsvmReadOptions opt;
  opt.dim_hint = dim_;
  opt.max_rows = shard_rows_[s];
  opt.normalize_binary_labels = false;  // mapped globally, not per shard
  opt.line_number_offset = libsvm_index_.shard_first_line[s] - 1;
  sparse::CsrMatrix shard = io::read_libsvm(in, opt);
  if (shard.rows() != shard_rows_[s]) {
    throw std::runtime_error("StreamingSource: shard " + std::to_string(s) +
                             " of '" + path_ + "' shrank since indexing");
  }
  apply_label_map(shard);
  return shard;
}

sparse::CsrMatrix StreamingSource::load_shard_binary(std::size_t s) const {
  std::ifstream in(path_, std::ios::binary);
  if (!in) {
    throw std::runtime_error("StreamingSource: cannot reopen '" + path_ + "'");
  }
  const std::size_t r0 = shard_begin_[s];
  const std::size_t r1 = r0 + shard_rows_[s];
  const std::uint64_t p0 = binary_row_ptr_[r0];
  const std::uint64_t p1 = binary_row_ptr_[r1];
  const std::uint64_t col_off =
      kHeaderBytes + (rows_ + 1) * sizeof(std::uint64_t);
  const std::uint64_t val_off = col_off + nnz_ * sizeof(sparse::index_t);
  const std::uint64_t lab_off = val_off + nnz_ * sizeof(sparse::value_t);

  std::vector<std::size_t> row_ptr(r1 - r0 + 1);
  for (std::size_t r = r0; r <= r1; ++r) {
    row_ptr[r - r0] = binary_row_ptr_[r] - p0;
  }
  std::vector<sparse::index_t> col(p1 - p0);
  std::vector<sparse::value_t> val(p1 - p0);
  std::vector<sparse::value_t> lab(r1 - r0);
  read_at(in, col_off + p0 * sizeof(sparse::index_t), col.data(),
          col.size() * sizeof(sparse::index_t), path_);
  read_at(in, val_off + p0 * sizeof(sparse::value_t), val.data(),
          val.size() * sizeof(sparse::value_t), path_);
  read_at(in, lab_off + r0 * sizeof(sparse::value_t), lab.data(),
          lab.size() * sizeof(sparse::value_t), path_);
  // The CsrMatrix constructor re-validates the sliced invariants.
  return sparse::CsrMatrix(dim_, std::move(row_ptr), std::move(col),
                           std::move(val), std::move(lab));
}

ShardPtr StreamingSource::load_shard(std::size_t s) const {
  auto shard = std::make_shared<Shard>();
  shard->index = s;
  shard->row_begin = shard_begin_[s];
  shard->matrix = std::make_shared<const sparse::CsrMatrix>(
      format_ == Format::kBinary ? load_shard_binary(s)
                                 : load_shard_libsvm(s));
  return shard;
}

ShardPtr StreamingSource::shard(std::size_t s) const {
  if (s >= shard_count()) {
    throw std::out_of_range("StreamingSource::shard: ordinal " +
                            std::to_string(s) + " of " +
                            std::to_string(shard_count()));
  }
  return cache_->get(s);
}

void StreamingSource::prefetch(std::size_t s) const { cache_->prefetch(s); }

std::size_t StreamingSource::prefetch_depth() const {
  return cache_->prefetch_depth();
}

void StreamingSource::end_epoch() const { cache_->end_epoch(); }

const sparse::CsrMatrix& StreamingSource::materialize() const {
  std::unique_lock<std::mutex> lock(mu_);
  // Single-flight: a concurrent second caller must wait, not load its own
  // full copy — doubling peak memory is exactly what materialize()'s
  // caller was already risking once.
  cv_.wait(lock, [&] { return !materializing_; });
  if (materialized_) return *materialized_;
  materializing_ = true;
  lock.unlock();
  util::log_warn() << "StreamingSource: materialize() loads the whole '"
                   << path_ << "' into memory, bypassing the "
                   << (options_.memory_budget_bytes >> 20)
                   << " MiB shard budget (solver without streaming "
                      "support?)";
  sparse::CsrMatrix full;
  std::exception_ptr error;
  try {
    if (format_ == Format::kBinary) {
      full = io::read_dataset_binary_file(path_);
    } else {
      io::LibsvmReadOptions opt;
      opt.dim_hint = dim_;
      opt.normalize_binary_labels = options_.normalize_binary_labels;
      full = io::read_libsvm_file(path_, opt);
    }
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  materializing_ = false;
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  materialized_ = std::make_shared<const sparse::CsrMatrix>(std::move(full));
  return *materialized_;
}

std::optional<StreamingSource::CacheStats> StreamingSource::cache_stats()
    const {
  return cache_->stats();
}

}  // namespace isasgd::data
