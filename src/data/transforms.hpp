// Dataset transforms: the preprocessing axis the paper leaves implicit.
//
// The importance distribution p_i ∝ L_i = β‖x_i‖² + reg is a function of
// the *row norms*, so standard preprocessing decides whether IS can help at
// all:
//   * L2-normalising rows sets every L_i equal — ψ (Eq. 15) becomes exactly
//     1, ρ (Eq. 20) becomes exactly 0, and IS degenerates to uniform
//     sampling. A dataset pipeline that normalises (most text pipelines do)
//     silently deletes the paper's entire mechanism.
//   * Uniformly scaling feature values by c multiplies every L_i by c²,
//     leaves ψ invariant, and multiplies ρ by c⁴ — which is why
//     EXPERIMENTS.md treats Table 1's ρ as non-binding (the paper does not
//     state its normalisation) and calibrates to ψ.
//   * Feature hashing (Weinberger et al.) maps d down to a budget with a
//     signed hash; norms are approximately preserved (collisions perturb
//     them), so ψ survives hashing approximately — the cheap way to run the
//     URL/KDD-scale analogs at laptop d without changing the IS story.
// All transforms return new matrices (CsrMatrix is immutable).
#pragma once

#include <cstdint>

#include "sparse/csr_matrix.hpp"

namespace isasgd::data {

/// Scales every row to unit L2 norm (rows with zero norm are kept as-is).
[[nodiscard]] sparse::CsrMatrix l2_normalize_rows(const sparse::CsrMatrix& m);

/// Multiplies every feature value by `c` (labels untouched). `c` must be
/// finite and nonzero.
[[nodiscard]] sparse::CsrMatrix scale_values(const sparse::CsrMatrix& m,
                                             double c);

/// Signed feature hashing into `buckets` columns: feature j lands in bucket
/// h(j) with sign s(j) ∈ {±1}; colliding features add. Throws
/// std::invalid_argument if buckets == 0.
[[nodiscard]] sparse::CsrMatrix hash_features(const sparse::CsrMatrix& m,
                                              std::size_t buckets,
                                              std::uint64_t seed = 0x9e37);

/// Keeps each row independently with probability `fraction` (deterministic
/// in `seed`); returns the subsampled dataset. Throws std::invalid_argument
/// unless 0 < fraction <= 1. At least one row is always kept.
[[nodiscard]] sparse::CsrMatrix subsample_rows(const sparse::CsrMatrix& m,
                                               double fraction,
                                               std::uint64_t seed = 0x5eed);

}  // namespace isasgd::data
