#include "data/paper_datasets.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isasgd::data {

std::vector<PaperDataset> all_paper_datasets() {
  return {PaperDataset::kNews20, PaperDataset::kUrl, PaperDataset::kKddAlgebra,
          PaperDataset::kKddBridge};
}

PaperDatasetConfig paper_dataset_config(PaperDataset id, double scale) {
  if (scale <= 0) {
    throw std::invalid_argument("paper_dataset_config: scale must be > 0");
  }
  PaperDatasetConfig cfg;
  cfg.id = id;
  SyntheticSpec& spec = cfg.spec;
  spec.smoothness_beta = 0.25;  // logistic, the paper's eval objective
  spec.nnz_dispersion = 1.0;
  // Noise calibration (see EXPERIMENTS.md "analog calibration"): enough
  // margin noise that the ERM optimum stays at finite ‖w‖ (otherwise the
  // monitored objective can drift up while error keeps falling), and a
  // small label-flip floor.
  spec.label_noise = 0.03;
  spec.margin_noise = 0.4;
  // Conflicting repeated rows (repeat URLs / student-item retries) give the
  // analogs a positive train-error floor, so Figure 4's "time to the best
  // error" is a stable level instead of a memorization race — see
  // synthetic.hpp's duplicate_fraction note.
  spec.duplicate_fraction = 0.2;

  switch (id) {
    case PaperDataset::kNews20:
      cfg.name = "news20_analog";
      cfg.paper_name = "JMLR_News20";
      cfg.paper_dimension = 1'355'191;
      cfg.paper_instances = 19'996;
      cfg.paper_sparsity = 1e-3;
      cfg.paper_psi = 0.972;
      cfg.paper_rho = 5e-4;
      cfg.lambda = 0.5;
      cfg.paper_epochs = 15;
      spec.rows = 10'000;
      spec.dim = 60'000;
      spec.mean_row_nnz = 60;  // density 1e-3: the paper's "relative dense" regime
      spec.feature_skew = 2.0; // bag-of-words-like popularity skew
      spec.seed = 0x2001;
      break;
    case PaperDataset::kUrl:
      cfg.name = "url_analog";
      cfg.paper_name = "ICML_URL";
      cfg.paper_dimension = 3'231'961;
      cfg.paper_instances = 2'396'130;
      cfg.paper_sparsity = 1e-5;
      cfg.paper_psi = 0.964;
      cfg.paper_rho = 3e-4;
      cfg.lambda = 0.05;
      cfg.paper_epochs = 18;
      spec.rows = 60'000;
      spec.dim = 1'200'000;
      spec.mean_row_nnz = 12;  // density 1e-5
      spec.feature_skew = 1.6;
      spec.seed = 0x2002;
      break;
    case PaperDataset::kKddAlgebra:
      cfg.name = "kdda_analog";
      cfg.paper_name = "KDD2010_Algebra";
      cfg.paper_dimension = 20'216'830;
      cfg.paper_instances = 8'407'752;
      cfg.paper_sparsity = 1e-7;
      cfg.paper_psi = 0.892;
      cfg.paper_rho = 1e-4;
      cfg.lambda = 0.5;
      cfg.paper_epochs = 72;
      spec.rows = 90'000;
      spec.dim = 3'000'000;
      spec.mean_row_nnz = 9;  // density 3e-6: deepest sparse regime we can
                              // afford at laptop dim (paper: 1e-7 at d=2e7)
      spec.feature_skew = 1.3;
      spec.difficulty_coupling = 2.0;  // heavy rows are noisier (see synthetic.hpp)
      spec.seed = 0x2003;
      break;
    case PaperDataset::kKddBridge:
      cfg.name = "kddb_analog";
      cfg.paper_name = "KDD2010_Bridge";
      cfg.paper_dimension = 29'890'095;
      cfg.paper_instances = 19'264'097;
      cfg.paper_sparsity = 1e-7;
      cfg.paper_psi = 0.877;
      cfg.paper_rho = 2e-4;
      cfg.lambda = 0.5;
      cfg.paper_epochs = 72;
      spec.rows = 120'000;
      spec.dim = 4'000'000;
      spec.mean_row_nnz = 8;  // density 2e-6
      spec.feature_skew = 1.3;
      spec.difficulty_coupling = 2.0;
      spec.seed = 0x2004;
      break;
  }

  // Calibrate the importance distribution to the Table-1 ψ and ρ exactly.
  spec.target_psi = cfg.paper_psi;
  spec.mean_lipschitz = mean_lipschitz_for_rho(cfg.paper_rho, cfg.paper_psi);

  if (scale != 1.0) {
    spec.rows = std::max<std::size_t>(
        64, static_cast<std::size_t>(std::llround(
                static_cast<double>(spec.rows) * scale)));
    spec.dim = std::max<std::size_t>(
        256, static_cast<std::size_t>(std::llround(
                 static_cast<double>(spec.dim) * scale)));
    spec.mean_row_nnz =
        std::clamp(spec.mean_row_nnz, 1.0, static_cast<double>(spec.dim));
  }
  return cfg;
}

sparse::CsrMatrix generate_paper_dataset(PaperDataset id, double scale) {
  return generate(paper_dataset_config(id, scale).spec);
}

PaperDataset paper_dataset_from_name(const std::string& name) {
  for (PaperDataset id : all_paper_datasets()) {
    const PaperDatasetConfig cfg = paper_dataset_config(id);
    if (cfg.name == name || cfg.paper_name == name) return id;
  }
  // Short aliases for CLI ergonomics.
  if (name == "news20") return PaperDataset::kNews20;
  if (name == "url") return PaperDataset::kUrl;
  if (name == "kdda" || name == "algebra") return PaperDataset::kKddAlgebra;
  if (name == "kddb" || name == "bridge") return PaperDataset::kKddBridge;
  throw std::invalid_argument("paper_dataset_from_name: unknown dataset '" +
                              name + "'");
}

}  // namespace isasgd::data
