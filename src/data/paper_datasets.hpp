// Laptop-scale analogs of the paper's four evaluation datasets (Table 1).
//
//   Paper:    News20 (JMLR)      d=1.36e6  n=2.0e4  spa=1e-3  ψ=0.972 ρ=5e-4
//             URL (ICML)         d=3.23e6  n=2.4e6  spa=1e-5  ψ=0.964 ρ=3e-4
//             Algebra (KDD)      d=2.02e7  n=8.4e6  spa=1e-7  ψ=0.892 ρ=1e-4
//             Bridge (KDD)       d=2.99e7  n=1.9e7  spa=1e-7  ψ=0.877 ρ=2e-4
//
// The analogs preserve ψ and ρ exactly (closed-form generator calibration)
// and preserve the *ordering and regime* of the sparsity column (1e-3 dense
// regime vs. ≤1e-5 sparse regime) while scaling n and d ~50–100× down so a
// full Figure-3/4 sweep runs in minutes. DESIGN.md §4 records the
// substitution rationale; EXPERIMENTS.md compares achieved vs. target stats.
#pragma once

#include <string>
#include <vector>

#include "data/synthetic.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::data {

/// Identifiers for the paper's four evaluation datasets.
enum class PaperDataset { kNews20, kUrl, kKddAlgebra, kKddBridge };

/// All four, in Table-1 order.
std::vector<PaperDataset> all_paper_datasets();

/// Static description tying an analog to its Table-1 row.
struct PaperDatasetConfig {
  PaperDataset id;
  std::string name;        ///< e.g. "news20_analog"
  std::string paper_name;  ///< e.g. "JMLR_News20"
  SyntheticSpec spec;      ///< calibrated generator parameters
  // Paper-reported values (for the Table-1 bench's "paper" columns):
  std::size_t paper_dimension;
  std::size_t paper_instances;
  double paper_sparsity;
  double paper_psi;
  double paper_rho;
  /// Step size λ used for this dataset in Figures 3–5.
  double lambda;
  /// Epoch count of the paper's Figure-3 x-axis.
  std::size_t paper_epochs;
};

/// Returns the calibrated config. `scale` multiplies rows and dim (and
/// leaves densities/ψ/ρ untouched): 1.0 is the default laptop scale; tests
/// use ~0.02 for sub-second generation.
PaperDatasetConfig paper_dataset_config(PaperDataset id, double scale = 1.0);

/// Generates the analog dataset for `id` at `scale`.
sparse::CsrMatrix generate_paper_dataset(PaperDataset id, double scale = 1.0);

/// Lookup by analog name or paper name (case-sensitive). Throws on unknown.
PaperDataset paper_dataset_from_name(const std::string& name);

}  // namespace isasgd::data
