#include "data/packed_source.hpp"

#include <utility>

#include "util/logging.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::data {

/// Recycled CSR decode buffers. A decoded shard's matrix carries a deleter
/// that returns its four arrays here, so in steady state every decode
/// starts from capacity-warm vectors and the data path stops allocating.
struct PackedSource::BufferPool {
  struct Buffers {
    std::vector<std::size_t> row_ptr;
    std::vector<sparse::index_t> col_idx;
    std::vector<sparse::value_t> values;
    std::vector<sparse::value_t> labels;
  };

  Buffers acquire() {
    const std::lock_guard<std::mutex> lock(mu);
    if (free.empty()) return {};
    Buffers b = std::move(free.back());
    free.pop_back();
    ++reuses;
    return b;
  }

  void recycle(Buffers b) {
    const std::lock_guard<std::mutex> lock(mu);
    // An unbounded free list would defeat the memory budget if a burst of
    // still-referenced shards all recycled at once; a small cap keeps the
    // pool at "cache capacity + in-flight" depth in practice.
    if (free.size() < 16) free.push_back(std::move(b));
  }

  std::mutex mu;
  std::vector<Buffers> free;
  std::uint64_t reuses = 0;
};

PackedSource::PackedSource(std::string path, PackedOptions options,
                           util::ThreadPool* pool)
    : options_(options),
      pool_(pool),
      reader_(std::move(path)),
      buffers_(std::make_shared<BufferPool>()) {
  ShardCache::Options cache_options;
  cache_options.memory_budget_bytes = options_.memory_budget_bytes;
  cache_options.prefetch = options_.prefetch;
  cache_options.autotune = options_.autotune;
  cache_ = std::make_unique<ShardCache>(
      reader_.shard_count(), std::move(cache_options),
      [this](std::size_t s) { return load_shard(s); }, pool_);
}

// The ShardCache destructor (last member, destroyed first) drains in-flight
// background decodes before reader_/buffers_ disappear.
PackedSource::~PackedSource() = default;

ShardPtr PackedSource::load_shard(std::size_t s) const {
  BufferPool::Buffers buf = buffers_->acquire();
  reader_.decode_shard(s, buf.row_ptr, buf.col_idx, buf.values, buf.labels);
  auto matrix = sparse::CsrMatrix::from_trusted_parts(
      reader_.dim(), std::move(buf.row_ptr), std::move(buf.col_idx),
      std::move(buf.values), std::move(buf.labels));

  // The deleter recycles the arrays instead of freeing them. It holds the
  // pool by shared_ptr, so shards handed to a solver stay safe to destroy
  // after the source itself is gone.
  std::shared_ptr<const sparse::CsrMatrix> owned(
      new sparse::CsrMatrix(std::move(matrix)),
      [pool = buffers_](sparse::CsrMatrix* m) {
        BufferPool::Buffers reclaimed;
        m->release(reclaimed.row_ptr, reclaimed.col_idx, reclaimed.values,
                   reclaimed.labels);
        delete m;
        pool->recycle(std::move(reclaimed));
      });

  auto shard = std::make_shared<Shard>();
  shard->index = s;
  shard->row_begin = reader_.shard_begin(s);
  shard->matrix = std::move(owned);
  return shard;
}

ShardPtr PackedSource::shard(std::size_t s) const { return cache_->get(s); }

void PackedSource::prefetch(std::size_t s) const { cache_->prefetch(s); }

std::size_t PackedSource::prefetch_depth() const {
  return cache_->prefetch_depth();
}

void PackedSource::end_epoch() const { cache_->end_epoch(); }

std::uint64_t PackedSource::buffer_pool_reuses() const {
  const std::lock_guard<std::mutex> lock(buffers_->mu);
  return buffers_->reuses;
}

const sparse::CsrMatrix& PackedSource::materialize() const {
  std::unique_lock<std::mutex> lock(mu_);
  // Single-flight, same contract as StreamingSource::materialize().
  cv_.wait(lock, [&] { return !materializing_; });
  if (materialized_) return *materialized_;
  materializing_ = true;
  lock.unlock();
  util::log_warn() << "PackedSource: materialize() decodes the whole '"
                   << reader_.path() << "' into memory, bypassing the "
                   << (options_.memory_budget_bytes >> 20)
                   << " MiB shard budget (solver without streaming support?)";
  std::shared_ptr<const sparse::CsrMatrix> full;
  std::exception_ptr error;
  try {
    // Concatenate per-shard decodes; global invariants hold by construction
    // because shard row ranges are contiguous and each decode is in-range.
    std::vector<std::size_t> row_ptr{0};
    std::vector<sparse::index_t> col_idx;
    std::vector<sparse::value_t> values;
    std::vector<sparse::value_t> labels;
    row_ptr.reserve(reader_.rows() + 1);
    col_idx.reserve(reader_.nnz());
    values.reserve(reader_.nnz());
    labels.reserve(reader_.rows());
    std::vector<std::size_t> srow;
    std::vector<sparse::index_t> scol;
    std::vector<sparse::value_t> sval;
    std::vector<sparse::value_t> slab;
    for (std::size_t s = 0; s < reader_.shard_count(); ++s) {
      reader_.decode_shard(s, srow, scol, sval, slab);
      const std::size_t base = row_ptr.back();
      for (std::size_t r = 1; r < srow.size(); ++r) {
        row_ptr.push_back(base + srow[r]);
      }
      col_idx.insert(col_idx.end(), scol.begin(), scol.end());
      values.insert(values.end(), sval.begin(), sval.end());
      labels.insert(labels.end(), slab.begin(), slab.end());
    }
    full = std::make_shared<const sparse::CsrMatrix>(
        sparse::CsrMatrix::from_trusted_parts(
            reader_.dim(), std::move(row_ptr), std::move(col_idx),
            std::move(values), std::move(labels)));
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  materializing_ = false;
  cv_.notify_all();
  if (error) std::rethrow_exception(error);
  materialized_ = std::move(full);
  return *materialized_;
}

}  // namespace isasgd::data
