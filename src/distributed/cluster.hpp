// Cluster cost model for the distributed (multi-node) simulations.
//
// The paper frames IS-ASGD for "cores/nodes": §2.3's importance imbalance is
// stated for data segments dispatched to nodes, and the sparsity argument of
// §1.2 is, on a cluster, a *communication* argument — an index-compressed
// stochastic gradient is a few dozen bytes on the wire while any dense
// d-length aggregate (SVRG's μ, or a synchronous all-reduce of averaged
// gradients) pays Θ(d) bandwidth per exchange. We have no cluster, so we
// simulate one (DESIGN.md §4): a ClusterSpec prices compute and messages in
// simulated seconds, and the distributed solvers advance a discrete-event
// clock with those prices. Traces produced this way carry *simulated*
// seconds in their wall-clock field, directly comparable across algorithms
// under the same spec.
//
// Defaults approximate a 10 GbE cluster of commodity nodes (50 µs one-way
// latency, ~2 ns per nnz of gradient compute — a few hundred Mflop/s of
// effective sparse throughput per core).
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "distributed/recovery.hpp"
#include "net/fault.hpp"

namespace isasgd::distributed {

/// How the dist.* solvers execute.
enum class Backend {
  /// Discrete-event simulation on one thread (the default; every PR-4
  /// engine). Traces carry simulated seconds.
  kSimulate,
  /// Real multi-process execution: one parameter-server process plus
  /// `nodes` worker processes exchanging frames over a net:: transport.
  /// Traces carry host wall-clock seconds. Requires
  /// Schedule::kFencedRoundRobin (the deterministic schedule is what makes
  /// the real run reproducible and cross-checkable against the simulator).
  kProcess,
};

/// Update schedule for the distributed engines.
enum class Schedule {
  /// Free-running asynchronous schedule under the discrete-event cost
  /// model: staleness *emerges* from latency/bandwidth prices. Simulation
  /// only.
  kEventClock,
  /// Deterministic fenced schedule: per round every active node takes
  /// exactly one step in rank order and updates apply immediately (for
  /// all-reduce: per-node partial accumulators merged in rank order). The
  /// same schedule is implemented by the simulator and the real process
  /// backend, so for a fixed seed the two produce bit-identical models —
  /// the correctness anchor of the process backend.
  kFencedRoundRobin,
};

[[nodiscard]] constexpr const char* backend_name(Backend b) noexcept {
  return b == Backend::kSimulate ? "simulate" : "process";
}
[[nodiscard]] constexpr const char* schedule_name(Schedule s) noexcept {
  return s == Schedule::kEventClock ? "event_clock" : "fenced_round_robin";
}

/// Prices for the simulated cluster. All rates must be positive.
struct ClusterSpec {
  /// Number of worker nodes (the paper's numT at node granularity).
  std::size_t nodes = 4;
  /// One-way message latency in seconds (per message, size-independent).
  double latency_seconds = 50e-6;
  /// Link bandwidth in bytes/second (per node NIC, full duplex).
  double bandwidth_bytes_per_second = 1.25e9;  // 10 GbE
  /// Gradient compute cost per nonzero (margin pass + update build).
  double compute_seconds_per_nnz = 2e-9;
  /// Server-side apply cost per nonzero of a sparse update.
  double apply_seconds_per_nnz = 1e-9;
  /// Wire size of one index-compressed nonzero (4-byte index + 8-byte value).
  std::size_t bytes_per_nnz = 12;
  /// Wire size of one dense coordinate (value only; indices implicit).
  std::size_t bytes_per_dense_coord = 8;
  /// Flow control: unacknowledged pushes a worker may have in flight before
  /// it stalls. Sparse-gradient compute is nanoseconds while a network round
  /// trip is tens of microseconds; without this bound a simulated worker
  /// would queue its entire epoch against the initial model and the
  /// emergent staleness would degenerate to n/2 (real parameter servers
  /// bound their send windows for exactly this reason).
  std::size_t max_outstanding_pushes = 4;
  /// Per-node relative compute speeds (empty = all 1.0; otherwise one
  /// positive entry per node; node a's gradient costs compute/speed[a]).
  /// Models stragglers: a heterogeneous cluster where static equal shards
  /// leave *both* the synchronous and the asynchronous solver bound by the
  /// slowest node's epoch — the measurement motivating speed-weighted
  /// sharding (see EXPERIMENTS.md).
  std::vector<double> node_speed;

  /// Execution backend (see Backend). kSimulate preserves every PR-4
  /// behaviour; kProcess spawns a real process group.
  Backend backend = Backend::kSimulate;
  /// Update schedule (see Schedule). kProcess requires kFencedRoundRobin.
  Schedule schedule = Schedule::kEventClock;
  /// Transport for the process backend: "shm" (same-host shared-memory
  /// rings) or "tcp" (kernel sockets). Ignored under kSimulate.
  std::string transport = "shm";
  /// Optional explicit listen address for the process backend's parameter
  /// server ("tcp://host:port" or "shm://path-prefix"). Empty = pick one:
  /// an ephemeral loopback port for tcp, a /tmp prefix keyed by pid for
  /// shm. Must agree with `transport`'s scheme when set.
  std::string bind_address;

  /// Deterministic wire-fault injection for the process backend (frame
  /// drops, delays, torn writes, resets — see net/fault.hpp). Disabled by
  /// default; rejected under kSimulate, where there is no wire.
  net::FaultSpec wire_faults;
  /// Scripted worker crash (and optional rejoin) — honoured by the process
  /// backend *and* the sim.* fenced/event-clock mirrors, which is what makes
  /// crash recovery conformance-testable. Disabled by default.
  FaultScenario fault;
  /// Recovery policy and fault-tolerant wire deadlines. Only consulted when
  /// `wire_faults` or `fault` is enabled.
  RecoveryOptions recovery;

  /// The single validation point for every entry into the simulated
  /// cluster: TrainerBuilder::cluster / ExecutionContext::set_cluster call
  /// it at configuration time and the run_* engines call it defensively —
  /// all through this one implementation. Throws std::invalid_argument
  /// *naming the offending field* on a nonsensical spec. The !(x > 0) form
  /// (rather than x <= 0) deliberately rejects NaN too.
  void validate() const {
    auto reject = [](const char* field, const char* requirement) {
      throw std::invalid_argument(std::string("ClusterSpec::") + field +
                                  ": " + requirement);
    };
    if (nodes == 0) reject("nodes", "must be at least 1");
    if (!(latency_seconds >= 0)) {
      reject("latency_seconds", "must be non-negative");
    }
    if (!(bandwidth_bytes_per_second > 0)) {
      reject("bandwidth_bytes_per_second", "must be positive");
    }
    if (!(compute_seconds_per_nnz > 0)) {
      reject("compute_seconds_per_nnz", "must be positive");
    }
    if (!(apply_seconds_per_nnz >= 0)) {
      reject("apply_seconds_per_nnz", "must be non-negative");
    }
    if (bytes_per_nnz == 0) reject("bytes_per_nnz", "must be positive");
    if (bytes_per_dense_coord == 0) {
      reject("bytes_per_dense_coord", "must be positive");
    }
    if (max_outstanding_pushes == 0) {
      reject("max_outstanding_pushes", "must be at least 1");
    }
    if (!node_speed.empty()) {
      if (node_speed.size() != nodes) {
        reject("node_speed", "must be empty or have one entry per node");
      }
      for (double s : node_speed) {
        if (!(s > 0)) reject("node_speed", "entries must be positive");
      }
    }
    if (transport != "shm" && transport != "tcp") {
      reject("transport", "must be \"shm\" or \"tcp\"");
    }
    if (backend == Backend::kProcess &&
        schedule != Schedule::kFencedRoundRobin) {
      reject("schedule",
             "the process backend requires the fenced round-robin schedule "
             "(the event-clock schedule exists only in simulation)");
    }
    if (!bind_address.empty() &&
        bind_address.rfind(transport + "://", 0) != 0) {
      reject("bind_address", "scheme must match ClusterSpec::transport");
    }
    wire_faults.validate();
    if (wire_faults.enabled() && backend == Backend::kSimulate) {
      reject("wire_faults",
             "wire-fault injection needs the process backend (the simulator "
             "has no wire; script a FaultScenario instead)");
    }
    fault.validate(nodes);
    if (fault.enabled() || wire_faults.enabled()) recovery.validate();
  }

  /// Relative speed of node a (1.0 when node_speed is unset).
  [[nodiscard]] double speed(std::size_t a) const {
    return node_speed.empty() ? 1.0 : node_speed[a];
  }

  /// Seconds for node a to compute one stochastic gradient of `nnz`
  /// nonzeros, honouring its relative speed.
  [[nodiscard]] double node_compute_seconds(std::size_t a,
                                            std::size_t nnz) const {
    return compute_seconds(nnz) / speed(a);
  }

  /// Seconds to push one message of `bytes` over one link.
  [[nodiscard]] double message_seconds(std::size_t bytes) const {
    return latency_seconds +
           static_cast<double>(bytes) / bandwidth_bytes_per_second;
  }

  /// Seconds to push one index-compressed sparse update of `nnz` nonzeros.
  [[nodiscard]] double sparse_push_seconds(std::size_t nnz) const {
    return message_seconds(nnz * bytes_per_nnz);
  }

  /// Seconds to compute one stochastic gradient of `nnz` nonzeros.
  [[nodiscard]] double compute_seconds(std::size_t nnz) const {
    return static_cast<double>(nnz) * compute_seconds_per_nnz;
  }

  /// Seconds for a ring all-reduce of a dense vector of dimension `dim`
  /// across `nodes` participants: 2(k−1) phases, each moving d/k coordinates
  /// per node and paying one latency.
  [[nodiscard]] double ring_allreduce_seconds(std::size_t dim) const {
    if (nodes <= 1) return 0.0;
    const double k = static_cast<double>(nodes);
    const double phase_bytes =
        static_cast<double>(dim) * static_cast<double>(bytes_per_dense_coord) / k;
    return 2.0 * (k - 1.0) *
           (latency_seconds + phase_bytes / bandwidth_bytes_per_second);
  }
};

}  // namespace isasgd::distributed
