#include "distributed/param_server.hpp"

#include <memory>
#include <queue>
#include <vector>

#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/schedule.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

namespace {

enum class EventKind { kComputeDone, kApply };

/// One scheduled event. For kComputeDone the payload describes the gradient
/// whose computation finishes now; for kApply the same payload lands in the
/// server model.
struct Event {
  double time = 0;
  std::uint64_t seq = 0;  // FIFO tie-break
  EventKind kind = EventKind::kComputeDone;
  std::size_t node = 0;
  std::uint32_t row = 0;
  double gradient_scale = 0;
  double scaled_step = 0;
  std::size_t computed_after_applies = 0;  // applied-counter at compute start
};

struct TimeOrder {
  bool operator()(const Event& a, const Event& b) const {
    return a.time != b.time ? a.time > b.time : a.seq > b.seq;
  }
};

}  // namespace

solvers::Trace run_param_server(const sparse::CsrMatrix& data,
                                const objectives::Objective& objective,
                                const solvers::SolverOptions& options,
                                const ClusterSpec& spec, bool use_importance,
                                const solvers::EvalFn& eval,
                                ParamServerReport* report) {
  spec.validate();
  const std::size_t n = data.rows();
  const std::size_t k = std::min(spec.nodes, n);
  std::vector<double> w(data.dim(), 0.0);
  solvers::TraceRecorder recorder(
      use_importance ? "ps_is_asgd" : "ps_asgd", k, options.step_size, eval);

  // ---- Partition across nodes (Algorithm 4 lines 2–11) ----
  util::Stopwatch setup;
  const std::vector<double> importance =
      solvers::detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xd157;
  const partition::PartitionPlan plan(importance, k, popt);

  struct NodeState {
    partition::Shard shard;
    std::vector<double> weight;  // 1/(N_a·p_i) per local slot (unit if ASGD)
    std::unique_ptr<sampling::AliasTable> sampler;  // null → uniform
    util::Rng rng;
    std::size_t quota = 0;        // computes remaining this epoch
    std::size_t outstanding = 0;  // unacknowledged pushes in flight
    bool stalled = false;         // blocked on the flow-control window
  };
  std::vector<NodeState> node(k);
  for (std::size_t a = 0; a < k; ++a) {
    node[a].shard = plan.shard(a);
    const std::size_t local_n = node[a].shard.rows.size();
    node[a].weight.assign(local_n, 1.0);
    if (use_importance) {
      node[a].sampler = std::make_unique<sampling::AliasTable>(
          node[a].shard.probabilities);
      for (std::size_t s = 0; s < local_n; ++s) {
        const double p = node[a].shard.probabilities[s];
        node[a].weight[s] =
            p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
      }
    }
    node[a].rng.reseed(util::derive_seed(options.seed, 0xc0de + a));
  }
  recorder.add_setup_seconds(setup.seconds());
  recorder.record(0, 0.0, w);

  std::priority_queue<Event, std::vector<Event>, TimeOrder> events;
  std::uint64_t seq_no = 0;
  std::size_t applied = 0, messages = 0, bytes_sent = 0;
  double staleness_sum = 0;
  double sim_time = 0;

  // Starts node a's next gradient at simulated time `now`: reads the margin
  // against the *current* server state (this is ŵ for every in-flight
  // update) and schedules the compute-done event.
  auto start_compute = [&](std::size_t a, double now, double lambda) {
    NodeState& ns = node[a];
    const std::size_t local_n = ns.shard.rows.size();
    const std::size_t slot =
        ns.sampler ? ns.sampler->sample(ns.rng)
                   : static_cast<std::size_t>(
                         util::uniform_index(ns.rng, local_n));
    const std::size_t i = ns.shard.rows[slot];
    const auto x = data.row(i);
    const auto idx = x.indices();
    const auto val = x.values();
    double margin = 0;
    for (std::size_t j = 0; j < idx.size(); ++j) margin += w[idx[j]] * val[j];
    events.push(Event{
        .time = now + spec.node_compute_seconds(a, idx.size()),
        .seq = seq_no++,
        .kind = EventKind::kComputeDone,
        .node = a,
        .row = static_cast<std::uint32_t>(i),
        .gradient_scale = objective.gradient_scale(margin, data.label(i)),
        .scaled_step = lambda * ns.weight[slot],
        .computed_after_applies = applied,
    });
    --ns.quota;
  };

  util::AccumulatingTimer host_clock;  // real cost of running the simulation
  host_clock.start();
  for (std::size_t epoch = 1; epoch <= options.epochs; ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t a = 0; a < k; ++a) {
      node[a].quota = node[a].shard.rows.size();
      if (node[a].quota > 0) start_compute(a, sim_time, lambda);
    }
    while (!events.empty()) {
      Event ev = events.top();
      events.pop();
      sim_time = ev.time;
      if (ev.kind == EventKind::kComputeDone) {
        // Push goes on the wire; the node pipelines into its next gradient
        // unless its flow-control window (max_outstanding_pushes) is full,
        // in which case it stalls until an ack frees a slot.
        const std::size_t nnz = data.row(ev.row).indices().size();
        NodeState& ns = node[ev.node];
        ev.kind = EventKind::kApply;
        ev.time = sim_time + spec.sparse_push_seconds(nnz) +
                  spec.apply_seconds_per_nnz * static_cast<double>(nnz);
        ev.seq = seq_no++;
        ++messages;
        bytes_sent += nnz * spec.bytes_per_nnz;
        events.push(ev);
        ++ns.outstanding;
        if (ns.quota > 0) {
          if (ns.outstanding < spec.max_outstanding_pushes) {
            start_compute(ev.node, sim_time, lambda);
          } else {
            ns.stalled = true;
          }
        }
      } else {
        const auto x = data.row(ev.row);
        const auto idx = x.indices();
        const auto val = x.values();
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const std::size_t c = idx[j];
          w[c] -= ev.scaled_step *
                  (ev.gradient_scale * val[j] + options.reg.subgradient(w[c]));
        }
        staleness_sum +=
            static_cast<double>(applied - ev.computed_after_applies);
        ++applied;
        // Ack returns after one more latency hop; a stalled worker resumes
        // then (the ack itself needs no event — the worker's next compute
        // simply starts at ack arrival).
        NodeState& ns = node[ev.node];
        --ns.outstanding;
        if (ns.stalled && ns.quota > 0) {
          ns.stalled = false;
          start_compute(ev.node, sim_time + spec.latency_seconds, lambda);
        }
      }
    }
    // Queue drained = epoch fence: every push of the epoch has landed.
    host_clock.stop();
    recorder.record(epoch, sim_time, w);
    host_clock.start();
  }
  host_clock.stop();

  if (report) {
    report->mean_staleness_updates =
        applied > 0 ? staleness_sum / static_cast<double>(applied) : 0;
    report->messages = messages;
    report->bytes_sent = bytes_sent;
    report->simulated_seconds = sim_time;
    report->phi_imbalance = plan.imbalance();
    report->applied_strategy = plan.applied_strategy();
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(sim_time);
}

}  // namespace isasgd::distributed
