#include "distributed/param_server.hpp"

#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "distributed/recovery.hpp"
#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "sim/event_loop.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/schedule.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

namespace {

enum class EventKind { kComputeDone, kApply };

/// One scheduled event's payload. For kComputeDone it describes the gradient
/// whose computation finishes now; for kApply the same payload lands in the
/// server model. `shard` is null on the classic in-memory path (row is a
/// global id into the full matrix) and pins the owning shard on the
/// shard-major path (row is shard-local).
struct PsEvent {
  EventKind kind = EventKind::kComputeDone;
  std::size_t node = 0;
  std::uint32_t row = 0;
  data::ShardPtr shard;
  double gradient_scale = 0;
  double scaled_step = 0;
  std::size_t computed_after_applies = 0;  // applied-counter at compute start
};

/// Counters shared by both paths; the epilogue folds them into the report.
struct PsCounters {
  std::size_t applied = 0;
  std::size_t messages = 0;
  std::size_t bytes_sent = 0;
  double staleness_sum = 0;
};

void fill_report(ParamServerReport* report, const PsCounters& c,
                 double simulated_seconds,
                 const partition::PartitionPlan& plan) {
  if (!report) return;
  report->mean_staleness_updates =
      c.applied > 0 ? c.staleness_sum / static_cast<double>(c.applied) : 0;
  report->messages = c.messages;
  report->bytes_sent = c.bytes_sent;
  report->simulated_seconds = simulated_seconds;
  report->phi_imbalance = plan.imbalance();
  report->applied_strategy = plan.applied_strategy();
}

}  // namespace

solvers::Trace run_param_server(const sparse::CsrMatrix& data,
                                const objectives::Objective& objective,
                                const solvers::SolverOptions& options,
                                const ClusterSpec& spec, bool use_importance,
                                const solvers::EvalFn& eval,
                                ParamServerReport* report,
                                solvers::TrainingObserver* observer) {
  spec.validate();
  const std::size_t n = data.rows();
  const std::size_t k = std::min(spec.nodes, n);
  const FaultScenario& scenario = spec.fault;
  if (scenario.enabled()) scenario.validate(k);
  std::vector<double> w(data.dim(), 0.0);
  solvers::TraceRecorder recorder(use_importance ? "ps_is_asgd" : "ps_asgd", k,
                                  options.step_size, eval, observer);
  recorder.mark_simulated_time();

  // ---- Partition across nodes (Algorithm 4 lines 2–11) ----
  util::Stopwatch setup;
  const std::vector<double> importance =
      solvers::detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xd157;
  const partition::PartitionPlan plan(importance, k, popt);

  // Walks (sample streams over one shard) and executors (simulated
  // processes) are separate axes, tied together by the fence-time
  // plan_assignment — the same re-planning the real controller and the
  // fenced mirror run. Walk state (shard, sampler, RNG) survives its home
  // executor's crash; the adopting executor continues the stream.
  struct WalkState {
    partition::Shard shard;
    std::vector<double> weight;  // 1/(N_a·p_i) per local slot (unit if ASGD)
    std::unique_ptr<sampling::AliasTable> sampler;  // null → uniform
    util::Rng rng;
    std::size_t quota = 0;  // computes remaining this epoch
  };
  std::vector<WalkState> walk(k);
  for (std::size_t a = 0; a < k; ++a) {
    walk[a].shard = plan.shard(a);
    const std::size_t local_n = walk[a].shard.rows.size();
    walk[a].weight.assign(local_n, 1.0);
    if (use_importance) {
      walk[a].sampler = std::make_unique<sampling::AliasTable>(
          walk[a].shard.probabilities);
      for (std::size_t s = 0; s < local_n; ++s) {
        const double p = walk[a].shard.probabilities[s];
        walk[a].weight[s] =
            p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
      }
    }
    walk[a].rng.reseed(util::derive_seed(options.seed, 0xc0de + a));
  }
  std::vector<char> ex_alive(k, 1);
  Assignment assign = identity_assignment(k);
  std::vector<std::size_t> ex_cursor(k, 0);       // into assign[e]
  std::vector<std::size_t> ex_outstanding(k, 0);  // unacked pushes in flight
  std::vector<char> ex_stalled(k, 0);  // blocked on the flow-control window
  std::uint64_t crash_events = 0, rejoin_events = 0;
  recorder.add_setup_seconds(setup.seconds());
  recorder.record(0, 0.0, w);

  sim::EventLoop<PsEvent> loop;
  PsCounters counters;
  bool crashing = false;
  std::size_t crash_left = 0;

  // Starts executor e's next gradient at simulated time `now`: picks its
  // current walk (advancing past drained ones), reads the margin against
  // the *current* server state (this is ŵ for every in-flight update) and
  // schedules the compute-done event. No-op once the executor is dead or
  // out of epoch quota; the scripted crash fires here, at the moment the
  // executor would start one compute past its scripted allowance.
  auto start_compute = [&](std::size_t e, double now, double lambda) {
    if (!ex_alive[e]) return;
    while (ex_cursor[e] < assign[e].size() &&
           walk[assign[e][ex_cursor[e]]].quota == 0) {
      ++ex_cursor[e];
    }
    if (ex_cursor[e] == assign[e].size()) return;  // epoch done for e
    if (crashing && e == scenario.crash_node) {
      if (crash_left == 0) {
        // The executor dies; its unfinished epoch quota is lost (in-flight
        // pushes still land — they are already on the simulated wire).
        ex_alive[e] = 0;
        ++crash_events;
        for (const std::uint32_t wlk : assign[e]) walk[wlk].quota = 0;
        crashing = false;
        return;
      }
      --crash_left;
    }
    WalkState& ws = walk[assign[e][ex_cursor[e]]];
    const std::size_t local_n = ws.shard.rows.size();
    const std::size_t slot =
        ws.sampler ? ws.sampler->sample(ws.rng)
                   : static_cast<std::size_t>(
                         util::uniform_index(ws.rng, local_n));
    const std::size_t i = ws.shard.rows[slot];
    const auto x = data.row(i);
    const auto idx = x.indices();
    const auto val = x.values();
    double margin = 0;
    for (std::size_t j = 0; j < idx.size(); ++j) margin += w[idx[j]] * val[j];
    loop.schedule(now + spec.node_compute_seconds(e, idx.size()),
                  PsEvent{
                      .kind = EventKind::kComputeDone,
                      .node = e,
                      .row = static_cast<std::uint32_t>(i),
                      .gradient_scale =
                          objective.gradient_scale(margin, data.label(i)),
                      .scaled_step = lambda * ws.weight[slot],
                      .computed_after_applies = counters.applied,
                  });
    --ws.quota;
  };

  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    if (scenario.enabled() && epoch == scenario.rejoin_epoch &&
        !ex_alive[scenario.crash_node]) {
      ex_alive[scenario.crash_node] = 1;
      ++rejoin_events;
      assign = plan_assignment(k, ex_alive, spec.recovery.policy);
    }
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t a = 0; a < k; ++a) walk[a].quota = 0;
    for (std::size_t e = 0; e < k; ++e) {
      ex_cursor[e] = 0;
      ex_stalled[e] = 0;
      if (!ex_alive[e]) continue;
      for (const std::uint32_t wlk : assign[e]) {
        walk[wlk].quota = walk[wlk].shard.rows.size();
      }
    }
    crashing = scenario.enabled() && epoch == scenario.crash_epoch &&
               ex_alive[scenario.crash_node];
    if (crashing) {
      std::size_t node_quota = 0;
      for (const std::uint32_t wlk : assign[scenario.crash_node]) {
        node_quota += walk[wlk].quota;
      }
      crash_left = static_cast<std::size_t>(scenario.crash_fraction *
                                            static_cast<double>(node_quota));
    }
    for (std::size_t e = 0; e < k; ++e) start_compute(e, loop.now(), lambda);
    loop.drain([&](PsEvent ev) {
      if (ev.kind == EventKind::kComputeDone) {
        // Push goes on the wire; the executor pipelines into its next
        // gradient unless its flow-control window (max_outstanding_pushes)
        // is full, in which case it stalls until an ack frees a slot.
        const std::size_t nnz = data.row(ev.row).indices().size();
        ev.kind = EventKind::kApply;
        ++counters.messages;
        counters.bytes_sent += nnz * spec.bytes_per_nnz;
        const std::size_t e = ev.node;
        // Left-associated sum, matching the pre-EventLoop arithmetic bit
        // for bit (the frozen traces the tests pin depend on it).
        loop.schedule(loop.now() + spec.sparse_push_seconds(nnz) +
                          spec.apply_seconds_per_nnz *
                              static_cast<double>(nnz),
                      std::move(ev));
        ++ex_outstanding[e];
        if (ex_outstanding[e] < spec.max_outstanding_pushes) {
          start_compute(e, loop.now(), lambda);
        } else {
          ex_stalled[e] = 1;
        }
      } else {
        const auto x = data.row(ev.row);
        const auto idx = x.indices();
        const auto val = x.values();
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const std::size_t c = idx[j];
          w[c] -= ev.scaled_step *
                  (ev.gradient_scale * val[j] + options.reg.subgradient(w[c]));
        }
        counters.staleness_sum += static_cast<double>(
            counters.applied - ev.computed_after_applies);
        ++counters.applied;
        // Ack returns after one more latency hop; a stalled worker resumes
        // then (the ack itself needs no event — the worker's next compute
        // simply starts at ack arrival).
        const std::size_t e = ev.node;
        --ex_outstanding[e];
        if (ex_stalled[e]) {
          ex_stalled[e] = 0;
          start_compute(e, loop.now() + spec.latency_seconds, lambda);
        }
      }
    });
    // Queue drained = epoch fence: every push of the epoch has landed.
    if (scenario.enabled()) {
      assign = plan_assignment(k, ex_alive, spec.recovery.policy);
    }
    recorder.record(epoch, loop.now(), w);
  }

  if (report || observer) {
    ParamServerReport local;
    fill_report(&local, counters, loop.now(), plan);
    local.crash_events = crash_events;
    local.rejoin_events = rejoin_events;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(loop.now());
}

solvers::Trace run_param_server_sharded(
    const data::DataSource& source, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report, solvers::TrainingObserver* observer) {
  spec.validate();
  if (spec.fault.enabled()) {
    throw std::invalid_argument(
        "run_param_server_sharded: crash scenarios need in-memory node walks "
        "(use run_param_server or the fenced engines; sharded walks rewind "
        "their sample streams and cannot be replayed onto a survivor)");
  }
  const std::size_t shards = source.shard_count();
  const std::size_t k = std::min(spec.nodes, shards);
  std::vector<double> w(source.dim(), 0.0);
  solvers::TraceRecorder recorder(use_importance ? "ps_is_asgd" : "ps_asgd", k,
                                  options.step_size, eval, observer);
  recorder.mark_simulated_time();

  // ---- Setup: per-shard importance (from the pack sidecar when the source
  // carries row stats — zero shard loads — else one sequential data pass),
  // then deal whole shards to nodes with the Algorithm-4 balancing machinery
  // applied at shard granularity (shard Φ totals play the role of L_i). ----
  util::Stopwatch setup;
  std::vector<std::vector<double>> shard_importance(shards);
  std::vector<double> shard_phi(shards);
  const data::RowStats* stats = source.row_stats();
  if (stats != nullptr && solvers::detail::stats_feed_importance(options)) {
    for (std::size_t s = 0; s < shards; ++s) {
      shard_importance[s] = solvers::detail::importance_weights_from_stats(
          *stats, source.shard_begin(s), source.shard_rows(s), objective,
          options);
      double total = 0;
      for (double v : shard_importance[s]) total += v;
      shard_phi[s] = total;
    }
  } else {
    for (std::size_t s = 0; s < shards; ++s) {
      if (s + 1 < shards) source.prefetch(s + 1);
      const data::ShardPtr shard = source.shard(s);
      shard_importance[s] = solvers::detail::importance_weights(
          *shard->matrix, objective, options);
      double total = 0;
      for (double v : shard_importance[s]) total += v;
      shard_phi[s] = total;
    }
  }
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xd157;
  const partition::PartitionPlan plan(shard_phi, k, popt);

  struct NodeState {
    std::span<const std::uint32_t> shards;  // assigned shard ordinals
    std::size_t pos = 0;                    // current position in `shards`
    data::ShardPtr shard;                   // resident current shard
    std::vector<double> weight;  // 1/(N_s·p_i) per local row (unit if ASGD)
    std::unique_ptr<sampling::AliasTable> sampler;  // null → uniform
    util::Rng rng;
    std::size_t quota = 0;        // computes remaining in the current shard
    std::size_t outstanding = 0;  // unacknowledged pushes in flight
    bool stalled = false;         // blocked on the flow-control window
  };
  std::vector<NodeState> node(k);
  for (std::size_t a = 0; a < k; ++a) {
    node[a].shards = plan.shard(a).rows;
    node[a].rng.reseed(util::derive_seed(options.seed, 0xc0de + a));
  }
  recorder.add_setup_seconds(setup.seconds());
  recorder.record(0, 0.0, w);

  sim::EventLoop<PsEvent> loop;
  PsCounters counters;

  // Makes node a's shard at `pos` resident and rebuilds its local sampler +
  // IS step weights (the shard-local Eq. 12 law). Prefetches the node's
  // next shard so the walk pipelines against I/O.
  auto enter_shard = [&](std::size_t a) {
    NodeState& ns = node[a];
    const std::size_t ordinal = ns.shards[ns.pos];
    ns.shard = source.shard(ordinal);
    if (ns.pos + 1 < ns.shards.size()) source.prefetch(ns.shards[ns.pos + 1]);
    const std::vector<double>& imp = shard_importance[ordinal];
    const std::size_t local_n = imp.size();
    ns.weight.assign(local_n, 1.0);
    ns.sampler.reset();
    if (use_importance && local_n > 0) {
      const double total = shard_phi[ordinal];
      std::vector<double> prob(local_n);
      for (std::size_t i = 0; i < local_n; ++i) {
        prob[i] = total > 0 ? imp[i] / total
                            : 1.0 / static_cast<double>(local_n);
      }
      ns.sampler = std::make_unique<sampling::AliasTable>(prob);
      for (std::size_t i = 0; i < local_n; ++i) {
        ns.weight[i] = prob[i] > 0
                           ? 1.0 / (static_cast<double>(local_n) * prob[i])
                           : 1.0;
      }
    }
    ns.quota = local_n;
  };

  // Starts node a's next gradient, advancing to its next shard when the
  // current one's quota is exhausted. Returns without scheduling when the
  // node has finished its epoch.
  auto start_compute = [&](std::size_t a, double now, double lambda) {
    NodeState& ns = node[a];
    while (ns.quota == 0) {
      if (ns.pos + 1 >= ns.shards.size()) return;  // epoch done for a
      ++ns.pos;
      enter_shard(a);
    }
    const std::size_t local_n = ns.weight.size();
    const std::size_t slot =
        ns.sampler ? ns.sampler->sample(ns.rng)
                   : static_cast<std::size_t>(
                         util::uniform_index(ns.rng, local_n));
    const sparse::CsrMatrix& rows = *ns.shard->matrix;
    const auto x = rows.row(slot);
    const auto idx = x.indices();
    const auto val = x.values();
    double margin = 0;
    for (std::size_t j = 0; j < idx.size(); ++j) margin += w[idx[j]] * val[j];
    loop.schedule(now + spec.node_compute_seconds(a, idx.size()),
                  PsEvent{
                      .kind = EventKind::kComputeDone,
                      .node = a,
                      .row = static_cast<std::uint32_t>(slot),
                      .shard = ns.shard,
                      .gradient_scale =
                          objective.gradient_scale(margin, rows.label(slot)),
                      .scaled_step = lambda * ns.weight[slot],
                      .computed_after_applies = counters.applied,
                  });
    --ns.quota;
  };

  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t a = 0; a < k; ++a) {
      node[a].pos = 0;
      enter_shard(a);
      start_compute(a, loop.now(), lambda);
    }
    loop.drain([&](PsEvent ev) {
      if (ev.kind == EventKind::kComputeDone) {
        const std::size_t nnz =
            ev.shard->matrix->row(ev.row).indices().size();
        NodeState& ns = node[ev.node];
        const std::size_t a = ev.node;
        ev.kind = EventKind::kApply;
        ++counters.messages;
        counters.bytes_sent += nnz * spec.bytes_per_nnz;
        loop.schedule_after(
            spec.sparse_push_seconds(nnz) +
                spec.apply_seconds_per_nnz * static_cast<double>(nnz),
            std::move(ev));
        ++ns.outstanding;
        if (ns.outstanding < spec.max_outstanding_pushes) {
          start_compute(a, loop.now(), lambda);
        } else {
          ns.stalled = true;
        }
      } else {
        const auto x = ev.shard->matrix->row(ev.row);
        const auto idx = x.indices();
        const auto val = x.values();
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const std::size_t c = idx[j];
          w[c] -= ev.scaled_step *
                  (ev.gradient_scale * val[j] + options.reg.subgradient(w[c]));
        }
        counters.staleness_sum += static_cast<double>(
            counters.applied - ev.computed_after_applies);
        ++counters.applied;
        NodeState& ns = node[ev.node];
        --ns.outstanding;
        if (ns.stalled) {
          ns.stalled = false;
          start_compute(ev.node, loop.now() + spec.latency_seconds, lambda);
        }
      }
    });
    recorder.record(epoch, loop.now(), w);
  }

  if (report || observer) {
    ParamServerReport local;
    fill_report(&local, counters, loop.now(), plan);
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(loop.now());
}

}  // namespace isasgd::distributed
