// NodeWalk: one node's deterministic sample stream, shared verbatim by the
// fenced-schedule simulator and the real worker processes.
//
// Bit-identity between the simulated and the real backend (the process
// backend's correctness anchor — see ClusterSpec::Schedule) reduces to one
// requirement: for a fixed seed, node a must draw the *same* sample
// sequence with the *same* importance reweights in both worlds. Rather than
// maintaining two copies of the sampling state machine and hoping they stay
// in sync, both engines instantiate this one class: the alias-table
// construction, the RNG consumption pattern, the 1/(N·p) reweighting and
// the shard-walk order live here and nowhere else.
//
// Two shapes, matching the two parameter-server engines:
//   - in-memory: the node owns one row-level shard of a PartitionPlan over
//     a materialised matrix; a sample is a global row of that matrix.
//   - sharded:   the node owns a list of whole DataSource shard ordinals
//     (the Algorithm-4 deal at shard granularity); a sample is a local row
//     of the resident shard, and the walk advances shards in assigned
//     order, rebuilding the local Eq. 12 sampler on entry.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "data/data_source.hpp"
#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "sparse/csr_matrix.hpp"
#include "util/rng.hpp"

namespace isasgd::distributed {

class NodeWalk {
 public:
  /// One drawn sample: a row of `*matrix` plus its IS step reweight
  /// (1/(N·p), or 1.0 under uniform sampling).
  struct Sample {
    const sparse::CsrMatrix* matrix = nullptr;
    std::uint32_t row = 0;
    double weight = 1.0;
  };

  /// In-memory walk over `shard` (spans into a PartitionPlan that must
  /// outlive this walk), sampling rows of `data`.
  NodeWalk(const sparse::CsrMatrix& data, const partition::Shard& shard,
           bool use_importance, std::uint64_t seed);

  /// Shard-major walk over `ordinals` of `source`, with the per-shard
  /// importance vectors and Φ totals computed by the caller's setup pass
  /// (both must outlive this walk).
  NodeWalk(const data::DataSource& source,
           std::span<const std::uint32_t> ordinals,
           const std::vector<std::vector<double>>& shard_importance,
           const std::vector<double>& shard_phi, bool use_importance,
           std::uint64_t seed);

  /// Samples this node draws per epoch (its shard size, or the sum of its
  /// assigned shards' sizes).
  [[nodiscard]] std::size_t epoch_quota() const noexcept { return quota_; }

  /// Rewinds to the start of an epoch (sharded: back to the first assigned
  /// shard). Does NOT reseed — consecutive epochs continue the RNG stream,
  /// exactly like the event-clock engines.
  void begin_epoch();

  /// Draws the next sample. In-memory walks sample with replacement and may
  /// be drawn from indefinitely (the all-reduce rounds need rounds·b draws);
  /// shard-major walks advance through their assigned shards and must be
  /// drawn at most epoch_quota() times per begin_epoch(). The returned
  /// matrix pointer stays valid until the next call.
  [[nodiscard]] Sample next();

 private:
  void enter_shard();

  // Common sampling state for the resident shard (the whole dataset shard
  // on the in-memory path).
  std::vector<double> weight_;
  std::unique_ptr<sampling::AliasTable> sampler_;  // null → uniform
  util::Rng rng_;
  bool use_importance_ = false;
  std::size_t quota_ = 0;  // per-epoch total

  // In-memory path.
  const sparse::CsrMatrix* data_ = nullptr;
  partition::Shard shard_{};

  // Sharded path.
  const data::DataSource* source_ = nullptr;
  std::span<const std::uint32_t> ordinals_;
  const std::vector<std::vector<double>>* shard_importance_ = nullptr;
  const std::vector<double>* shard_phi_ = nullptr;
  data::ShardPtr resident_;
  std::size_t pos_ = 0;        // index into ordinals_
  std::size_t remaining_ = 0;  // draws left in the resident shard
};

}  // namespace isasgd::distributed
