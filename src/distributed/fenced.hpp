// Fenced round-robin engines: the deterministic schedule implemented by BOTH
// the simulator and the real process backend (ClusterSpec::Schedule).
//
// The event-clock engines (param_server.cpp / allreduce.cpp) let staleness
// emerge from the cost model — realistic, but their apply order depends on
// simulated message timing, which no real execution can reproduce bit for
// bit. The fenced schedule removes timing from the semantics entirely:
//
//   parameter server   per round, every node with epoch quota left takes
//                      exactly one step in rank order (a = 0..k−1): draw a
//                      sample, compute the gradient against the *current*
//                      model, apply immediately. Staleness is identically 0.
//   all-reduce         per round, each node accumulates its b-sample partial
//                      gradient locally; partials are merged into the global
//                      accumulator in rank order, then one model step.
//
// Every floating-point operation — sample draw (NodeWalk), margin, gradient
// scale, apply (apply_push), partial merge — is order-pinned, so for a fixed
// seed the final model is a pure function of (data, options, k). The real
// backend (real_runtime.cpp) executes this exact schedule with the PS
// process enforcing the rank order, which is what makes "real run ≡
// simulator, bit for bit" a testable invariant rather than a hope.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/data_source.hpp"
#include "distributed/allreduce.hpp"
#include "distributed/cluster.hpp"
#include "distributed/node_walk.hpp"
#include "distributed/param_server.hpp"
#include "objectives/objective.hpp"
#include "partition/partition.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::distributed {

/// Fenced parameter-server run (in-memory). Same contract as
/// run_param_server; the trace's time axis is still simulated seconds
/// (serialized per-step costs), and mean staleness is reported as 0.
[[nodiscard]] solvers::Trace run_param_server_fenced(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

/// Fenced parameter-server run over a sharded DataSource (shard-major node
/// walks, like run_param_server_sharded).
[[nodiscard]] solvers::Trace run_param_server_fenced_sharded(
    const data::DataSource& source, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

/// Fenced synchronous all-reduce run: identical arithmetic to
/// run_allreduce_sgd except the global accumulator is built from per-node
/// partials merged in rank order (the reduction order a real reducer can —
/// and does — reproduce).
[[nodiscard]] solvers::Trace run_allreduce_fenced(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    AllreduceReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

namespace fenced {

/// THE sparse apply. One implementation, inlined into the fenced simulator
/// and the real PS process alike, so the two cannot drift: left-to-right
/// over the row's nonzeros,
///   w[c] -= scaled_step · (gradient_scale · val[j] + ∂r(w[c])).
inline void apply_push(std::span<const std::uint32_t> idx,
                       std::span<const double> val, double gradient_scale,
                       double scaled_step,
                       const objectives::Regularization& reg,
                       std::vector<double>& w) {
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const std::size_t c = idx[j];
    w[c] -= scaled_step * (gradient_scale * val[j] + reg.subgradient(w[c]));
  }
}

/// Shared pre-run setup: the Algorithm-4 partition plus one seeded NodeWalk
/// per node. Built identically by the fenced simulator and (pre-fork) by the
/// process runtime, so both worlds walk the same plan with the same streams.
struct Setup {
  std::size_t k = 0;
  std::vector<double> importance;  // in-memory: keeps plan spans alive
  std::vector<std::vector<double>> shard_importance;  // sharded
  std::vector<double> shard_phi;                      // sharded
  std::unique_ptr<partition::PartitionPlan> plan;
  std::vector<NodeWalk> walks;  // one per node, seeded
};

/// Parameter-server setup over an in-memory matrix (seeds 0xc0de+a, shuffle
/// seed ^0xd157 — the event engine's exact derivations).
[[nodiscard]] Setup make_ps_setup(const sparse::CsrMatrix& data,
                                  const objectives::Objective& objective,
                                  const solvers::SolverOptions& options,
                                  std::size_t nodes, bool use_importance);

/// Parameter-server setup over a sharded source (whole-shard deal).
[[nodiscard]] Setup make_ps_setup_sharded(
    const data::DataSource& source, const objectives::Objective& objective,
    const solvers::SolverOptions& options, std::size_t nodes,
    bool use_importance);

/// All-reduce setup (seeds 0xa22d+a, shuffle seed ^0xa11d).
[[nodiscard]] Setup make_allreduce_setup(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, std::size_t nodes,
    bool use_importance);

}  // namespace fenced

}  // namespace isasgd::distributed
