#include "distributed/fenced.hpp"

#include <algorithm>

#include "sim/event_loop.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/schedule.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

namespace fenced {

Setup make_ps_setup(const sparse::CsrMatrix& data,
                    const objectives::Objective& objective,
                    const solvers::SolverOptions& options, std::size_t nodes,
                    bool use_importance) {
  Setup setup;
  setup.k = std::min(nodes, data.rows());
  setup.importance =
      solvers::detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xd157;
  setup.plan = std::make_unique<partition::PartitionPlan>(setup.importance,
                                                          setup.k, popt);
  setup.walks.reserve(setup.k);
  for (std::size_t a = 0; a < setup.k; ++a) {
    setup.walks.emplace_back(data, setup.plan->shard(a), use_importance,
                             util::derive_seed(options.seed, 0xc0de + a));
  }
  return setup;
}

Setup make_ps_setup_sharded(const data::DataSource& source,
                            const objectives::Objective& objective,
                            const solvers::SolverOptions& options,
                            std::size_t nodes, bool use_importance) {
  Setup setup;
  const std::size_t shards = source.shard_count();
  setup.k = std::min(nodes, shards);
  setup.shard_importance.resize(shards);
  setup.shard_phi.resize(shards);
  const data::RowStats* stats = source.row_stats();
  if (stats != nullptr && solvers::detail::stats_feed_importance(options)) {
    // Sidecar-fed setup: importance and Φ per shard from pack-time row
    // stats, in shard row order — bit-identical to the loaded pass below,
    // with zero shard loads.
    for (std::size_t s = 0; s < shards; ++s) {
      setup.shard_importance[s] = solvers::detail::importance_weights_from_stats(
          *stats, source.shard_begin(s), source.shard_rows(s), objective,
          options);
      double total = 0;
      for (double v : setup.shard_importance[s]) total += v;
      setup.shard_phi[s] = total;
    }
  } else {
    for (std::size_t s = 0; s < shards; ++s) {
      if (s + 1 < shards) source.prefetch(s + 1);
      const data::ShardPtr shard = source.shard(s);
      setup.shard_importance[s] = solvers::detail::importance_weights(
          *shard->matrix, objective, options);
      double total = 0;
      for (double v : setup.shard_importance[s]) total += v;
      setup.shard_phi[s] = total;
    }
  }
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xd157;
  setup.plan = std::make_unique<partition::PartitionPlan>(setup.shard_phi,
                                                          setup.k, popt);
  setup.walks.reserve(setup.k);
  for (std::size_t a = 0; a < setup.k; ++a) {
    setup.walks.emplace_back(source, setup.plan->shard(a).rows,
                             setup.shard_importance, setup.shard_phi,
                             use_importance,
                             util::derive_seed(options.seed, 0xc0de + a));
  }
  return setup;
}

Setup make_allreduce_setup(const sparse::CsrMatrix& data,
                           const objectives::Objective& objective,
                           const solvers::SolverOptions& options,
                           std::size_t nodes, bool use_importance) {
  Setup setup;
  setup.k = std::min(nodes, data.rows());
  setup.importance =
      solvers::detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xa11d;
  setup.plan = std::make_unique<partition::PartitionPlan>(setup.importance,
                                                          setup.k, popt);
  setup.walks.reserve(setup.k);
  for (std::size_t a = 0; a < setup.k; ++a) {
    setup.walks.emplace_back(data, setup.plan->shard(a), use_importance,
                             util::derive_seed(options.seed, 0xa22d + a));
  }
  return setup;
}

}  // namespace fenced

namespace {

/// Fenced PS epoch loop shared by the in-memory and sharded entry points:
/// per round one step per live executor in rank order, applied immediately.
/// Simulated time is the fully serialized per-step cost — the fenced
/// protocol serializes every step through the server, so costs add rather
/// than overlap (this schedule is the determinism anchor, not the
/// performance model; the event-clock engines remain the latter).
///
/// This loop is also the crash-recovery mirror of the real process backend:
/// executors (ranks) and walks (sample streams) are separate axes, tied
/// together by the same plan_assignment the real controller runs at every
/// fence. A scripted FaultScenario kills an executor at its round-robin
/// turn after the scripted number of draws — exactly when the real server,
/// whose liveness deadline expires at the dead rank's slot, stops applying
/// its pushes — so a clean crash produces bit-identical models in both
/// worlds.
solvers::Trace run_ps_fenced_core(fenced::Setup& setup,
                                  const objectives::Objective& objective,
                                  std::size_t dim,
                                  const solvers::SolverOptions& options,
                                  const ClusterSpec& spec, bool use_importance,
                                  const solvers::EvalFn& eval,
                                  double setup_seconds, bool in_memory,
                                  ParamServerReport* report,
                                  solvers::TrainingObserver* observer) {
  const std::size_t k = setup.k;
  const FaultScenario& scenario = spec.fault;
  if (scenario.enabled()) {
    scenario.validate(k);
    if (!in_memory) {
      throw std::invalid_argument(
          "FaultScenario: crash recovery needs in-memory node walks (a "
          "sharded walk rewinds at begin_epoch, so an adopted walk cannot "
          "be fast-forwarded to the server's applied-draw count)");
    }
  }
  std::vector<double> w(dim, 0.0);
  solvers::TraceRecorder recorder(use_importance ? "ps_is_asgd" : "ps_asgd", k,
                                  options.step_size, eval, observer);
  recorder.mark_simulated_time();
  recorder.add_setup_seconds(setup_seconds);
  recorder.record(0, 0.0, w);

  double sim_time = 0;
  std::size_t applied = 0, bytes = 0;
  std::uint64_t crash_events = 0, rejoin_events = 0;
  std::vector<char> alive(k, 1);
  Assignment assign = identity_assignment(k);
  std::vector<std::size_t> remaining(k, 0);  // per walk, this epoch
  std::vector<std::size_t> cursor(k, 0);     // per executor, into assign[e]
  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    if (scenario.enabled() && epoch == scenario.rejoin_epoch &&
        !alive[scenario.crash_node]) {
      alive[scenario.crash_node] = 1;
      ++rejoin_events;
      assign = plan_assignment(k, alive, spec.recovery.policy);
    }
    const double lambda = solvers::epoch_step(options, epoch);
    std::size_t active_draws = 0;
    for (std::size_t walk = 0; walk < k; ++walk) remaining[walk] = 0;
    for (std::size_t e = 0; e < k; ++e) {
      cursor[e] = 0;
      if (!alive[e]) continue;
      for (const std::uint32_t walk : assign[e]) {
        setup.walks[walk].begin_epoch();
        remaining[walk] = setup.walks[walk].epoch_quota();
        active_draws += remaining[walk];
      }
    }
    bool crashing = scenario.enabled() && epoch == scenario.crash_epoch &&
                    alive[scenario.crash_node];
    std::size_t crash_left = 0;
    if (crashing) {
      std::size_t node_quota = 0;
      for (const std::uint32_t walk : assign[scenario.crash_node]) {
        node_quota += remaining[walk];
      }
      crash_left = static_cast<std::size_t>(scenario.crash_fraction *
                                            static_cast<double>(node_quota));
    }
    while (active_draws > 0) {
      for (std::size_t e = 0; e < k; ++e) {
        if (!alive[e]) continue;
        while (cursor[e] < assign[e].size() &&
               remaining[assign[e][cursor[e]]] == 0) {
          ++cursor[e];
        }
        if (cursor[e] == assign[e].size()) continue;  // epoch quota drained
        if (crashing && e == scenario.crash_node) {
          if (crash_left == 0) {
            // The executor dies at its turn; its unfinished epoch work is
            // lost (the real server never reassigns mid-epoch).
            alive[e] = 0;
            ++crash_events;
            for (const std::uint32_t walk : assign[e]) {
              active_draws -= remaining[walk];
              remaining[walk] = 0;
            }
            crashing = false;
            continue;
          }
          --crash_left;
        }
        const std::uint32_t walk = assign[e][cursor[e]];
        const NodeWalk::Sample s = setup.walks[walk].next();
        const auto x = s.matrix->row(s.row);
        const auto idx = x.indices();
        const auto val = x.values();
        double margin = 0;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          margin += w[idx[j]] * val[j];
        }
        const double gradient_scale =
            objective.gradient_scale(margin, s.matrix->label(s.row));
        fenced::apply_push(idx, val, gradient_scale, lambda * s.weight,
                           options.reg, w);
        --remaining[walk];
        --active_draws;
        const std::size_t nnz = idx.size();
        ++applied;
        bytes += nnz * spec.bytes_per_nnz;
        sim_time += spec.node_compute_seconds(e, nnz) +
                    spec.sparse_push_seconds(nnz) +
                    spec.apply_seconds_per_nnz * static_cast<double>(nnz);
      }
    }
    if (scenario.enabled()) {
      assign = plan_assignment(k, alive, spec.recovery.policy);
    }
    recorder.record(epoch, sim_time, w);
  }

  if (report || observer) {
    ParamServerReport local;
    local.mean_staleness_updates = 0;  // fenced: applies are immediate
    local.messages = applied;
    local.bytes_sent = bytes;
    local.simulated_seconds = sim_time;
    local.phi_imbalance = setup.plan->imbalance();
    local.applied_strategy = setup.plan->applied_strategy();
    local.crash_events = crash_events;
    local.rejoin_events = rejoin_events;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(sim_time);
}

}  // namespace

solvers::Trace run_param_server_fenced(const sparse::CsrMatrix& data,
                                       const objectives::Objective& objective,
                                       const solvers::SolverOptions& options,
                                       const ClusterSpec& spec,
                                       bool use_importance,
                                       const solvers::EvalFn& eval,
                                       ParamServerReport* report,
                                       solvers::TrainingObserver* observer) {
  spec.validate();
  util::Stopwatch sw;
  fenced::Setup setup =
      fenced::make_ps_setup(data, objective, options, spec.nodes,
                            use_importance);
  return run_ps_fenced_core(setup, objective, data.dim(), options, spec,
                            use_importance, eval, sw.seconds(),
                            /*in_memory=*/true, report, observer);
}

solvers::Trace run_param_server_fenced_sharded(
    const data::DataSource& source, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report, solvers::TrainingObserver* observer) {
  spec.validate();
  util::Stopwatch sw;
  fenced::Setup setup = fenced::make_ps_setup_sharded(
      source, objective, options, spec.nodes, use_importance);
  return run_ps_fenced_core(setup, objective, source.dim(), options, spec,
                            use_importance, eval, sw.seconds(),
                            /*in_memory=*/false, report, observer);
}

solvers::Trace run_allreduce_fenced(const sparse::CsrMatrix& data,
                                    const objectives::Objective& objective,
                                    const solvers::SolverOptions& options,
                                    const ClusterSpec& spec,
                                    bool use_importance,
                                    const solvers::EvalFn& eval,
                                    AllreduceReport* report,
                                    solvers::TrainingObserver* observer) {
  spec.validate();
  if (spec.fault.enabled()) {
    throw std::invalid_argument(
        "run_allreduce_fenced: crash scenarios are implemented for the "
        "parameter-server engines (the all-reduce schedule has no recovery "
        "protocol)");
  }
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(data.dim(), 0.0);
  util::Stopwatch sw;
  fenced::Setup setup = fenced::make_allreduce_setup(
      data, objective, options, spec.nodes, use_importance);
  const std::size_t k = setup.k;
  solvers::TraceRecorder recorder(
      use_importance ? "allreduce_is_sgd" : "allreduce_sgd", k,
      options.step_size, eval, observer);
  recorder.mark_simulated_time();
  recorder.add_setup_seconds(sw.seconds());
  recorder.record(0, 0.0, w);

  // Per-node partial + global accumulator, both dense scratch with touched
  // lists. The partial is computed per node and merged into the global in
  // rank order — the exact reduction order the real reducer replays.
  std::vector<double> partial(data.dim(), 0.0), accum(data.dim(), 0.0);
  std::vector<std::uint32_t> ptouched, touched;
  const double allreduce_seconds = spec.ring_allreduce_seconds(data.dim());
  const double per_round_bytes =
      k > 1 ? 2.0 * (static_cast<double>(k) - 1.0) / static_cast<double>(k) *
                  static_cast<double>(data.dim()) *
                  static_cast<double>(spec.bytes_per_dense_coord)
            : 0.0;
  const std::size_t rounds_per_epoch = (n + k * b - 1) / (k * b);
  const double samples_per_round = static_cast<double>(k * b);

  double sim_time = 0, comm_time = 0;
  std::size_t rounds = 0;
  sim::NodeClocks clocks(k);
  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t r = 0; r < rounds_per_epoch; ++r, ++rounds) {
      clocks.reset();
      for (std::size_t a = 0; a < k; ++a) {
        // Node a's local partial over its b-sample mini-batch.
        for (std::size_t s = 0; s < b; ++s) {
          const NodeWalk::Sample sample = setup.walks[a].next();
          const auto x = sample.matrix->row(sample.row);
          const auto idx = x.indices();
          const auto val = x.values();
          double margin = 0;
          for (std::size_t j = 0; j < idx.size(); ++j) {
            margin += w[idx[j]] * val[j];
          }
          const double g =
              objective.gradient_scale(margin,
                                       sample.matrix->label(sample.row)) *
              sample.weight;
          for (std::size_t j = 0; j < idx.size(); ++j) {
            const std::size_t c = idx[j];
            if (partial[c] == 0.0) ptouched.push_back(idx[j]);
            partial[c] += g * val[j];
          }
          clocks.advance(a, spec.node_compute_seconds(a, idx.size()));
        }
        // Rank-order merge of the partial into the global accumulator.
        for (const std::uint32_t c : ptouched) {
          if (accum[c] == 0.0) touched.push_back(c);
          accum[c] += partial[c];
          partial[c] = 0.0;
        }
        ptouched.clear();
      }
      const double slowest = clocks.barrier();
      sim_time += slowest + allreduce_seconds;
      comm_time += allreduce_seconds;
      const double step = lambda / samples_per_round;
      for (const std::uint32_t c : touched) {
        w[c] -= step * accum[c] + lambda * options.reg.subgradient(w[c]);
        accum[c] = 0.0;
      }
      touched.clear();
    }
    recorder.record(epoch, sim_time, w);
  }

  if (report || observer) {
    AllreduceReport local;
    local.rounds = rounds;
    local.bytes_per_node_per_round = per_round_bytes;
    local.simulated_seconds = sim_time;
    local.comm_fraction = sim_time > 0 ? comm_time / sim_time : 0;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(sim_time);
}

}  // namespace isasgd::distributed
