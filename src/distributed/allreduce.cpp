#include "distributed/allreduce.hpp"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "partition/partition.hpp"
#include "sampling/alias_table.hpp"
#include "sim/event_loop.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/schedule.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

solvers::Trace run_allreduce_sgd(const sparse::CsrMatrix& data,
                                 const objectives::Objective& objective,
                                 const solvers::SolverOptions& options,
                                 const ClusterSpec& spec, bool use_importance,
                                 const solvers::EvalFn& eval,
                                 AllreduceReport* report,
                                 solvers::TrainingObserver* observer) {
  spec.validate();
  if (spec.fault.enabled()) {
    throw std::invalid_argument(
        "run_allreduce_sgd: crash scenarios are implemented for the "
        "parameter-server engines (the all-reduce schedule has no recovery "
        "protocol)");
  }
  const std::size_t n = data.rows();
  const std::size_t k = std::min(spec.nodes, n);
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(data.dim(), 0.0);
  solvers::TraceRecorder recorder(
      use_importance ? "allreduce_is_sgd" : "allreduce_sgd", k,
      options.step_size, eval, observer);
  recorder.mark_simulated_time();

  // ---- Partition across nodes; IS nodes sample their local Eq. 12 law ----
  util::Stopwatch setup;
  const std::vector<double> importance =
      solvers::detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0xa11d;
  const partition::PartitionPlan plan(importance, k, popt);

  struct NodeState {
    partition::Shard shard;
    std::vector<double> weight;
    std::unique_ptr<sampling::AliasTable> sampler;
    util::Rng rng;
  };
  std::vector<NodeState> node(k);
  for (std::size_t a = 0; a < k; ++a) {
    node[a].shard = plan.shard(a);
    const std::size_t local_n = node[a].shard.rows.size();
    node[a].weight.assign(local_n, 1.0);
    if (use_importance) {
      node[a].sampler = std::make_unique<sampling::AliasTable>(
          node[a].shard.probabilities);
      for (std::size_t s = 0; s < local_n; ++s) {
        const double p = node[a].shard.probabilities[s];
        node[a].weight[s] =
            p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
      }
    }
    node[a].rng.reseed(util::derive_seed(options.seed, 0xa22d + a));
  }
  recorder.add_setup_seconds(setup.seconds());
  recorder.record(0, 0.0, w);

  // Aggregate gradient scratch: dense accumulator + touched-index list so a
  // round costs O(touched) to reset, not O(d).
  std::vector<double> accum(data.dim(), 0.0);
  std::vector<std::uint32_t> touched;
  const double allreduce_seconds = spec.ring_allreduce_seconds(data.dim());
  const double per_round_bytes =
      k > 1 ? 2.0 * (static_cast<double>(k) - 1.0) / static_cast<double>(k) *
                  static_cast<double>(data.dim()) *
                  static_cast<double>(spec.bytes_per_dense_coord)
            : 0.0;
  const std::size_t rounds_per_epoch = (n + k * b - 1) / (k * b);
  const double samples_per_round = static_cast<double>(k * b);

  double sim_time = 0, comm_time = 0;
  std::size_t rounds = 0;
  sim::NodeClocks clocks(k);  // round-relative per-node compute clocks
  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t r = 0; r < rounds_per_epoch; ++r, ++rounds) {
      // Each node advances its own clock; the synchronous barrier means the
      // round takes the *slowest* node's time (stragglers are the sync
      // penalty).
      clocks.reset();
      for (std::size_t a = 0; a < k; ++a) {
        NodeState& ns = node[a];
        const std::size_t local_n = ns.shard.rows.size();
        for (std::size_t s = 0; s < b; ++s) {
          const std::size_t slot =
              ns.sampler ? ns.sampler->sample(ns.rng)
                         : static_cast<std::size_t>(
                               util::uniform_index(ns.rng, local_n));
          const std::size_t i = ns.shard.rows[slot];
          const auto x = data.row(i);
          const auto idx = x.indices();
          const auto val = x.values();
          double margin = 0;
          for (std::size_t j = 0; j < idx.size(); ++j) {
            margin += w[idx[j]] * val[j];
          }
          const double g =
              objective.gradient_scale(margin, data.label(i)) * ns.weight[slot];
          for (std::size_t j = 0; j < idx.size(); ++j) {
            const std::size_t c = idx[j];
            if (accum[c] == 0.0) touched.push_back(idx[j]);
            accum[c] += g * val[j];
          }
          clocks.advance(a, spec.node_compute_seconds(a, idx.size()));
        }
      }
      // Ring all-reduce of the dense aggregate, then one model step.
      const double slowest = clocks.barrier();
      sim_time += slowest + allreduce_seconds;
      comm_time += allreduce_seconds;
      // One step of w ← w − λ(mean gradient + ∇r): the gradient average is
      // over the k·b samples; the regularizer enters once per round at full
      // λ (its full-batch ERM contribution), on touched coordinates.
      const double step = lambda / samples_per_round;
      for (std::uint32_t c : touched) {
        w[c] -= step * accum[c] + lambda * options.reg.subgradient(w[c]);
        accum[c] = 0.0;
      }
      touched.clear();
    }
    recorder.record(epoch, sim_time, w);
  }

  if (report || observer) {
    AllreduceReport local;
    local.rounds = rounds;
    local.bytes_per_node_per_round = per_round_bytes;
    local.simulated_seconds = sim_time;
    local.comm_fraction = sim_time > 0 ? comm_time / sim_time : 0;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(sim_time);
}

}  // namespace isasgd::distributed
