// Wire protocol of the real distributed backend: frame types plus POD
// packing helpers.
//
// Every payload is a flat little-endian sequence of u32/u64/f64 fields
// written with memcpy — doubles travel as their exact 8-byte IEEE-754 bit
// patterns, which is load-bearing: the bit-identity guarantee between the
// process backend and the fenced simulator dies the moment a value is
// formatted through text. (Same-architecture process groups only; this repo
// targets x86-64/AArch64 little-endian, as the kernels already assume.)
//
// Message map (request/response over net::write_frame framing). Every
// parameter-server request carries a per-rank sequence number and every
// reply echoes it: the server treats seq == last as "resend the cached
// reply" and seq < last as a stale duplicate to discard, which makes a
// retried push apply exactly once no matter how many times the wire drops,
// tears or resets frames in between (see net/fault.hpp). `resume` in the
// hello distinguishes a mid-epoch reconnect (resume=1: keep the rank's
// sequence state) from a fresh process (resume=0: reset it — a rejoining
// replacement starts at seq 1).
//
//   worker → server      kHello{role=0, rank, resume}
//   controller → server  kHello{role=1, rank=0, resume=0}
//   worker → server      kStep{seq, ncols, idx[ncols]}     coordinate get
//   server → worker      kStepReply{seq, w[ncols]}         values, same order
//   worker → server      kPush{seq, walk, gscale, sstep, nnz, (idx, val)[nnz]}
//   server → worker      kPushAck{seq}
//   worker → server      kEpochEnd{seq, retries}           quota exhausted
//   server → controller  kFence{epoch, applied, messages, bytes, retries,
//                               nranks, alive[nranks], nwalks, draws[nwalks],
//                               dim, w[dim]}
//   controller → server  kFenceReply{continue, nranks,
//                               (alive, nwalks, (walk, ff)[nwalks])[nranks]}
//   server → worker      kEpochGo{seq, continue, next_epoch,
//                               nwalks, (walk, ff)[nwalks]}
//   worker → server      kReduce{count, (idx, val)[count]} all-reduce partial
//   server → worker      kModelDelta{count, (idx, w)[count]} updated coords
//
// The all-reduce group keeps the un-sequenced kReduce/kModelDelta exchange
// (it has no retry layer — fault injection targets the PS runtime) but
// shares the kFence/kFenceReply shape with nranks = nwalks = 0; the
// controller-side parser is one implementation for both. Unpacker ignores
// trailing bytes by design, which is what lets the all-reduce fence carry
// the recovery fields as zeros without its own format.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "net/transport.hpp"

namespace isasgd::distributed::wire {

enum MsgType : std::uint32_t {
  kHello = 1,
  kStep = 2,
  kStepReply = 3,
  kPush = 4,
  kPushAck = 5,
  kEpochEnd = 6,
  kFence = 7,
  kFenceReply = 8,
  kEpochGo = 9,
  kReduce = 10,
  kModelDelta = 11,
};

inline constexpr std::uint32_t kRoleWorker = 0;
inline constexpr std::uint32_t kRoleController = 1;

/// Appends POD fields to a payload string.
class Packer {
 public:
  Packer& u32(std::uint32_t v) { return raw(&v, sizeof(v)); }
  Packer& u64(std::uint64_t v) { return raw(&v, sizeof(v)); }
  Packer& f64(double v) { return raw(&v, sizeof(v)); }
  Packer& raw(const void* data, std::size_t size) {
    buf_.append(static_cast<const char*>(data), size);
    return *this;
  }

  [[nodiscard]] std::string take() && { return std::move(buf_); }
  [[nodiscard]] const std::string& view() const { return buf_; }

 private:
  std::string buf_;
};

/// Reads POD fields back out; a short payload is a typed protocol error,
/// never an out-of-bounds read.
class Unpacker {
 public:
  explicit Unpacker(std::string_view payload) : buf_(payload) {}

  [[nodiscard]] std::uint32_t u32() {
    std::uint32_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] std::uint64_t u64() {
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  [[nodiscard]] double f64() {
    double v = 0;
    raw(&v, sizeof(v));
    return v;
  }
  void raw(void* out, std::size_t size) {
    if (buf_.size() - off_ < size) {
      throw net::TransportError(
          net::TransportError::Kind::kProtocol,
          "truncated payload: wanted " + std::to_string(size) +
              " more bytes, have " + std::to_string(buf_.size() - off_));
    }
    std::memcpy(out, buf_.data() + off_, size);
    off_ += size;
  }

  [[nodiscard]] bool done() const noexcept { return off_ == buf_.size(); }

 private:
  std::string_view buf_;
  std::size_t off_ = 0;
};

}  // namespace isasgd::distributed::wire
