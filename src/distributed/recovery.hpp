// Crash/rejoin scenarios and recovery policies for the distributed engines.
//
// The unit of re-shardable work is the NodeWalk: walk w is "home" to rank w
// and is a deterministic sample stream (in-memory walks consume exactly one
// sampler draw per next() and begin_epoch() is a no-op, so any process that
// holds walk w's initial state can fast-forward it to draw N by calling
// next() N times). That property turns crash recovery into bookkeeping: the
// server counts applied draws per walk, the controller re-plans the
// walk→rank assignment at an epoch fence, and whichever rank adopts a walk
// replays it to the server's count before continuing — bit-identical to a
// single process that never crashed running the same assignment history.
//
// plan_assignment is the ONE implementation of that re-planning, shared by
// the real controller and the sim.* mirrors so a clean scripted crash
// produces the same assignment history (hence the same model bits) in both
// worlds.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace isasgd::distributed {

enum class RecoveryPolicy {
  /// A dead rank's walks go unexecuted until (if ever) it rejoins. The
  /// baseline the ablation bench compares against: the model keeps training
  /// on the surviving shards only, so the lost shard's data is simply
  /// missing from every epoch until the rejoin.
  kNone,
  /// A dead rank's walks are re-dealt to survivors at the next epoch fence
  /// (fewest-walks-first, lowest rank on ties); a rejoining rank takes its
  /// home walk back at the fence after it is admitted.
  kReshard,
};

[[nodiscard]] constexpr const char* recovery_policy_name(
    RecoveryPolicy p) noexcept {
  return p == RecoveryPolicy::kNone ? "none" : "reshard";
}

/// One scripted fault, for deterministic conformance tests and ablations.
/// The crash is *clean* by construction — the worker exits between two
/// complete push round trips — which is what makes the real run comparable
/// bit-for-bit against the sim mirror. (Unclean deaths mid-frame are the
/// wire-fault layer's department; the recovery protocol handles those too,
/// just without a scripted sim twin.)
struct FaultScenario {
  /// Rank that crashes.
  std::size_t crash_node = 0;
  /// Epoch (1-based) during which it crashes; 0 = no scripted crash.
  std::size_t crash_epoch = 0;
  /// Fraction of its epoch quota it completes before dying, in [0, 1).
  double crash_fraction = 0.5;
  /// First epoch a replacement worker participates again; 0 = never. Must
  /// leave at least one full epoch of absence (rejoin_epoch > crash_epoch+1
  /// ... == crash_epoch + 1 means the replacement is admitted at the very
  /// fence that detected the crash).
  std::size_t rejoin_epoch = 0;

  [[nodiscard]] bool enabled() const noexcept { return crash_epoch > 0; }

  /// Throws std::invalid_argument naming the offending field.
  void validate(std::size_t nodes) const;
};

/// Knobs of the fault-tolerant wire client/server. Only consulted when a
/// FaultScenario or wire FaultSpec is active — a fault-free run keeps the
/// generous legacy deadlines so slow CI machines never trip recovery paths.
struct RecoveryOptions {
  RecoveryPolicy policy = RecoveryPolicy::kReshard;
  /// Server-side deadline for one worker's next frame (including any
  /// reconnect) before the rank is declared dead for the epoch.
  int liveness_timeout_ms = 2000;
  /// Worker-side deadline for one request's reply before a retransmit.
  int reply_timeout_ms = 250;
  /// Worker-side deadline for the kEpochGo after kEpochEnd (the fence can
  /// legitimately take long: controller eval + dead-rank detection).
  int fence_reply_timeout_ms = 60000;
  /// Retransmits/reconnects per request before the worker gives up.
  std::size_t max_retries = 64;
  /// Backoff between retries (seeded per rank from the wire-fault seed).
  double backoff_initial_ms = 2.0;
  double backoff_max_ms = 100.0;
  double backoff_jitter = 0.5;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// walks_of[rank] = walk ids rank executes next epoch, in execution order.
using Assignment = std::vector<std::vector<std::uint32_t>>;

/// The pure fence-time re-planning shared by the real controller and the
/// sim mirrors. `alive[r]` says whether rank r participates next epoch.
/// Every alive rank holds its home walk; orphaned walks (home rank dead)
/// are dealt to survivors under kReshard (fewest walks first, lowest rank
/// on ties, orphans in ascending walk order) or left unassigned under
/// kNone. Idempotent: a function of (alive, policy) only, so replanning at
/// every fence cannot drift from replanning only on membership changes.
[[nodiscard]] Assignment plan_assignment(std::size_t k,
                                         const std::vector<char>& alive,
                                         RecoveryPolicy policy);

/// The all-alive assignment: walk r to rank r.
[[nodiscard]] Assignment identity_assignment(std::size_t k);

}  // namespace isasgd::distributed
