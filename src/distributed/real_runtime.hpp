// Real multi-process execution of the dist.* solvers
// (ClusterSpec::Backend::kProcess).
//
// run_*_process fork a process group out of the calling process:
//
//   1 parameter-server process   owns the model; serves coordinate gets,
//                                applies pushes (fenced::apply_push — the
//                                same inlined arithmetic as the simulator),
//                                enforces the fenced rank order, and ships
//                                the model to the controller at every epoch
//                                fence.
//   k worker processes           each walks its NodeWalk (the same seeded
//                                stream the fenced simulator uses), fetching
//                                coordinates and pushing updates over the
//                                ClusterSpec-selected transport (shm or
//                                tcp).
//   the calling process          becomes the controller: it evaluates the
//                                fence-time models, records the Trace,
//                                drives early stopping, and reaps the group.
//
// Because every child is forked *after* the shared setup (partition plan +
// seeded walks) is built, all processes agree on the plan by construction;
// because doubles cross the wire as raw IEEE-754 bytes and the server
// replays the simulator's rank order, the final model is bit-identical to
// run_param_server_fenced / run_allreduce_fenced for the same options —
// asserted per solver by tests/dist_process_test.cpp.
//
// Traces carry host wall-clock seconds (not simulated seconds): this is a
// real execution. A child that dies mid-run surfaces as a typed error in
// the controller, which kills and reaps the rest of the group before
// rethrowing — no zombies, no hangs.
#pragma once

#include "distributed/allreduce.hpp"
#include "distributed/cluster.hpp"
#include "distributed/param_server.hpp"
#include "objectives/objective.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::distributed {

/// Fenced parameter-server training over a real 1-server/k-worker process
/// group. Contract mirrors run_param_server_fenced; `spec.backend` must be
/// kProcess (validate() enforces the fenced schedule). The report's
/// simulated_seconds field carries wall-clock seconds.
[[nodiscard]] solvers::Trace run_param_server_process(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

/// Fenced synchronous all-reduce over a real process group: the server
/// process is the reducer (rank-order partial merge — the same order as
/// run_allreduce_fenced), workers keep bit-exact model replicas via sparse
/// coordinate broadcasts.
[[nodiscard]] solvers::Trace run_allreduce_process(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    AllreduceReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

}  // namespace isasgd::distributed
