#include "distributed/recovery.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace isasgd::distributed {

void FaultScenario::validate(std::size_t nodes) const {
  auto reject = [](const char* field, const char* requirement) {
    throw std::invalid_argument(std::string("FaultScenario::") + field + ": " +
                                requirement);
  };
  if (!enabled()) return;
  if (crash_node >= nodes) reject("crash_node", "must name an existing rank");
  if (!(crash_fraction >= 0.0 && crash_fraction < 1.0)) {
    reject("crash_fraction", "must be in [0, 1)");
  }
  if (rejoin_epoch != 0 && rejoin_epoch <= crash_epoch) {
    reject("rejoin_epoch", "must be after crash_epoch (or 0 for never)");
  }
  if (nodes < 2) {
    reject("crash_epoch", "needs at least 2 nodes (someone must survive)");
  }
}

void RecoveryOptions::validate() const {
  auto reject = [](const char* field, const char* requirement) {
    throw std::invalid_argument(std::string("RecoveryOptions::") + field +
                                ": " + requirement);
  };
  if (liveness_timeout_ms <= 0) reject("liveness_timeout_ms", "must be > 0");
  if (reply_timeout_ms <= 0) reject("reply_timeout_ms", "must be > 0");
  if (fence_reply_timeout_ms <= 0) {
    reject("fence_reply_timeout_ms", "must be > 0");
  }
  if (max_retries == 0) reject("max_retries", "must be > 0");
  if (!(backoff_initial_ms > 0)) reject("backoff_initial_ms", "must be > 0");
  if (!(backoff_max_ms >= backoff_initial_ms)) {
    reject("backoff_max_ms", "must be >= backoff_initial_ms");
  }
  if (!(backoff_jitter >= 0.0 && backoff_jitter < 1.0)) {
    reject("backoff_jitter", "must be in [0, 1)");
  }
}

Assignment identity_assignment(std::size_t k) {
  Assignment a(k);
  for (std::size_t r = 0; r < k; ++r) {
    a[r].push_back(static_cast<std::uint32_t>(r));
  }
  return a;
}

Assignment plan_assignment(std::size_t k, const std::vector<char>& alive,
                           RecoveryPolicy policy) {
  if (alive.size() != k) {
    throw std::invalid_argument(
        "plan_assignment: alive vector must have one entry per rank");
  }
  Assignment a(k);
  std::vector<std::uint32_t> orphans;
  for (std::size_t w = 0; w < k; ++w) {
    if (alive[w]) {
      a[w].push_back(static_cast<std::uint32_t>(w));
    } else {
      orphans.push_back(static_cast<std::uint32_t>(w));
    }
  }
  if (policy == RecoveryPolicy::kNone) return a;
  for (const std::uint32_t w : orphans) {
    // Deal to the alive rank with the fewest walks, lowest rank on ties.
    std::size_t best = k;
    for (std::size_t r = 0; r < k; ++r) {
      if (!alive[r]) continue;
      if (best == k || a[r].size() < a[best].size()) best = r;
    }
    if (best == k) return a;  // nobody alive: nothing to deal to
    a[best].push_back(w);
  }
  return a;
}

}  // namespace isasgd::distributed
