// Asynchronous parameter-server simulation: IS-ASGD at node granularity.
//
// Each simulated node owns one shard of the dataset (the Algorithm-4
// partition, so importance balancing applies across *nodes* exactly as §2.3
// describes), computes stochastic gradients against the server's parameters
// and pushes index-compressed sparse updates, send-and-forget. The server
// applies pushes in arrival order. Staleness is not injected — it *emerges*
// from the cost model: an update computed at time s lands at
// s + compute + latency + size/bandwidth, and every update other nodes land
// in between is the paper's τ.
//
// The simulation is a discrete-event loop on a single thread (simulated
// time is exact and runs are bit-reproducible for a fixed seed), and the
// returned Trace carries simulated seconds, so param-server IS-ASGD /
// ASGD / all-reduce SGD are directly comparable under one ClusterSpec.
#pragma once

#include "distributed/cluster.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::distributed {

/// Diagnostics of one parameter-server run.
struct ParamServerReport {
  /// Mean number of foreign updates applied between an update's compute
  /// start and its arrival — the emergent τ of §3.
  double mean_staleness_updates = 0;
  /// Total pushes (= total updates = epochs·n).
  std::size_t messages = 0;
  /// Total bytes pushed over all links.
  std::size_t bytes_sent = 0;
  /// Simulated seconds at the end of training.
  double simulated_seconds = 0;
  /// Φ spread across node shards ((max−min)/mean, Eq. 18/19).
  double phi_imbalance = 0;
  /// Partition strategy actually applied (resolves kAdaptive).
  partition::Strategy applied_strategy = partition::Strategy::kNone;
};

/// Runs `options.epochs` passes of parameter-server SGD over the simulated
/// cluster. `options.threads` is ignored — `spec.nodes` is the parallelism.
/// With `use_importance` true, each node samples its shard by the local
/// Eq. 12 distribution with 1/(N_a·p_i) reweighting (Algorithm 4 lines
/// 10–15) and the partition honours `options.partition`; with it false,
/// nodes sample uniformly (distributed ASGD baseline) over a shuffled split.
/// The Trace's time axis is simulated seconds.
[[nodiscard]] solvers::Trace run_param_server(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr);

}  // namespace isasgd::distributed
