// Asynchronous parameter-server simulation: IS-ASGD at node granularity.
//
// Each simulated node owns one shard of the dataset (the Algorithm-4
// partition, so importance balancing applies across *nodes* exactly as §2.3
// describes), computes stochastic gradients against the server's parameters
// and pushes index-compressed sparse updates, send-and-forget. The server
// applies pushes in arrival order. Staleness is not injected — it *emerges*
// from the cost model: an update computed at time s lands at
// s + compute + latency + size/bandwidth, and every update other nodes land
// in between is the paper's τ.
//
// The simulation is a sim::EventLoop drain on a single thread (simulated
// time is exact and runs are bit-reproducible for a fixed seed), and the
// returned Trace carries simulated seconds, so param-server IS-ASGD /
// ASGD / all-reduce SGD are directly comparable under one ClusterSpec.
//
// Registry names (solvers/SolverRegistry): "dist.ps.is_asgd" wraps the
// importance-sampled run, "dist.ps.asgd" the uniform baseline; both read
// their ClusterSpec from SolverContext::cluster (TrainerBuilder::cluster)
// and publish a ParamServerReport through TrainingObserver::on_diagnostics.
// The free functions below remain the engine-level entry points the unit
// tests pin down.
#pragma once

#include <cstdint>

#include "data/data_source.hpp"
#include "distributed/cluster.hpp"
#include "objectives/objective.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::distributed {

/// Diagnostics of one parameter-server run. Published to
/// TrainingObserver::on_diagnostics by the registry wrappers.
struct ParamServerReport {
  /// Mean number of foreign updates applied between an update's compute
  /// start and its arrival — the emergent τ of §3.
  double mean_staleness_updates = 0;
  /// Total pushes (= total updates = epochs·n).
  std::size_t messages = 0;
  /// Total bytes pushed over all links.
  std::size_t bytes_sent = 0;
  /// Simulated seconds at the end of training.
  double simulated_seconds = 0;
  /// Φ spread across node shards ((max−min)/mean, Eq. 18/19).
  double phi_imbalance = 0;
  /// Partition strategy actually applied (resolves kAdaptive).
  partition::Strategy applied_strategy = partition::Strategy::kNone;
  /// Wire-client retransmits summed over ranks (0 without fault injection).
  std::uint64_t wire_retries = 0;
  /// Worker deaths observed (scripted FaultScenario crash, or a liveness
  /// deadline expiring under wire faults).
  std::uint64_t crash_events = 0;
  /// Replacement workers admitted at an epoch fence.
  std::uint64_t rejoin_events = 0;
};

/// Runs `options.epochs` passes of parameter-server SGD over the simulated
/// cluster. `options.threads` is ignored — `spec.nodes` is the parallelism.
/// With `use_importance` true, each node samples its shard by the local
/// Eq. 12 distribution with 1/(N_a·p_i) reweighting (Algorithm 4 lines
/// 10–15) and the partition honours `options.partition`; with it false,
/// nodes sample uniformly (distributed ASGD baseline) over a shuffled split.
/// The Trace's time axis is simulated seconds. `observer` (optional)
/// receives per-epoch points, may stop the run at an epoch fence, and gets
/// the ParamServerReport via on_diagnostics.
[[nodiscard]] solvers::Trace run_param_server(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

/// Shard-major variant: node shards are whole data::DataSource partitions
/// instead of individual rows, so a streaming source can feed the simulated
/// cluster shard-by-shard without materialising one full matrix. Shards are
/// dealt to nodes by the Algorithm-4 balancing machinery applied at shard
/// granularity (shard Φ totals as the importance values); each node then
/// walks its shards in assigned order, sampling within the resident shard
/// by the local Eq. 12 law (or uniformly when `use_importance` is false).
/// In-flight updates pin their shard via ShardPtr, so cache eviction can
/// never invalidate a pending push.
[[nodiscard]] solvers::Trace run_param_server_sharded(
    const data::DataSource& source, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    ParamServerReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

}  // namespace isasgd::distributed
