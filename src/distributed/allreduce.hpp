// Synchronous data-parallel SGD with ring all-reduce: the dense baseline.
//
// The cluster-scale mirror of the paper's §1.2 argument: a synchronous
// data-parallel round averages the workers' mini-batch gradients with an
// all-reduce, and an all-reduce is a *dense* collective — every round moves
// Θ(d) bytes per node no matter how sparse the individual gradients are
// (once k·b gradients are summed the aggregate is dense-ish anyway, and the
// ring schedule pre-partitions the vector by coordinate range, so sparsity
// cannot be exploited). Exactly like SVRG's dense μ, the cost is
// independent of the per-sample nnz, so on high-dimensional sparse data the
// communication term dwarfs the compute and the async sparse-push server
// wins on simulated wall-clock — while per *update* the synchronous method
// is the lower-variance one. bench/ablation_distributed sweeps d to locate
// the crossover.
#pragma once

#include "distributed/cluster.hpp"
#include "objectives/objective.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::distributed {

/// Diagnostics of one all-reduce run.
struct AllreduceReport {
  /// Synchronous rounds executed (epochs·⌈n/(k·b)⌉).
  std::size_t rounds = 0;
  /// Dense bytes moved per node per round (the 2(k−1)/k·d·8 ring volume).
  double bytes_per_node_per_round = 0;
  /// Simulated seconds at the end of training.
  double simulated_seconds = 0;
  /// Fraction of simulated time spent in communication.
  double comm_fraction = 0;
};

/// Runs synchronous data-parallel SGD: each round every node draws
/// `options.batch_size` samples from its shard (uniform, or Eq. 12-weighted
/// with `use_importance`), gradients are averaged across all k·b samples via
/// a simulated ring all-reduce, and the shared model takes one step.
/// `options.threads` is ignored — `spec.nodes` is the parallelism. The
/// Trace's time axis is simulated seconds. `observer` (optional) receives
/// per-epoch points, may stop the run at an epoch fence, and gets the
/// AllreduceReport via on_diagnostics. Registered in the SolverRegistry as
/// "dist.allreduce.sgd" (uniform sampling).
[[nodiscard]] solvers::Trace run_allreduce_sgd(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const solvers::SolverOptions& options, const ClusterSpec& spec,
    bool use_importance, const solvers::EvalFn& eval,
    AllreduceReport* report = nullptr,
    solvers::TrainingObserver* observer = nullptr);

}  // namespace isasgd::distributed
