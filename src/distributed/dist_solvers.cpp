// Registry wrappers folding the distributed simulation into the unified
// solver architecture: the parameter-server and all-reduce engines become
// first-class solvers::Solver citizens, addressable through
// core::Trainer::train(name, ...) like every serial solver —
//
//   dist.ps.is_asgd     parameter-server IS-ASGD (balanced node shards,
//                       local Eq. 12 sampling, sparse async pushes)
//   dist.ps.asgd        parameter-server ASGD (uniform sampling baseline)
//   dist.allreduce.sgd  synchronous data-parallel SGD over a simulated
//                       ring all-reduce (the dense-collective baseline)
//
// All three read their ClusterSpec from SolverContext::cluster — configured
// once via core::TrainerBuilder::cluster(...) — falling back to the default
// spec (4-node 10 GbE) when none was set, and publish their typed report
// (ParamServerReport / AllreduceReport) through
// TrainingObserver::on_diagnostics. Capabilities carry simulated_time so
// sweeps know the trace's time axis is simulated seconds, and the
// parameter-server pair is streaming-capable: on a sharded DataSource the
// node shards are whole source partitions dealt by the Algorithm-4
// balancing machinery (run_param_server_sharded), so an out-of-core file
// can feed the simulated cluster shard-by-shard.
// Backend dispatch (ClusterSpec::backend / ::schedule):
//   kSimulate + kEventClock        the PR-4 discrete-event engines (default)
//   kSimulate + kFencedRoundRobin  deterministic fenced simulation (fenced.hpp)
//   kProcess  (fenced only)        real 1-server/k-worker process group
//                                  (real_runtime.hpp); traces carry host
//                                  wall-clock seconds, and a sharded source
//                                  is materialised first (the process
//                                  backend partitions in memory pre-fork).
#include "distributed/allreduce.hpp"
#include "distributed/cluster.hpp"
#include "distributed/fenced.hpp"
#include "distributed/param_server.hpp"
#include "distributed/real_runtime.hpp"
#include "solvers/solver.hpp"

namespace isasgd::distributed {

namespace {

/// The context's cluster spec, or the documented default.
ClusterSpec cluster_or_default(const solvers::SolverContext& ctx) {
  return ctx.cluster ? *ctx.cluster : ClusterSpec{};
}

class ParamServerSolver : public solvers::Solver {
 public:
  explicit ParamServerSolver(bool use_importance)
      : use_importance_(use_importance) {}

  solvers::SolverCapabilities capabilities() const noexcept override {
    return {.importance_sampling = use_importance_,
            .streaming = true,
            .simulated_time = true};
  }

 protected:
  solvers::Trace run_impl(const solvers::SolverContext& ctx) const override {
    const ClusterSpec spec = cluster_or_default(ctx);
    if (spec.backend == Backend::kProcess) {
      return run_param_server_process(ctx.data(), ctx.objective, ctx.options,
                                      spec, use_importance_, ctx.eval,
                                      /*report=*/nullptr, ctx.observer);
    }
    if (spec.schedule == Schedule::kFencedRoundRobin) {
      if (ctx.sharded()) {
        return run_param_server_fenced_sharded(
            ctx.source, ctx.objective, ctx.options, spec, use_importance_,
            ctx.eval, /*report=*/nullptr, ctx.observer);
      }
      return run_param_server_fenced(ctx.data(), ctx.objective, ctx.options,
                                     spec, use_importance_, ctx.eval,
                                     /*report=*/nullptr, ctx.observer);
    }
    if (ctx.sharded()) {
      return run_param_server_sharded(ctx.source, ctx.objective, ctx.options,
                                      spec, use_importance_, ctx.eval,
                                      /*report=*/nullptr, ctx.observer);
    }
    return run_param_server(ctx.data(), ctx.objective, ctx.options, spec,
                            use_importance_, ctx.eval, /*report=*/nullptr,
                            ctx.observer);
  }

 private:
  bool use_importance_;
};

class PsIsAsgdSolver final : public ParamServerSolver {
 public:
  PsIsAsgdSolver() : ParamServerSolver(/*use_importance=*/true) {}
  std::string_view name() const noexcept override { return "dist.ps.is_asgd"; }
};

class PsAsgdSolver final : public ParamServerSolver {
 public:
  PsAsgdSolver() : ParamServerSolver(/*use_importance=*/false) {}
  std::string_view name() const noexcept override { return "dist.ps.asgd"; }
};

class AllreduceSgdSolver final : public solvers::Solver {
 public:
  std::string_view name() const noexcept override {
    return "dist.allreduce.sgd";
  }
  solvers::SolverCapabilities capabilities() const noexcept override {
    return {.simulated_time = true};
  }

 protected:
  solvers::Trace run_impl(const solvers::SolverContext& ctx) const override {
    const ClusterSpec spec = cluster_or_default(ctx);
    if (spec.backend == Backend::kProcess) {
      return run_allreduce_process(ctx.data(), ctx.objective, ctx.options,
                                   spec, /*use_importance=*/false, ctx.eval,
                                   /*report=*/nullptr, ctx.observer);
    }
    if (spec.schedule == Schedule::kFencedRoundRobin) {
      return run_allreduce_fenced(ctx.data(), ctx.objective, ctx.options, spec,
                                  /*use_importance=*/false, ctx.eval,
                                  /*report=*/nullptr, ctx.observer);
    }
    return run_allreduce_sgd(ctx.data(), ctx.objective, ctx.options, spec,
                             /*use_importance=*/false, ctx.eval,
                             /*report=*/nullptr, ctx.observer);
  }
};

ISASGD_REGISTER_SOLVER(PsIsAsgdSolver);
ISASGD_REGISTER_SOLVER(PsAsgdSolver);
ISASGD_REGISTER_SOLVER(AllreduceSgdSolver);

}  // namespace

}  // namespace isasgd::distributed
