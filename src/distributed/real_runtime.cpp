#include "distributed/real_runtime.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "distributed/fenced.hpp"
#include "distributed/node_walk.hpp"
#include "distributed/ps_wire.hpp"
#include "net/transport.hpp"
#include "solvers/schedule.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

namespace {

/// Generous per-call I/O deadline inside the group. Every blocking call a
/// process makes is bounded by it, so a dead peer turns into a typed
/// TransportError instead of a wedged group.
constexpr int kGroupIoTimeoutMs = 120000;
constexpr int kConnectTimeoutMs = 30000;

std::string pick_address(const ClusterSpec& spec) {
  if (!spec.bind_address.empty()) return spec.bind_address;
  if (spec.transport == "tcp") return "tcp://127.0.0.1:0";
  static std::atomic<std::uint32_t> counter{0};
  return "shm:///tmp/isasgd_group_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

/// Reaps (and on scope exit kills) the forked children. The controller path
/// rethrows transport errors; this guard guarantees the group never
/// outlives the call, success or failure.
class ChildReaper {
 public:
  ~ChildReaper() {
    for (const pid_t pid : children_) {
      ::kill(pid, SIGKILL);
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  void add(pid_t pid) { children_.push_back(pid); }

  /// Waits for every child; throws if any exited abnormally.
  void join_all() {
    std::string failures;
    while (!children_.empty()) {
      const pid_t pid = children_.back();
      children_.pop_back();
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        failures += " pid " + std::to_string(pid) +
                    (WIFSIGNALED(status)
                         ? " killed by signal " + std::to_string(WTERMSIG(status))
                         : " exited " + std::to_string(WEXITSTATUS(status)));
      }
    }
    if (!failures.empty()) {
      throw std::runtime_error("distributed process group failed:" + failures);
    }
  }

 private:
  std::vector<pid_t> children_;
};

/// Writes the server's resolved listen address through the pipe fd, then
/// closes it.
void report_address(int fd, const std::string& address) {
  const std::string line = address + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("address pipe write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

/// Reads the resolved address line from the pipe fd (controller side).
std::string read_address(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || c == '\n') break;
    line.push_back(c);
  }
  ::close(fd);
  if (line.empty()) {
    throw std::runtime_error(
        "distributed server process died before reporting its address");
  }
  return line;
}

void send_hello(net::Endpoint& ep, std::uint32_t role, std::uint32_t rank) {
  wire::Packer p;
  p.u32(role).u32(rank);
  net::write_frame(ep, wire::kHello, p.view());
}

/// Accepts k workers + 1 controller, identified by their hello frames.
struct GroupEndpoints {
  std::vector<std::unique_ptr<net::Endpoint>> worker;
  std::unique_ptr<net::Endpoint> controller;
};

GroupEndpoints accept_group(net::Listener& listener, std::size_t k) {
  GroupEndpoints group;
  group.worker.resize(k);
  listener.set_accept_timeout(kConnectTimeoutMs);
  for (std::size_t i = 0; i < k + 1; ++i) {
    std::unique_ptr<net::Endpoint> ep = listener.accept();
    ep->set_io_timeout(kGroupIoTimeoutMs);
    const net::Frame hello = net::expect_frame(*ep, wire::kHello, "hello");
    wire::Unpacker u(hello.payload);
    const std::uint32_t role = u.u32();
    const std::uint32_t rank = u.u32();
    if (role == wire::kRoleController) {
      group.controller = std::move(ep);
    } else if (rank < k && group.worker[rank] == nullptr) {
      group.worker[rank] = std::move(ep);
    } else {
      throw net::TransportError(net::TransportError::Kind::kProtocol,
                                "duplicate or out-of-range worker rank " +
                                    std::to_string(rank));
    }
  }
  return group;
}

/// Epoch fence as seen by the server: ship the model + counters to the
/// controller, get the continue decision, relay it to every worker.
bool fence_epoch(GroupEndpoints& group, std::size_t epoch,
                 std::uint64_t c0, std::uint64_t c1, std::uint64_t c2,
                 const std::vector<double>& w) {
  wire::Packer fence;
  fence.u64(epoch).u64(c0).u64(c1).u64(c2).u64(w.size());
  fence.raw(w.data(), w.size() * sizeof(double));
  net::write_frame(*group.controller, wire::kFence, fence.view());
  const net::Frame reply =
      net::expect_frame(*group.controller, wire::kFenceReply, "fence reply");
  wire::Unpacker u(reply.payload);
  const bool cont = u.u32() != 0;
  wire::Packer go;
  go.u32(cont ? 1 : 0);
  for (auto& worker : group.worker) {
    net::write_frame(*worker, wire::kEpochGo, go.view());
  }
  return cont;
}

// ---- Parameter-server group -------------------------------------------------

/// The PS process: serves coordinate gets and applies pushes in the fenced
/// rank order (one step per active worker per round — the exact apply
/// sequence of run_param_server_fenced).
void ps_server_main(int addr_fd, const std::string& bind, std::size_t k,
                    std::size_t dim, const solvers::SolverOptions& options,
                    const ClusterSpec& spec) {
  auto listener = net::listen(bind);
  report_address(addr_fd, listener->address());
  GroupEndpoints group = accept_group(*listener, k);

  std::vector<double> w(dim, 0.0);
  std::uint64_t applied = 0, bytes = 0;
  std::vector<std::uint32_t> idx;
  std::vector<double> val;
  for (std::size_t epoch = 1;; ++epoch) {
    std::vector<bool> done(k, false);
    std::size_t ndone = 0;
    while (ndone < k) {
      for (std::size_t a = 0; a < k; ++a) {
        if (done[a]) continue;
        net::Endpoint& worker = *group.worker[a];
        const net::Frame f = net::read_frame(worker);
        if (f.type == wire::kEpochEnd) {
          done[a] = true;
          ++ndone;
          continue;
        }
        if (f.type != wire::kStep) {
          throw net::TransportError(
              net::TransportError::Kind::kProtocol,
              "ps server: expected kStep/kEpochEnd, got frame type " +
                  std::to_string(f.type));
        }
        wire::Unpacker u(f.payload);
        const std::uint32_t ncols = u.u32();
        wire::Packer reply;
        for (std::uint32_t j = 0; j < ncols; ++j) reply.f64(w[u.u32()]);
        net::write_frame(worker, wire::kStepReply, reply.view());

        const net::Frame pf = net::expect_frame(worker, wire::kPush, "push");
        wire::Unpacker up(pf.payload);
        const double gradient_scale = up.f64();
        const double scaled_step = up.f64();
        const std::uint32_t nnz = up.u32();
        idx.resize(nnz);
        val.resize(nnz);
        for (std::uint32_t j = 0; j < nnz; ++j) {
          idx[j] = up.u32();
          val[j] = up.f64();
        }
        fenced::apply_push(idx, val, gradient_scale, scaled_step, options.reg,
                           w);
        ++applied;
        bytes += static_cast<std::uint64_t>(nnz) * spec.bytes_per_nnz;
        net::write_frame(worker, wire::kPushAck, {});
      }
    }
    if (!fence_epoch(group, epoch, applied, applied, bytes, w)) break;
  }
}

/// One PS worker: walks its NodeWalk, get → compute → push per sample. The
/// server's rank-order reads serialize the steps; the worker just blocks.
void ps_worker_main(const std::string& address, std::size_t rank,
                    NodeWalk& walk, const objectives::Objective& objective,
                    const solvers::SolverOptions& options) {
  auto ep = net::connect(address, kConnectTimeoutMs);
  ep->set_io_timeout(kGroupIoTimeoutMs);
  send_hello(*ep, wire::kRoleWorker, static_cast<std::uint32_t>(rank));
  for (std::size_t epoch = 1; epoch <= options.epochs; ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    walk.begin_epoch();
    const std::size_t quota = walk.epoch_quota();
    for (std::size_t q = 0; q < quota; ++q) {
      const NodeWalk::Sample s = walk.next();
      const auto x = s.matrix->row(s.row);
      const auto idx = x.indices();
      const auto val = x.values();

      wire::Packer step;
      step.u32(static_cast<std::uint32_t>(idx.size()));
      for (const std::uint32_t c : idx) step.u32(c);
      net::write_frame(*ep, wire::kStep, step.view());
      const net::Frame reply =
          net::expect_frame(*ep, wire::kStepReply, "step reply");
      wire::Unpacker u(reply.payload);
      double margin = 0;
      for (std::size_t j = 0; j < idx.size(); ++j) margin += u.f64() * val[j];

      wire::Packer push;
      push.f64(objective.gradient_scale(margin, s.matrix->label(s.row)));
      push.f64(lambda * s.weight);
      push.u32(static_cast<std::uint32_t>(idx.size()));
      for (std::size_t j = 0; j < idx.size(); ++j) {
        push.u32(idx[j]);
        push.f64(val[j]);
      }
      net::write_frame(*ep, wire::kPush, push.view());
      (void)net::expect_frame(*ep, wire::kPushAck, "push ack");
    }
    net::write_frame(*ep, wire::kEpochEnd, {});
    const net::Frame go = net::expect_frame(*ep, wire::kEpochGo, "epoch go");
    wire::Unpacker u(go.payload);
    if (u.u32() == 0) break;
  }
}

// ---- All-reduce group -------------------------------------------------------

/// The reducer process: merges worker partials in rank order (the
/// run_allreduce_fenced reduction order), applies the round's step, and
/// broadcasts the touched coordinates so every replica stays bit-exact.
void allreduce_server_main(int addr_fd, const std::string& bind,
                           std::size_t k, std::size_t dim,
                           std::size_t rounds_per_epoch,
                           double samples_per_round,
                           const solvers::SolverOptions& options) {
  auto listener = net::listen(bind);
  report_address(addr_fd, listener->address());
  GroupEndpoints group = accept_group(*listener, k);

  std::vector<double> w(dim, 0.0), accum(dim, 0.0);
  std::vector<std::uint32_t> touched;
  std::uint64_t rounds = 0, reduced_coords = 0;
  for (std::size_t epoch = 1;; ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t r = 0; r < rounds_per_epoch; ++r, ++rounds) {
      for (std::size_t a = 0; a < k; ++a) {
        const net::Frame f =
            net::expect_frame(*group.worker[a], wire::kReduce, "reduce");
        wire::Unpacker u(f.payload);
        const std::uint32_t count = u.u32();
        for (std::uint32_t j = 0; j < count; ++j) {
          const std::uint32_t c = u.u32();
          const double v = u.f64();
          if (accum[c] == 0.0) touched.push_back(c);
          accum[c] += v;
        }
        reduced_coords += count;
      }
      const double step = lambda / samples_per_round;
      wire::Packer delta;
      delta.u32(static_cast<std::uint32_t>(touched.size()));
      for (const std::uint32_t c : touched) {
        w[c] -= step * accum[c] + lambda * options.reg.subgradient(w[c]);
        accum[c] = 0.0;
        delta.u32(c);
        delta.f64(w[c]);
      }
      touched.clear();
      for (auto& worker : group.worker) {
        net::write_frame(*worker, wire::kModelDelta, delta.view());
      }
    }
    if (!fence_epoch(group, epoch, rounds, reduced_coords, 0, w)) break;
  }
}

/// One all-reduce worker: b-sample partial per round against its local
/// replica, which the server's coordinate broadcasts keep bit-identical to
/// the master.
void allreduce_worker_main(const std::string& address, std::size_t rank,
                           NodeWalk& walk,
                           const objectives::Objective& objective,
                           const solvers::SolverOptions& options,
                           std::size_t dim, std::size_t rounds_per_epoch,
                           std::size_t batch) {
  auto ep = net::connect(address, kConnectTimeoutMs);
  ep->set_io_timeout(kGroupIoTimeoutMs);
  send_hello(*ep, wire::kRoleWorker, static_cast<std::uint32_t>(rank));
  std::vector<double> w(dim, 0.0), partial(dim, 0.0);
  std::vector<std::uint32_t> ptouched;
  for (std::size_t epoch = 1; epoch <= options.epochs; ++epoch) {
    for (std::size_t r = 0; r < rounds_per_epoch; ++r) {
      for (std::size_t s = 0; s < batch; ++s) {
        const NodeWalk::Sample sample = walk.next();
        const auto x = sample.matrix->row(sample.row);
        const auto idx = x.indices();
        const auto val = x.values();
        double margin = 0;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          margin += w[idx[j]] * val[j];
        }
        const double g =
            objective.gradient_scale(margin, sample.matrix->label(sample.row)) *
            sample.weight;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const std::size_t c = idx[j];
          if (partial[c] == 0.0) ptouched.push_back(idx[j]);
          partial[c] += g * val[j];
        }
      }
      wire::Packer reduce;
      reduce.u32(static_cast<std::uint32_t>(ptouched.size()));
      for (const std::uint32_t c : ptouched) {
        reduce.u32(c);
        reduce.f64(partial[c]);
        partial[c] = 0.0;
      }
      ptouched.clear();
      net::write_frame(*ep, wire::kReduce, reduce.view());

      const net::Frame delta =
          net::expect_frame(*ep, wire::kModelDelta, "model delta");
      wire::Unpacker u(delta.payload);
      const std::uint32_t count = u.u32();
      for (std::uint32_t j = 0; j < count; ++j) {
        const std::uint32_t c = u.u32();
        w[c] = u.f64();  // assignment: replica stays bit-exact
      }
    }
    const net::Frame go = net::expect_frame(*ep, wire::kEpochGo, "epoch go");
    wire::Unpacker u(go.payload);
    if (u.u32() == 0) break;
  }
}

// ---- Controller (the calling process) ---------------------------------------

struct FencePoint {
  std::size_t epoch = 0;
  std::uint64_t c0 = 0, c1 = 0, c2 = 0;
  std::vector<double> w;
};

FencePoint read_fence(net::Endpoint& ep) {
  const net::Frame f = net::expect_frame(ep, wire::kFence, "fence");
  wire::Unpacker u(f.payload);
  FencePoint point;
  point.epoch = u.u64();
  point.c0 = u.u64();
  point.c1 = u.u64();
  point.c2 = u.u64();
  const std::uint64_t dim = u.u64();
  point.w.resize(dim);
  u.raw(point.w.data(), dim * sizeof(double));
  return point;
}

/// Runs the controller loop: record traces at fences, decide continuation.
/// Returns the last fence (final counters + model). `train_seconds_out`
/// accumulates inter-fence wall time (eval excluded).
FencePoint run_controller(net::Endpoint& ep, std::size_t dim,
                          const solvers::SolverOptions& options,
                          solvers::TraceRecorder& recorder,
                          double* train_seconds_out) {
  send_hello(ep, wire::kRoleController, 0);
  recorder.record(0, 0.0, std::vector<double>(dim, 0.0));
  double train_seconds = 0;
  FencePoint last;
  while (true) {
    util::Stopwatch lap;
    FencePoint point = read_fence(ep);
    train_seconds += lap.seconds();
    recorder.record(point.epoch, train_seconds, point.w);
    const bool cont =
        point.epoch < options.epochs && !recorder.stop_requested();
    wire::Packer reply;
    reply.u32(cont ? 1 : 0);
    net::write_frame(ep, wire::kFenceReply, reply.view());
    last = std::move(point);
    if (!cont) break;
  }
  *train_seconds_out = train_seconds;
  return last;
}

/// Forks `fork_server` then k× `fork_worker`, runs the controller loop in
/// the calling process, and reaps the group.
template <typename ServerFn, typename WorkerFn>
FencePoint run_group(std::size_t k, std::size_t dim,
                     const solvers::SolverOptions& options,
                     const ClusterSpec& spec, solvers::TraceRecorder& recorder,
                     double* train_seconds, ServerFn&& server_fn,
                     WorkerFn&& worker_fn) {
  const std::string bind = pick_address(spec);
  int addr_pipe[2];
  if (::pipe(addr_pipe) < 0) {
    throw std::runtime_error("pipe() failed for the distributed group");
  }
  ChildReaper reaper;
  const pid_t server_pid = ::fork();
  if (server_pid < 0) throw std::runtime_error("fork() failed (server)");
  if (server_pid == 0) {
    ::close(addr_pipe[0]);
    try {
      server_fn(addr_pipe[1], bind);
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  reaper.add(server_pid);
  ::close(addr_pipe[1]);
  const std::string address = read_address(addr_pipe[0]);

  for (std::size_t a = 0; a < k; ++a) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork() failed (worker)");
    if (pid == 0) {
      try {
        worker_fn(a, address);
        ::_exit(0);
      } catch (...) {
        ::_exit(1);
      }
    }
    reaper.add(pid);
  }

  auto ep = net::connect(address, kConnectTimeoutMs);
  ep->set_io_timeout(kGroupIoTimeoutMs);
  FencePoint last = run_controller(*ep, dim, options, recorder, train_seconds);
  ep->close();
  reaper.join_all();
  return last;
}

}  // namespace

solvers::Trace run_param_server_process(const sparse::CsrMatrix& data,
                                        const objectives::Objective& objective,
                                        const solvers::SolverOptions& options,
                                        const ClusterSpec& spec,
                                        bool use_importance,
                                        const solvers::EvalFn& eval,
                                        ParamServerReport* report,
                                        solvers::TrainingObserver* observer) {
  spec.validate();
  util::Stopwatch sw;
  // Shared setup BEFORE the forks: every process inherits the same plan and
  // the same seeded walks.
  fenced::Setup setup = fenced::make_ps_setup(data, objective, options,
                                              spec.nodes, use_importance);
  const std::size_t k = setup.k;
  const std::size_t dim = data.dim();
  solvers::TraceRecorder recorder(use_importance ? "ps_is_asgd" : "ps_asgd", k,
                                  options.step_size, eval, observer);
  recorder.add_setup_seconds(sw.seconds());

  double train_seconds = 0;
  const FencePoint last = run_group(
      k, dim, options, spec, recorder, &train_seconds,
      [&](int addr_fd, const std::string& bind) {
        ps_server_main(addr_fd, bind, k, dim, options, spec);
      },
      [&](std::size_t rank, const std::string& address) {
        ps_worker_main(address, rank, setup.walks[rank], objective, options);
      });

  if (report || observer) {
    ParamServerReport local;
    local.mean_staleness_updates = 0;  // fenced schedule: immediate applies
    local.messages = last.c1;
    local.bytes_sent = last.c2;
    local.simulated_seconds = train_seconds;  // wall seconds: real backend
    local.phi_imbalance = setup.plan->imbalance();
    local.applied_strategy = setup.plan->applied_strategy();
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(last.w);
  return std::move(recorder).finish(train_seconds);
}

solvers::Trace run_allreduce_process(const sparse::CsrMatrix& data,
                                     const objectives::Objective& objective,
                                     const solvers::SolverOptions& options,
                                     const ClusterSpec& spec,
                                     bool use_importance,
                                     const solvers::EvalFn& eval,
                                     AllreduceReport* report,
                                     solvers::TrainingObserver* observer) {
  spec.validate();
  util::Stopwatch sw;
  fenced::Setup setup = fenced::make_allreduce_setup(
      data, objective, options, spec.nodes, use_importance);
  const std::size_t k = setup.k;
  const std::size_t dim = data.dim();
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  const std::size_t rounds_per_epoch = (n + k * b - 1) / (k * b);
  const double samples_per_round = static_cast<double>(k * b);
  solvers::TraceRecorder recorder(
      use_importance ? "allreduce_is_sgd" : "allreduce_sgd", k,
      options.step_size, eval, observer);
  recorder.add_setup_seconds(sw.seconds());

  double train_seconds = 0;
  const FencePoint last = run_group(
      k, dim, options, spec, recorder, &train_seconds,
      [&](int addr_fd, const std::string& bind) {
        allreduce_server_main(addr_fd, bind, k, dim, rounds_per_epoch,
                              samples_per_round, options);
      },
      [&](std::size_t rank, const std::string& address) {
        allreduce_worker_main(address, rank, setup.walks[rank], objective,
                              options, dim, rounds_per_epoch, b);
      });

  if (report || observer) {
    AllreduceReport local;
    local.rounds = last.c0;
    local.bytes_per_node_per_round =
        k > 1 ? 2.0 * (static_cast<double>(k) - 1.0) / static_cast<double>(k) *
                    static_cast<double>(dim) *
                    static_cast<double>(spec.bytes_per_dense_coord)
              : 0.0;
    local.simulated_seconds = train_seconds;  // wall seconds: real backend
    local.comm_fraction = 0;  // not separable in a real run
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(last.w);
  return std::move(recorder).finish(train_seconds);
}

}  // namespace isasgd::distributed
