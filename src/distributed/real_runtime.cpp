#include "distributed/real_runtime.hpp"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "distributed/fenced.hpp"
#include "distributed/node_walk.hpp"
#include "distributed/ps_wire.hpp"
#include "distributed/recovery.hpp"
#include "net/fault.hpp"
#include "net/transport.hpp"
#include "solvers/schedule.hpp"
#include "util/backoff.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::distributed {

namespace {

/// Generous per-call I/O deadline inside a fault-free group. Every blocking
/// call a process makes is bounded by it, so a dead peer turns into a typed
/// TransportError instead of a wedged group. Fault-tolerant runs (a wire
/// FaultSpec or FaultScenario is active) switch to the much tighter
/// RecoveryOptions deadlines instead.
constexpr int kGroupIoTimeoutMs = 120000;
constexpr int kConnectTimeoutMs = 30000;
/// Accept/read poll granularity while a fault-tolerant server waits: short
/// enough to notice reconnects promptly, long enough not to spin.
constexpr int kPollMs = 50;

using Clock = std::chrono::steady_clock;

bool fault_tolerant(const ClusterSpec& spec) {
  return spec.wire_faults.enabled() || spec.fault.enabled();
}

std::shared_ptr<const net::FaultPlan> make_plan(const ClusterSpec& spec) {
  if (!spec.wire_faults.enabled()) return nullptr;
  return std::make_shared<net::FaultPlan>(spec.wire_faults);
}

std::string pick_address(const ClusterSpec& spec) {
  if (!spec.bind_address.empty()) return spec.bind_address;
  if (spec.transport == "tcp") return "tcp://127.0.0.1:0";
  static std::atomic<std::uint32_t> counter{0};
  return "shm:///tmp/isasgd_group_" + std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1));
}

/// Reaps (and on scope exit kills) the forked children. The controller path
/// rethrows transport errors; this guard guarantees the group never
/// outlives the call, success or failure.
class ChildReaper {
 public:
  ~ChildReaper() {
    for (const pid_t pid : children_) {
      ::kill(pid, SIGKILL);
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
  }

  void add(pid_t pid) { children_.push_back(pid); }

  /// Waits for every child; throws if any exited abnormally. A scripted
  /// crash is a clean _exit(0), so it passes — an assertion failure or
  /// signal in any child still fails the run.
  void join_all() {
    std::string failures;
    while (!children_.empty()) {
      const pid_t pid = children_.back();
      children_.pop_back();
      int status = 0;
      while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
      }
      if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
        failures += " pid " + std::to_string(pid) +
                    (WIFSIGNALED(status)
                         ? " killed by signal " + std::to_string(WTERMSIG(status))
                         : " exited " + std::to_string(WEXITSTATUS(status)));
      }
    }
    if (!failures.empty()) {
      throw std::runtime_error("distributed process group failed:" + failures);
    }
  }

 private:
  std::vector<pid_t> children_;
};

/// Writes the server's resolved listen address through the pipe fd, then
/// closes it.
void report_address(int fd, const std::string& address) {
  const std::string line = address + "\n";
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("address pipe write failed");
    }
    off += static_cast<std::size_t>(n);
  }
  ::close(fd);
}

/// Reads the resolved address line from the pipe fd (controller side).
std::string read_address(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0 || c == '\n') break;
    line.push_back(c);
  }
  ::close(fd);
  if (line.empty()) {
    throw std::runtime_error(
        "distributed server process died before reporting its address");
  }
  return line;
}

/// Hellos are always sent on the UNWRAPPED endpoint (before any fault
/// decorator is attached): losing the handshake would deadlock group setup
/// without exercising anything the recovery protocol is responsible for.
void send_hello(net::Endpoint& ep, std::uint32_t role, std::uint32_t rank,
                std::uint32_t resume) {
  wire::Packer p;
  p.u32(role).u32(rank).u32(resume);
  net::write_frame(ep, wire::kHello, p.view());
}

// ---- Fault-tolerant PS wire client ------------------------------------------

/// One (walk, fast-forward) assignment entry of a kEpochGo.
struct GoEntry {
  std::uint32_t walk = 0;
  std::uint64_t ff = 0;
};

/// Parsed kEpochGo.
struct EpochGo {
  bool cont = false;
  std::size_t next_epoch = 0;
  std::vector<GoEntry> assign;
};

/// The worker side of the sequence-numbered PS protocol: every request gets
/// a fresh seq, and request() retransmits (reconnecting on kClosed) until
/// the matching reply arrives or the retry budget is spent. Because the
/// server caches the last reply per rank and dedups on seq, a retried push
/// is applied exactly once no matter where the wire failed.
class PsClient {
 public:
  PsClient(std::string address, std::size_t rank, const ClusterSpec& spec,
           std::shared_ptr<const net::FaultPlan> plan)
      : address_(std::move(address)),
        rank_(static_cast<std::uint32_t>(rank)),
        spec_(spec),
        plan_(std::move(plan)),
        reply_timeout_ms_(fault_tolerant(spec) ? spec.recovery.reply_timeout_ms
                                               : kGroupIoTimeoutMs),
        fence_timeout_ms_(fault_tolerant(spec)
                              ? spec.recovery.fence_reply_timeout_ms
                              : kGroupIoTimeoutMs),
        backoff_({.initial_ms = spec.recovery.backoff_initial_ms,
                  .max_ms = spec.recovery.backoff_max_ms,
                  .multiplier = 2.0,
                  .jitter = spec.recovery.backoff_jitter,
                  .seed = util::derive_seed(spec.wire_faults.seed,
                                            0xba0fu + rank)}) {
    connect();
  }

  /// Coordinate get: returns w[c] for each requested column, in order.
  std::vector<double> step(std::span<const std::uint32_t> cols) {
    const std::uint64_t seq = ++seq_;
    wire::Packer p;
    p.u64(seq).u32(static_cast<std::uint32_t>(cols.size()));
    for (const std::uint32_t c : cols) p.u32(c);
    const std::string reply = request(wire::kStep, seq, p.view(),
                                      wire::kStepReply, reply_timeout_ms_);
    wire::Unpacker u(reply);
    (void)u.u64();  // seq, already matched
    std::vector<double> values(cols.size());
    for (double& v : values) v = u.f64();
    return values;
  }

  /// Sparse push for `walk`, applied exactly once server-side.
  void push(std::uint32_t walk, double gradient_scale, double scaled_step,
            std::span<const std::uint32_t> idx, std::span<const double> val) {
    const std::uint64_t seq = ++seq_;
    wire::Packer p;
    p.u64(seq).u32(walk).f64(gradient_scale).f64(scaled_step);
    p.u32(static_cast<std::uint32_t>(idx.size()));
    for (std::size_t j = 0; j < idx.size(); ++j) {
      p.u32(idx[j]);
      p.f64(val[j]);
    }
    (void)request(wire::kPush, seq, p.view(), wire::kPushAck,
                  reply_timeout_ms_);
  }

  /// Epoch fence: reports this client's cumulative wire retries, blocks on
  /// the kEpochGo carrying the continue flag and next epoch's assignment.
  /// The wait retransmits kEpochEnd at the ordinary reply cadence — the
  /// fence can legitimately take long (controller eval, dead-rank
  /// detection), and only a steady frame stream keeps the server's liveness
  /// deadline from declaring THIS rank dead meanwhile; the server dedups
  /// the repeats by sequence number.
  EpochGo epoch_end() {
    const std::uint64_t seq = ++seq_;
    wire::Packer p;
    p.u64(seq).u64(retries_);
    const std::string reply = request(wire::kEpochEnd, seq, p.view(),
                                      wire::kEpochGo, reply_timeout_ms_);
    wire::Unpacker u(reply);
    (void)u.u64();  // seq
    EpochGo go;
    go.cont = u.u32() != 0;
    go.next_epoch = u.u32();
    const std::uint32_t nwalks = u.u32();
    go.assign.resize(nwalks);
    for (GoEntry& e : go.assign) {
      e.walk = u.u32();
      e.ff = u.u64();
    }
    return go;
  }

  [[nodiscard]] std::uint64_t retries() const noexcept { return retries_; }

 private:
  void connect() {
    auto raw = net::connect(address_, kConnectTimeoutMs);
    raw->set_io_timeout(kConnectTimeoutMs);
    // resume=0 only on a fresh process's first connection: the server resets
    // the rank's sequence state so a rejoining replacement starts at seq 1.
    send_hello(*raw, wire::kRoleWorker, rank_, incarnation_ > 0 ? 1 : 0);
    ep_ = net::wrap_faulty(
        std::move(raw), plan_,
        net::FaultPlan::stream_id(0, rank_, incarnation_), nullptr);
    ++incarnation_;
  }

  std::string request(std::uint32_t type, std::uint64_t seq,
                      const std::string& payload, std::uint32_t reply_type,
                      int timeout_ms) {
    // Two failure budgets: timeouts retransmit until the fence deadline (a
    // slow server mid-fence or mid-liveness-wait is not an error, and the
    // retransmits are what keep THIS rank looking alive to it); closes
    // reconnect at most max_retries times (a server that keeps tearing the
    // connection down is one).
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(fence_timeout_ms_);
    backoff_.reset();
    std::size_t closes = 0;
    while (true) {
      try {
        if (!ep_) connect();
        ep_->set_io_timeout(timeout_ms);
        net::write_frame(*ep_, type, payload);
        while (true) {
          const net::Frame f = net::read_frame(*ep_);
          wire::Unpacker u(f.payload);
          const std::uint64_t rseq = u.u64();
          // A duplicate of an earlier reply (our retransmit crossed the
          // original answer, or a stale cached resend): discard and keep
          // reading — sequence numbers are monotonic per rank.
          if (rseq < seq) continue;
          if (rseq != seq || f.type != reply_type) {
            throw net::TransportError(
                net::TransportError::Kind::kProtocol,
                "ps client rank " + std::to_string(rank_) +
                    ": expected reply type " + std::to_string(reply_type) +
                    " seq " + std::to_string(seq) + ", got type " +
                    std::to_string(f.type) + " seq " + std::to_string(rseq));
          }
          return f.payload;
        }
      } catch (const net::TransportError& e) {
        if (e.kind() == net::TransportError::Kind::kProtocol ||
            e.kind() == net::TransportError::Kind::kIo) {
          throw;
        }
        // kTimeout: the stream is still frame-aligned (whole frames are
        // dropped or delayed, never split) — retransmit on it. kClosed:
        // torn/reset/dead peer — reconnect with a fresh incarnation.
        if (e.kind() == net::TransportError::Kind::kClosed) {
          ep_.reset();
          if (++closes > spec_.recovery.max_retries) throw;
        }
        if (Clock::now() >= deadline) throw;
        ++retries_;
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_.next_ms()));
      }
    }
  }

  std::string address_;
  std::uint32_t rank_;
  const ClusterSpec& spec_;
  std::shared_ptr<const net::FaultPlan> plan_;
  int reply_timeout_ms_;
  int fence_timeout_ms_;
  util::Backoff backoff_;
  std::unique_ptr<net::Endpoint> ep_;
  std::uint32_t incarnation_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t retries_ = 0;
};

// ---- Fault-tolerant PS server -----------------------------------------------

/// The PS process: serves coordinate gets and applies pushes in the fenced
/// rank order (one applied push per live rank per round — the exact apply
/// sequence of the fenced simulator, crash-aware or not). Detects a dead
/// worker by its liveness deadline expiring, reports per-rank liveness and
/// per-walk applied-draw counts at each fence, and executes whatever
/// assignment the controller replies with.
class PsServer {
 public:
  PsServer(int addr_fd, const std::string& bind, std::size_t k,
           std::size_t dim, const solvers::SolverOptions& options,
           const ClusterSpec& spec)
      : k_(k),
        options_(options),
        spec_(spec),
        plan_(make_plan(spec)),
        ft_(fault_tolerant(spec)),
        liveness_ms_(ft_ ? spec.recovery.liveness_timeout_ms
                         : kGroupIoTimeoutMs),
        poll_ms_(ft_ ? kPollMs : kGroupIoTimeoutMs),
        w_(dim, 0.0),
        walk_draws_(k, 0),
        ranks_(k) {
    listener_ = net::listen(bind);
    report_address(addr_fd, listener_->address());
    accept_initial();
  }

  void run() {
    for (std::size_t epoch = 1;; ++epoch) {
      std::size_t ndone = 0;
      for (RankState& rs : ranks_) {
        rs.done = rs.dead;  // dead ranks have nothing to serve
        if (rs.done) ++ndone;
      }
      while (ndone < k_) {
        for (std::size_t r = 0; r < k_; ++r) {
          if (ranks_[r].done) continue;
          if (serve_slot(r) != SlotResult::kApplied) {
            ranks_[r].done = true;
            ++ndone;
          }
        }
      }
      if (!fence(epoch)) break;
    }
    if (ft_) drain_shutdown();
  }

 private:
  enum class SlotResult { kApplied, kDone, kDead };

  struct RankState {
    std::unique_ptr<net::Endpoint> ep;
    bool dead = false;
    bool done = false;
    std::uint64_t last_seq = 0;
    std::uint32_t cached_type = 0;  // 0 = no cached reply
    std::string cached_reply;
    std::uint32_t incarnations = 0;
    std::uint64_t go_seq = 0;
    std::uint64_t retries = 0;  // worker-reported cumulative wire retries
  };

  void install(std::uint32_t rank, std::uint32_t resume,
               std::unique_ptr<net::Endpoint> ep) {
    RankState& rs = ranks_[rank];
    if (resume == 0) {
      // Fresh process (first worker or rejoining replacement): its sequence
      // numbers restart at 1.
      rs.last_seq = 0;
      rs.cached_type = 0;
      rs.cached_reply.clear();
      rs.retries = 0;
    }
    rs.ep = net::wrap_faulty(
        std::move(ep), plan_,
        net::FaultPlan::stream_id(1, rank, rs.incarnations), nullptr);
    ++rs.incarnations;
  }

  void accept_initial() {
    listener_->set_accept_timeout(kConnectTimeoutMs);
    std::size_t have = 0;
    while (controller_ == nullptr || have < k_) {
      std::unique_ptr<net::Endpoint> ep = listener_->accept();
      ep->set_io_timeout(kConnectTimeoutMs);
      const net::Frame hello = net::expect_frame(*ep, wire::kHello, "hello");
      wire::Unpacker u(hello.payload);
      const std::uint32_t role = u.u32();
      const std::uint32_t rank = u.u32();
      const std::uint32_t resume = u.u32();
      if (role == wire::kRoleController) {
        controller_ = std::move(ep);
        controller_->set_io_timeout(kGroupIoTimeoutMs);
      } else if (rank < k_ && ranks_[rank].ep == nullptr) {
        install(rank, resume, std::move(ep));
        ++have;
      } else {
        throw net::TransportError(net::TransportError::Kind::kProtocol,
                                  "duplicate or out-of-range worker rank " +
                                      std::to_string(rank));
      }
    }
  }

  /// Accepts connections until `target`'s (re)connect arrives or the
  /// deadline passes. Other ranks' reconnects arriving meanwhile are
  /// installed too — a rank's slot must not eat another rank's handshake.
  bool await_rank(std::size_t target, Clock::time_point deadline) {
    listener_->set_accept_timeout(poll_ms_);
    while (Clock::now() < deadline) {
      std::unique_ptr<net::Endpoint> ep;
      try {
        ep = listener_->accept();
      } catch (const net::TransportError& e) {
        if (e.kind() == net::TransportError::Kind::kTimeout) continue;
        throw;
      }
      std::uint32_t role = 0, rank = 0, resume = 0;
      try {
        ep->set_io_timeout(std::max(poll_ms_ * 4, 200));
        const net::Frame hello = net::expect_frame(*ep, wire::kHello, "hello");
        wire::Unpacker u(hello.payload);
        role = u.u32();
        rank = u.u32();
        resume = u.u32();
      } catch (const net::TransportError& e) {
        if (e.kind() == net::TransportError::Kind::kProtocol) throw;
        continue;  // half-open connection: drop it, keep waiting
      }
      if (role != wire::kRoleWorker || rank >= k_) {
        throw net::TransportError(
            net::TransportError::Kind::kProtocol,
            "unexpected mid-run hello (role " + std::to_string(role) +
                ", rank " + std::to_string(rank) + ")");
      }
      install(rank, resume, std::move(ep));
      if (rank == target) return true;
    }
    return false;
  }

  void mark_dead(std::size_t r) {
    RankState& rs = ranks_[r];
    rs.dead = true;
    rs.ep.reset();
  }

  /// Sends a reply and remembers it as the rank's cached reply, so a
  /// duplicate of the request (seq == last_seq) can be answered again
  /// without re-executing. A send failure just drops the connection — the
  /// worker reconnects and retransmits, hitting the cache.
  void reply_cached(RankState& rs, std::uint32_t type, std::string payload) {
    rs.cached_type = type;
    rs.cached_reply = std::move(payload);
    send_cached(rs);
  }

  void send_cached(RankState& rs) {
    if (!rs.ep) return;
    try {
      net::write_frame(*rs.ep, rs.cached_type, rs.cached_reply);
    } catch (const net::TransportError& e) {
      if (e.kind() == net::TransportError::Kind::kProtocol ||
          e.kind() == net::TransportError::Kind::kIo) {
        throw;
      }
      rs.ep.reset();
    }
  }

  /// Serves rank r until it contributes one applied push (kApplied), ends
  /// its epoch (kDone), or its liveness deadline expires (kDead).
  SlotResult serve_slot(std::size_t r) {
    RankState& rs = ranks_[r];
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(liveness_ms_);
    while (true) {
      if (!rs.ep) {
        if (!await_rank(r, deadline)) {
          mark_dead(r);
          return SlotResult::kDead;
        }
        continue;
      }
      net::Frame f;
      try {
        rs.ep->set_io_timeout(poll_ms_);
        f = net::read_frame(*rs.ep);
      } catch (const net::TransportError& e) {
        if (e.kind() == net::TransportError::Kind::kTimeout) {
          if (Clock::now() < deadline) continue;
          mark_dead(r);
          return SlotResult::kDead;
        }
        if (e.kind() != net::TransportError::Kind::kClosed) throw;
        rs.ep.reset();  // worker died or is reconnecting; await_rank decides
        continue;
      }
      wire::Unpacker u(f.payload);
      const std::uint64_t seq = u.u64();
      if (seq <= rs.last_seq) {
        // Retransmit of something already executed: resend the cached reply
        // (exactly-once applies live here), ignore anything older.
        if (seq == rs.last_seq && rs.cached_type != 0) send_cached(rs);
        continue;
      }
      if (seq != rs.last_seq + 1) {
        throw net::TransportError(
            net::TransportError::Kind::kProtocol,
            "ps server: rank " + std::to_string(r) + " jumped from seq " +
                std::to_string(rs.last_seq) + " to " + std::to_string(seq));
      }
      switch (f.type) {
        case wire::kStep: {
          const std::uint32_t ncols = u.u32();
          wire::Packer reply;
          reply.u64(seq);
          for (std::uint32_t j = 0; j < ncols; ++j) reply.f64(w_[u.u32()]);
          rs.last_seq = seq;
          reply_cached(rs, wire::kStepReply, std::move(reply).take());
          continue;  // the step's push is still owed in this slot
        }
        case wire::kPush: {
          const std::uint32_t walk = u.u32();
          const double gradient_scale = u.f64();
          const double scaled_step = u.f64();
          const std::uint32_t nnz = u.u32();
          if (walk >= k_) {
            throw net::TransportError(
                net::TransportError::Kind::kProtocol,
                "ps server: push for out-of-range walk " +
                    std::to_string(walk));
          }
          idx_.resize(nnz);
          val_.resize(nnz);
          for (std::uint32_t j = 0; j < nnz; ++j) {
            idx_[j] = u.u32();
            val_[j] = u.f64();
          }
          fenced::apply_push(idx_, val_, gradient_scale, scaled_step,
                             options_.reg, w_);
          ++applied_;
          ++walk_draws_[walk];
          bytes_ += static_cast<std::uint64_t>(nnz) * spec_.bytes_per_nnz;
          rs.last_seq = seq;
          wire::Packer ack;
          ack.u64(seq);
          reply_cached(rs, wire::kPushAck, std::move(ack).take());
          return SlotResult::kApplied;
        }
        case wire::kEpochEnd: {
          rs.retries = u.u64();
          rs.last_seq = seq;
          rs.go_seq = seq;
          rs.cached_type = 0;  // the kEpochGo becomes the cached reply
          rs.cached_reply.clear();
          return SlotResult::kDone;
        }
        default:
          throw net::TransportError(
              net::TransportError::Kind::kProtocol,
              "ps server: unexpected frame type " + std::to_string(f.type));
      }
    }
  }

  /// Admits rank r's replacement process at the fence: waits for its
  /// connection (the controller forked it before replying) and consumes its
  /// handshake kEpochEnd, after which the rank is alive and owed a kEpochGo
  /// like everyone else.
  void admit_rejoin(std::size_t r) {
    RankState& rs = ranks_[r];
    const Clock::time_point deadline =
        Clock::now() + std::chrono::milliseconds(kConnectTimeoutMs);
    while (true) {
      if (!rs.ep) {
        if (!await_rank(r, deadline)) {
          throw std::runtime_error(
              "ps server: rejoining worker rank " + std::to_string(r) +
              " never connected");
        }
        continue;
      }
      net::Frame f;
      try {
        rs.ep->set_io_timeout(poll_ms_);
        f = net::read_frame(*rs.ep);
      } catch (const net::TransportError& e) {
        if (e.kind() == net::TransportError::Kind::kTimeout) {
          if (Clock::now() < deadline) continue;
          throw std::runtime_error(
              "ps server: rejoining worker rank " + std::to_string(r) +
              " never sent its handshake");
        }
        if (e.kind() != net::TransportError::Kind::kClosed) throw;
        rs.ep.reset();
        continue;
      }
      wire::Unpacker u(f.payload);
      const std::uint64_t seq = u.u64();
      if (f.type != wire::kEpochEnd) continue;  // stale frame: ignore
      rs.retries = u.u64();
      rs.last_seq = seq;
      rs.go_seq = seq;
      rs.cached_type = 0;
      rs.cached_reply.clear();
      rs.dead = false;
      return;
    }
  }

  /// The final kEpochGo (continue = 0) has no ack of its own: a worker that
  /// received it simply exits, closing its connection. Under fault
  /// injection that last frame can be dropped, torn or reset like any
  /// other — if the server exited straight away, the stranded worker would
  /// retransmit kEpochEnd against a dead listener until its connect timeout
  /// and die with an error. So serve the shutdown like a mini-epoch: treat
  /// each rank's connection close as the implicit ack, and answer any
  /// retransmitted kEpochEnd (including on a fresh connection after a
  /// reset) by resending the cached go, until the liveness deadline.
  void drain_shutdown() {
    for (std::size_t r = 0; r < k_; ++r) {
      RankState& rs = ranks_[r];
      if (rs.dead) continue;
      const Clock::time_point deadline =
          Clock::now() + std::chrono::milliseconds(liveness_ms_);
      while (true) {
        if (!rs.ep) {
          // Either the worker exited cleanly (no reconnect will come) or it
          // is re-establishing after a reset. A reconnect arrives within
          // one backoff period; anything longer means a clean exit, so a
          // short grace keeps shutdown from stalling a liveness window per
          // rank.
          const Clock::time_point grace =
              Clock::now() +
              std::chrono::milliseconds(static_cast<int>(
                  std::max(200.0, 2.0 * spec_.recovery.backoff_max_ms)));
          if (!await_rank(r, std::min(grace, deadline))) break;
          continue;
        }
        net::Frame f;
        try {
          rs.ep->set_io_timeout(poll_ms_);
          f = net::read_frame(*rs.ep);
        } catch (const net::TransportError& e) {
          if (e.kind() == net::TransportError::Kind::kTimeout) {
            if (Clock::now() < deadline) continue;
            break;
          }
          if (e.kind() != net::TransportError::Kind::kClosed) throw;
          rs.ep.reset();
          continue;
        }
        wire::Unpacker u(f.payload);
        if (u.u64() == rs.last_seq && rs.cached_type != 0) send_cached(rs);
      }
    }
  }

  /// Epoch fence: ship model + counters + per-rank liveness + per-walk
  /// applied-draw counts to the controller; execute its reply (admissions
  /// first, then per-rank assignments inside the kEpochGo).
  bool fence(std::size_t epoch) {
    wire::Packer p;
    std::uint64_t retries = 0;
    for (const RankState& rs : ranks_) retries += rs.retries;
    p.u64(epoch).u64(applied_).u64(applied_).u64(bytes_).u64(retries);
    p.u32(static_cast<std::uint32_t>(k_));
    for (const RankState& rs : ranks_) p.u32(rs.dead ? 0 : 1);
    p.u32(static_cast<std::uint32_t>(k_));
    for (const std::uint64_t d : walk_draws_) p.u64(d);
    p.u64(w_.size());
    p.raw(w_.data(), w_.size() * sizeof(double));
    net::write_frame(*controller_, wire::kFence, p.view());

    const net::Frame reply =
        net::expect_frame(*controller_, wire::kFenceReply, "fence reply");
    wire::Unpacker u(reply.payload);
    const bool cont = u.u32() != 0;
    const std::uint32_t nranks = u.u32();
    if (nranks != k_) {
      throw net::TransportError(
          net::TransportError::Kind::kProtocol,
          "ps server: fence reply covers " + std::to_string(nranks) +
              " ranks, expected " + std::to_string(k_));
    }
    std::vector<char> alive_next(k_, 0);
    std::vector<std::vector<GoEntry>> assign(k_);
    for (std::size_t r = 0; r < k_; ++r) {
      alive_next[r] = static_cast<char>(u.u32());
      const std::uint32_t nwalks = u.u32();
      assign[r].resize(nwalks);
      for (GoEntry& e : assign[r]) {
        e.walk = u.u32();
        e.ff = u.u64();
      }
    }
    for (std::size_t r = 0; r < k_; ++r) {
      if (alive_next[r] && ranks_[r].dead) admit_rejoin(r);
    }
    for (std::size_t r = 0; r < k_; ++r) {
      RankState& rs = ranks_[r];
      if (rs.dead) continue;
      wire::Packer go;
      go.u64(rs.go_seq).u32(cont ? 1 : 0);
      go.u32(static_cast<std::uint32_t>(epoch + 1));
      go.u32(static_cast<std::uint32_t>(assign[r].size()));
      for (const GoEntry& e : assign[r]) {
        go.u32(e.walk);
        go.u64(e.ff);
      }
      reply_cached(rs, wire::kEpochGo, std::move(go).take());
    }
    return cont;
  }

  std::size_t k_;
  const solvers::SolverOptions& options_;
  const ClusterSpec& spec_;
  std::shared_ptr<const net::FaultPlan> plan_;
  bool ft_;
  int liveness_ms_;
  int poll_ms_;
  std::unique_ptr<net::Listener> listener_;
  std::unique_ptr<net::Endpoint> controller_;
  std::vector<double> w_;
  std::vector<std::uint64_t> walk_draws_;
  std::vector<RankState> ranks_;
  std::uint64_t applied_ = 0;
  std::uint64_t bytes_ = 0;
  std::vector<std::uint32_t> idx_;
  std::vector<double> val_;
};

void ps_server_main(int addr_fd, const std::string& bind, std::size_t k,
                    std::size_t dim, const solvers::SolverOptions& options,
                    const ClusterSpec& spec) {
  PsServer server(addr_fd, bind, k, dim, options, spec);
  server.run();
}

/// One PS worker process. It inherits ALL k NodeWalks from the pre-fork
/// setup but draws only its assigned ones; adopting an orphaned walk after
/// a crash means fast-forwarding the pristine inherited walk to the
/// server's applied-draw count (one next() per draw — in-memory walks are
/// deterministic sample streams), then continuing where the dead rank left
/// off. A scripted FaultScenario crash is a clean _exit(0) between two
/// complete push round trips.
void ps_worker_main(const std::string& address, std::size_t rank,
                    std::vector<NodeWalk>& walks,
                    const objectives::Objective& objective,
                    const solvers::SolverOptions& options,
                    const ClusterSpec& spec, bool rejoiner) {
  PsClient client(address, rank, spec, make_plan(spec));
  const FaultScenario& scenario = spec.fault;
  std::vector<std::uint64_t> local_draws(walks.size(), 0);
  std::vector<GoEntry> assign;
  std::size_t epoch = 1;
  if (rejoiner) {
    // Admission handshake: a rejoiner's first request is an empty epoch-end;
    // the fence that admits it replies with its first real assignment.
    const EpochGo go = client.epoch_end();
    if (!go.cont) return;
    epoch = go.next_epoch;
    assign = go.assign;
  } else {
    assign = {{static_cast<std::uint32_t>(rank), 0}};
  }
  while (true) {
    const double lambda = solvers::epoch_step(options, epoch);
    std::size_t quota_total = 0;
    for (const GoEntry& e : assign) {
      NodeWalk& walk = walks[e.walk];
      // Replay an adopted walk to the server's count. For a walk this rank
      // has held all along, local_draws already equals ff and this no-ops.
      while (local_draws[e.walk] < e.ff) {
        (void)walk.next();
        ++local_draws[e.walk];
      }
      walk.begin_epoch();
      quota_total += walk.epoch_quota();
    }
    const bool crashing = scenario.enabled() && !rejoiner &&
                          rank == scenario.crash_node &&
                          epoch == scenario.crash_epoch;
    const std::uint64_t crash_after =
        crashing ? static_cast<std::uint64_t>(
                       scenario.crash_fraction *
                       static_cast<double>(quota_total))
                 : 0;
    std::uint64_t pushed = 0;
    for (const GoEntry& e : assign) {
      NodeWalk& walk = walks[e.walk];
      const std::size_t quota = walk.epoch_quota();
      for (std::size_t q = 0; q < quota; ++q) {
        if (crashing && pushed == crash_after) ::_exit(0);
        const NodeWalk::Sample s = walk.next();
        const auto x = s.matrix->row(s.row);
        const auto idx = x.indices();
        const auto val = x.values();
        const std::vector<double> values = client.step(idx);
        double margin = 0;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          margin += values[j] * val[j];
        }
        client.push(e.walk,
                    objective.gradient_scale(margin, s.matrix->label(s.row)),
                    lambda * s.weight, idx, val);
        ++local_draws[e.walk];
        ++pushed;
      }
    }
    if (crashing && pushed == crash_after) ::_exit(0);
    const EpochGo go = client.epoch_end();
    if (!go.cont) break;
    epoch = go.next_epoch;
    assign = go.assign;
  }
}

// ---- All-reduce group -------------------------------------------------------

/// Accepts k workers + 1 controller, identified by their hello frames.
/// (All-reduce only; the PS server has its own fault-aware accept loop.)
struct GroupEndpoints {
  std::vector<std::unique_ptr<net::Endpoint>> worker;
  std::unique_ptr<net::Endpoint> controller;
};

GroupEndpoints accept_group(net::Listener& listener, std::size_t k) {
  GroupEndpoints group;
  group.worker.resize(k);
  listener.set_accept_timeout(kConnectTimeoutMs);
  for (std::size_t i = 0; i < k + 1; ++i) {
    std::unique_ptr<net::Endpoint> ep = listener.accept();
    ep->set_io_timeout(kGroupIoTimeoutMs);
    const net::Frame hello = net::expect_frame(*ep, wire::kHello, "hello");
    wire::Unpacker u(hello.payload);
    const std::uint32_t role = u.u32();
    const std::uint32_t rank = u.u32();
    if (role == wire::kRoleController) {
      group.controller = std::move(ep);
    } else if (rank < k && group.worker[rank] == nullptr) {
      group.worker[rank] = std::move(ep);
    } else {
      throw net::TransportError(net::TransportError::Kind::kProtocol,
                                "duplicate or out-of-range worker rank " +
                                    std::to_string(rank));
    }
  }
  return group;
}

/// Epoch fence as seen by the all-reduce server: the unified kFence shape
/// with the recovery fields zeroed (no ranks, no walks), continue decision
/// relayed to every worker via the legacy un-sequenced kEpochGo.
bool fence_epoch(GroupEndpoints& group, std::size_t epoch,
                 std::uint64_t c0, std::uint64_t c1, std::uint64_t c2,
                 const std::vector<double>& w) {
  wire::Packer fence;
  fence.u64(epoch).u64(c0).u64(c1).u64(c2).u64(0);
  fence.u32(0).u32(0);
  fence.u64(w.size());
  fence.raw(w.data(), w.size() * sizeof(double));
  net::write_frame(*group.controller, wire::kFence, fence.view());
  const net::Frame reply =
      net::expect_frame(*group.controller, wire::kFenceReply, "fence reply");
  wire::Unpacker u(reply.payload);
  const bool cont = u.u32() != 0;
  wire::Packer go;
  go.u32(cont ? 1 : 0);
  for (auto& worker : group.worker) {
    net::write_frame(*worker, wire::kEpochGo, go.view());
  }
  return cont;
}

/// The reducer process: merges worker partials in rank order (the
/// run_allreduce_fenced reduction order), applies the round's step, and
/// broadcasts the touched coordinates so every replica stays bit-exact.
void allreduce_server_main(int addr_fd, const std::string& bind,
                           std::size_t k, std::size_t dim,
                           std::size_t rounds_per_epoch,
                           double samples_per_round,
                           const solvers::SolverOptions& options) {
  auto listener = net::listen(bind);
  report_address(addr_fd, listener->address());
  GroupEndpoints group = accept_group(*listener, k);

  std::vector<double> w(dim, 0.0), accum(dim, 0.0);
  std::vector<std::uint32_t> touched;
  std::uint64_t rounds = 0, reduced_coords = 0;
  for (std::size_t epoch = 1;; ++epoch) {
    const double lambda = solvers::epoch_step(options, epoch);
    for (std::size_t r = 0; r < rounds_per_epoch; ++r, ++rounds) {
      for (std::size_t a = 0; a < k; ++a) {
        const net::Frame f =
            net::expect_frame(*group.worker[a], wire::kReduce, "reduce");
        wire::Unpacker u(f.payload);
        const std::uint32_t count = u.u32();
        for (std::uint32_t j = 0; j < count; ++j) {
          const std::uint32_t c = u.u32();
          const double v = u.f64();
          if (accum[c] == 0.0) touched.push_back(c);
          accum[c] += v;
        }
        reduced_coords += count;
      }
      const double step = lambda / samples_per_round;
      wire::Packer delta;
      delta.u32(static_cast<std::uint32_t>(touched.size()));
      for (const std::uint32_t c : touched) {
        w[c] -= step * accum[c] + lambda * options.reg.subgradient(w[c]);
        accum[c] = 0.0;
        delta.u32(c);
        delta.f64(w[c]);
      }
      touched.clear();
      for (auto& worker : group.worker) {
        net::write_frame(*worker, wire::kModelDelta, delta.view());
      }
    }
    if (!fence_epoch(group, epoch, rounds, reduced_coords, 0, w)) break;
  }
}

/// One all-reduce worker: b-sample partial per round against its local
/// replica, which the server's coordinate broadcasts keep bit-identical to
/// the master.
void allreduce_worker_main(const std::string& address, std::size_t rank,
                           NodeWalk& walk,
                           const objectives::Objective& objective,
                           const solvers::SolverOptions& options,
                           std::size_t dim, std::size_t rounds_per_epoch,
                           std::size_t batch) {
  auto ep = net::connect(address, kConnectTimeoutMs);
  ep->set_io_timeout(kGroupIoTimeoutMs);
  send_hello(*ep, wire::kRoleWorker, static_cast<std::uint32_t>(rank), 0);
  std::vector<double> w(dim, 0.0), partial(dim, 0.0);
  std::vector<std::uint32_t> ptouched;
  for (std::size_t epoch = 1; epoch <= options.epochs; ++epoch) {
    for (std::size_t r = 0; r < rounds_per_epoch; ++r) {
      for (std::size_t s = 0; s < batch; ++s) {
        const NodeWalk::Sample sample = walk.next();
        const auto x = sample.matrix->row(sample.row);
        const auto idx = x.indices();
        const auto val = x.values();
        double margin = 0;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          margin += w[idx[j]] * val[j];
        }
        const double g =
            objective.gradient_scale(margin, sample.matrix->label(sample.row)) *
            sample.weight;
        for (std::size_t j = 0; j < idx.size(); ++j) {
          const std::size_t c = idx[j];
          if (partial[c] == 0.0) ptouched.push_back(idx[j]);
          partial[c] += g * val[j];
        }
      }
      wire::Packer reduce;
      reduce.u32(static_cast<std::uint32_t>(ptouched.size()));
      for (const std::uint32_t c : ptouched) {
        reduce.u32(c);
        reduce.f64(partial[c]);
        partial[c] = 0.0;
      }
      ptouched.clear();
      net::write_frame(*ep, wire::kReduce, reduce.view());

      const net::Frame delta =
          net::expect_frame(*ep, wire::kModelDelta, "model delta");
      wire::Unpacker u(delta.payload);
      const std::uint32_t count = u.u32();
      for (std::uint32_t j = 0; j < count; ++j) {
        const std::uint32_t c = u.u32();
        w[c] = u.f64();  // assignment: replica stays bit-exact
      }
    }
    const net::Frame go = net::expect_frame(*ep, wire::kEpochGo, "epoch go");
    wire::Unpacker u(go.payload);
    if (u.u32() == 0) break;
  }
}

// ---- Controller (the calling process) ---------------------------------------

struct FencePoint {
  std::size_t epoch = 0;
  std::uint64_t c0 = 0, c1 = 0, c2 = 0;
  std::uint64_t retries = 0;
  std::vector<char> alive;          // empty for all-reduce fences
  std::vector<std::uint64_t> draws;  // per-walk applied draws
  std::vector<double> w;
};

FencePoint read_fence(net::Endpoint& ep) {
  const net::Frame f = net::expect_frame(ep, wire::kFence, "fence");
  wire::Unpacker u(f.payload);
  FencePoint point;
  point.epoch = u.u64();
  point.c0 = u.u64();
  point.c1 = u.u64();
  point.c2 = u.u64();
  point.retries = u.u64();
  const std::uint32_t nranks = u.u32();
  point.alive.resize(nranks);
  for (char& a : point.alive) a = static_cast<char>(u.u32());
  const std::uint32_t nwalks = u.u32();
  point.draws.resize(nwalks);
  for (std::uint64_t& d : point.draws) d = u.u64();
  const std::uint64_t dim = u.u64();
  point.w.resize(dim);
  u.raw(point.w.data(), dim * sizeof(double));
  return point;
}

/// Counters the recovery-aware controller accumulates across fences.
struct ControllerStats {
  std::uint64_t crash_events = 0;
  std::uint64_t rejoin_events = 0;
  std::uint64_t wire_retries = 0;
};

using RespawnFn = std::function<void(std::size_t rank)>;

/// Runs the controller loop: record traces at fences, decide continuation,
/// and — when `respawn` is non-null (PS groups) — plan next epoch's
/// walk→rank assignment from the server's liveness report, forking a
/// replacement worker when the scripted scenario says the crashed rank
/// rejoins. Returns the last fence (final counters + model).
FencePoint run_controller(net::Endpoint& ep, std::size_t k, std::size_t dim,
                          const solvers::SolverOptions& options,
                          const ClusterSpec& spec,
                          solvers::TraceRecorder& recorder,
                          double* train_seconds_out, const RespawnFn* respawn,
                          ControllerStats* stats) {
  send_hello(ep, wire::kRoleController, 0, 0);
  recorder.record(0, 0.0, std::vector<double>(dim, 0.0));
  double train_seconds = 0;
  FencePoint last;
  std::vector<char> alive(k, 1);
  while (true) {
    util::Stopwatch lap;
    FencePoint point = read_fence(ep);
    train_seconds += lap.seconds();
    recorder.record(point.epoch, train_seconds, point.w);
    const bool cont =
        point.epoch < options.epochs && !recorder.stop_requested();
    wire::Packer reply;
    reply.u32(cont ? 1 : 0);
    if (respawn == nullptr || point.alive.empty()) {
      reply.u32(0);
    } else {
      for (std::size_t r = 0; r < k; ++r) {
        if (alive[r] && !point.alive[r] && stats) ++stats->crash_events;
      }
      alive = point.alive;
      if (stats) stats->wire_retries = point.retries;
      const FaultScenario& scenario = spec.fault;
      if (cont && scenario.enabled() && scenario.rejoin_epoch != 0 &&
          scenario.rejoin_epoch == point.epoch + 1 &&
          !alive[scenario.crash_node]) {
        // Fork the replacement BEFORE replying: by the time the server acts
        // on the admission, the process exists and is connecting.
        (*respawn)(scenario.crash_node);
        alive[scenario.crash_node] = 1;
        if (stats) ++stats->rejoin_events;
      }
      const Assignment assign =
          plan_assignment(k, alive, spec.recovery.policy);
      reply.u32(static_cast<std::uint32_t>(k));
      for (std::size_t r = 0; r < k; ++r) {
        reply.u32(alive[r] ? 1 : 0);
        reply.u32(static_cast<std::uint32_t>(assign[r].size()));
        for (const std::uint32_t wlk : assign[r]) {
          reply.u32(wlk);
          reply.u64(point.draws[wlk]);
        }
      }
    }
    net::write_frame(ep, wire::kFenceReply, reply.view());
    last = std::move(point);
    if (!cont) break;
  }
  *train_seconds_out = train_seconds;
  return last;
}

/// Forks `server_fn` then k× `worker_fn`, runs the controller loop in the
/// calling process, and reaps the group. `with_recovery` enables the
/// PS-side liveness/assignment protocol (and scripted respawns).
template <typename ServerFn, typename WorkerFn>
FencePoint run_group(std::size_t k, std::size_t dim,
                     const solvers::SolverOptions& options,
                     const ClusterSpec& spec, solvers::TraceRecorder& recorder,
                     double* train_seconds, bool with_recovery,
                     ControllerStats* stats, ServerFn&& server_fn,
                     WorkerFn&& worker_fn) {
  const std::string bind = pick_address(spec);
  int addr_pipe[2];
  if (::pipe(addr_pipe) < 0) {
    throw std::runtime_error("pipe() failed for the distributed group");
  }
  ChildReaper reaper;
  const pid_t server_pid = ::fork();
  if (server_pid < 0) throw std::runtime_error("fork() failed (server)");
  if (server_pid == 0) {
    ::close(addr_pipe[0]);
    try {
      server_fn(addr_pipe[1], bind);
      ::_exit(0);
    } catch (...) {
      ::_exit(1);
    }
  }
  reaper.add(server_pid);
  ::close(addr_pipe[1]);
  const std::string address = read_address(addr_pipe[0]);

  auto spawn_worker = [&](std::size_t rank, bool rejoiner) {
    const pid_t pid = ::fork();
    if (pid < 0) throw std::runtime_error("fork() failed (worker)");
    if (pid == 0) {
      try {
        worker_fn(rank, address, rejoiner);
        ::_exit(0);
      } catch (...) {
        ::_exit(1);
      }
    }
    reaper.add(pid);
  };
  for (std::size_t a = 0; a < k; ++a) spawn_worker(a, false);

  auto ep = net::connect(address, kConnectTimeoutMs);
  ep->set_io_timeout(kGroupIoTimeoutMs);
  const RespawnFn respawn = [&](std::size_t rank) {
    spawn_worker(rank, true);
  };
  FencePoint last =
      run_controller(*ep, k, dim, options, spec, recorder, train_seconds,
                     with_recovery ? &respawn : nullptr, stats);
  ep->close();
  reaper.join_all();
  return last;
}

}  // namespace

solvers::Trace run_param_server_process(const sparse::CsrMatrix& data,
                                        const objectives::Objective& objective,
                                        const solvers::SolverOptions& options,
                                        const ClusterSpec& spec,
                                        bool use_importance,
                                        const solvers::EvalFn& eval,
                                        ParamServerReport* report,
                                        solvers::TrainingObserver* observer) {
  spec.validate();
  util::Stopwatch sw;
  // Shared setup BEFORE the forks: every process inherits the same plan and
  // the same seeded walks (a rejoining replacement, forked from the
  // controller at a fence, inherits them pristine and fast-forwards).
  fenced::Setup setup = fenced::make_ps_setup(data, objective, options,
                                              spec.nodes, use_importance);
  const std::size_t k = setup.k;
  if (spec.fault.enabled()) spec.fault.validate(k);
  const std::size_t dim = data.dim();
  solvers::TraceRecorder recorder(use_importance ? "ps_is_asgd" : "ps_asgd", k,
                                  options.step_size, eval, observer);
  recorder.add_setup_seconds(sw.seconds());

  double train_seconds = 0;
  ControllerStats stats;
  const FencePoint last = run_group(
      k, dim, options, spec, recorder, &train_seconds, /*with_recovery=*/true,
      &stats,
      [&](int addr_fd, const std::string& bind) {
        ps_server_main(addr_fd, bind, k, dim, options, spec);
      },
      [&](std::size_t rank, const std::string& address, bool rejoiner) {
        ps_worker_main(address, rank, setup.walks, objective, options, spec,
                       rejoiner);
      });

  if (report || observer) {
    ParamServerReport local;
    local.mean_staleness_updates = 0;  // fenced schedule: immediate applies
    local.messages = last.c1;
    local.bytes_sent = last.c2;
    local.simulated_seconds = train_seconds;  // wall seconds: real backend
    local.phi_imbalance = setup.plan->imbalance();
    local.applied_strategy = setup.plan->applied_strategy();
    local.wire_retries = stats.wire_retries;
    local.crash_events = stats.crash_events;
    local.rejoin_events = stats.rejoin_events;
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(last.w);
  return std::move(recorder).finish(train_seconds);
}

solvers::Trace run_allreduce_process(const sparse::CsrMatrix& data,
                                     const objectives::Objective& objective,
                                     const solvers::SolverOptions& options,
                                     const ClusterSpec& spec,
                                     bool use_importance,
                                     const solvers::EvalFn& eval,
                                     AllreduceReport* report,
                                     solvers::TrainingObserver* observer) {
  spec.validate();
  if (spec.fault.enabled() || spec.wire_faults.enabled()) {
    throw std::invalid_argument(
        "run_allreduce_process: fault injection and crash scenarios are "
        "implemented for the parameter-server engines (the all-reduce group "
        "has no recovery protocol)");
  }
  util::Stopwatch sw;
  fenced::Setup setup = fenced::make_allreduce_setup(
      data, objective, options, spec.nodes, use_importance);
  const std::size_t k = setup.k;
  const std::size_t dim = data.dim();
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  const std::size_t rounds_per_epoch = (n + k * b - 1) / (k * b);
  const double samples_per_round = static_cast<double>(k * b);
  solvers::TraceRecorder recorder(
      use_importance ? "allreduce_is_sgd" : "allreduce_sgd", k,
      options.step_size, eval, observer);
  recorder.add_setup_seconds(sw.seconds());

  double train_seconds = 0;
  const FencePoint last = run_group(
      k, dim, options, spec, recorder, &train_seconds,
      /*with_recovery=*/false, nullptr,
      [&](int addr_fd, const std::string& bind) {
        allreduce_server_main(addr_fd, bind, k, dim, rounds_per_epoch,
                              samples_per_round, options);
      },
      [&](std::size_t rank, const std::string& address, bool /*rejoiner*/) {
        allreduce_worker_main(address, rank, setup.walks[rank], objective,
                              options, dim, rounds_per_epoch, b);
      });

  if (report || observer) {
    AllreduceReport local;
    local.rounds = last.c0;
    local.bytes_per_node_per_round =
        k > 1 ? 2.0 * (static_cast<double>(k) - 1.0) / static_cast<double>(k) *
                    static_cast<double>(dim) *
                    static_cast<double>(spec.bytes_per_dense_coord)
              : 0.0;
    local.simulated_seconds = train_seconds;  // wall seconds: real backend
    local.comm_fraction = 0;  // not separable in a real run
    if (report) *report = local;
    if (observer) observer->on_diagnostics(local);
  }
  if (options.keep_final_model) recorder.set_final_model(last.w);
  return std::move(recorder).finish(train_seconds);
}

}  // namespace isasgd::distributed
