#include "distributed/node_walk.hpp"

namespace isasgd::distributed {

NodeWalk::NodeWalk(const sparse::CsrMatrix& data,
                   const partition::Shard& shard, bool use_importance,
                   std::uint64_t seed)
    : use_importance_(use_importance), data_(&data), shard_(shard) {
  const std::size_t local_n = shard_.rows.size();
  weight_.assign(local_n, 1.0);
  if (use_importance_) {
    sampler_ =
        std::make_unique<sampling::AliasTable>(shard_.probabilities);
    for (std::size_t s = 0; s < local_n; ++s) {
      const double p = shard_.probabilities[s];
      weight_[s] = p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
    }
  }
  rng_.reseed(seed);
  quota_ = local_n;
}

NodeWalk::NodeWalk(const data::DataSource& source,
                   std::span<const std::uint32_t> ordinals,
                   const std::vector<std::vector<double>>& shard_importance,
                   const std::vector<double>& shard_phi, bool use_importance,
                   std::uint64_t seed)
    : use_importance_(use_importance),
      source_(&source),
      ordinals_(ordinals),
      shard_importance_(&shard_importance),
      shard_phi_(&shard_phi) {
  rng_.reseed(seed);
  for (const std::uint32_t s : ordinals_) {
    quota_ += shard_importance[s].size();
  }
}

void NodeWalk::begin_epoch() {
  if (source_ == nullptr) return;  // in-memory: nothing to rewind
  pos_ = 0;
  remaining_ = 0;
  if (!ordinals_.empty()) enter_shard();
}

void NodeWalk::enter_shard() {
  const std::size_t ordinal = ordinals_[pos_];
  resident_ = source_->shard(ordinal);
  if (pos_ + 1 < ordinals_.size()) source_->prefetch(ordinals_[pos_ + 1]);
  const std::vector<double>& imp = (*shard_importance_)[ordinal];
  const std::size_t local_n = imp.size();
  weight_.assign(local_n, 1.0);
  sampler_.reset();
  if (use_importance_ && local_n > 0) {
    const double total = (*shard_phi_)[ordinal];
    std::vector<double> prob(local_n);
    for (std::size_t i = 0; i < local_n; ++i) {
      prob[i] =
          total > 0 ? imp[i] / total : 1.0 / static_cast<double>(local_n);
    }
    sampler_ = std::make_unique<sampling::AliasTable>(prob);
    for (std::size_t i = 0; i < local_n; ++i) {
      weight_[i] = prob[i] > 0
                       ? 1.0 / (static_cast<double>(local_n) * prob[i])
                       : 1.0;
    }
  }
  remaining_ = local_n;
}

NodeWalk::Sample NodeWalk::next() {
  if (source_ != nullptr) {
    while (remaining_ == 0) {
      ++pos_;
      enter_shard();
    }
    const std::size_t local_n = weight_.size();
    const std::size_t slot =
        sampler_ ? sampler_->sample(rng_)
                 : static_cast<std::size_t>(util::uniform_index(rng_, local_n));
    --remaining_;
    return {resident_->matrix.get(), static_cast<std::uint32_t>(slot),
            weight_[slot]};
  }
  const std::size_t local_n = shard_.rows.size();
  const std::size_t slot =
      sampler_ ? sampler_->sample(rng_)
               : static_cast<std::size_t>(util::uniform_index(rng_, local_n));
  return {data_, shard_.rows[slot], weight_[slot]};
}

}  // namespace isasgd::distributed
