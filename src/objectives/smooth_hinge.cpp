#include "objectives/smooth_hinge.hpp"

#include <stdexcept>

namespace isasgd::objectives {

SmoothHingeLoss::SmoothHingeLoss(double gamma) : gamma_(gamma) {
  if (!(gamma > 0)) {
    throw std::invalid_argument("SmoothHingeLoss: gamma must be positive");
  }
}

double SmoothHingeLoss::loss(double margin, value_t y) const {
  const double z = y * margin;
  if (z >= 1.0) return 0.0;
  if (z <= 1.0 - gamma_) return 1.0 - z - gamma_ / 2.0;
  const double slack = 1.0 - z;
  return slack * slack / (2.0 * gamma_);
}

double SmoothHingeLoss::gradient_scale(double margin, value_t y) const {
  const double z = y * margin;
  if (z >= 1.0) return 0.0;
  if (z <= 1.0 - gamma_) return -y;
  return -y * (1.0 - z) / gamma_;
}

}  // namespace isasgd::objectives
