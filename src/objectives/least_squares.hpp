// Least-squares loss: the regression objective used by the property tests
// (its exact minimiser is computable in closed form on tiny problems) and by
// the Kaczmarz-style IS experiments the paper cites (Strohmer–Vershynin).
#pragma once

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// φ(m, y) = ½(m − y)². Smoothness β = 1.
class LeastSquaresLoss final : public Objective {
 public:
  [[nodiscard]] double loss(double margin, value_t y) const override {
    const double r = margin - y;
    return 0.5 * r * r;
  }
  [[nodiscard]] double gradient_scale(double margin, value_t y) const override {
    return margin - y;
  }
  [[nodiscard]] double smoothness() const override { return 1.0; }
  [[nodiscard]] bool is_classification() const override { return false; }
  [[nodiscard]] std::string name() const override { return "least_squares"; }
};

}  // namespace isasgd::objectives
