#include "objectives/least_squares.hpp"

namespace isasgd::objectives {}
