// Proximal operators for the regularizers.
//
// The importance-sampling theory the paper builds on (Zhao & Zhang 2015,
// "Stochastic Optimization with Importance Sampling for Regularized Loss
// Minimization") is stated for *proximal* SGD: the loss gradient is
// stochastic and reweighted by 1/(n·p_i), while the regularizer enters
// exactly through its prox map,
//
//   prox_{λ·ηr}(v) = argmin_u  ηr(u) + ‖u − v‖²/(2λ).
//
// The subgradient treatment used by the paper's evaluation code (and this
// repo's main solvers) is the cheaper approximation; prox handles the L1
// kink exactly — it is what makes lasso-style solutions *exactly* sparse
// instead of oscillating around zero. solvers/prox_sgd.* builds the
// Zhao–Zhang algorithm on these maps.
#pragma once

#include <algorithm>
#include <cmath>

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// Soft-threshold: prox of t·|·| — the L1 shrinkage map.
[[nodiscard]] inline double soft_threshold(double v, double t) noexcept {
  if (v > t) return v - t;
  if (v < -t) return v + t;
  return 0.0;
}

/// prox_{step·reg}(v) for one coordinate. kNone is the identity; kL1 is the
/// soft threshold at step·η; kL2 (η/2·‖·‖²) is the shrinkage v/(1+step·η).
[[nodiscard]] inline double prox(const Regularization& reg, double v,
                                 double step) noexcept {
  switch (reg.kind) {
    case Regularization::Kind::kNone:
      return v;
    case Regularization::Kind::kL1:
      return soft_threshold(v, step * reg.eta);
    case Regularization::Kind::kL2:
      return v / (1.0 + step * reg.eta);
  }
  return v;
}

}  // namespace isasgd::objectives
