// Cross-entropy (logistic) loss — the paper's evaluation objective
// ("L1-regularized cross-entropy loss", §4).
#pragma once

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// φ(m, y) = log(1 + exp(−y·m)), y ∈ {−1, +1}.
/// Smoothness β = 1/4 (sup of the logistic sigmoid's derivative).
class LogisticLoss final : public Objective {
 public:
  [[nodiscard]] double loss(double margin, value_t y) const override;
  [[nodiscard]] double gradient_scale(double margin, value_t y) const override;
  [[nodiscard]] double smoothness() const override { return 0.25; }
  [[nodiscard]] bool is_classification() const override { return true; }
  [[nodiscard]] std::string name() const override { return "logistic"; }
};

}  // namespace isasgd::objectives
