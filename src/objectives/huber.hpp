// Huber regression loss: least-squares near the fit, absolute-error in the
// tails. Outlier rows stop dominating both the objective *and* the Eq.-12
// importance distribution — with pure least squares a corrupted row with a
// huge residual keeps the largest gradient bound and IS over-samples it;
// Huber's clipped gradient caps that. Included so the regression side of the
// library has a robust counterpart to least_squares (the Kaczmarz/IS
// experiments of Strohmer–Vershynin and Needell et al. extend to it
// directly).
#pragma once

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// φ(m, y), r = m − y:
///   r²/2              |r| ≤ δ
///   δ(|r| − δ/2)      |r| > δ
/// Smoothness β = 1 (the quadratic zone's curvature; the tails are linear).
class HuberLoss final : public Objective {
 public:
  /// `delta` is the quadratic-to-linear transition; must be positive.
  explicit HuberLoss(double delta = 1.0);

  [[nodiscard]] double loss(double margin, value_t y) const override;
  [[nodiscard]] double gradient_scale(double margin, value_t y) const override;
  [[nodiscard]] double smoothness() const override { return 1.0; }
  [[nodiscard]] bool is_classification() const override { return false; }
  [[nodiscard]] std::string name() const override { return "huber"; }

  /// The clipped-gradient structure gives a tighter bound than the generic
  /// smoothness-based one: |φ'| ≤ δ always.
  [[nodiscard]] double gradient_norm_bound(
      sparse::SparseVectorView x, value_t y, double radius,
      const Regularization& reg) const override;

  [[nodiscard]] double delta() const noexcept { return delta_; }

 private:
  double delta_;
};

}  // namespace isasgd::objectives
