// Objective functions for the ERM problem the paper studies (Eq. 1–2):
//
//   min_w F(w) = (1/n) Σ_i f_i(w),   f_i(w) = φ_i(w) + η r(w)
//
// Every objective in the paper's evaluation is a generalized linear model:
// φ_i(w) = φ(w·x_i, y_i). That structure is what makes stochastic gradients
// index-compressed — ∇φ_i(w) = φ'(margin)·x_i shares x_i's sparsity — and the
// whole library leans on it: an Objective exposes the scalar margin→loss and
// margin→gradient-scale maps, and the solvers do the sparse axpy themselves.
//
// Per-sample Lipschitz constants L_i (smoothness of ∇f_i, paper Eq. 6) feed
// the importance distribution p_i = L_i / Σ L_j (Eq. 12).
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sparse/csr_matrix.hpp"
#include "sparse/sparse_vector.hpp"

namespace isasgd::objectives {

using sparse::value_t;

/// The regularizer η·r(w) of Eq. 1. The paper's evaluation objective is
/// L1-regularized cross-entropy; the Eq. 16 example is L2-regularized
/// squared hinge. `kNone` supports the pure-loss ablations.
struct Regularization {
  enum class Kind { kNone, kL1, kL2 };

  Kind kind = Kind::kNone;
  double eta = 0.0;

  static Regularization none() { return {Kind::kNone, 0.0}; }
  static Regularization l1(double eta) { return {Kind::kL1, eta}; }
  static Regularization l2(double eta) { return {Kind::kL2, eta}; }

  /// η·r(w) for the full model vector.
  [[nodiscard]] double value(std::span<const value_t> w) const;

  /// Sub-gradient of η·r at coordinate value wj (0 at the L1 kink).
  [[nodiscard]] double subgradient(value_t wj) const;

  /// Subgradient split into the (eta_l1, eta_l2) coefficient pair the fused
  /// sparse kernels take: subgradient(w) ≡ eta_l1()·sign(w) + eta_l2()·w
  /// for every Kind (see sparse/kernels.hpp).
  [[nodiscard]] double eta_l1() const noexcept {
    return kind == Kind::kL1 ? eta : 0.0;
  }
  [[nodiscard]] double eta_l2() const noexcept {
    return kind == Kind::kL2 ? eta : 0.0;
  }

  /// Additive contribution of the regularizer to every per-sample Lipschitz
  /// constant: η for L2 (strongly convex part), 0 for L1/none (L1 is
  /// nonsmooth; its subgradient is bounded, not Lipschitz, and the paper's
  /// p_i construction uses the smooth part's constant).
  [[nodiscard]] double lipschitz_term() const {
    return kind == Kind::kL2 ? eta : 0.0;
  }

  [[nodiscard]] std::string name() const;
};

/// Scalar GLM loss interface: everything is a function of the margin
/// m = w·x and the label y.
class Objective {
 public:
  virtual ~Objective() = default;

  /// φ(margin, y) — per-sample loss, regularizer excluded.
  [[nodiscard]] virtual double loss(double margin, value_t y) const = 0;

  /// dφ/d(margin). The sparse gradient of φ_i is this scalar times x_i.
  [[nodiscard]] virtual double gradient_scale(double margin, value_t y) const = 0;

  /// β = sup_m |φ''(m, y)|: smoothness of the scalar loss. The per-sample
  /// Lipschitz constant is then L_i = β·‖x_i‖² + reg.lipschitz_term().
  [[nodiscard]] virtual double smoothness() const = 0;

  /// True for classification losses (enables error-rate metrics).
  [[nodiscard]] virtual bool is_classification() const = 0;

  /// Predicted label (±1) from the margin; only meaningful when
  /// is_classification().
  [[nodiscard]] virtual double predict(double margin) const {
    return margin >= 0 ? 1.0 : -1.0;
  }

  /// A bound on ‖∇f_i(w)‖ for ‖w‖ ≤ radius (used by the Eq. 16-style
  /// gradient-norm importance variant and the theory module's M constant).
  /// Default: smoothness-based bound β·‖x‖·(radius·‖x‖ + margin_scale(y)).
  [[nodiscard]] virtual double gradient_norm_bound(
      sparse::SparseVectorView x, value_t y, double radius,
      const Regularization& reg) const;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Per-sample Lipschitz constants L_i = β‖x_i‖² + reg term, for the whole
/// dataset (paper Eq. 6 / §2.2). O(nnz).
std::vector<double> per_sample_lipschitz(const sparse::CsrMatrix& data,
                                         const Objective& objective,
                                         const Regularization& reg);

/// Factory by name ("logistic", "squared_hinge", "least_squares") — used by
/// the CLI-driven bench binaries. Throws std::invalid_argument on unknown.
std::unique_ptr<Objective> make_objective(const std::string& name);

}  // namespace isasgd::objectives
