#include "objectives/squared_hinge.hpp"

#include <cmath>

namespace isasgd::objectives {

double SquaredHingeLoss::loss(double margin, value_t y) const {
  const double slack = 1.0 - y * margin;
  return slack > 0 ? slack * slack : 0.0;
}

double SquaredHingeLoss::gradient_scale(double margin, value_t y) const {
  const double slack = 1.0 - y * margin;
  return slack > 0 ? -2.0 * y * slack : 0.0;
}

double SquaredHingeLoss::gradient_norm_bound(sparse::SparseVectorView x,
                                             value_t y, double radius,
                                             const Regularization& reg) const {
  if (reg.kind == Regularization::Kind::kL2 && reg.eta > 0) {
    // Paper Eq. 16.
    const double xn = x.norm();
    const double sqrt_lambda = std::sqrt(reg.eta);
    return 2.0 * (1.0 + xn / sqrt_lambda) * xn + sqrt_lambda;
  }
  return Objective::gradient_norm_bound(x, y, radius, reg);
}

}  // namespace isasgd::objectives
