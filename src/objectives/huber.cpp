#include "objectives/huber.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isasgd::objectives {

HuberLoss::HuberLoss(double delta) : delta_(delta) {
  if (!(delta > 0)) {
    throw std::invalid_argument("HuberLoss: delta must be positive");
  }
}

double HuberLoss::loss(double margin, value_t y) const {
  const double r = margin - y;
  const double a = std::abs(r);
  if (a <= delta_) return 0.5 * r * r;
  return delta_ * (a - 0.5 * delta_);
}

double HuberLoss::gradient_scale(double margin, value_t y) const {
  return std::clamp(margin - y, -delta_, delta_);
}

double HuberLoss::gradient_norm_bound(sparse::SparseVectorView x, value_t y,
                                      double radius,
                                      const Regularization& reg) const {
  (void)y;
  (void)radius;
  double bound = delta_ * x.norm();
  if (reg.kind == Regularization::Kind::kL2) {
    bound += reg.eta * radius;
  } else if (reg.kind == Regularization::Kind::kL1) {
    bound += reg.eta;
  }
  return bound;
}

}  // namespace isasgd::objectives
