// Quadratically smoothed (Huberized) hinge loss.
//
// The plain hinge max(0, 1 − y·m) is non-smooth, so it has no per-sample
// Lipschitz-gradient constant and Eq. 12's importance distribution is
// undefined for it. Smoothing the kink over a band of width γ restores
// β = 1/γ smoothness while keeping the hinge's margin geometry — the
// standard way to run IS/SVRG theory on SVM-style objectives (Zhang 2004's
// smoothed hinge). γ → 0 recovers the hinge; γ = 2 recovers a scaled
// squared hinge near the margin.
#pragma once

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// φ(m, y), z = y·m:
///   0                    z ≥ 1
///   (1 − z)²/(2γ)        1 − γ < z < 1
///   1 − z − γ/2          z ≤ 1 − γ
/// Smoothness β = 1/γ.
class SmoothHingeLoss final : public Objective {
 public:
  /// `gamma` is the smoothing band width; must be positive.
  explicit SmoothHingeLoss(double gamma = 1.0);

  [[nodiscard]] double loss(double margin, value_t y) const override;
  [[nodiscard]] double gradient_scale(double margin, value_t y) const override;
  [[nodiscard]] double smoothness() const override { return 1.0 / gamma_; }
  [[nodiscard]] bool is_classification() const override { return true; }
  [[nodiscard]] std::string name() const override { return "smooth_hinge"; }

  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
};

}  // namespace isasgd::objectives
