#include "objectives/objective.hpp"

#include <cmath>
#include <stdexcept>

#include "objectives/huber.hpp"
#include "objectives/least_squares.hpp"
#include "objectives/logistic.hpp"
#include "objectives/smooth_hinge.hpp"
#include "objectives/squared_hinge.hpp"

namespace isasgd::objectives {

double Regularization::value(std::span<const value_t> w) const {
  switch (kind) {
    case Kind::kNone:
      return 0.0;
    case Kind::kL1: {
      double acc = 0;
      for (value_t v : w) acc += std::abs(v);
      return eta * acc;
    }
    case Kind::kL2: {
      double acc = 0;
      for (value_t v : w) acc += v * v;
      return 0.5 * eta * acc;
    }
  }
  return 0.0;
}

double Regularization::subgradient(value_t wj) const {
  switch (kind) {
    case Kind::kNone:
      return 0.0;
    case Kind::kL1:
      return wj > 0 ? eta : (wj < 0 ? -eta : 0.0);
    case Kind::kL2:
      return eta * wj;
  }
  return 0.0;
}

std::string Regularization::name() const {
  switch (kind) {
    case Kind::kNone: return "none";
    case Kind::kL1: return "l1";
    case Kind::kL2: return "l2";
  }
  return "?";
}

double Objective::gradient_norm_bound(sparse::SparseVectorView x, value_t y,
                                      double radius,
                                      const Regularization& reg) const {
  // Generic bound: ‖∇φ_i(w)‖ = |φ'(m)|·‖x‖ ≤ (|φ'(0)| + β·|m|)·‖x‖ with
  // |m| ≤ radius·‖x‖, plus the regularizer's contribution.
  (void)y;
  const double xn = x.norm();
  const double phi_zero = std::abs(gradient_scale(0.0, y));
  double bound = (phi_zero + smoothness() * radius * xn) * xn;
  if (reg.kind == Regularization::Kind::kL2) {
    bound += reg.eta * radius;
  } else if (reg.kind == Regularization::Kind::kL1) {
    bound += reg.eta;  // per-coordinate subgradient bound, conservative
  }
  return bound;
}

std::vector<double> per_sample_lipschitz(const sparse::CsrMatrix& data,
                                         const Objective& objective,
                                         const Regularization& reg) {
  std::vector<double> lipschitz(data.rows());
  const double beta = objective.smoothness();
  const double reg_term = reg.lipschitz_term();
  for (std::size_t i = 0; i < data.rows(); ++i) {
    lipschitz[i] = beta * data.row(i).squared_norm() + reg_term;
  }
  return lipschitz;
}

std::unique_ptr<Objective> make_objective(const std::string& name) {
  if (name == "logistic") return std::make_unique<LogisticLoss>();
  if (name == "squared_hinge") return std::make_unique<SquaredHingeLoss>();
  if (name == "least_squares") return std::make_unique<LeastSquaresLoss>();
  if (name == "smooth_hinge") return std::make_unique<SmoothHingeLoss>();
  if (name == "huber") return std::make_unique<HuberLoss>();
  throw std::invalid_argument(
      "make_objective: unknown objective '" + name +
      "' (expected logistic|squared_hinge|least_squares|smooth_hinge|huber)");
}

}  // namespace isasgd::objectives
