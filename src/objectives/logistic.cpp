#include "objectives/logistic.hpp"

#include <cmath>

namespace isasgd::objectives {

double LogisticLoss::loss(double margin, value_t y) const {
  const double z = y * margin;
  // log1p(exp(−z)) computed stably for both signs of z:
  //   z ≥ 0: log(1+e^−z)            (e^−z ≤ 1, no overflow)
  //   z < 0: −z + log(1+e^z)
  if (z >= 0) return std::log1p(std::exp(-z));
  return -z + std::log1p(std::exp(z));
}

double LogisticLoss::gradient_scale(double margin, value_t y) const {
  // dφ/dm = −y · σ(−y·m) = −y / (1 + exp(y·m)), computed without overflow.
  const double z = y * margin;
  if (z >= 0) {
    const double e = std::exp(-z);
    return -y * e / (1.0 + e);
  }
  return -y / (1.0 + std::exp(z));
}

}  // namespace isasgd::objectives
