// Squared hinge loss — the paper's worked IS example (Eq. 16):
// L2-regularized SVM with f_i(w) = (⌊1 − y_i·wᵀx_i⌋₊)² + (λ/2)‖w‖².
#pragma once

#include "objectives/objective.hpp"

namespace isasgd::objectives {

/// φ(m, y) = max(0, 1 − y·m)², y ∈ {−1, +1}. Smoothness β = 2.
class SquaredHingeLoss final : public Objective {
 public:
  [[nodiscard]] double loss(double margin, value_t y) const override;
  [[nodiscard]] double gradient_scale(double margin, value_t y) const override;
  [[nodiscard]] double smoothness() const override { return 2.0; }
  [[nodiscard]] bool is_classification() const override { return true; }
  [[nodiscard]] std::string name() const override { return "squared_hinge"; }

  /// Paper Eq. 16: ‖∇f_i(w)‖ ≤ 2(1 + ‖x_i‖/√λ)·‖x_i‖ + √λ for the
  /// L2-regularized problem (λ = reg.eta). Falls back to the generic bound
  /// for other regularizers.
  [[nodiscard]] double gradient_norm_bound(
      sparse::SparseVectorView x, value_t y, double radius,
      const Regularization& reg) const override;
};

}  // namespace isasgd::objectives
