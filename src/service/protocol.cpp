#include "service/protocol.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "data/data_source.hpp"
#include "io/checkpoint.hpp"
#include "objectives/objective.hpp"
#include "sparse/dispatch.hpp"

namespace isasgd::service {

namespace {

struct Request {
  std::string verb;
  std::map<std::string, std::string> kv;
};

Request parse(const std::string& line) {
  Request req;
  std::istringstream in(line);
  in >> req.verb;
  std::string token;
  while (in >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw std::invalid_argument("malformed argument '" + token +
                                  "' (expected key=value)");
    }
    req.kv[token.substr(0, eq)] = token.substr(eq + 1);
  }
  return req;
}

const std::string* find(const Request& req, const std::string& key) {
  const auto it = req.kv.find(key);
  return it == req.kv.end() ? nullptr : &it->second;
}

std::string require(const Request& req, const std::string& key) {
  if (const std::string* v = find(req, key)) return *v;
  throw std::invalid_argument(req.verb + " requires " + key + "=...");
}

std::uint64_t to_u64(const std::string& key, const std::string& value) {
  // std::stoull accepts a leading '-' (two's-complement wrap: "-1" becomes
  // 2^64−1 epochs) and '+'/whitespace; a protocol integer is digits only,
  // so reject any non-digit lead byte before converting.
  if (value.empty() || value[0] < '0' || value[0] > '9') {
    throw std::invalid_argument("bad integer for " + key + ": '" + value +
                                "'");
  }
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad integer for " + key + ": '" + value +
                                "'");
  }
}

double to_f64(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("bad number for " + key + ": '" + value +
                                "'");
  }
}

std::uint64_t job_id(const Request& req) {
  return to_u64("id", require(req, "id"));
}

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

/// One flat line per response: embedded newlines in error messages would
/// break the framing.
std::string one_line(std::string text) {
  for (char& c : text) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return text;
}

JobSpec build_spec(const Request& req) {
  JobSpec spec;
  spec.solver = require(req, "solver");
  spec.dataset = require(req, "data");
  if (const auto* v = find(req, "objective")) spec.objective = *v;
  if (const auto* v = find(req, "epochs")) {
    spec.options.epochs = to_u64("epochs", *v);
  }
  if (const auto* v = find(req, "step")) {
    spec.options.step_size = to_f64("step", *v);
  }
  if (const auto* v = find(req, "decay")) {
    spec.options.step_decay = to_f64("decay", *v);
  }
  if (const auto* v = find(req, "seed")) spec.options.seed = to_u64("seed", *v);
  if (const auto* v = find(req, "batch")) {
    spec.options.batch_size = to_u64("batch", *v);
  }
  if (const auto* v = find(req, "threads")) {
    spec.options.threads = to_u64("threads", *v);
  }
  if (const auto* v = find(req, "l1")) {
    spec.options.reg = objectives::Regularization::l1(to_f64("l1", *v));
  }
  if (const auto* v = find(req, "l2")) {
    spec.options.reg = objectives::Regularization::l2(to_f64("l2", *v));
  }
  if (const auto* v = find(req, "adaptive")) {
    spec.options.adaptive_importance = to_u64("adaptive", *v) != 0;
  }
  if (const auto* v = find(req, "shard_rows")) {
    spec.streaming.shard_rows = to_u64("shard_rows", *v);
  }
  if (const auto* v = find(req, "cache_mb")) {
    spec.streaming.memory_budget_bytes = to_u64("cache_mb", *v) << 20;
  }
  if (const auto* v = find(req, "ckpt")) spec.checkpoint_path = *v;
  if (const auto* v = find(req, "ckpt_every")) {
    spec.checkpoint_every = to_u64("ckpt_every", *v);
  }
  if (const auto* v = find(req, "resume")) spec.resume_from = *v;
  return spec;
}

}  // namespace

std::string format_status(const JobStatus& status) {
  std::ostringstream out;
  out << "id=" << status.id << " state=" << job_state_name(status.state)
      << " solver=" << status.solver << " epoch=" << status.epoch << "/"
      << status.epochs_budget << " objective=" << status.objective_value
      << " mem=" << status.reserved_bytes
      << " model=" << hex16(status.model_hash);
  if (!status.message.empty()) out << " msg=" << one_line(status.message);
  return out.str();
}

std::string ProtocolHandler::handle_line(const std::string& line) {
  try {
    const Request req = parse(line);
    if (req.verb.empty()) return "err empty request";

    if (req.verb == "ping") return "ok pong";
    if (req.verb == "submit") {
      return "ok id=" + std::to_string(service_.submit(build_spec(req)));
    }
    if (req.verb == "status") {
      return "ok " + format_status(service_.status(job_id(req)));
    }
    if (req.verb == "wait") {
      const std::uint64_t id = job_id(req);
      service_.wait(id);
      return "ok " + format_status(service_.status(id));
    }
    if (req.verb == "list") {
      const std::vector<JobStatus> jobs = service_.list();
      std::ostringstream out;
      out << "ok jobs=" << jobs.size();
      for (const JobStatus& s : jobs) {
        out << " " << s.id << ":" << job_state_name(s.state);
      }
      return out.str();
    }
    if (req.verb == "pause" || req.verb == "resume" || req.verb == "cancel" ||
        req.verb == "checkpoint") {
      const std::uint64_t id = job_id(req);
      const bool ok = req.verb == "pause"    ? service_.pause(id)
                      : req.verb == "resume" ? service_.resume(id)
                      : req.verb == "cancel" ? service_.cancel(id)
                                             : service_.checkpoint(id);
      return ok ? "ok"
                : "err " + req.verb + " refused for job " +
                      std::to_string(id) +
                      " (unknown id, terminal state, or no checkpoint path)";
    }
    if (req.verb == "stats") {
      const auto& gov = service_.governor();
      std::ostringstream out;
      out << "ok active=" << service_.execution().active_jobs()
          << " total=" << service_.execution().total_jobs()
          << " mem_used=" << gov.used() << " mem_budget=" << gov.budget()
          << " queue=" << [&] {
               std::size_t queued = 0;
               for (const JobStatus& s : service_.list()) {
                 if (s.state == JobState::kQueued) ++queued;
               }
               return queued;
             }()
          << " backend="
          << sparse::kernels::backend_name(sparse::kernels::active_backend());
      // Shard-cache counters summed over live streaming/packed jobs — the
      // daemon-side view of the out-of-core data plane.
      const data::CacheStats cache = service_.cache_stats();
      out << " cache_loads=" << cache.loads << " cache_hits=" << cache.hits
          << " cache_misses=" << cache.misses
          << " cache_evictions=" << cache.evictions
          << " prefetch_issued=" << cache.prefetch_issued
          << " prefetch_hits=" << cache.prefetch_hits
          << " prefetch_races=" << cache.prefetch_races
          << " prefetch_wasted=" << cache.prefetch_wasted
          << " prefetch_inflight=" << cache.prefetch_inflight
          << " cache_resident=" << cache.resident_bytes;
      return out.str();
    }
    if (req.verb == "ps_serve") {
      if (ps_host_) {
        return "err ps already serving at " + ps_host_->address() +
               " (ps_stop first)";
      }
      const std::uint64_t dim = to_u64("dim", require(req, "dim"));
      if (dim == 0) return "err ps_serve requires dim > 0";
      std::string bind = "tcp://127.0.0.1:0";
      if (const auto* v = find(req, "bind")) bind = *v;
      auto reg = objectives::Regularization::none();
      if (const auto* v = find(req, "l1")) {
        reg = objectives::Regularization::l1(to_f64("l1", *v));
      }
      if (const auto* v = find(req, "l2")) {
        reg = objectives::Regularization::l2(to_f64("l2", *v));
      }
      ps_host_ = std::make_unique<PsHost>(dim, bind, reg);
      return "ok addr=" + ps_host_->address() +
             " dim=" + std::to_string(ps_host_->dim());
    }
    if (req.verb == "ps_stop") {
      if (!ps_host_) return "err no hosted ps";
      const std::uint64_t pushes = ps_host_->pushes();
      ps_host_.reset();  // stops and joins the serving thread
      return "ok pushes=" + std::to_string(pushes);
    }
    if (req.verb == "shutdown") {
      ps_host_.reset();
      shutdown_.store(true, std::memory_order_relaxed);
      return "ok bye";
    }
    return "err unknown verb '" + req.verb +
           "' (known: ping submit status wait list pause resume cancel "
           "checkpoint stats ps_serve ps_stop shutdown)";
  } catch (const AdmissionError& e) {
    return one_line("err admission " + std::string(e.what()));
  } catch (const io::CheckpointError& e) {
    return one_line("err checkpoint " + std::string(e.what()));
  } catch (const std::exception& e) {
    return one_line("err " + std::string(e.what()));
  }
}

}  // namespace isasgd::service
