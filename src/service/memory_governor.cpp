#include "service/memory_governor.hpp"

#include <algorithm>

namespace isasgd::service {

namespace {

std::string admission_message(std::size_t requested, std::size_t budget) {
  return "admission rejected: job requires " + std::to_string(requested) +
         " bytes resident, which exceeds the service memory budget of " +
         std::to_string(budget) + " bytes";
}

}  // namespace

AdmissionError::AdmissionError(std::size_t requested_bytes,
                               std::size_t budget_bytes)
    : std::runtime_error(admission_message(requested_bytes, budget_bytes)),
      requested_(requested_bytes),
      budget_(budget_bytes) {}

bool MemoryGovernor::try_reserve(std::size_t bytes) {
  if (bytes > budget_) throw AdmissionError(bytes, budget_);
  const std::lock_guard<std::mutex> lock(mu_);
  if (bytes > budget_ - used_) return false;
  used_ += bytes;
  return true;
}

void MemoryGovernor::release(std::size_t bytes) noexcept {
  const std::lock_guard<std::mutex> lock(mu_);
  used_ -= std::min(bytes, used_);
}

std::size_t MemoryGovernor::used() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return used_;
}

std::size_t MemoryGovernor::available() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return budget_ - used_;
}

}  // namespace isasgd::service
