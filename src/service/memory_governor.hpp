// MemoryGovernor: process-wide admission control for the training service.
//
// Every job declares its resident footprint up front (the source's
// data::DataSource::resident_bytes() plus the solver-side working set the
// service estimates), and the governor decides among three outcomes:
//
//   * footprint > total budget          → reject, with a typed
//     AdmissionError carrying the numbers — the job can never run here;
//   * footprint > currently available   → queue; the service re-offers the
//     job FIFO as running jobs complete and release their reservations;
//   * fits                              → reserve and admit.
//
// The governor is pure bookkeeping — it never measures actual allocation;
// it enforces the *declared* budget so a multi-tenant daemon degrades into
// queueing, not OOM.
#pragma once

#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <string>

namespace isasgd::service {

/// Thrown when a job's declared footprint exceeds the governor's total
/// budget — the one admission outcome that is an error rather than a wait.
class AdmissionError : public std::runtime_error {
 public:
  AdmissionError(std::size_t requested_bytes, std::size_t budget_bytes);

  [[nodiscard]] std::size_t requested_bytes() const noexcept {
    return requested_;
  }
  [[nodiscard]] std::size_t budget_bytes() const noexcept { return budget_; }

 private:
  std::size_t requested_;
  std::size_t budget_;
};

class MemoryGovernor {
 public:
  /// `budget_bytes` caps the summed reservations of all admitted jobs.
  explicit MemoryGovernor(std::size_t budget_bytes)
      : budget_(budget_bytes) {}

  /// Attempts to reserve `bytes`. Returns true on success; false when the
  /// reservation does not fit *right now* (the caller should queue and
  /// retry after a release). Throws AdmissionError when `bytes` exceeds the
  /// total budget — queueing could never help.
  [[nodiscard]] bool try_reserve(std::size_t bytes);

  /// Returns a reservation made by try_reserve.
  void release(std::size_t bytes) noexcept;

  [[nodiscard]] std::size_t budget() const noexcept { return budget_; }
  [[nodiscard]] std::size_t used() const;
  [[nodiscard]] std::size_t available() const;

 private:
  std::size_t budget_;
  mutable std::mutex mu_;
  std::size_t used_ = 0;
};

}  // namespace isasgd::service
