#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace isasgd::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

/// Thrown when a connection exceeds its I/O deadline; the accept loop turns
/// it into a typed `err timeout` response instead of wedging forever on a
/// client that connected and went silent.
struct IoTimeout : std::runtime_error {
  explicit IoTimeout(const std::string& what) : std::runtime_error(what) {}
};

std::chrono::steady_clock::time_point deadline_from(int timeout_ms) {
  return std::chrono::steady_clock::now() + std::chrono::milliseconds(
                                                timeout_ms);
}

/// Polls `fd` for `events` until readiness or the absolute deadline passes
/// (timeout_ms < 0 ⇒ wait forever). Deadline-based on purpose: a per-byte
/// idle timeout would let a drip-feeding client hold the single-threaded
/// accept loop indefinitely.
void wait_ready(int fd, short events, int timeout_ms,
                std::chrono::steady_clock::time_point deadline,
                const char* what) {
  while (true) {
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      wait_ms = static_cast<int>(std::max<std::int64_t>(0, left.count()));
    }
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) throw IoTimeout(std::string(what) + " timed out");
    return;
  }
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long (max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Reads from `fd` until '\n' or EOF; returns the line without the newline.
/// The whole line must arrive before the deadline (timeout_ms < 0 ⇒ none).
std::string read_line(int fd, int timeout_ms = -1) {
  const auto deadline = deadline_from(timeout_ms < 0 ? 0 : timeout_ms);
  std::string line;
  char c = 0;
  while (true) {
    wait_ready(fd, POLLIN, timeout_ms, deadline, "read");
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0 || c == '\n') return line;
    line.push_back(c);
  }
}

/// Full write under the same deadline discipline. ::send with MSG_NOSIGNAL
/// instead of raw ::write: a client that disconnects before the response
/// lands must produce EPIPE (caught per connection), not a process-fatal
/// SIGPIPE that takes the whole daemon down.
void write_all(int fd, const std::string& data, int timeout_ms = -1) {
  const auto deadline = deadline_from(timeout_ms < 0 ? 0 : timeout_ms);
  std::size_t sent = 0;
  while (sent < data.size()) {
    wait_ready(fd, POLLOUT, timeout_ms, deadline, "write");
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

SocketServer::SocketServer(std::string socket_path, ProtocolHandler& handler,
                           int io_timeout_ms)
    : path_(std::move(socket_path)),
      handler_(handler),
      io_timeout_ms_(io_timeout_ms) {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  ::unlink(path_.c_str());  // replace a stale socket from a killed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind " + path_);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("listen " + path_);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void SocketServer::run() {
  util::log_info() << "service: listening on " << path_;
  while (!stop_.load(std::memory_order_relaxed) &&
         !handler_.shutdown_requested()) {
    // Poll with a timeout so stop()/shutdown are honoured within ~200ms
    // even when no client ever connects again.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    try {
      const std::string request = read_line(conn, io_timeout_ms_);
      const std::string response = handler_.handle_line(request);
      write_all(conn, response + "\n", io_timeout_ms_);
    } catch (const IoTimeout& e) {
      // A client that connects and sends nothing (or stops draining its
      // response) gets a typed error and its connection closed; the accept
      // loop moves on to the next client instead of wedging forever.
      util::log_warn() << "service: connection timeout: " << e.what();
      try {
        write_all(conn, "err timeout\n", 100);
      } catch (const std::exception&) {
        // Best effort — the peer may be gone or its buffer full.
      }
    } catch (const std::exception& e) {
      // A broken client connection must not take the daemon down.
      util::log_warn() << "service: connection error: " << e.what();
    }
    ::close(conn);
  }
  util::log_info() << "service: leaving accept loop";
}

std::string send_command(const std::string& socket_path,
                         const std::string& line, int timeout_ms) {
  const sockaddr_un addr = make_address(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + socket_path);
  }
  try {
    write_all(fd, line + "\n", timeout_ms);
    ::shutdown(fd, SHUT_WR);
    std::string response = read_line(fd, timeout_ms);
    ::close(fd);
    return response;
  } catch (const IoTimeout&) {
    ::close(fd);
    throw std::runtime_error("timeout waiting for response to '" + line +
                             "' from " + socket_path);
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace isasgd::service
