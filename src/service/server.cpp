#include "service/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/logging.hpp"

namespace isasgd::service {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("socket path too long (max " +
                             std::to_string(sizeof(addr.sun_path) - 1) +
                             " bytes): " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

/// Reads from `fd` until '\n' or EOF; returns the line without the newline.
std::string read_line(int fd) {
  std::string line;
  char c = 0;
  while (true) {
    const ssize_t n = ::read(fd, &c, 1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("read");
    }
    if (n == 0 || c == '\n') return line;
    line.push_back(c);
  }
}

void write_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::write(fd, data.data() + sent, data.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

SocketServer::SocketServer(std::string socket_path, ProtocolHandler& handler)
    : path_(std::move(socket_path)), handler_(handler) {
  const sockaddr_un addr = make_address(path_);
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  ::unlink(path_.c_str());  // replace a stale socket from a killed daemon
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind " + path_);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::unlink(path_.c_str());
    errno = saved;
    throw_errno("listen " + path_);
  }
}

SocketServer::~SocketServer() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(path_.c_str());
  }
}

void SocketServer::run() {
  util::log_info() << "service: listening on " << path_;
  while (!stop_.load(std::memory_order_relaxed) &&
         !handler_.shutdown_requested()) {
    // Poll with a timeout so stop()/shutdown are honoured within ~200ms
    // even when no client ever connects again.
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) continue;

    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    try {
      const std::string request = read_line(conn);
      const std::string response = handler_.handle_line(request);
      write_all(conn, response + "\n");
    } catch (const std::exception& e) {
      // A broken client connection must not take the daemon down.
      util::log_warn() << "service: connection error: " << e.what();
    }
    ::close(conn);
  }
  util::log_info() << "service: leaving accept loop";
}

std::string send_command(const std::string& socket_path,
                         const std::string& line) {
  const sockaddr_un addr = make_address(socket_path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + socket_path);
  }
  try {
    write_all(fd, line + "\n");
    ::shutdown(fd, SHUT_WR);
    std::string response = read_line(fd);
    ::close(fd);
    return response;
  } catch (...) {
    ::close(fd);
    throw;
  }
}

}  // namespace isasgd::service
