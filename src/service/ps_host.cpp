#include "service/ps_host.hpp"

#include <cstdint>
#include <span>
#include <utility>

#include "distributed/fenced.hpp"
#include "distributed/ps_wire.hpp"

namespace isasgd::service {

namespace wire = distributed::wire;

namespace {

/// A worker that connects and then stalls must not hold the host hostage:
/// each in-flight request gets this long before its connection is dropped.
constexpr int kConnectionIoTimeoutMs = 5000;
/// Accept poll period — the stop flag is checked at this cadence.
constexpr int kAcceptPollMs = 100;

}  // namespace

PsHost::PsHost(std::size_t dim, const std::string& address,
               objectives::Regularization reg)
    : dim_(dim), reg_(std::move(reg)), model_(dim, 0.0) {
  listener_ = net::listen(address);
  address_ = listener_->address();
  listener_->set_accept_timeout(kAcceptPollMs);
  thread_ = std::thread([this] { serve(); });
}

PsHost::~PsHost() { stop(); }

std::vector<double> PsHost::model() const {
  std::lock_guard lock(model_mu_);
  return model_;
}

void PsHost::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listener_) listener_->close();
}

void PsHost::serve() {
  while (!stop_.load(std::memory_order_relaxed)) {
    std::unique_ptr<net::Endpoint> ep;
    try {
      ep = listener_->accept();
    } catch (const net::TransportError& e) {
      if (e.kind() == net::TransportError::Kind::kTimeout) continue;
      break;  // listener closed or unusable: wind down
    }
    ep->set_io_timeout(kConnectionIoTimeoutMs);
    try {
      serve_connection(*ep);
    } catch (const net::TransportError&) {
      // A misbehaving or vanished client costs its own connection, nothing
      // else — the host keeps serving.
    }
  }
}

void PsHost::serve_connection(net::Endpoint& ep) {
  for (;;) {
    net::Frame frame;
    try {
      frame = net::read_frame(ep);
    } catch (const net::TransportError& e) {
      if (e.kind() == net::TransportError::Kind::kClosed) return;  // done
      throw;
    }
    switch (frame.type) {
      case wire::kHello:
        break;  // identification only; no reply in the wire map
      case wire::kStep: {
        wire::Unpacker in(frame.payload);
        const std::uint64_t ncols = in.u64();
        wire::Packer out;
        {
          std::lock_guard lock(model_mu_);
          for (std::uint64_t j = 0; j < ncols; ++j) {
            const std::uint32_t c = in.u32();
            out.f64(c < dim_ ? model_[c] : 0.0);
          }
        }
        net::write_frame(ep, wire::kStepReply, std::move(out).take());
        break;
      }
      case wire::kPush: {
        wire::Unpacker in(frame.payload);
        const double gradient_scale = in.f64();
        const double scaled_step = in.f64();
        const std::uint64_t nnz = in.u64();
        std::vector<std::uint32_t> idx(nnz);
        std::vector<double> val(nnz);
        for (std::uint64_t j = 0; j < nnz; ++j) {
          idx[j] = in.u32();
          val[j] = in.f64();
          if (idx[j] >= dim_) {
            throw net::TransportError(
                net::TransportError::Kind::kProtocol,
                "push coordinate " + std::to_string(idx[j]) +
                    " out of range (dim " + std::to_string(dim_) + ")");
          }
        }
        {
          std::lock_guard lock(model_mu_);
          distributed::fenced::apply_push(idx, val, gradient_scale,
                                          scaled_step, reg_, model_);
        }
        pushes_.fetch_add(1, std::memory_order_relaxed);
        net::write_frame(ep, wire::kPushAck, {});
        break;
      }
      default:
        throw net::TransportError(
            net::TransportError::Kind::kProtocol,
            "hosted PS: unexpected frame type " + std::to_string(frame.type));
    }
  }
}

}  // namespace isasgd::service
