// AF_UNIX transport for the training service protocol.
//
// The daemon side is SocketServer: bind a filesystem socket path, accept
// connections in a loop, and run one protocol request per connection — the
// client writes one line, the server writes one `ok`/`err` line back and
// closes. One-request connections keep the framing trivial (no pipelining,
// no partial-line state across requests) and match the CLI usage pattern:
//
//   service::TrainingService svc({.max_concurrent = 2});
//   service::ProtocolHandler handler(svc);
//   service::SocketServer server("/tmp/isasgd.sock", handler);
//   server.run();   // blocks until a `shutdown` request or stop()
//
// The client side is send_command(): connect, send the line, return the
// response line. Throws std::runtime_error when the daemon is unreachable.
#pragma once

#include <atomic>
#include <string>

#include "service/protocol.hpp"

namespace isasgd::service {

class SocketServer {
 public:
  /// Prepares a listener on `socket_path` (an existing socket file at that
  /// path is replaced — stale sockets from a killed daemon must not block
  /// restart). Throws std::runtime_error when the socket cannot be bound.
  SocketServer(std::string socket_path, ProtocolHandler& handler);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Serves requests until the handler reports shutdown_requested() or
  /// stop() is called; removes the socket file on exit.
  void run();

  /// Asks run() to return (safe from another thread or a signal-adjacent
  /// context — it only sets a flag the accept loop polls).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  std::string path_;
  ProtocolHandler& handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
};

/// One protocol round-trip as a client: sends `line` to the daemon at
/// `socket_path`, returns the response line (newline stripped). Throws
/// std::runtime_error on connect/IO failure.
[[nodiscard]] std::string send_command(const std::string& socket_path,
                                       const std::string& line);

}  // namespace isasgd::service
