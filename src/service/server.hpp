// AF_UNIX transport for the training service protocol.
//
// The daemon side is SocketServer: bind a filesystem socket path, accept
// connections in a loop, and run one protocol request per connection — the
// client writes one line, the server writes one `ok`/`err` line back and
// closes. One-request connections keep the framing trivial (no pipelining,
// no partial-line state across requests) and match the CLI usage pattern:
//
//   service::TrainingService svc({.max_concurrent = 2});
//   service::ProtocolHandler handler(svc);
//   service::SocketServer server("/tmp/isasgd.sock", handler);
//   server.run();   // blocks until a `shutdown` request or stop()
//
// The client side is send_command(): connect, send the line, return the
// response line. Throws std::runtime_error when the daemon is unreachable.
#pragma once

#include <atomic>
#include <string>

#include "service/protocol.hpp"

namespace isasgd::service {

class SocketServer {
 public:
  /// Prepares a listener on `socket_path` (an existing socket file at that
  /// path is replaced — stale sockets from a killed daemon must not block
  /// restart). Throws std::runtime_error when the socket cannot be bound.
  /// `io_timeout_ms` bounds each connection's request read and response
  /// write against an absolute deadline (< 0 = no limit): a client that
  /// connects and never sends its line, or never drains its response, gets
  /// a typed `err timeout` and its connection closed instead of wedging the
  /// single-threaded accept loop forever.
  SocketServer(std::string socket_path, ProtocolHandler& handler,
               int io_timeout_ms = 5000);
  ~SocketServer();

  SocketServer(const SocketServer&) = delete;
  SocketServer& operator=(const SocketServer&) = delete;

  /// Serves requests until the handler reports shutdown_requested() or
  /// stop() is called; removes the socket file on exit.
  void run();

  /// Asks run() to return (safe from another thread or a signal-adjacent
  /// context — it only sets a flag the accept loop polls).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] const std::string& socket_path() const noexcept {
    return path_;
  }

 private:
  std::string path_;
  ProtocolHandler& handler_;
  int listen_fd_ = -1;
  int io_timeout_ms_ = 5000;
  std::atomic<bool> stop_{false};
};

/// One protocol round-trip as a client: sends `line` to the daemon at
/// `socket_path`, returns the response line (newline stripped). Throws
/// std::runtime_error on connect/IO failure, including when the daemon does
/// not answer within `timeout_ms` (< 0 = wait forever — the default, since
/// `wait id=N` legitimately blocks for a whole training run).
[[nodiscard]] std::string send_command(const std::string& socket_path,
                                       const std::string& line,
                                       int timeout_ms = -1);

}  // namespace isasgd::service
