// Parameter-server hosting inside the training daemon.
//
// PsHost turns the daemon into a standing parameter-server endpoint: it owns
// a dense model vector and serves the distributed wire protocol
// (distributed/ps_wire.hpp) over a net::Transport listener — coordinate gets
// (kStep → kStepReply) and sparse pushes (kPush → apply → kPushAck) — so
// external worker processes can train against a model that outlives any one
// of them. The apply is fenced::apply_push, the same inlined arithmetic as
// the fenced simulator and the forked process groups: a worker talking to a
// hosted PS sees exactly the update rule every other backend implements.
//
// Lifecycle: construct (binds the listener, resolves ephemeral addresses),
// serve connections on a background thread, stop() to wind down. Connections
// are served one at a time — a PS transaction is a short request/response
// exchange and the accept loop polls its stop flag between timeouts, so a
// slow client delays, never wedges, the host. The daemon protocol drives
// this via `ps_serve` / `ps_stop` (service/protocol.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/transport.hpp"
#include "objectives/objective.hpp"

namespace isasgd::service {

class PsHost {
 public:
  /// Binds `address` (e.g. "tcp://127.0.0.1:0" or "shm:///tmp/prefix") and
  /// starts serving a zero-initialised `dim`-dimensional model under `reg`.
  /// Throws net::TransportError when the address cannot be bound.
  PsHost(std::size_t dim, const std::string& address,
         objectives::Regularization reg = objectives::Regularization::none());
  ~PsHost();

  PsHost(const PsHost&) = delete;
  PsHost& operator=(const PsHost&) = delete;

  /// The bound address with ephemeral parts resolved — hand this to workers.
  [[nodiscard]] const std::string& address() const noexcept { return address_; }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Pushes applied since construction.
  [[nodiscard]] std::uint64_t pushes() const noexcept {
    return pushes_.load(std::memory_order_relaxed);
  }

  /// Snapshot of the current model (copy under the model lock).
  [[nodiscard]] std::vector<double> model() const;

  /// Stops the accept loop and joins the serving thread. Idempotent.
  void stop();

 private:
  void serve();
  void serve_connection(net::Endpoint& ep);

  std::size_t dim_;
  objectives::Regularization reg_;
  std::string address_;
  std::unique_ptr<net::Listener> listener_;
  mutable std::mutex model_mu_;
  std::vector<double> model_;
  std::atomic<std::uint64_t> pushes_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace isasgd::service
