// TrainingService: a resident multi-tenant training daemon core.
//
// One service owns one shared core::ExecutionContext (one worker pool) and
// runs many jobs against it concurrently. Three mechanisms make that safe
// and fair:
//
//   * Epoch-fence time slicing. Each job trains on its own thread, but only
//     `max_concurrent` jobs may be inside a timed epoch at once: at every
//     epoch fence a job releases its slice slot and FIFO-reacquires it, so
//     N resident jobs round-robin the pool at epoch granularity instead of
//     stampeding it. (ThreadPool::run serialises dispatches internally —
//     the slicing bounds *oversubscription*, the pool guarantees safety.)
//
//   * Admission control. Every job declares its resident footprint (the
//     source's resident_bytes() plus a solver working-set estimate) to the
//     MemoryGovernor: over-budget jobs are rejected with a typed
//     AdmissionError, jobs that do not fit *right now* queue FIFO and admit
//     as running jobs release their reservations.
//
//   * Deterministic checkpoint/resume. Jobs with a checkpoint_path save
//     their full solver state (io/checkpoint.hpp) at epoch fences —
//     periodically and/or on demand — and a job submitted with resume_from
//     continues a killed run with a bit-identical final model (the
//     snapshot.hpp contract; the service adds the dataset-fingerprint
//     check on top).
//
// Lifecycle verbs (pause/resume/cancel/checkpoint) all take effect at epoch
// fences — between fences a job is untouchable by design, exactly the
// granularity the solvers already quiesce at.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/execution.hpp"
#include "objectives/objective.hpp"
#include "service/job.hpp"
#include "service/memory_governor.hpp"

namespace isasgd::service {

/// FNV-1a over a model vector's bit pattern — the 64-bit identity the
/// determinism contract is asserted on (two bit-identical models hash
/// equal; any differing bit almost surely differs).
[[nodiscard]] std::uint64_t hash_model(std::span<const double> w) noexcept;

class TrainingService {
 public:
  struct Options {
    /// Jobs allowed inside a timed epoch simultaneously (the slice slots).
    std::size_t max_concurrent = 2;
    /// Total resident-memory budget handed to the MemoryGovernor.
    std::size_t memory_budget_bytes = std::size_t{512} << 20;
    /// Eval threads per job's snapshot scoring (kept small: evaluation
    /// shares the pool with every resident job's epochs).
    std::size_t eval_threads = 1;
    /// Shared execution context; the service creates its own when null.
    core::ExecutionContextPtr execution;
  };

  /// Default Options. (Separate constructor rather than a `= {}` default
  /// argument: a nested aggregate's member initializers are not usable as a
  /// default argument inside the enclosing class.)
  TrainingService();
  explicit TrainingService(Options options);
  /// Cancels every job, wakes all waiters, joins all job threads.
  ~TrainingService();

  TrainingService(const TrainingService&) = delete;
  TrainingService& operator=(const TrainingService&) = delete;

  /// Validates and admits a job. Returns its id immediately — training runs
  /// on a service-owned thread. Throws:
  ///   * std::invalid_argument — malformed spec (unknown solver/objective,
  ///     no dataset, checkpoint_every without checkpoint_path, ...);
  ///   * AdmissionError — footprint exceeds the total memory budget;
  ///   * io::CheckpointError — resume_from unreadable, corrupt, or from a
  ///     different dataset.
  /// A job that fits the budget but not the currently available memory is
  /// accepted in state kQueued and starts when capacity frees up.
  std::uint64_t submit(JobSpec spec);

  /// Snapshot of one job. Throws std::invalid_argument for an unknown id.
  [[nodiscard]] JobStatus status(std::uint64_t id) const;
  /// Snapshots of every job, in submission order.
  [[nodiscard]] std::vector<JobStatus> list() const;

  /// Requests a pause at the next epoch fence. False for unknown ids and
  /// jobs already terminal.
  bool pause(std::uint64_t id);
  /// Clears a pause (no-op when not paused). False as above.
  bool resume(std::uint64_t id);
  /// Requests cancellation: queued jobs leave the queue immediately,
  /// running jobs stop at the next fence (the pool stays reusable — the
  /// fence means it already drained). False as above.
  bool cancel(std::uint64_t id);
  /// Arms a checkpoint save at the next fence. False for unknown ids,
  /// terminal jobs, and jobs without a checkpoint_path.
  bool checkpoint(std::uint64_t id);

  /// Blocks until the job reaches a terminal state.
  void wait(std::uint64_t id);
  /// Blocks until every submitted job is terminal.
  void wait_all();

  [[nodiscard]] core::ExecutionContext& execution() noexcept {
    return *execution_;
  }
  [[nodiscard]] const MemoryGovernor& governor() const noexcept {
    return governor_;
  }

  /// Sum of the shard-cache counters across every non-terminal job whose
  /// source reports them (streaming/packed backends) — the daemon-wide view
  /// the protocol's `stats` verb prints. Zeros when no such job is live.
  [[nodiscard]] data::CacheStats cache_stats() const;

 private:
  struct Job;
  class FenceObserver;
  class CheckpointSink;

  /// Starts the job's thread (reservation already held). Caller holds mu_.
  void start_locked(const std::shared_ptr<Job>& job);
  /// Admits queued jobs that now fit. Caller must NOT hold mu_.
  void pump_queue();
  /// The job thread body.
  void run_job(std::shared_ptr<Job> job);
  /// Epoch-fence protocol: update status, honour cancel/pause, cycle the
  /// slice slot. Returns false to early-stop the solver.
  bool fence(Job& job, std::size_t epoch, double objective_value);

  void acquire_slice(Job& job);
  void release_slice(Job& job);

  Options options_;
  core::ExecutionContextPtr execution_;
  MemoryGovernor governor_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  ///< job state transitions (wait, pause)
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::deque<std::uint64_t> admit_queue_;  ///< kQueued, FIFO
  /// Atomic: checked under mu_ (submit, pause parking) *and* under
  /// slice_mu_ (acquire_slice) — an atomic keeps both reads race-free.
  std::atomic<bool> shutdown_{false};

  /// Slice scheduler state (separate lock: fences must never contend with
  /// status queries).
  std::mutex slice_mu_;
  std::condition_variable slice_cv_;
  std::deque<const Job*> slice_waiters_;  ///< FIFO fairness
  std::size_t slices_running_ = 0;
};

}  // namespace isasgd::service
