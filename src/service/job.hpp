// Job vocabulary of the training service: what a client submits (JobSpec),
// where a job is in its lifecycle (JobState), and the snapshot of a job the
// service reports back (JobStatus).
//
// A job is one solver run — solver name, dataset, objective, SolverOptions,
// epoch budget — executed by service::TrainingService on the shared
// execution context, time-sliced against the other resident jobs at epoch
// fences. Checkpointing is per job: `checkpoint_path` + `checkpoint_every`
// arm periodic fence-time saves, `resume_from` restores a prior run's state
// (same solver, seed, and dataset — the determinism contract of
// solvers/snapshot.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "data/streaming_source.hpp"
#include "solvers/options.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::service {

/// Everything needed to run one training job. Exactly one of `dataset`
/// (a file path — an ISSP shardpack opens as a PackedSource, LibSVM/ISASGD
/// binary as a StreamingSource) and `matrix` (an in-process dataset,
/// wrapped in an InMemorySource) must be set.
struct JobSpec {
  /// Registry name of the solver, e.g. "is_sgd" (case/punctuation-
  /// insensitive, like core::Trainer::train).
  std::string solver;

  /// Dataset file path; empty when `matrix` supplies the data.
  std::string dataset;
  /// Streaming knobs for the `dataset` path (shard size, cache budget).
  data::StreamingOptions streaming;
  /// In-process dataset; the shared_ptr keeps it alive for the job's life.
  std::shared_ptr<const sparse::CsrMatrix> matrix;

  /// Objective by name: "least_squares", "logistic", "smooth_hinge",
  /// "squared_hinge", "huber".
  std::string objective = "least_squares";

  /// Solver options — epochs is the job's epoch budget; reg rides along to
  /// the Trainer. keep_final_model is forced on by the service (the final
  /// model backs `status`'s model hash).
  solvers::SolverOptions options;

  /// Checkpoint file for this job; empty disables fence-time saves. Each
  /// save atomically replaces the file with the newest fence state.
  std::string checkpoint_path;
  /// Save every k-th epoch fence (0 = only on explicit `checkpoint`
  /// requests). Requires checkpoint_path.
  std::size_t checkpoint_every = 0;
  /// Checkpoint file to restore before epoch 1; empty starts fresh. The
  /// service verifies the dataset fingerprint and hands the state to the
  /// solver, which verifies solver/seed/dimensions (snapshot.hpp).
  std::string resume_from;
};

/// Lifecycle of a job inside the service.
enum class JobState {
  kQueued,     ///< admitted but waiting for memory budget
  kRunning,    ///< training (or between epoch slices)
  kPaused,     ///< paused at an epoch fence; resume() continues
  kCompleted,  ///< trained to its epoch budget (or early-stopped clean)
  kFailed,     ///< threw; see JobStatus::message
  kCancelled,  ///< cancel() took effect at an epoch fence
};

[[nodiscard]] const char* job_state_name(JobState state) noexcept;

/// Point-in-time view of one job, as reported over the protocol.
struct JobStatus {
  std::uint64_t id = 0;
  JobState state = JobState::kQueued;
  std::string solver;
  std::size_t epoch = 0;         ///< completed epochs so far
  std::size_t epochs_budget = 0; ///< the run's target
  double objective_value = 0;    ///< F(w) at the last scored fence
  std::size_t reserved_bytes = 0;  ///< memory reservation held
  /// FNV-1a hash of the final model bytes; 0 until kCompleted. The value
  /// the determinism contract is asserted on: an uninterrupted run and a
  /// kill+resume run of the same job must report identical hashes.
  std::uint64_t model_hash = 0;
  std::string message;  ///< failure detail for kFailed, else empty
};

}  // namespace isasgd::service
