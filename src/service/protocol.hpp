// The training service's line-oriented control protocol.
//
// One request is one text line, `verb key=value key=value ...`; one response
// is one text line, `ok ...` on success or `err <message>` on failure. The
// transport is whatever delivers lines — the AF_UNIX socket server
// (service/server.hpp), a CLI driving handle_line directly, a test. Values
// may not contain whitespace (dataset paths with spaces are not supported
// over the wire; use the C++ API for those).
//
// Verbs:
//
//   ping                         → ok pong
//   submit solver=NAME data=PATH [objective=NAME] [epochs=N] [step=F]
//          [decay=F] [seed=N] [batch=N] [threads=N] [l1=F] [l2=F]
//          [shard_rows=N] [cache_mb=N] [adaptive=0|1]
//          [ckpt=PATH] [ckpt_every=N] [resume=PATH]
//                                → ok id=N
//   status id=N                  → ok id=N state=S solver=NAME epoch=K/B
//                                  objective=F mem=BYTES model=HEX16 [msg=...]
//   wait id=N                    → blocks, then the status line
//   list                         → ok jobs=N [ID:STATE]...
//   pause id=N | resume id=N | cancel id=N | checkpoint id=N
//                                → ok
//   stats                        → ok active=N total=N mem_used=BYTES
//                                  mem_budget=BYTES queue=N
//   ps_serve dim=N [bind=ADDR] [l2=F] [l1=F]
//                                → ok addr=ADDR dim=N
//                                  (host a parameter-server endpoint —
//                                  service/ps_host.hpp — workers connect to
//                                  ADDR with the distributed wire protocol;
//                                  default bind tcp://127.0.0.1:0)
//   ps_stop                      → ok pushes=N   (stop the hosted PS)
//   shutdown                     → ok bye   (server loop exits after this;
//                                  also stops any hosted PS)
//
// `model=HEX16` is the 16-hex-digit FNV-1a hash of the final model
// (hash_model) — zeros until the job completes; the CI smoke test compares
// these across a kill -9 + resume to assert bit-identical convergence.
#pragma once

#include <atomic>
#include <memory>
#include <string>

#include "service/ps_host.hpp"
#include "service/training_service.hpp"

namespace isasgd::service {

/// Command interpreter over one TrainingService. Thread-compatible: the
/// socket server handles connections serially; drive one handler from one
/// thread at a time (the service underneath is the thread-safe layer). The
/// handler owns at most one hosted PS endpoint (`ps_serve`/`ps_stop`), which
/// serves its own connections on its own thread.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(TrainingService& service) : service_(service) {}

  /// Executes one request line, returns one response line (no trailing
  /// newline). Never throws — every failure becomes an `err ...` response.
  [[nodiscard]] std::string handle_line(const std::string& line);

  /// True once a `shutdown` request was handled; the transport loop exits.
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load(std::memory_order_relaxed);
  }

  /// The hosted PS endpoint, if `ps_serve` started one (tests peek at it).
  [[nodiscard]] const PsHost* ps_host() const noexcept {
    return ps_host_.get();
  }

 private:
  TrainingService& service_;
  std::unique_ptr<PsHost> ps_host_;
  std::atomic<bool> shutdown_{false};
};

/// Formats a JobStatus as the protocol's status line payload (everything
/// after "ok "): shared by `status`, `wait`, and the tests.
[[nodiscard]] std::string format_status(const JobStatus& status);

}  // namespace isasgd::service
