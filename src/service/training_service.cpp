#include "service/training_service.hpp"

#include <atomic>
#include <bit>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/trainer.hpp"
#include "data/data_source.hpp"
#include "io/checkpoint.hpp"
#include "objectives/objective.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/solver.hpp"
#include "util/logging.hpp"

namespace isasgd::service {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

/// Solver working-set estimate beyond the data source itself: the SAG/SAGA
/// family is the ceiling — per-row gradient memory (alpha, n doubles) plus a
/// handful of dim-length vectors (model, aggregate, anchors, importance).
std::size_t working_set_bytes(std::size_t rows, std::size_t dim) {
  return rows * sizeof(double) + 6 * dim * sizeof(double);
}

}  // namespace

std::uint64_t hash_model(std::span<const double> w) noexcept {
  std::uint64_t h = kFnvOffset;
  for (const double v : w) {
    const auto word = std::bit_cast<std::uint64_t>(v);
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (word >> shift) & 0xffU;
      h *= kFnvPrime;
    }
  }
  return h;
}

/// Everything the service tracks about one job. Reported fields (state,
/// epoch, objective_value, ...) are guarded by the service's mu_; the
/// request flags are atomics so fences read them without taking it.
struct TrainingService::Job {
  std::uint64_t id = 0;
  JobSpec spec;

  JobState state = JobState::kQueued;
  std::size_t epoch = 0;
  double objective_value = 0;
  std::size_t reserved_bytes = 0;
  std::uint64_t model_hash = 0;
  std::string message;

  std::atomic<bool> pause_requested{false};
  std::atomic<bool> cancel_requested{false};
  std::atomic<bool> checkpoint_requested{false};

  /// Validated at submit; the data source these point at lives here so the
  /// job thread never touches the spec's path again.
  std::shared_ptr<const data::DataSource> source;
  std::unique_ptr<objectives::Objective> objective;
  std::uint64_t dataset_fingerprint = 0;
  std::optional<solvers::SnapshotState> resume_state;

  std::thread thread;
  bool slice_held = false;
};

/// Bridges solver epoch fences to the service: status updates, early stop
/// on cancel, pause parking, and the slice-slot round-robin.
class TrainingService::FenceObserver final : public solvers::TrainingObserver {
 public:
  FenceObserver(TrainingService& service, Job& job)
      : service_(service), job_(job) {}

  bool on_epoch(const solvers::TracePoint& point) override {
    return service_.fence(job_, point.epoch, point.objective);
  }

 private:
  TrainingService& service_;
  Job& job_;
};

/// Serialises fence captures to the job's checkpoint file. Runs on the job
/// thread at the fence, so a slow disk stalls only this job's slice.
class TrainingService::CheckpointSink final : public solvers::SnapshotSink {
 public:
  explicit CheckpointSink(Job& job) : job_(job) {}

  [[nodiscard]] bool wants(std::size_t epoch) const override {
    if (job_.checkpoint_requested.load(std::memory_order_relaxed)) return true;
    const std::size_t every = job_.spec.checkpoint_every;
    return every != 0 && epoch % every == 0;
  }

  void capture(solvers::SnapshotState state) override {
    state.dataset_fingerprint = job_.dataset_fingerprint;
    io::save_checkpoint(job_.spec.checkpoint_path, state);
    job_.checkpoint_requested.store(false, std::memory_order_relaxed);
  }

 private:
  Job& job_;
};

TrainingService::TrainingService() : TrainingService(Options{}) {}

TrainingService::TrainingService(Options options)
    : options_(options),
      execution_(options.execution
                     ? std::move(options.execution)
                     : std::make_shared<core::ExecutionContext>(
                           options.eval_threads)),
      governor_(options.memory_budget_bytes) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
}

TrainingService::~TrainingService() {
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [id, job] : jobs_) {
      job->cancel_requested.store(true, std::memory_order_relaxed);
      job->pause_requested.store(false, std::memory_order_relaxed);
      if (job->state == JobState::kQueued) {
        job->state = JobState::kCancelled;
      }
      if (job->thread.joinable()) threads.push_back(std::move(job->thread));
    }
    admit_queue_.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(slice_mu_);
    slice_cv_.notify_all();
  }
  cv_.notify_all();
  for (std::thread& t : threads) t.join();
}

std::uint64_t TrainingService::submit(JobSpec spec) {
  if (spec.dataset.empty() == !spec.matrix) {
    throw std::invalid_argument(
        "job spec must set exactly one of dataset (file path) and matrix "
        "(in-process data)");
  }
  if (spec.checkpoint_every != 0 && spec.checkpoint_path.empty()) {
    throw std::invalid_argument(
        "checkpoint_every requires checkpoint_path to be set");
  }
  // Resolve the solver now: an unknown name throws at submit (listing the
  // registry), and a checkpointing spec on a non-checkpointable solver is a
  // spec error, not a later job failure.
  const solvers::Solver& solver = solvers::SolverRegistry::instance().get(
      spec.solver);
  if ((!spec.checkpoint_path.empty() || !spec.resume_from.empty()) &&
      !solver.capabilities().checkpointable) {
    throw std::invalid_argument("solver '" + std::string(solver.name()) +
                                "' does not support checkpoint/resume");
  }

  auto job = std::make_shared<Job>();
  job->spec = std::move(spec);
  job->objective = objectives::make_objective(job->spec.objective);

  // Resolve the data source up front so footprint, fingerprint, and file
  // errors all surface at submit time, on the caller, not inside the job.
  if (job->spec.matrix) {
    auto source = std::make_shared<data::InMemorySource>(*job->spec.matrix);
    job->reserved_bytes = source->resident_bytes();
    job->source = std::move(source);
  } else {
    auto source =
        execution_->open_source(job->spec.dataset, job->spec.streaming);
    job->reserved_bytes = source->resident_bytes();
    job->source = std::move(source);
  }
  job->dataset_fingerprint = job->source->fingerprint();
  job->reserved_bytes +=
      working_set_bytes(job->source->rows(), job->source->dim());

  if (!job->spec.resume_from.empty()) {
    solvers::SnapshotState state = io::load_checkpoint(job->spec.resume_from);
    if (state.dataset_fingerprint != job->dataset_fingerprint) {
      throw io::CheckpointError(
          "resume refused: checkpoint '" + job->spec.resume_from +
          "' was written against a different dataset (fingerprint mismatch)");
    }
    job->resume_state = std::move(state);
  }

  const bool admitted = governor_.try_reserve(job->reserved_bytes);

  std::uint64_t id = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      if (admitted) governor_.release(job->reserved_bytes);
      throw std::runtime_error("training service is shutting down");
    }
    id = next_id_++;
    job->id = id;
    jobs_.emplace(id, job);
    if (admitted) {
      start_locked(job);
    } else {
      job->state = JobState::kQueued;
      admit_queue_.push_back(id);
      util::log_info() << "service: job " << id << " queued ("
                       << job->reserved_bytes << " bytes requested, "
                       << governor_.available() << " bytes available)";
    }
  }
  cv_.notify_all();
  return id;
}

void TrainingService::start_locked(const std::shared_ptr<Job>& job) {
  job->state = JobState::kRunning;
  job->thread = std::thread([this, job] { run_job(job); });
}

void TrainingService::pump_queue() {
  std::vector<std::shared_ptr<Job>> started;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    while (!admit_queue_.empty() && !shutdown_) {
      const auto it = jobs_.find(admit_queue_.front());
      if (it == jobs_.end() || it->second->state != JobState::kQueued) {
        admit_queue_.pop_front();  // cancelled while queued
        continue;
      }
      // FIFO admission: if the head does not fit, nothing behind it jumps
      // the line (no starvation of large jobs).
      if (!governor_.try_reserve(it->second->reserved_bytes)) break;
      admit_queue_.pop_front();
      start_locked(it->second);
      started.push_back(it->second);
    }
  }
  if (!started.empty()) cv_.notify_all();
}

void TrainingService::run_job(std::shared_ptr<Job> job) {
  core::ExecutionContext::JobToken token = execution_->begin_job();
  acquire_slice(*job);

  JobState final_state = JobState::kCompleted;
  std::string failure;
  std::uint64_t model_hash = 0;
  try {
    core::Trainer trainer = core::TrainerBuilder()
                                .source(*job->source)
                                .objective(*job->objective)
                                .regularization(job->spec.options.reg)
                                .eval_threads(options_.eval_threads)
                                .execution(execution_)
                                .build();
    solvers::SolverOptions options = job->spec.options;
    options.keep_final_model = true;  // backs the status model hash

    solvers::SnapshotHooks hooks;
    if (job->resume_state) hooks.resume = &*job->resume_state;
    CheckpointSink sink(*job);
    if (!job->spec.checkpoint_path.empty()) hooks.sink = &sink;

    FenceObserver observer(*this, *job);
    const solvers::Trace trace =
        trainer.train(job->spec.solver, options, &observer, hooks);
    model_hash = hash_model(trace.final_model);
    if (job->cancel_requested.load(std::memory_order_relaxed)) {
      final_state = JobState::kCancelled;
    }
  } catch (const std::exception& e) {
    final_state = JobState::kFailed;
    failure = e.what();
    util::log_error() << "service: job " << job->id << " failed: " << failure;
  }

  release_slice(*job);
  // Drop the active-job token BEFORE the terminal state becomes visible:
  // a waiter woken by the state change (wait/wait_all) must never observe
  // the job as both terminal and still active. The mutex below orders the
  // relaxed decrement for that waiter.
  token.release();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job->state = final_state;
    job->message = std::move(failure);
    job->model_hash = model_hash;
  }
  governor_.release(job->reserved_bytes);
  cv_.notify_all();
  pump_queue();
}

bool TrainingService::fence(Job& job, std::size_t epoch,
                            double objective_value) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    job.epoch = epoch;
    job.objective_value = objective_value;
  }
  cv_.notify_all();
  if (job.cancel_requested.load(std::memory_order_relaxed)) return false;
  if (epoch == 0) return true;  // initial-model point: no slice to cycle yet

  // End of this job's slice: give the slot up, park if paused, rejoin the
  // FIFO. With more resident jobs than slots this is what round-robins the
  // pool at epoch granularity.
  release_slice(job);
  if (job.pause_requested.load(std::memory_order_relaxed)) {
    std::unique_lock<std::mutex> lock(mu_);
    job.state = JobState::kPaused;
    cv_.notify_all();
    cv_.wait(lock, [&] {
      return !job.pause_requested.load(std::memory_order_relaxed) ||
             job.cancel_requested.load(std::memory_order_relaxed) || shutdown_;
    });
    job.state = JobState::kRunning;
    cv_.notify_all();
  }
  if (job.cancel_requested.load(std::memory_order_relaxed)) return false;
  acquire_slice(job);
  return !job.cancel_requested.load(std::memory_order_relaxed);
}

void TrainingService::acquire_slice(Job& job) {
  std::unique_lock<std::mutex> lock(slice_mu_);
  slice_waiters_.push_back(&job);
  slice_cv_.wait(lock, [&] {
    return shutdown_ || (slices_running_ < options_.max_concurrent &&
                         slice_waiters_.front() == &job);
  });
  if (shutdown_) {
    std::erase(slice_waiters_, &job);
    return;  // cancel flag ends the job at the next fence check
  }
  slice_waiters_.pop_front();
  ++slices_running_;
  job.slice_held = true;
  slice_cv_.notify_all();  // next waiter may also fit
}

void TrainingService::release_slice(Job& job) {
  const std::lock_guard<std::mutex> lock(slice_mu_);
  if (!job.slice_held) return;
  job.slice_held = false;
  --slices_running_;
  slice_cv_.notify_all();
}

JobStatus TrainingService::status(std::uint64_t id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  const Job& job = *it->second;
  JobStatus s;
  s.id = job.id;
  s.state = job.state;
  s.solver = job.spec.solver;
  s.epoch = job.epoch;
  s.epochs_budget = job.spec.options.epochs;
  s.objective_value = job.objective_value;
  s.reserved_bytes = job.reserved_bytes;
  s.model_hash = job.model_hash;
  s.message = job.message;
  return s;
}

std::vector<JobStatus> TrainingService::list() const {
  std::vector<std::uint64_t> ids;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    ids.reserve(jobs_.size());
    for (const auto& [id, job] : jobs_) ids.push_back(id);
  }
  std::vector<JobStatus> all;
  all.reserve(ids.size());
  for (const std::uint64_t id : ids) all.push_back(status(id));
  return all;
}

bool TrainingService::pause(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.state != JobState::kRunning && job.state != JobState::kQueued &&
      job.state != JobState::kPaused) {
    return false;
  }
  job.pause_requested.store(true, std::memory_order_relaxed);
  return true;
}

bool TrainingService::resume(std::uint64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    if (job.state != JobState::kRunning && job.state != JobState::kQueued &&
        job.state != JobState::kPaused) {
      return false;
    }
    job.pause_requested.store(false, std::memory_order_relaxed);
  }
  cv_.notify_all();
  return true;
}

bool TrainingService::cancel(std::uint64_t id) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = jobs_.find(id);
    if (it == jobs_.end()) return false;
    Job& job = *it->second;
    switch (job.state) {
      case JobState::kCompleted:
      case JobState::kFailed:
      case JobState::kCancelled:
        return false;
      case JobState::kQueued:
        job.state = JobState::kCancelled;
        job.cancel_requested.store(true, std::memory_order_relaxed);
        std::erase(admit_queue_, id);
        break;
      case JobState::kRunning:
      case JobState::kPaused:
        job.cancel_requested.store(true, std::memory_order_relaxed);
        job.pause_requested.store(false, std::memory_order_relaxed);
        break;
    }
  }
  cv_.notify_all();
  return true;
}

bool TrainingService::checkpoint(std::uint64_t id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Job& job = *it->second;
  if (job.spec.checkpoint_path.empty()) return false;
  if (job.state != JobState::kRunning && job.state != JobState::kQueued &&
      job.state != JobState::kPaused) {
    return false;
  }
  job.checkpoint_requested.store(true, std::memory_order_relaxed);
  return true;
}

namespace {

bool terminal(JobState state) noexcept {
  return state == JobState::kCompleted || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

}  // namespace

data::CacheStats TrainingService::cache_stats() const {
  data::CacheStats total{};
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, job] : jobs_) {
    if (terminal(job->state) || !job->source) continue;
    const std::optional<data::CacheStats> s = job->source->cache_stats();
    if (!s) continue;
    total.loads += s->loads;
    total.hits += s->hits;
    total.misses += s->misses;
    total.evictions += s->evictions;
    total.prefetch_issued += s->prefetch_issued;
    total.prefetch_hits += s->prefetch_hits;
    total.prefetch_races += s->prefetch_races;
    total.prefetch_wasted += s->prefetch_wasted;
    total.prefetch_inflight += s->prefetch_inflight;
    total.resident_bytes += s->resident_bytes;
    total.resident_shards += s->resident_shards;
  }
  return total;
}

void TrainingService::wait(std::uint64_t id) {
  // Waits on the state transition only; threads are joined by the
  // destructor (a finished job's thread may still be pumping the admission
  // queue when its state turns terminal).
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    throw std::invalid_argument("unknown job id " + std::to_string(id));
  }
  const std::shared_ptr<Job> job = it->second;
  cv_.wait(lock, [&] { return terminal(job->state); });
}

void TrainingService::wait_all() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    for (const auto& [id, job] : jobs_) {
      if (!terminal(job->state)) return false;
    }
    return true;
  });
}

const char* job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kPaused:
      return "paused";
    case JobState::kCompleted:
      return "completed";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

}  // namespace isasgd::service
