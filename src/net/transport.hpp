// Byte-stream transport abstraction for the real (multi-process) distributed
// backend.
//
// A Transport moves opaque byte streams between processes; everything above
// it (the parameter-server wire protocol, the all-reduce rounds, the
// service's hosted PS endpoint) is written against two tiny interfaces:
//
//   Endpoint   one bidirectional, reliable, ordered byte stream
//              (send_bytes / recv_bytes always transfer the full buffer,
//              retrying partial I/O and EINTR internally)
//   Listener   accept() incoming Endpoints at an address
//
// Two backends ship (selected by address scheme):
//
//   tcp://host:port    kernel TCP sockets — the multi-host transport.
//                      port 0 binds an ephemeral port; Listener::address()
//                      returns the resolved one.
//   shm://PATH         file-backed shared-memory SPSC byte rings — the
//                      same-host transport. PATH is a filesystem prefix the
//                      listener owns; each connection is one mapped file of
//                      two rings (one per direction). No syscalls on the
//                      data path.
//
// On top of raw bytes, the frame layer gives typed message boundaries:
// a 16-byte header (magic, type, payload length) + payload. read_frame
// validates the magic and bounds the length so a corrupt or hostile peer
// produces a typed TransportError::Kind::kProtocol, never an attempted
// multi-gigabyte allocation; a connection that dies mid-frame produces
// kClosed ("torn frame"), and an expired deadline produces kTimeout.
//
// Every error is a TransportError carrying a Kind — callers switch on the
// kind, not on message strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

namespace isasgd::net {

class TransportError : public std::runtime_error {
 public:
  enum class Kind {
    kClosed,    ///< peer closed/vanished (EOF mid-message, EPIPE, reset)
    kTimeout,   ///< configured I/O deadline expired
    kProtocol,  ///< framing violation: bad magic, oversized length
    kIo,        ///< local I/O failure (errno-level) or bad address
  };

  TransportError(Kind kind, const std::string& what)
      : std::runtime_error(what), kind_(kind) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }

 private:
  Kind kind_;
};

[[nodiscard]] std::string_view transport_error_kind_name(
    TransportError::Kind kind) noexcept;

/// One reliable, ordered, bidirectional byte stream between two processes.
/// Implementations are single-owner per direction: one thread sends, one
/// thread receives (the PS runtime and the SPSC rings both assume this).
class Endpoint {
 public:
  virtual ~Endpoint() = default;

  /// Transfers exactly `size` bytes, looping over partial writes and EINTR.
  /// Throws TransportError (kClosed when the peer is gone, kTimeout when the
  /// configured deadline expires mid-transfer).
  virtual void send_bytes(const void* data, std::size_t size) = 0;

  /// Receives exactly `size` bytes, looping over partial reads and EINTR.
  /// Same error contract as send_bytes; EOF before `size` bytes is kClosed.
  virtual void recv_bytes(void* data, std::size_t size) = 0;

  /// Bounds every subsequent send/recv call by `timeout_ms` (< 0 = none,
  /// the default). The deadline is per call, measured from its start.
  virtual void set_io_timeout(int timeout_ms) = 0;

  /// Signals end-of-stream to the peer (its next recv sees kClosed once the
  /// buffered bytes drain). Idempotent; the destructor calls it.
  virtual void close() = 0;
};

class Listener {
 public:
  virtual ~Listener() = default;

  /// Waits for and returns the next incoming connection. Honours
  /// set_accept_timeout (kTimeout); a closed listener throws kClosed.
  [[nodiscard]] virtual std::unique_ptr<Endpoint> accept() = 0;

  /// The address peers connect() to — for tcp://host:0, the resolved port.
  [[nodiscard]] virtual std::string address() const = 0;

  /// Bounds every subsequent accept() by `timeout_ms` (< 0 = none).
  virtual void set_accept_timeout(int timeout_ms) = 0;

  virtual void close() = 0;
};

/// Opens a listener at `address` ("tcp://host:port" or "shm://path-prefix").
/// Throws TransportError::Kind::kIo on an unparseable address or bind
/// failure.
[[nodiscard]] std::unique_ptr<Listener> listen(const std::string& address);

/// Connects to a listener. `timeout_ms` bounds the whole attempt and, for
/// listeners that are still coming up (role-mode process groups start in
/// arbitrary order), connect retries until the deadline instead of failing
/// on the first ECONNREFUSED / missing shm control file.
[[nodiscard]] std::unique_ptr<Endpoint> connect(const std::string& address,
                                                int timeout_ms = 10000);

// ---- Frame layer -----------------------------------------------------------

struct Frame {
  std::uint32_t type = 0;
  std::string payload;
};

/// "ISFR" little-endian.
inline constexpr std::uint32_t kFrameMagic = 0x52465349u;
/// Upper bound on one frame's payload; a header announcing more is a
/// protocol violation (kProtocol), not an allocation attempt.
inline constexpr std::size_t kMaxFramePayload = std::size_t{64} << 20;

void write_frame(Endpoint& endpoint, std::uint32_t type,
                 std::string_view payload);
[[nodiscard]] Frame read_frame(Endpoint& endpoint);

/// read_frame + type check: a frame of any other type is kProtocol, naming
/// both. The PS wire protocol is strictly request/response, so an
/// unexpected type always means a desynchronised peer.
[[nodiscard]] Frame expect_frame(Endpoint& endpoint, std::uint32_t type,
                                 const char* what);

}  // namespace isasgd::net
