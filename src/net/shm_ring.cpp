// Shared-memory backend: file-backed SPSC byte rings for same-host worker
// processes.
//
// Topology: the listener owns a filesystem *prefix*. It creates one control
// file `<prefix>.ctl` holding a single atomic connection counter. A client
// connects by fetch_add-ing the counter to claim a connection id, creating
// `<prefix>.<id>` — a mapped file holding this connection's header and two
// byte rings (client→server and server→client) — initialising it, and
// store-releasing a READY flag. The listener accepts connections strictly
// in id order (deterministic, like TCP's accept queue but reproducible),
// spin-waiting with a microsleep for the next id's file to appear and turn
// READY.
//
// The rings are classic single-producer/single-consumer byte queues:
// 64-byte-separated head/tail counters (monotonic, masked on access), the
// producer store-releases tail after copying bytes in, the consumer
// store-releases head after copying bytes out. No locks, no syscalls on the
// data path — the same-host cost of a message is two memcpys and two
// atomics, which is the entire point of having this backend next to TCP.
//
// Close protocol: each side sets its CLOSED flag; a reader that drains the
// ring and sees the peer CLOSED gets a typed kClosed, exactly like reading
// EOF from a closed socket. Torn frames (peer died mid-message) therefore
// surface identically on both backends.
//
// A peer that is SIGKILLed (or _exits) never sets its CLOSED flag, and a
// ring has no kernel to deliver EOF — without help, the survivor would spin
// on an untimed recv forever. Each side therefore registers its pid in the
// connection header, and the stall loops' sleep phase probes the peer
// process (kill(pid, 0) + /proc state — a dead worker is a *zombie* until
// its parent reaps it at the next fence, and zombies pass the kill probe)
// and surfaces kClosed when it is gone.
#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "net/transport.hpp"

namespace isasgd::net::detail {

namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kCtlMagic = 0x4c43'4953u;   // "ISCL"
constexpr std::uint32_t kConnMagic = 0x4e43'4953u;  // "ISCN"
constexpr std::uint32_t kStateReady = 1;
/// Per-direction ring capacity. Power of two; large enough that one PS
/// get/push round trip (a few KB) never wraps mid-frame in practice, small
/// enough that a 1+8-process group costs a few MB of page cache.
constexpr std::uint64_t kRingCapacity = std::uint64_t{1} << 20;

struct CtlHeader {
  std::uint32_t magic = kCtlMagic;
  std::atomic<std::uint32_t> next_id{0};
};

struct alignas(64) RingSide {
  std::atomic<std::uint64_t> position{0};  // head or tail, monotonic
  char pad[56];
};

struct Ring {
  RingSide tail;  // producer cursor
  RingSide head;  // consumer cursor
};

struct ConnHeader {
  std::uint32_t magic = kConnMagic;
  std::atomic<std::uint32_t> state{0};         // → kStateReady by the client
  std::uint64_t capacity = kRingCapacity;      // per ring
  std::atomic<std::uint32_t> closed_server{0};
  std::atomic<std::uint32_t> closed_client{0};
  std::atomic<std::uint32_t> pid_server{0};  // liveness probe targets;
  std::atomic<std::uint32_t> pid_client{0};  // 0 = not yet registered
  Ring ring[2];  // [0] client→server, [1] server→client
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings require address-free lock-free 64-bit atomics");
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "shm rings require address-free lock-free 32-bit atomics");

constexpr std::size_t kConnFileSize =
    sizeof(ConnHeader) + 2 * kRingCapacity;

[[noreturn]] void throw_io(const std::string& what) {
  throw TransportError(TransportError::Kind::kIo,
                       what + ": " + std::strerror(errno));
}

/// Exponential-ish backoff for the spin loops: stay on the CPU for a few
/// iterations (one frame round trip is microseconds), then yield, then
/// sleep — a blocked endpoint must not burn a core for seconds.
void backoff(unsigned& spins) {
  ++spins;
  if (spins < 64) {
    return;
  }
  if (spins < 256) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(100));
}

/// Whether `pid` can no longer make progress: gone entirely (ESRCH), or a
/// zombie — exited but unreaped, which kill(pid, 0) still reports as alive.
/// The PS controller reaps workers at epoch fences, so a crashed worker
/// spends its whole detection window as a zombie; /proc is authoritative.
bool process_gone(pid_t pid) {
  if (::kill(pid, 0) < 0) return errno == ESRCH;
  char path[48];
  std::snprintf(path, sizeof(path), "/proc/%d/stat", static_cast<int>(pid));
  const int fd = ::open(path, O_RDONLY);
  if (fd < 0) return errno == ENOENT;
  char buf[256];
  ssize_t n = -1;
  do {
    n = ::read(fd, buf, sizeof(buf) - 1);
  } while (n < 0 && errno == EINTR);
  ::close(fd);
  if (n <= 0) return false;
  buf[n] = '\0';
  // Format: "pid (comm) S ..." — comm may contain anything but a final ')',
  // so scan from the last ')'. State Z (zombie) or X/x (dead) means gone.
  const char* paren = std::strrchr(buf, ')');
  if (paren == nullptr || paren[1] == '\0' || paren[2] == '\0') return false;
  const char state = paren[2];
  return state == 'Z' || state == 'X' || state == 'x';
}

/// mmaps `path` (creating + sizing it when `create`). Returns the mapping.
void* map_file(const std::string& path, std::size_t size, bool create) {
  const int flags = create ? O_RDWR | O_CREAT | O_EXCL : O_RDWR;
  const int fd = ::open(path.c_str(), flags, 0600);
  if (fd < 0) throw_io("shm open " + path);
  if (create && ::ftruncate(fd, static_cast<off_t>(size)) < 0) {
    const int saved = errno;
    ::close(fd);
    ::unlink(path.c_str());
    errno = saved;
    throw_io("shm ftruncate " + path);
  }
  void* mem =
      ::mmap(nullptr, size, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  const int saved = errno;
  ::close(fd);
  if (mem == MAP_FAILED) {
    errno = saved;
    throw_io("shm mmap " + path);
  }
  return mem;
}

class ShmEndpoint final : public Endpoint {
 public:
  /// `server` side sends on ring[1]/recvs on ring[0]; client the reverse.
  ShmEndpoint(void* mem, std::string path, bool server, bool owns_unlink)
      : mem_(mem),
        path_(std::move(path)),
        server_(server),
        owns_unlink_(owns_unlink) {}

  ~ShmEndpoint() override {
    close();
    if (mem_ != nullptr) {
      ::munmap(mem_, kConnFileSize);
      mem_ = nullptr;
    }
    if (owns_unlink_) ::unlink(path_.c_str());
  }

  void send_bytes(const void* data, std::size_t size) override {
    ConnHeader& h = header();
    Ring& ring = h.ring[server_ ? 1 : 0];
    char* base = ring_base(server_ ? 1 : 0);
    const char* p = static_cast<const char*>(data);
    const auto deadline = start_deadline();
    std::size_t sent = 0;
    unsigned spins = 0;
    while (sent < size) {
      const std::uint64_t tail =
          ring.tail.position.load(std::memory_order_relaxed);
      const std::uint64_t head =
          ring.head.position.load(std::memory_order_acquire);
      const std::uint64_t free = h.capacity - (tail - head);
      if (free == 0) {
        if (peer_closed(h)) {
          throw TransportError(TransportError::Kind::kClosed,
                               "shm peer closed while sending");
        }
        if (peer_process_gone(h, spins)) {
          throw TransportError(TransportError::Kind::kClosed,
                               "shm peer process died while sending");
        }
        check_deadline(deadline, "shm send");
        backoff(spins);
        continue;
      }
      spins = 0;
      const std::uint64_t offset = tail & (h.capacity - 1);
      const std::uint64_t contiguous =
          std::min<std::uint64_t>(h.capacity - offset, free);
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(contiguous, size - sent));
      std::memcpy(base + offset, p + sent, chunk);
      ring.tail.position.store(tail + chunk, std::memory_order_release);
      sent += chunk;
    }
  }

  void recv_bytes(void* data, std::size_t size) override {
    ConnHeader& h = header();
    Ring& ring = h.ring[server_ ? 0 : 1];
    const char* base = ring_base(server_ ? 0 : 1);
    char* p = static_cast<char*>(data);
    const auto deadline = start_deadline();
    std::size_t received = 0;
    unsigned spins = 0;
    while (received < size) {
      const std::uint64_t head =
          ring.head.position.load(std::memory_order_relaxed);
      const std::uint64_t tail =
          ring.tail.position.load(std::memory_order_acquire);
      const std::uint64_t available = tail - head;
      if (available == 0) {
        if (peer_closed(h)) {
          throw TransportError(
              TransportError::Kind::kClosed,
              received == 0
                  ? "shm peer closed"
                  : "shm peer closed mid-message (torn frame: got " +
                        std::to_string(received) + " of " +
                        std::to_string(size) + " bytes)");
        }
        if (peer_process_gone(h, spins)) {
          throw TransportError(
              TransportError::Kind::kClosed,
              received == 0
                  ? "shm peer process died"
                  : "shm peer process died mid-message (torn frame: got " +
                        std::to_string(received) + " of " +
                        std::to_string(size) + " bytes)");
        }
        check_deadline(deadline, "shm recv");
        backoff(spins);
        continue;
      }
      spins = 0;
      const std::uint64_t offset = head & (h.capacity - 1);
      const std::uint64_t contiguous =
          std::min<std::uint64_t>(h.capacity - offset, available);
      const std::size_t chunk = static_cast<std::size_t>(
          std::min<std::uint64_t>(contiguous, size - received));
      std::memcpy(p + received, base + offset, chunk);
      ring.head.position.store(head + chunk, std::memory_order_release);
      received += chunk;
    }
  }

  void set_io_timeout(int timeout_ms) override { timeout_ms_ = timeout_ms; }

  void close() override {
    if (mem_ == nullptr || closed_) return;
    closed_ = true;
    auto& flag =
        server_ ? header().closed_server : header().closed_client;
    flag.store(1, std::memory_order_release);
  }

 private:
  [[nodiscard]] ConnHeader& header() const {
    return *static_cast<ConnHeader*>(mem_);
  }
  [[nodiscard]] char* ring_base(int which) const {
    return static_cast<char*>(mem_) + sizeof(ConnHeader) +
           static_cast<std::size_t>(which) * header().capacity;
  }
  [[nodiscard]] bool peer_closed(const ConnHeader& h) const {
    const auto& flag = server_ ? h.closed_client : h.closed_server;
    return flag.load(std::memory_order_acquire) != 0;
  }
  /// Liveness probe for the stall loops: only once the backoff has reached
  /// its sleep phase, and only every 16th sleep (~1.6 ms cadence) — the
  /// kill/readlink syscalls must never touch the hot path.
  [[nodiscard]] bool peer_process_gone(const ConnHeader& h,
                                       unsigned spins) const {
    if (spins < 512 || (spins & 15u) != 0) return false;
    const auto& peer =
        server_ ? h.pid_client : h.pid_server;
    const auto pid =
        static_cast<pid_t>(peer.load(std::memory_order_acquire));
    return pid > 0 && process_gone(pid);
  }
  [[nodiscard]] Clock::time_point start_deadline() const {
    return timeout_ms_ >= 0
               ? Clock::now() + std::chrono::milliseconds(timeout_ms_)
               : Clock::time_point{};
  }
  void check_deadline(Clock::time_point deadline, const char* what) const {
    if (timeout_ms_ >= 0 && Clock::now() >= deadline) {
      throw TransportError(TransportError::Kind::kTimeout,
                           std::string(what) + " timed out");
    }
  }

  void* mem_ = nullptr;
  std::string path_;
  bool server_;
  bool owns_unlink_;
  bool closed_ = false;
  int timeout_ms_ = -1;
};

class ShmListener final : public Listener {
 public:
  explicit ShmListener(std::string prefix) : prefix_(std::move(prefix)) {
    if (prefix_.empty()) {
      throw TransportError(TransportError::Kind::kIo,
                           "shm:// address needs a filesystem path prefix");
    }
    ctl_path_ = prefix_ + ".ctl";
    ::unlink(ctl_path_.c_str());  // replace a stale listener's control file
    ctl_ = map_file(ctl_path_, sizeof(CtlHeader), /*create=*/true);
    new (ctl_) CtlHeader();
  }

  ~ShmListener() override { close(); }

  std::unique_ptr<Endpoint> accept() override {
    if (ctl_ == nullptr) {
      throw TransportError(TransportError::Kind::kClosed,
                           "shm listener is closed");
    }
    const std::string path = prefix_ + "." + std::to_string(next_accept_);
    const auto deadline =
        timeout_ms_ >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms_)
                         : Clock::time_point{};
    unsigned spins = 0;
    while (true) {
      struct stat st {};
      if (::stat(path.c_str(), &st) == 0 &&
          st.st_size == static_cast<off_t>(kConnFileSize)) {
        void* mem = map_file(path, kConnFileSize, /*create=*/false);
        auto* h = static_cast<ConnHeader*>(mem);
        if (h->magic == kConnMagic &&
            h->state.load(std::memory_order_acquire) == kStateReady) {
          ++next_accept_;
          h->pid_server.store(static_cast<std::uint32_t>(::getpid()),
                              std::memory_order_release);
          // The server side owns unlinking: the client may be a short-lived
          // worker process that exits first.
          return std::make_unique<ShmEndpoint>(mem, path, /*server=*/true,
                                               /*owns_unlink=*/true);
        }
        ::munmap(mem, kConnFileSize);
      }
      if (timeout_ms_ >= 0 && Clock::now() >= deadline) {
        throw TransportError(TransportError::Kind::kTimeout,
                             "shm accept timed out");
      }
      backoff(spins);
    }
  }

  std::string address() const override { return "shm://" + prefix_; }

  void set_accept_timeout(int timeout_ms) override { timeout_ms_ = timeout_ms; }

  void close() override {
    if (ctl_ != nullptr) {
      ::munmap(ctl_, sizeof(CtlHeader));
      ctl_ = nullptr;
      ::unlink(ctl_path_.c_str());
    }
  }

 private:
  std::string prefix_;
  std::string ctl_path_;
  void* ctl_ = nullptr;
  std::uint32_t next_accept_ = 0;
  int timeout_ms_ = -1;
};

}  // namespace

std::unique_ptr<Listener> shm_listen(const std::string& prefix) {
  return std::make_unique<ShmListener>(prefix);
}

std::unique_ptr<Endpoint> shm_connect(const std::string& prefix,
                                      int timeout_ms) {
  const std::string ctl_path = prefix + ".ctl";
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  // The listener may not be up yet (role-mode groups start in any order):
  // wait for its control file.
  unsigned spins = 0;
  while (true) {
    struct stat st {};
    if (::stat(ctl_path.c_str(), &st) == 0 &&
        st.st_size == static_cast<off_t>(sizeof(CtlHeader))) {
      break;
    }
    if (timeout_ms >= 0 && Clock::now() >= deadline) {
      throw TransportError(TransportError::Kind::kTimeout,
                           "shm connect: no listener at " + prefix);
    }
    backoff(spins);
  }
  void* ctl = map_file(ctl_path, sizeof(CtlHeader), /*create=*/false);
  auto* ctl_header = static_cast<CtlHeader*>(ctl);
  if (ctl_header->magic != kCtlMagic) {
    ::munmap(ctl, sizeof(CtlHeader));
    throw TransportError(TransportError::Kind::kProtocol,
                         "shm control file at " + ctl_path +
                             " has a bad magic");
  }
  const std::uint32_t id =
      ctl_header->next_id.fetch_add(1, std::memory_order_acq_rel);
  ::munmap(ctl, sizeof(CtlHeader));

  const std::string path = prefix + "." + std::to_string(id);
  void* mem = map_file(path, kConnFileSize, /*create=*/true);
  auto* h = new (mem) ConnHeader();
  h->pid_client.store(static_cast<std::uint32_t>(::getpid()),
                      std::memory_order_relaxed);
  h->state.store(kStateReady, std::memory_order_release);
  return std::make_unique<ShmEndpoint>(mem, path, /*server=*/false,
                                       /*owns_unlink=*/false);
}

}  // namespace isasgd::net::detail
