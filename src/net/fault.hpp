// Deterministic fault injection for the net:: transports.
//
// A FaultyEndpoint decorates any Endpoint (shm or tcp alike) and injects
// failures on the SEND side: frame drops, bounded delays, torn writes (half
// the bytes, then a close) and connection resets. The frame layer writes one
// contiguous buffer per frame (see write_frame), so "one send_bytes call"
// and "one wire frame" coincide and the injection site is exactly the frame
// boundary the recovery protocol must survive.
//
// What makes this layer usable in conformance tests is that nothing about
// it is random at run time: a FaultPlan maps (stream id, frame index) to a
// FaultDecision as a *pure function* of its seed. Same seed, same schedule —
// a failing fault run is replayable by rerunning it, and two endpoints
// given the same stream id misbehave identically in both runs. Stream ids
// encode (side, rank, incarnation) so a connection that is re-established
// after a reset gets a FRESH fault schedule — otherwise the retransmit of a
// dropped frame would hit the same fault forever and no retry policy could
// terminate.
//
// Receiving is never faulted directly: every frame crosses a faulty sender
// on one side or the other, so send-side injection already covers both
// directions while keeping the injected-event log unambiguous (exactly one
// decorator decides each frame's fate).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"

namespace isasgd::net {

/// Injection rates and bounds. All rates are per-frame probabilities; their
/// sum must be ≤ 1 (the remainder is the clean-delivery probability).
struct FaultSpec {
  std::uint64_t seed = 0;
  /// Frame silently not sent (the peer times out waiting).
  double drop_rate = 0.0;
  /// Frame delivered after a bounded extra delay.
  double delay_rate = 0.0;
  /// Frame cut in half, then the connection is closed (torn frame at the
  /// reader, kClosed at the writer).
  double torn_rate = 0.0;
  /// Connection closed instead of sending (kClosed at the writer).
  double reset_rate = 0.0;
  /// Upper bound on an injected delay, inclusive; delays are 1..max ms.
  std::uint32_t max_delay_ms = 5;
  /// Frames below this index on every stream pass clean — keeps connection
  /// setup out of the blast radius when a test wants mid-run faults only.
  std::uint64_t first_faulty_frame = 0;
  /// Cap on injected faults per stream (endpoint-enforced); ~0 = unlimited.
  std::uint64_t max_faults_per_stream = ~std::uint64_t{0};

  [[nodiscard]] bool enabled() const noexcept {
    return drop_rate > 0 || delay_rate > 0 || torn_rate > 0 || reset_rate > 0;
  }

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

enum class FaultAction : std::uint8_t { kNone, kDrop, kDelay, kTorn, kReset };

[[nodiscard]] const char* fault_action_name(FaultAction action) noexcept;

struct FaultDecision {
  FaultAction action = FaultAction::kNone;
  std::uint32_t delay_ms = 0;  ///< set iff action == kDelay
};

/// One injected fault, as recorded in a FaultLog.
struct FaultEvent {
  std::uint64_t stream = 0;
  std::uint64_t frame = 0;
  FaultAction action = FaultAction::kNone;
  std::uint32_t delay_ms = 0;

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Thread-safe append-only log of injected faults, shared by the decorators
/// of one test run. The determinism contract is stated on this log: two
/// runs with the same FaultSpec produce the same event sequence per stream.
class FaultLog {
 public:
  void record(const FaultEvent& event) {
    const std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(event);
  }

  [[nodiscard]] std::vector<FaultEvent> events() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

 private:
  mutable std::mutex mu_;
  std::vector<FaultEvent> events_;
};

/// Pure (seed, stream, frame) → decision map. No state: decide() may be
/// called in any order, from any process, and always agrees with itself —
/// the property that lets forked worker processes and the test harness
/// reason about the same schedule without sharing memory.
class FaultPlan {
 public:
  explicit FaultPlan(FaultSpec spec);

  [[nodiscard]] const FaultSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] FaultDecision decide(std::uint64_t stream,
                                     std::uint64_t frame) const;

  /// Canonical stream id: side (0 = client/worker, 1 = server) ⊕ rank ⊕
  /// incarnation (how many connections this rank has made — a reconnect
  /// after a reset is a new stream with a new schedule).
  [[nodiscard]] static std::uint64_t stream_id(
      std::uint32_t side, std::uint32_t rank,
      std::uint32_t incarnation) noexcept {
    return (std::uint64_t{side} << 56) |
           (std::uint64_t{incarnation & 0xffffffu} << 32) |
           std::uint64_t{rank};
  }

 private:
  FaultSpec spec_;
};

/// Send-side fault decorator. recv/close/set_io_timeout pass through; each
/// send_bytes call counts as one frame and consults the plan. After a torn
/// write or reset the endpoint is dead: both directions throw kClosed.
class FaultyEndpoint final : public Endpoint {
 public:
  FaultyEndpoint(std::unique_ptr<Endpoint> inner,
                 std::shared_ptr<const FaultPlan> plan, std::uint64_t stream,
                 std::shared_ptr<FaultLog> log = nullptr);

  void send_bytes(const void* data, std::size_t size) override;
  void recv_bytes(void* data, std::size_t size) override;
  void set_io_timeout(int timeout_ms) override;
  void close() override;

 private:
  std::unique_ptr<Endpoint> inner_;
  std::shared_ptr<const FaultPlan> plan_;
  std::shared_ptr<FaultLog> log_;
  std::uint64_t stream_;
  std::uint64_t frame_ = 0;
  std::uint64_t injected_ = 0;
  bool dead_ = false;
};

/// Wraps accepted endpoints in FaultyEndpoints with accept-ordered stream
/// ids (stream_base + 0, 1, 2, …). For tests that drive raw transports; the
/// PS runtime wraps endpoints itself with rank-derived stream ids.
class FaultyListener final : public Listener {
 public:
  FaultyListener(std::unique_ptr<Listener> inner,
                 std::shared_ptr<const FaultPlan> plan,
                 std::shared_ptr<FaultLog> log = nullptr,
                 std::uint64_t stream_base = 0);

  [[nodiscard]] std::unique_ptr<Endpoint> accept() override;
  [[nodiscard]] std::string address() const override;
  void set_accept_timeout(int timeout_ms) override;
  void close() override;

 private:
  std::unique_ptr<Listener> inner_;
  std::shared_ptr<const FaultPlan> plan_;
  std::shared_ptr<FaultLog> log_;
  std::uint64_t next_stream_;
};

/// Decorates `inner` when the plan is non-null and enabled; otherwise
/// returns `inner` unchanged (zero overhead on the fault-free path).
[[nodiscard]] std::unique_ptr<Endpoint> wrap_faulty(
    std::unique_ptr<Endpoint> inner, std::shared_ptr<const FaultPlan> plan,
    std::uint64_t stream, std::shared_ptr<FaultLog> log = nullptr);

}  // namespace isasgd::net
