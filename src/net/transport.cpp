#include "net/transport.hpp"

#include <cstring>

namespace isasgd::net {

// Backend factories (tcp.cpp / shm_ring.cpp).
namespace detail {
std::unique_ptr<Listener> tcp_listen(const std::string& host_port);
std::unique_ptr<Endpoint> tcp_connect(const std::string& host_port,
                                      int timeout_ms);
std::unique_ptr<Listener> shm_listen(const std::string& prefix);
std::unique_ptr<Endpoint> shm_connect(const std::string& prefix,
                                      int timeout_ms);
}  // namespace detail

namespace {

constexpr std::string_view kTcpScheme = "tcp://";
constexpr std::string_view kShmScheme = "shm://";

[[noreturn]] void bad_address(const std::string& address) {
  throw TransportError(TransportError::Kind::kIo,
                       "unsupported transport address '" + address +
                           "' (expected tcp://host:port or shm://path)");
}

}  // namespace

std::string_view transport_error_kind_name(TransportError::Kind kind) noexcept {
  switch (kind) {
    case TransportError::Kind::kClosed:
      return "closed";
    case TransportError::Kind::kTimeout:
      return "timeout";
    case TransportError::Kind::kProtocol:
      return "protocol";
    case TransportError::Kind::kIo:
      return "io";
  }
  return "unknown";
}

std::unique_ptr<Listener> listen(const std::string& address) {
  if (address.rfind(kTcpScheme, 0) == 0) {
    return detail::tcp_listen(address.substr(kTcpScheme.size()));
  }
  if (address.rfind(kShmScheme, 0) == 0) {
    return detail::shm_listen(address.substr(kShmScheme.size()));
  }
  bad_address(address);
}

std::unique_ptr<Endpoint> connect(const std::string& address, int timeout_ms) {
  if (address.rfind(kTcpScheme, 0) == 0) {
    return detail::tcp_connect(address.substr(kTcpScheme.size()), timeout_ms);
  }
  if (address.rfind(kShmScheme, 0) == 0) {
    return detail::shm_connect(address.substr(kShmScheme.size()), timeout_ms);
  }
  bad_address(address);
}

void write_frame(Endpoint& endpoint, std::uint32_t type,
                 std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    throw TransportError(TransportError::Kind::kProtocol,
                         "frame payload of " + std::to_string(payload.size()) +
                             " bytes exceeds the " +
                             std::to_string(kMaxFramePayload) + "-byte cap");
  }
  // One contiguous buffer per frame: the SPSC ring and TCP both prefer a
  // single send over three tiny ones, and the header must never interleave
  // with another thread's payload anyway (single-owner send contract).
  std::string wire;
  wire.resize(16 + payload.size());
  const std::uint32_t magic = kFrameMagic;
  const std::uint64_t length = payload.size();
  std::memcpy(wire.data(), &magic, 4);
  std::memcpy(wire.data() + 4, &type, 4);
  std::memcpy(wire.data() + 8, &length, 8);
  std::memcpy(wire.data() + 16, payload.data(), payload.size());
  endpoint.send_bytes(wire.data(), wire.size());
}

Frame read_frame(Endpoint& endpoint) {
  char header[16];
  endpoint.recv_bytes(header, sizeof(header));
  std::uint32_t magic = 0;
  std::uint64_t length = 0;
  Frame frame;
  std::memcpy(&magic, header, 4);
  std::memcpy(&frame.type, header + 4, 4);
  std::memcpy(&length, header + 8, 8);
  if (magic != kFrameMagic) {
    throw TransportError(TransportError::Kind::kProtocol,
                         "bad frame magic (stream desynchronised or peer is "
                         "not a transport frame writer)");
  }
  if (length > kMaxFramePayload) {
    throw TransportError(TransportError::Kind::kProtocol,
                         "frame announces " + std::to_string(length) +
                             " payload bytes, above the " +
                             std::to_string(kMaxFramePayload) + "-byte cap");
  }
  frame.payload.resize(static_cast<std::size_t>(length));
  if (length > 0) endpoint.recv_bytes(frame.payload.data(), frame.payload.size());
  return frame;
}

Frame expect_frame(Endpoint& endpoint, std::uint32_t type, const char* what) {
  Frame frame = read_frame(endpoint);
  if (frame.type != type) {
    throw TransportError(TransportError::Kind::kProtocol,
                         std::string(what) + ": expected frame type " +
                             std::to_string(type) + ", got " +
                             std::to_string(frame.type));
  }
  return frame;
}

}  // namespace isasgd::net
