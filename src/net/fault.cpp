#include "net/fault.hpp"

#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "util/rng.hpp"

namespace isasgd::net {

void FaultSpec::validate() const {
  auto reject = [](const char* field, const char* requirement) {
    throw std::invalid_argument(std::string("FaultSpec::") + field + ": " +
                                requirement);
  };
  auto rate_ok = [](double r) { return r >= 0.0 && r <= 1.0; };
  if (!rate_ok(drop_rate)) reject("drop_rate", "must be in [0, 1]");
  if (!rate_ok(delay_rate)) reject("delay_rate", "must be in [0, 1]");
  if (!rate_ok(torn_rate)) reject("torn_rate", "must be in [0, 1]");
  if (!rate_ok(reset_rate)) reject("reset_rate", "must be in [0, 1]");
  if (!(drop_rate + delay_rate + torn_rate + reset_rate <= 1.0)) {
    reject("drop_rate", "rates must sum to at most 1");
  }
  if (delay_rate > 0 && max_delay_ms == 0) {
    reject("max_delay_ms", "must be positive when delay_rate > 0");
  }
}

const char* fault_action_name(FaultAction action) noexcept {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDelay:
      return "delay";
    case FaultAction::kTorn:
      return "torn";
    case FaultAction::kReset:
      return "reset";
  }
  return "?";
}

FaultPlan::FaultPlan(FaultSpec spec) : spec_(spec) { spec_.validate(); }

FaultDecision FaultPlan::decide(std::uint64_t stream,
                                std::uint64_t frame) const {
  FaultDecision d;
  if (!spec_.enabled() || frame < spec_.first_faulty_frame) return d;
  // Key-derived SplitMix64 stream: one warm-up step decorrelates keys that
  // differ in a single low bit (adjacent frames of one stream).
  util::SplitMix64 g(spec_.seed ^ (stream * 0x9e3779b97f4a7c15ULL) ^
                     (frame * 0xbf58476d1ce4e5b9ULL));
  (void)g();
  const double u = util::uniform_double(g);
  double acc = spec_.drop_rate;
  if (u < acc) {
    d.action = FaultAction::kDrop;
    return d;
  }
  acc += spec_.delay_rate;
  if (u < acc) {
    d.action = FaultAction::kDelay;
    d.delay_ms = 1 + static_cast<std::uint32_t>(g() % spec_.max_delay_ms);
    return d;
  }
  acc += spec_.torn_rate;
  if (u < acc) {
    d.action = FaultAction::kTorn;
    return d;
  }
  acc += spec_.reset_rate;
  if (u < acc) d.action = FaultAction::kReset;
  return d;
}

FaultyEndpoint::FaultyEndpoint(std::unique_ptr<Endpoint> inner,
                               std::shared_ptr<const FaultPlan> plan,
                               std::uint64_t stream,
                               std::shared_ptr<FaultLog> log)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      log_(std::move(log)),
      stream_(stream) {}

void FaultyEndpoint::send_bytes(const void* data, std::size_t size) {
  if (dead_) {
    throw TransportError(TransportError::Kind::kClosed,
                         "fault injection: connection was reset");
  }
  const std::uint64_t frame = frame_++;
  FaultDecision d =
      plan_ ? plan_->decide(stream_, frame) : FaultDecision{};
  if (d.action != FaultAction::kNone &&
      injected_ >= plan_->spec().max_faults_per_stream) {
    d = FaultDecision{};
  }
  if (d.action != FaultAction::kNone) {
    ++injected_;
    if (log_) log_->record({stream_, frame, d.action, d.delay_ms});
  }
  switch (d.action) {
    case FaultAction::kNone:
      inner_->send_bytes(data, size);
      return;
    case FaultAction::kDrop:
      return;  // the peer's read deadline turns this into a retransmit
    case FaultAction::kDelay:
      std::this_thread::sleep_for(std::chrono::milliseconds(d.delay_ms));
      inner_->send_bytes(data, size);
      return;
    case FaultAction::kTorn: {
      // Half the frame, then EOF: the reader sees a torn frame (kClosed
      // mid-message), the canonical "peer died mid-write" shape.
      if (size >= 2) inner_->send_bytes(data, size / 2);
      dead_ = true;
      inner_->close();
      throw TransportError(TransportError::Kind::kClosed,
                           "fault injection: torn write on stream " +
                               std::to_string(stream_) + " frame " +
                               std::to_string(frame));
    }
    case FaultAction::kReset: {
      dead_ = true;
      inner_->close();
      throw TransportError(TransportError::Kind::kClosed,
                           "fault injection: connection reset on stream " +
                               std::to_string(stream_) + " frame " +
                               std::to_string(frame));
    }
  }
}

void FaultyEndpoint::recv_bytes(void* data, std::size_t size) {
  if (dead_) {
    throw TransportError(TransportError::Kind::kClosed,
                         "fault injection: connection was reset");
  }
  inner_->recv_bytes(data, size);
}

void FaultyEndpoint::set_io_timeout(int timeout_ms) {
  inner_->set_io_timeout(timeout_ms);
}

void FaultyEndpoint::close() { inner_->close(); }

FaultyListener::FaultyListener(std::unique_ptr<Listener> inner,
                               std::shared_ptr<const FaultPlan> plan,
                               std::shared_ptr<FaultLog> log,
                               std::uint64_t stream_base)
    : inner_(std::move(inner)),
      plan_(std::move(plan)),
      log_(std::move(log)),
      next_stream_(stream_base) {}

std::unique_ptr<Endpoint> FaultyListener::accept() {
  auto ep = inner_->accept();
  return std::make_unique<FaultyEndpoint>(std::move(ep), plan_,
                                          next_stream_++, log_);
}

std::string FaultyListener::address() const { return inner_->address(); }

void FaultyListener::set_accept_timeout(int timeout_ms) {
  inner_->set_accept_timeout(timeout_ms);
}

void FaultyListener::close() { inner_->close(); }

std::unique_ptr<Endpoint> wrap_faulty(std::unique_ptr<Endpoint> inner,
                                      std::shared_ptr<const FaultPlan> plan,
                                      std::uint64_t stream,
                                      std::shared_ptr<FaultLog> log) {
  if (!plan || !plan->spec().enabled()) return inner;
  return std::make_unique<FaultyEndpoint>(std::move(inner), std::move(plan),
                                          stream, std::move(log));
}

}  // namespace isasgd::net
