// TCP backend: the multi-host transport. Plain blocking sockets with
// poll-guarded deadlines, MSG_NOSIGNAL on every send (a worker dying
// mid-run must surface as a typed kClosed error on its peers, never as a
// process-fatal SIGPIPE), and EINTR retry on every syscall.
#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <string>
#include <thread>

#include "net/transport.hpp"

namespace isasgd::net::detail {

namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_io(const std::string& what) {
  throw TransportError(TransportError::Kind::kIo,
                       what + ": " + std::strerror(errno));
}

/// Remaining milliseconds until `deadline`, clamped at 0; -1 when unbounded.
int remaining_ms(bool bounded, Clock::time_point deadline) {
  if (!bounded) return -1;
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline -
                                                            Clock::now());
  return static_cast<int>(std::max<std::int64_t>(0, left.count()));
}

/// Polls until `fd` is ready for `events` or the deadline passes.
void wait_ready(int fd, short events, bool bounded, Clock::time_point deadline,
                const char* what) {
  while (true) {
    pollfd pfd{fd, events, 0};
    const int ready = ::poll(&pfd, 1, remaining_ms(bounded, deadline));
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_io("poll");
    }
    if (ready == 0) {
      throw TransportError(TransportError::Kind::kTimeout,
                           std::string(what) + " timed out");
    }
    return;
  }
}

/// host:port → sockaddr_in (numeric or resolvable host).
sockaddr_in parse_host_port(const std::string& host_port) {
  const std::size_t colon = host_port.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw TransportError(TransportError::Kind::kIo,
                         "tcp address '" + host_port +
                             "' is not of the form host:port");
  }
  const std::string host = host_port.substr(0, colon);
  const std::string port = host_port.substr(colon + 1);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  char* end = nullptr;
  const long p = std::strtol(port.c_str(), &end, 10);
  if (end == port.c_str() || *end != '\0' || p < 0 || p > 65535) {
    throw TransportError(TransportError::Kind::kIo,
                         "tcp port '" + port + "' is not a valid port");
  }
  addr.sin_port = htons(static_cast<std::uint16_t>(p));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    addrinfo hints{};
    hints.ai_family = AF_INET;
    hints.ai_socktype = SOCK_STREAM;
    addrinfo* result = nullptr;
    if (::getaddrinfo(host.c_str(), nullptr, &hints, &result) != 0 ||
        result == nullptr) {
      throw TransportError(TransportError::Kind::kIo,
                           "cannot resolve tcp host '" + host + "'");
    }
    addr.sin_addr =
        reinterpret_cast<const sockaddr_in*>(result->ai_addr)->sin_addr;
    ::freeaddrinfo(result);
  }
  return addr;
}

class TcpEndpoint final : public Endpoint {
 public:
  explicit TcpEndpoint(int fd) : fd_(fd) {
    // Request/response round-trips per sample: Nagle off or the fenced
    // schedule pays 40ms delayed-ACK stalls per step.
    int one = 1;
    (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  ~TcpEndpoint() override { close(); }

  void send_bytes(const void* data, std::size_t size) override {
    const auto deadline = start_deadline();
    const char* p = static_cast<const char*>(data);
    std::size_t sent = 0;
    while (sent < size) {
      wait_ready(fd_, POLLOUT, timeout_ms_ >= 0, deadline, "tcp send");
      const ssize_t n = ::send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        if (errno == EPIPE || errno == ECONNRESET) {
          throw TransportError(TransportError::Kind::kClosed,
                               "tcp peer closed while sending");
        }
        throw_io("tcp send");
      }
      sent += static_cast<std::size_t>(n);
    }
  }

  void recv_bytes(void* data, std::size_t size) override {
    const auto deadline = start_deadline();
    char* p = static_cast<char*>(data);
    std::size_t received = 0;
    while (received < size) {
      wait_ready(fd_, POLLIN, timeout_ms_ >= 0, deadline, "tcp recv");
      const ssize_t n = ::recv(fd_, p + received, size - received, 0);
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
          continue;
        }
        if (errno == ECONNRESET) {
          throw TransportError(TransportError::Kind::kClosed,
                               "tcp peer reset while receiving");
        }
        throw_io("tcp recv");
      }
      if (n == 0) {
        throw TransportError(
            TransportError::Kind::kClosed,
            received == 0
                ? "tcp peer closed"
                : "tcp peer closed mid-message (torn frame: got " +
                      std::to_string(received) + " of " +
                      std::to_string(size) + " bytes)");
      }
      received += static_cast<std::size_t>(n);
    }
  }

  void set_io_timeout(int timeout_ms) override { timeout_ms_ = timeout_ms; }

  void close() override {
    if (fd_ >= 0) {
      ::shutdown(fd_, SHUT_RDWR);
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  [[nodiscard]] Clock::time_point start_deadline() const {
    return timeout_ms_ >= 0
               ? Clock::now() + std::chrono::milliseconds(timeout_ms_)
               : Clock::time_point{};
  }

  int fd_ = -1;
  int timeout_ms_ = -1;
};

class TcpListener final : public Listener {
 public:
  explicit TcpListener(const std::string& host_port) {
    sockaddr_in addr = parse_host_port(host_port);
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) throw_io("tcp socket");
    int one = 1;
    (void)::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
        0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_io("tcp bind " + host_port);
    }
    if (::listen(fd_, 64) < 0) {
      const int saved = errno;
      ::close(fd_);
      fd_ = -1;
      errno = saved;
      throw_io("tcp listen " + host_port);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
      throw_io("tcp getsockname");
    }
    char host[INET_ADDRSTRLEN] = {};
    ::inet_ntop(AF_INET, &bound.sin_addr, host, sizeof(host));
    address_ = "tcp://" + std::string(host) + ":" +
               std::to_string(ntohs(bound.sin_port));
  }

  ~TcpListener() override { close(); }

  std::unique_ptr<Endpoint> accept() override {
    if (fd_ < 0) {
      throw TransportError(TransportError::Kind::kClosed,
                           "tcp listener is closed");
    }
    const auto deadline =
        timeout_ms_ >= 0 ? Clock::now() + std::chrono::milliseconds(timeout_ms_)
                         : Clock::time_point{};
    while (true) {
      wait_ready(fd_, POLLIN, timeout_ms_ >= 0, deadline, "tcp accept");
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) {
        if (errno == EINTR) continue;
        throw_io("tcp accept");
      }
      return std::make_unique<TcpEndpoint>(conn);
    }
  }

  std::string address() const override { return address_; }

  void set_accept_timeout(int timeout_ms) override { timeout_ms_ = timeout_ms; }

  void close() override {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  int timeout_ms_ = -1;
  std::string address_;
};

}  // namespace

std::unique_ptr<Listener> tcp_listen(const std::string& host_port) {
  return std::make_unique<TcpListener>(host_port);
}

std::unique_ptr<Endpoint> tcp_connect(const std::string& host_port,
                                      int timeout_ms) {
  const sockaddr_in addr = parse_host_port(host_port);
  const auto deadline = Clock::now() + std::chrono::milliseconds(
                                           timeout_ms < 0 ? 0 : timeout_ms);
  while (true) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw_io("tcp socket");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      return std::make_unique<TcpEndpoint>(fd);
    }
    const int saved = errno;
    ::close(fd);
    // A process group starts in arbitrary order: retry refused connections
    // until the deadline (timeout_ms < 0 = forever) so workers may come up
    // before their server.
    if (saved == ECONNREFUSED || saved == ETIMEDOUT) {
      if (timeout_ms < 0 || Clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        continue;
      }
      throw TransportError(TransportError::Kind::kTimeout,
                           "tcp connect to " + host_port +
                               " not accepted within the deadline");
    }
    errno = saved;
    throw_io("tcp connect " + host_port);
  }
}

}  // namespace isasgd::net::detail
