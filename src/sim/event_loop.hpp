// The shared discrete-event engine behind every simulated solver.
//
// Three subsystems used to carry private copies of the same machinery: the
// parameter-server simulation (distributed/param_server) kept a
// priority_queue of compute/apply events over simulated seconds, the
// delay-injection simulator (simulate/delayed_sgd) kept a priority_queue of
// pending updates over simulated *steps*, and the all-reduce simulation
// (distributed/allreduce) tracked per-node compute clocks joined by a
// synchronous barrier. This header is the one implementation all of them
// now share:
//
//   * EventQueue<Time, Payload> — a typed min-queue on (time, seq) where seq
//     is the insertion order, so events scheduled for the same instant fire
//     FIFO. Time is any totally-ordered type: simulated seconds (double) for
//     the cluster engines, global step counts (std::size_t) for the
//     delay-injection engine.
//   * EventLoop<Payload>        — the seconds-clock engine: schedule events
//     absolutely or relative to now(), then drain(); the handler fires with
//     now() advanced to each event's timestamp and may schedule more events.
//   * NodeClocks                — per-node simulated clocks for synchronous
//     rounds: nodes advance independently, barrier() jumps every clock to
//     the laggard's time (the straggler penalty of a synchronous step).
//
// Everything here is single-threaded and deterministic by construction: for
// a fixed schedule of pushes, the pop order is a pure function of the
// (time, seq) pairs — which is what makes every simulated solver
// bit-reproducible under a fixed seed.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace isasgd::sim {

/// Typed discrete-event queue: pops in ascending (time, insertion) order.
/// `Time` must be totally ordered by operator< (double seconds, size_t
/// steps, ...). Ties on time resolve FIFO via the insertion sequence number,
/// so the pop order is deterministic whatever the underlying heap does.
template <class Time, class Payload>
class EventQueue {
 public:
  struct Event {
    Time time{};
    std::uint64_t seq = 0;  ///< insertion order; FIFO tie-break
    Payload payload;
  };

  /// Schedules `payload` at `time`. Stable: two pushes at the same time pop
  /// in push order.
  void push(Time time, Payload payload) {
    heap_.push_back(Event{time, next_seq_++, std::move(payload)});
    std::push_heap(heap_.begin(), heap_.end(), Later{});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// The earliest event (undefined when empty()).
  [[nodiscard]] const Event& top() const { return heap_.front(); }

  /// Removes and returns the earliest event (undefined when empty()). The
  /// event is *moved* out — payloads carrying shared_ptrs (the shard-pinned
  /// cluster events) pay no refcount churn on the hot simulation loop,
  /// which is why this is a raw heap vector and not std::priority_queue
  /// (whose const top() forces a copy).
  Event pop() {
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    Event event = std::move(heap_.back());
    heap_.pop_back();
    return event;
  }

 private:
  /// Max-heap comparator whose "largest" element is the earliest (time,
  /// seq) — the same total order the std::priority_queue version used, so
  /// pop order (and therefore every simulated trace) is unchanged.
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time < b.time) return false;
      if (b.time < a.time) return true;
      return a.seq > b.seq;
    }
  };
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
};

/// Single-threaded discrete-event loop over simulated seconds. The clock
/// only moves when an event fires — now() jumps to each event's timestamp —
/// and it persists across drain() calls, so an epoch-fenced simulation can
/// drain once per epoch while the simulated clock keeps running.
template <class Payload>
class EventLoop {
 public:
  /// Schedules `payload` at absolute simulated time `at`.
  void schedule(double at, Payload payload) {
    queue_.push(at, std::move(payload));
  }

  /// Schedules `payload` at now() + delay.
  void schedule_after(double delay, Payload payload) {
    queue_.push(now_ + delay, std::move(payload));
  }

  /// Current simulated time: the timestamp of the latest fired event.
  [[nodiscard]] double now() const noexcept { return now_; }

  [[nodiscard]] bool pending() const noexcept { return !queue_.empty(); }
  [[nodiscard]] std::size_t pending_count() const noexcept {
    return queue_.size();
  }

  /// Fires events in (time, insertion) order until the queue is empty,
  /// advancing now() to each event's timestamp before invoking
  /// `handler(payload)`. Handlers may schedule further events (they join
  /// this drain). Returns now() — the time of the last fired event, or the
  /// previous now() when nothing was pending.
  template <class Handler>
  double drain(Handler&& handler) {
    while (!queue_.empty()) {
      auto event = queue_.pop();
      now_ = event.time;
      handler(std::move(event.payload));
    }
    return now_;
  }

 private:
  EventQueue<double, Payload> queue_;
  double now_ = 0;
};

/// Per-node simulated clocks for synchronous (barrier-joined) simulations.
/// Within a round every node advances its own clock by its own compute
/// costs; barrier() models the synchronisation point: all clocks jump to
/// the laggard's time, which is returned — so a single slow node prices the
/// whole round (the straggler penalty the all-reduce ablation measures).
class NodeClocks {
 public:
  explicit NodeClocks(std::size_t nodes) : time_(nodes, 0.0) {}

  [[nodiscard]] std::size_t nodes() const noexcept { return time_.size(); }
  [[nodiscard]] double at(std::size_t node) const { return time_[node]; }

  void advance(std::size_t node, double seconds) { time_[node] += seconds; }

  /// Rewinds every clock to zero (round-relative accounting).
  void reset() { std::fill(time_.begin(), time_.end(), 0.0); }

  /// The synchronisation barrier: every clock jumps to the maximum and that
  /// time is returned. With no nodes, returns 0.
  double barrier() {
    double latest = 0.0;
    for (double t : time_) latest = std::max(latest, t);
    std::fill(time_.begin(), time_.end(), latest);
    return latest;
  }

 private:
  std::vector<double> time_;
};

}  // namespace isasgd::sim
