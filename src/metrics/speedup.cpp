#include "metrics/speedup.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace isasgd::metrics {

namespace {

enum class Metric { kErrorRate, kRmse };

double best_of(const solvers::Trace& t, Metric m) {
  return m == Metric::kErrorRate ? t.best_error_rate() : t.best_rmse();
}

double first_of(const solvers::Trace& t, Metric m) {
  if (t.points.empty()) return std::numeric_limits<double>::infinity();
  // Skip the epoch-0 point (initial model) when it is degenerate.
  for (const auto& p : t.points) {
    const double v = m == Metric::kErrorRate ? p.error_rate : p.rmse;
    if (std::isfinite(v)) return v;
  }
  return std::numeric_limits<double>::infinity();
}

double time_to(const solvers::Trace& t, Metric m, double level,
               bool include_setup) {
  return m == Metric::kErrorRate ? t.time_to_error(level, include_setup)
                                 : t.time_to_rmse(level, include_setup);
}

SpeedupSummary compute(const solvers::Trace& baseline,
                       const solvers::Trace& accelerated, Metric metric,
                       std::size_t num_slices, bool include_setup) {
  SpeedupSummary summary;
  if (num_slices < 2) num_slices = 2;

  // Grid from the worse of the two starting values down to the worse of the
  // two best values — levels both traces actually cross.
  const double hi =
      std::min(first_of(baseline, metric), first_of(accelerated, metric));
  const double lo =
      std::max(best_of(baseline, metric), best_of(accelerated, metric));
  if (!std::isfinite(hi) || !std::isfinite(lo) || lo > hi) return summary;

  for (std::size_t s = 0; s < num_slices; ++s) {
    const double frac =
        static_cast<double>(s) / static_cast<double>(num_slices - 1);
    const double level = hi - frac * (hi - lo);
    const double tb = time_to(baseline, metric, level, include_setup);
    const double ta = time_to(accelerated, metric, level, include_setup);
    // Levels already met at t = 0 carry no information; skip them.
    if (!std::isfinite(tb) || !std::isfinite(ta) || ta <= 0 || tb <= 0) {
      continue;
    }
    summary.slices.push_back(SpeedupPoint{
        .error_rate = level,
        .baseline_seconds = tb,
        .accelerated_seconds = ta,
        .speedup = tb / ta,
    });
  }

  if (!summary.slices.empty()) {
    double total = 0;
    summary.max_speedup = -std::numeric_limits<double>::infinity();
    summary.min_speedup = std::numeric_limits<double>::infinity();
    for (const auto& p : summary.slices) {
      total += p.speedup;
      summary.max_speedup = std::max(summary.max_speedup, p.speedup);
      summary.min_speedup = std::min(summary.min_speedup, p.speedup);
    }
    summary.average_speedup = total / static_cast<double>(summary.slices.size());
  }

  // Optimum speedup at the strictest level both traces reach. When the
  // accelerated algorithm is the better one (the paper's usual case) this is
  // exactly the baseline's best — the red-circle/blue-dot pair of Figure 4.
  const double opt =
      std::max(best_of(baseline, metric), best_of(accelerated, metric));
  const double tb = time_to(baseline, metric, opt, include_setup);
  const double ta = time_to(accelerated, metric, opt, include_setup);
  summary.optimum_error = opt;
  if (std::isfinite(tb) && std::isfinite(ta) && ta > 0) {
    summary.optimum_speedup = tb / ta;
  } else {
    summary.optimum_speedup = std::numeric_limits<double>::quiet_NaN();
  }
  return summary;
}

}  // namespace

SpeedupSummary compute_speedup(const solvers::Trace& baseline,
                               const solvers::Trace& accelerated,
                               std::size_t num_slices, bool include_setup) {
  return compute(baseline, accelerated, Metric::kErrorRate, num_slices,
                 include_setup);
}

SpeedupSummary compute_rmse_speedup(const solvers::Trace& baseline,
                                    const solvers::Trace& accelerated,
                                    std::size_t num_slices,
                                    bool include_setup) {
  return compute(baseline, accelerated, Metric::kRmse, num_slices,
                 include_setup);
}

}  // namespace isasgd::metrics
