#include "metrics/evaluator.hpp"

#include <cmath>
#include <limits>
#include <thread>
#include <vector>

namespace isasgd::metrics {

Evaluator::Evaluator(const sparse::CsrMatrix& data,
                     const objectives::Objective& objective,
                     objectives::Regularization reg, std::size_t threads)
    : data_(data),
      objective_(objective),
      reg_(reg),
      threads_(std::max<std::size_t>(1, threads)) {}

solvers::EvalResult Evaluator::evaluate(std::span<const double> w) const {
  const std::size_t n = data_.rows();
  const std::size_t threads = std::min(threads_, std::max<std::size_t>(1, n));
  std::vector<double> loss_acc(threads, 0.0);
  std::vector<std::size_t> miss_acc(threads, 0);

  auto score_range = [&](std::size_t tid, std::size_t begin, std::size_t end) {
    double loss = 0;
    std::size_t miss = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto x = data_.row(i);
      const double y = data_.label(i);
      double margin = 0;
      const auto idx = x.indices();
      const auto val = x.values();
      for (std::size_t k = 0; k < idx.size(); ++k) {
        margin += w[idx[k]] * val[k];
      }
      loss += objective_.loss(margin, y);
      if (objective_.is_classification() && objective_.predict(margin) != y) {
        ++miss;
      }
    }
    loss_acc[tid] = loss;
    miss_acc[tid] = miss;
  };

  if (threads == 1) {
    score_range(0, 0, n);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t tid = 0; tid < threads; ++tid) {
      pool.emplace_back(score_range, tid, n * tid / threads,
                        n * (tid + 1) / threads);
    }
    for (auto& t : pool) t.join();
  }

  double loss = 0;
  std::size_t miss = 0;
  for (std::size_t tid = 0; tid < threads; ++tid) {
    loss += loss_acc[tid];
    miss += miss_acc[tid];
  }

  solvers::EvalResult result;
  result.objective =
      (n ? loss / static_cast<double>(n) : 0.0) + reg_.value(w);
  result.rmse = std::sqrt(std::max(result.objective, 0.0));
  result.error_rate =
      objective_.is_classification()
          ? (n ? static_cast<double>(miss) / static_cast<double>(n) : 0.0)
          : std::numeric_limits<double>::quiet_NaN();
  return result;
}

}  // namespace isasgd::metrics
