#include "metrics/evaluator.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "sparse/kernels.hpp"
#include "util/thread_pool.hpp"

namespace isasgd::metrics {

Evaluator::Evaluator(const sparse::CsrMatrix& data,
                     const objectives::Objective& objective,
                     objectives::Regularization reg, std::size_t threads,
                     util::ThreadPool* pool)
    : source_(nullptr),
      objective_(objective),
      reg_(reg),
      threads_(std::max<std::size_t>(1, threads)),
      pool_(pool),
      owned_source_(std::make_shared<const data::InMemorySource>(data)) {
  source_ = owned_source_.get();
  // Eager, not lazy: creating the private pool here (worker spawn itself
  // stays deferred inside ThreadPool) keeps evaluate() free of member
  // mutation, so concurrent evaluate() calls on one Evaluator stay safe —
  // they serialise on the pool's dispatch mutex.
  if (!pool_ && threads_ > 1) {
    owned_pool_ = std::make_shared<util::ThreadPool>();
  }
}

Evaluator::Evaluator(const data::DataSource& source,
                     const objectives::Objective& objective,
                     objectives::Regularization reg, std::size_t threads,
                     util::ThreadPool* pool)
    : source_(&source),
      objective_(objective),
      reg_(reg),
      threads_(std::max<std::size_t>(1, threads)),
      pool_(pool) {
  if (!pool_ && threads_ > 1) {
    owned_pool_ = std::make_shared<util::ThreadPool>();
  }
}

solvers::EvalResult Evaluator::evaluate(std::span<const double> w) const {
  const std::size_t n = source_->rows();
  const std::size_t shard_count = source_->shard_count();
  double loss = 0;
  std::size_t miss = 0;

  for (std::size_t s = 0; s < shard_count; ++s) {
    if (s + 1 < shard_count) source_->prefetch(s + 1);
    const data::ShardPtr shard = source_->shard(s);
    const sparse::CsrMatrix& rows = *shard->matrix;
    const std::size_t shard_n = rows.rows();
    const std::size_t threads =
        std::min(threads_, std::max<std::size_t>(1, shard_n));
    std::vector<double> loss_acc(threads, 0.0);
    std::vector<std::size_t> miss_acc(threads, 0);

    auto score_range = [&](std::size_t tid) {
      const std::size_t begin = shard_n * tid / threads;
      const std::size_t end = shard_n * (tid + 1) / threads;
      double local_loss = 0;
      std::size_t local_miss = 0;
      for (std::size_t i = begin; i < end; ++i) {
        const auto x = rows.row(i);
        const double y = rows.label(i);
        const double margin = sparse::sparse_dot(w, x);
        local_loss += objective_.loss(margin, y);
        if (objective_.is_classification() &&
            objective_.predict(margin) != y) {
          ++local_miss;
        }
      }
      loss_acc[tid] = local_loss;
      miss_acc[tid] = local_miss;
    };

    if (threads == 1) {
      score_range(0);
    } else {
      util::ThreadPool* pool = pool_ ? pool_ : owned_pool_.get();
      pool->run(threads, score_range);
    }

    for (std::size_t tid = 0; tid < threads; ++tid) {
      loss += loss_acc[tid];
      miss += miss_acc[tid];
    }
  }

  solvers::EvalResult result;
  result.objective =
      (n ? loss / static_cast<double>(n) : 0.0) + reg_.value(w);
  result.rmse = std::sqrt(std::max(result.objective, 0.0));
  result.error_rate =
      objective_.is_classification()
          ? (n ? static_cast<double>(miss) / static_cast<double>(n) : 0.0)
          : std::numeric_limits<double>::quiet_NaN();
  return result;
}

}  // namespace isasgd::metrics
