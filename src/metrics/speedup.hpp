// Figure-5 derivation: error-rate → absolute-speedup slices.
//
// For each error level e on a grid, the speedup of algorithm B over A is
// t_A(e) / t_B(e), where t_X(e) is the (interpolated) first wall-clock time
// X's trace reaches error rate ≤ e. The paper's summary numbers (§4.2:
// average speedups 1.26–1.97×, optimum speedups 1.13–1.54×) are the mean of
// the slice curve and the speedup at the baseline's best error.
#pragma once

#include <vector>

#include "solvers/trace.hpp"

namespace isasgd::metrics {

/// One slice of the Figure-5 surface.
struct SpeedupPoint {
  double error_rate = 0;
  double baseline_seconds = 0;     ///< t_A(e)
  double accelerated_seconds = 0;  ///< t_B(e)
  double speedup = 0;              ///< t_A(e)/t_B(e)
};

/// Summary of one (baseline, accelerated) trace pair.
struct SpeedupSummary {
  std::vector<SpeedupPoint> slices;
  double average_speedup = 0;  ///< mean over slices ("average speedups")
  double max_speedup = 0;
  double min_speedup = 0;
  /// Speedup at the optimum (Fig. 4's red-circle/blue-dot pair): time for
  /// each algorithm to reach the strictest error level both of them attain.
  /// When the accelerated algorithm reaches at least the baseline's best
  /// (the paper's usual case) this level IS the baseline's best error.
  double optimum_speedup = 0;
  double optimum_error = 0;  ///< the level the optimum speedup is taken at
};

/// Computes the slice curve over `num_slices` error levels spanning the
/// range both traces reach. `include_setup` charges Trace::setup_seconds
/// (IS distribution + sequence generation) to each algorithm, per §4.2.
/// Slices where either trace never reaches the level are dropped.
SpeedupSummary compute_speedup(const solvers::Trace& baseline,
                               const solvers::Trace& accelerated,
                               std::size_t num_slices = 16,
                               bool include_setup = true);

/// Same derivation against the RMSE metric instead of error rate (used by
/// the regression objectives where error rate is undefined).
SpeedupSummary compute_rmse_speedup(const solvers::Trace& baseline,
                                    const solvers::Trace& accelerated,
                                    std::size_t num_slices = 16,
                                    bool include_setup = true);

}  // namespace isasgd::metrics
