// Model scoring: the paper's two metrics (§4 "Metrics").
//
//   RMSE       — "objective value as the error": √F(w) with
//                F(w) = (1/n)·Σ φ_i(w) + η·r(w).
//   error rate — misclassification fraction (classification objectives).
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::metrics {

/// Scores snapshots of a model against a dataset + objective. Thread count
/// parallelises the O(nnz) evaluation pass (the pass is outside the solvers'
/// timed windows, so this only affects bench wall time, not results).
///
/// Works against any data::DataSource: a single-shard in-memory source takes
/// the classic one-matrix path; a sharded source (chunked in-memory or
/// streaming) is scored shard-by-shard with the next shard prefetching in
/// the background, so evaluation obeys the same memory budget as training.
///
/// Out-of-core cost note: on a streaming source whose budget is smaller
/// than the file, every evaluate() call re-reads the whole file — so the
/// default one-score-per-epoch trace doubles a training epoch's I/O and
/// competes with the training loop for cache slots. The scoring pass stays
/// outside the solvers' timed windows (traces are unaffected), but
/// wall-clock-sensitive out-of-core runs should score sparingly (e.g. an
/// observer that skips epochs).
///
/// Workers come from `pool` when one is provided (the Trainer passes its
/// ExecutionContext's pool, so scoring shares the solvers' persistent
/// workers); a pool-less Evaluator with threads > 1 creates a private pool
/// at construction — either way no evaluate() call ever spawns threads on
/// the hot path, and evaluate() itself mutates no Evaluator state, so
/// concurrent calls are safe (they serialise on the pool).
class Evaluator {
 public:
  /// Classic in-memory form: wraps `data` in an internal single-shard
  /// source. `data` must outlive the Evaluator (as before).
  Evaluator(const sparse::CsrMatrix& data,
            const objectives::Objective& objective,
            objectives::Regularization reg, std::size_t threads = 1,
            util::ThreadPool* pool = nullptr);

  /// Source form: scores shard-by-shard. `source` must outlive the
  /// Evaluator.
  Evaluator(const data::DataSource& source,
            const objectives::Objective& objective,
            objectives::Regularization reg, std::size_t threads = 1,
            util::ThreadPool* pool = nullptr);

  [[nodiscard]] solvers::EvalResult evaluate(std::span<const double> w) const;

  /// Adapter for the solver API.
  [[nodiscard]] solvers::EvalFn as_fn() const {
    return [this](std::span<const double> w) { return evaluate(w); };
  }

 private:
  const data::DataSource* source_;  ///< never null
  const objectives::Objective& objective_;
  objectives::Regularization reg_;
  std::size_t threads_;
  util::ThreadPool* pool_;  ///< shared pool (not owned), or null
  /// Backs the CsrMatrix constructor (shared_ptr keeps the Evaluator
  /// copyable, as for owned_pool_).
  std::shared_ptr<const data::InMemorySource> owned_source_;
  /// Private pool for the pool-less parallel case (created at construction;
  /// shared_ptr keeps the Evaluator copyable).
  std::shared_ptr<util::ThreadPool> owned_pool_;
};

}  // namespace isasgd::metrics
