// Model scoring: the paper's two metrics (§4 "Metrics").
//
//   RMSE       — "objective value as the error": √F(w) with
//                F(w) = (1/n)·Σ φ_i(w) + η·r(w).
//   error rate — misclassification fraction (classification objectives).
#pragma once

#include <cstddef>
#include <span>

#include "objectives/objective.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::metrics {

/// Scores snapshots of a model against a dataset + objective. Thread count
/// parallelises the O(nnz) evaluation pass (the pass is outside the solvers'
/// timed windows, so this only affects bench wall time, not results).
class Evaluator {
 public:
  Evaluator(const sparse::CsrMatrix& data,
            const objectives::Objective& objective,
            objectives::Regularization reg, std::size_t threads = 1);

  [[nodiscard]] solvers::EvalResult evaluate(std::span<const double> w) const;

  /// Adapter for the solver API.
  [[nodiscard]] solvers::EvalFn as_fn() const {
    return [this](std::span<const double> w) { return evaluate(w); };
  }

 private:
  const sparse::CsrMatrix& data_;
  const objectives::Objective& objective_;
  objectives::Regularization reg_;
  std::size_t threads_;
};

}  // namespace isasgd::metrics
