#include "partition/partition.hpp"

#include <stdexcept>

#include "partition/balancer.hpp"
#include "partition/importance.hpp"

namespace isasgd::partition {

std::string strategy_name(Strategy s) {
  switch (s) {
    case Strategy::kNone: return "none";
    case Strategy::kShuffle: return "shuffle";
    case Strategy::kHeadTail: return "head_tail";
    case Strategy::kGreedyLpt: return "greedy_lpt";
    case Strategy::kKarmarkarKarp: return "karmarkar_karp";
    case Strategy::kAdaptive: return "adaptive";
  }
  return "?";
}

Strategy strategy_from_name(const std::string& name) {
  if (name == "none") return Strategy::kNone;
  if (name == "shuffle") return Strategy::kShuffle;
  if (name == "head_tail") return Strategy::kHeadTail;
  if (name == "greedy_lpt") return Strategy::kGreedyLpt;
  if (name == "karmarkar_karp") return Strategy::kKarmarkarKarp;
  if (name == "adaptive") return Strategy::kAdaptive;
  throw std::invalid_argument("strategy_from_name: unknown strategy '" + name +
                              "'");
}

PartitionPlan::PartitionPlan(std::span<const double> lipschitz,
                             std::size_t num_partitions,
                             const PartitionOptions& options) {
  const std::size_t n = lipschitz.size();
  if (n == 0) throw std::invalid_argument("PartitionPlan: empty dataset");
  if (num_partitions == 0 || num_partitions > n) {
    throw std::invalid_argument(
        "PartitionPlan: need 1 <= partitions <= rows, got " +
        std::to_string(num_partitions) + " over " + std::to_string(n));
  }

  rho_ = importance_variance(lipschitz);
  Strategy chosen = options.strategy;
  if (chosen == Strategy::kAdaptive) {
    // Algorithm 4 lines 2–6; see importance.hpp for the direction-of-test
    // discussion.
    const bool balance = options.literal_pseudocode_test
                             ? (rho_ <= options.zeta)
                             : (rho_ >= options.zeta);
    chosen = balance ? Strategy::kHeadTail : Strategy::kShuffle;
  }
  applied_ = chosen;

  switch (chosen) {
    case Strategy::kNone:
      order_ = identity_order(n);
      break;
    case Strategy::kShuffle:
      order_ = random_shuffle(n, options.shuffle_seed);
      break;
    case Strategy::kHeadTail:
      order_ = head_tail_balance(lipschitz);
      break;
    case Strategy::kGreedyLpt:
      order_ = greedy_lpt_balance(lipschitz, num_partitions);
      break;
    case Strategy::kKarmarkarKarp:
      order_ = karmarkar_karp_balance(lipschitz, num_partitions);
      break;
    case Strategy::kAdaptive:
      throw std::logic_error("unreachable");
  }

  // Contiguous split (Algorithm 4 line 9): shard tid gets
  // Dr[n·tid/numT : n·(tid+1)/numT).
  boundaries_.resize(num_partitions + 1);
  for (std::size_t a = 0; a <= num_partitions; ++a) {
    boundaries_[a] = n * a / num_partitions;
  }

  // Local Lipschitz slices and sampling distributions (Algorithm 4 lines
  // 10–11): P_tid[i] = L_i / Φ_tid.
  lipschitz_.resize(n);
  probabilities_.resize(n);
  phi_.assign(num_partitions, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    lipschitz_[k] = lipschitz[order_[k]];
  }
  for (std::size_t a = 0; a < num_partitions; ++a) {
    double phi = 0;
    for (std::size_t k = boundaries_[a]; k < boundaries_[a + 1]; ++k) {
      phi += lipschitz_[k];
    }
    phi_[a] = phi;
    for (std::size_t k = boundaries_[a]; k < boundaries_[a + 1]; ++k) {
      // Degenerate all-zero shard: fall back to uniform so the sampler
      // stays well-defined.
      probabilities_[k] =
          phi > 0 ? lipschitz_[k] / phi
                  : 1.0 / static_cast<double>(boundaries_[a + 1] - boundaries_[a]);
    }
  }
}

Shard PartitionPlan::shard(std::size_t tid) const {
  if (tid >= num_partitions()) {
    throw std::out_of_range("PartitionPlan::shard: tid out of range");
  }
  const std::size_t begin = boundaries_[tid], end = boundaries_[tid + 1];
  return Shard{
      .rows = {order_.data() + begin, end - begin},
      .lipschitz = {lipschitz_.data() + begin, end - begin},
      .probabilities = {probabilities_.data() + begin, end - begin},
      .phi = phi_[tid],
  };
}

std::vector<double> PartitionPlan::phis() const { return phi_; }

double PartitionPlan::imbalance() const { return importance_imbalance(phi_); }

}  // namespace isasgd::partition
