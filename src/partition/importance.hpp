// Importance statistics over per-sample Lipschitz constants (paper §2.3–2.4).
//
//   ρ  (Eq. 20): population variance of {L_i} — the paper's adaptive trigger
//       for importance balancing (balance when ρ ≤ ζ is *not* what Alg. 4's
//       prose means; see note below).
//   Φ_a (Eq. 18): per-partition importance mass; Eq. 19's balance condition
//       is Φ_a = Φ_b for all partitions.
//   ψ  (Eq. 15): (ΣL)²/(n·ΣL²) … lives in analysis/bounds.hpp since it is a
//       convergence-bound quantity, not a partitioning one.
//
// Note on the ζ test: Algorithm 4 line 3 reads "if ρ ≤ ζ then
// Importance_Balancing else Random_Shuffling", while §2.4's prose says
// balancing is needed when imbalance risk is HIGH (large spread) and random
// shuffling suffices when the L distribution is near-uniform (small ρ).
// §4 then states News20 (ρ = 5e-4, the largest in Table 1) was
// importance-balanced and the others randomly shuffled — consistent with the
// prose and with ζ = 5e-4 only if the intended test is ρ ≥ ζ. We follow the
// evaluation section: balance when ρ ≥ ζ. A solver option restores the
// literal pseudo-code for comparison.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace isasgd::partition {

/// ρ = (1/N)·Σ (L_i − mean(L))² — Eq. 20.
double importance_variance(std::span<const double> lipschitz);

/// Per-partition importance mass Φ_a = Σ_{i ∈ partition a} L_i — Eq. 18.
/// `assignment[i]` gives sample i's partition in [0, num_partitions).
std::vector<double> partition_importance(std::span<const double> lipschitz,
                                         std::span<const std::uint32_t> assignment,
                                         std::size_t num_partitions);

/// Relative spread of partition importances: (max Φ − min Φ) / mean Φ.
/// 0 ⇔ perfectly balanced (Eq. 19 satisfied).
double importance_imbalance(std::span<const double> phi);

/// Maximum relative distortion between the local sampling probability of a
/// sample inside its partition and its global IS probability:
/// max_i |p_i^local − p_i^global| / p_i^global. Quantifies §2.3's
/// "importance imbalance" example (where p4 < p2 locally despite L4 = 2·L2).
double sampling_distortion(std::span<const double> lipschitz,
                           std::span<const std::uint32_t> assignment,
                           std::size_t num_partitions);

}  // namespace isasgd::partition
