// Partition plan: the data-segmentation step of Algorithm 4 (lines 2–11).
//
// Given per-sample Lipschitz constants, a strategy (or the adaptive ρ-based
// choice) produces a row order Dr; the plan then splits Dr into numT
// contiguous shards, one per worker, and exposes each shard's rows, local
// Lipschitz slice and local sampling distribution P_tid.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace isasgd::partition {

/// Row-rearrangement strategy applied before the contiguous split.
enum class Strategy {
  kNone,           ///< identity order (unbalanced baseline, Fig. 2 top row)
  kShuffle,        ///< Random_Shuffling branch of Algorithm 4
  kHeadTail,       ///< Importance_Balancing, Algorithm 3
  kGreedyLpt,      ///< extension: greedy LPT balancing (tighter Φ spread)
  kKarmarkarKarp,  ///< extension: balanced largest-differencing (tightest Φ)
  kAdaptive,       ///< Algorithm 4's ρ-vs-ζ adaptive choice
};

[[nodiscard]] std::string strategy_name(Strategy s);
[[nodiscard]] Strategy strategy_from_name(const std::string& name);

/// Options for plan construction.
struct PartitionOptions {
  Strategy strategy = Strategy::kAdaptive;
  /// ζ, the adaptive threshold. The paper sets ζ = 5e-4 ("5^-4" in the text,
  /// matching Table 1's ρ column format where News20 has ρ = 5e-4).
  double zeta = 5e-4;
  /// If true, kAdaptive uses the literal Algorithm-4 pseudo-code test
  /// (balance when ρ ≤ ζ); default follows the §2.4 prose / §4 evaluation
  /// (balance when ρ ≥ ζ). See the note in importance.hpp.
  bool literal_pseudocode_test = false;
  std::uint64_t shuffle_seed = 0x5eed;
};

/// One worker's shard: a view of its rows (global ids) and local importance.
struct Shard {
  std::span<const std::uint32_t> rows;       ///< global row ids, |rows| = N_tid
  std::span<const double> lipschitz;         ///< L over the shard, same order
  std::span<const double> probabilities;     ///< local IS distribution P_tid
  double phi = 0;                            ///< Φ_tid = Σ local L (Eq. 18)
};

/// The frozen partition plan.
class PartitionPlan {
 public:
  /// Builds the plan: chooses/applies the ordering strategy, splits into
  /// `num_partitions` contiguous shards, computes Φ and local distributions.
  /// `lipschitz` is indexed by *global* row id.
  PartitionPlan(std::span<const double> lipschitz, std::size_t num_partitions,
                const PartitionOptions& options = {});

  [[nodiscard]] std::size_t num_partitions() const noexcept {
    return boundaries_.size() - 1;
  }
  [[nodiscard]] std::size_t total_rows() const noexcept {
    return order_.size();
  }

  /// The strategy that was actually applied (resolves kAdaptive).
  [[nodiscard]] Strategy applied_strategy() const noexcept {
    return applied_;
  }

  /// ρ of the full Lipschitz vector (Eq. 20), computed during planning.
  [[nodiscard]] double rho() const noexcept { return rho_; }

  /// Shard for worker tid.
  [[nodiscard]] Shard shard(std::size_t tid) const;

  /// Per-shard Φ values (Eq. 18).
  [[nodiscard]] std::vector<double> phis() const;

  /// Relative Φ spread across shards ((max−min)/mean, 0 = Eq. 19 satisfied).
  [[nodiscard]] double imbalance() const;

  /// Full row order Dr (tests use it to re-derive shard assignment).
  [[nodiscard]] std::span<const std::uint32_t> order() const noexcept {
    return order_;
  }

 private:
  std::vector<std::uint32_t> order_;     // Dr
  std::vector<double> lipschitz_;        // L[Dr[k]] laid out contiguously
  std::vector<double> probabilities_;    // local P per shard, contiguous
  std::vector<std::size_t> boundaries_;  // shard k = [boundaries_[k], boundaries_[k+1])
  std::vector<double> phi_;
  Strategy applied_ = Strategy::kNone;
  double rho_ = 0;
};

}  // namespace isasgd::partition
