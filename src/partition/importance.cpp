#include "partition/importance.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>

namespace isasgd::partition {

double importance_variance(std::span<const double> lipschitz) {
  if (lipschitz.empty()) return 0.0;
  double mean = 0;
  for (double l : lipschitz) mean += l;
  mean /= static_cast<double>(lipschitz.size());
  double acc = 0;
  for (double l : lipschitz) {
    const double d = l - mean;
    acc += d * d;
  }
  return acc / static_cast<double>(lipschitz.size());
}

std::vector<double> partition_importance(
    std::span<const double> lipschitz, std::span<const std::uint32_t> assignment,
    std::size_t num_partitions) {
  if (lipschitz.size() != assignment.size()) {
    throw std::invalid_argument("partition_importance: size mismatch");
  }
  std::vector<double> phi(num_partitions, 0.0);
  for (std::size_t i = 0; i < lipschitz.size(); ++i) {
    if (assignment[i] >= num_partitions) {
      throw std::out_of_range("partition_importance: assignment out of range");
    }
    phi[assignment[i]] += lipschitz[i];
  }
  return phi;
}

double importance_imbalance(std::span<const double> phi) {
  if (phi.empty()) return 0.0;
  const auto [lo, hi] = std::minmax_element(phi.begin(), phi.end());
  double mean = 0;
  for (double p : phi) mean += p;
  mean /= static_cast<double>(phi.size());
  return mean > 0 ? (*hi - *lo) / mean : 0.0;
}

double sampling_distortion(std::span<const double> lipschitz,
                           std::span<const std::uint32_t> assignment,
                           std::size_t num_partitions) {
  if (lipschitz.empty()) return 0.0;
  const std::vector<double> phi =
      partition_importance(lipschitz, assignment, num_partitions);
  double total = 0;
  for (double l : lipschitz) total += l;
  if (total <= 0) return 0.0;

  // Local p_i uses the partition's share of samples: with numT partitions of
  // N_a samples each, the IS-ASGD update weight is 1/(N_a·p_i^a); comparing
  // per-sample *selection rates per global step* means each partition
  // contributes one draw per numT global draws. The comparable global rate of
  // sample i is (1/numT)·L_i/Φ_a vs. the ideal L_i/ΣL.
  std::vector<std::size_t> count(num_partitions, 0);
  for (std::uint32_t a : assignment) ++count[a];
  double worst = 0;
  for (std::size_t i = 0; i < lipschitz.size(); ++i) {
    const std::uint32_t a = assignment[i];
    if (phi[a] <= 0) continue;
    const double local =
        (lipschitz[i] / phi[a]) / static_cast<double>(num_partitions);
    const double global = lipschitz[i] / total;
    if (global > 0) {
      worst = std::max(worst, std::abs(local - global) / global);
    }
  }
  return worst;
}

}  // namespace isasgd::partition
