#include "partition/balancer.hpp"

#include <algorithm>
#include <numeric>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace isasgd::partition {

std::vector<std::uint32_t> head_tail_balance(std::span<const double> lipschitz) {
  const std::size_t n = lipschitz.size();
  std::vector<std::uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return lipschitz[a] < lipschitz[b];
                   });
  // Algorithm 3 lines 4–8: pair Ds[i] with Ds[n-1-i].
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n / 2; ++i) {
    out.push_back(sorted[i]);
    out.push_back(sorted[n - 1 - i]);
  }
  if (n % 2) out.push_back(sorted[n / 2]);
  return out;
}

std::vector<std::uint32_t> random_shuffle(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  util::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

std::vector<std::uint32_t> identity_order(std::size_t n) {
  std::vector<std::uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  return out;
}

std::vector<std::size_t> detail::split_capacities(std::size_t n,
                                                  std::size_t num_partitions) {
  std::vector<std::size_t> capacity(num_partitions);
  for (std::size_t a = 0; a < num_partitions; ++a) {
    capacity[a] = n * (a + 1) / num_partitions - n * a / num_partitions;
  }
  return capacity;
}

std::vector<std::uint32_t> greedy_lpt_balance(std::span<const double> lipschitz,
                                              std::size_t num_partitions) {
  const std::size_t n = lipschitz.size();
  if (num_partitions == 0) {
    throw std::invalid_argument("greedy_lpt_balance: zero partitions");
  }
  std::vector<std::uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return lipschitz[a] > lipschitz[b];
                   });

  // Deal each sample (heaviest first) to the partition with smallest Φ,
  // subject to the partition not being full: the contiguous split gives
  // partition a exactly n·(a+1)/k − n·a/k samples, so capacities must match
  // that pattern or the block split would not recover this assignment.
  const std::vector<std::size_t> capacity =
      detail::split_capacities(n, num_partitions);

  using Entry = std::pair<double, std::size_t>;  // (Φ, partition)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t a = 0; a < num_partitions; ++a) heap.emplace(0.0, a);

  std::vector<std::vector<std::uint32_t>> buckets(num_partitions);
  for (std::uint32_t i : sorted) {
    // Pop until we find a partition with remaining capacity.
    std::vector<Entry> skipped;
    Entry top = heap.top();
    heap.pop();
    while (buckets[top.second].size() >= capacity[top.second]) {
      skipped.push_back(top);
      top = heap.top();
      heap.pop();
    }
    buckets[top.second].push_back(i);
    heap.emplace(top.first + lipschitz[i], top.second);
    for (const Entry& e : skipped) heap.push(e);
  }

  // Lay buckets out contiguously so a block split recovers the assignment.
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (const auto& bucket : buckets) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

namespace {

/// One bucket of a differencing tuple: its importance sum and its samples.
/// Dummy (padding) slots hold no items and contribute zero weight, so every
/// bucket always carries exactly one slot per consumed chunk.
struct KkBucket {
  double phi = 0;
  std::size_t dummies = 0;  // padding slots absorbed by this bucket
  std::vector<std::uint32_t> items;
};

/// A k-tuple in the differencing heap.
struct KkTuple {
  std::vector<KkBucket> buckets;  // kept sorted by phi descending

  [[nodiscard]] double spread() const {
    return buckets.front().phi - buckets.back().phi;
  }
};

void sort_buckets_desc(KkTuple& t) {
  std::stable_sort(t.buckets.begin(), t.buckets.end(),
                   [](const KkBucket& a, const KkBucket& b) {
                     return a.phi > b.phi;
                   });
}

}  // namespace

std::vector<std::uint32_t> karmarkar_karp_balance(
    std::span<const double> lipschitz, std::size_t num_partitions) {
  const std::size_t n = lipschitz.size();
  const std::size_t k = num_partitions;
  if (k == 0) {
    throw std::invalid_argument("karmarkar_karp_balance: zero partitions");
  }
  if (k == 1 || n == 0) return identity_order(n);

  std::vector<std::uint32_t> sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0u);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&](std::uint32_t a, std::uint32_t b) {
                     return lipschitz[a] > lipschitz[b];
                   });

  // Seed tuples: each chunk of k consecutive items (heaviest first) becomes
  // one tuple with one item per bucket; the final short chunk is padded with
  // zero-weight dummy slots so all buckets stay cardinality-equal (the
  // balanced-LDM construction of Michiels et al.).
  const std::size_t chunks = (n + k - 1) / k;
  std::vector<KkTuple> arena;
  arena.reserve(2 * chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    KkTuple t;
    t.buckets.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      const std::size_t pos = c * k + j;
      if (pos < n) {
        t.buckets[j].phi = lipschitz[sorted[pos]];
        t.buckets[j].items.push_back(sorted[pos]);
      } else {
        t.buckets[j].dummies = 1;
      }
    }
    sort_buckets_desc(t);
    arena.push_back(std::move(t));
  }

  // Differencing loop: merge the two largest-spread tuples, pairing the
  // first tuple's buckets descending against the second's ascending — the
  // heaviest bucket absorbs the lightest, cancelling spread.
  using HeapEntry = std::pair<double, std::size_t>;  // (spread, arena index)
  std::priority_queue<HeapEntry> heap;
  std::vector<bool> alive(arena.size(), true);
  for (std::size_t idx = 0; idx < arena.size(); ++idx) {
    heap.emplace(arena[idx].spread(), idx);
  }
  auto pop_alive = [&]() {
    while (true) {
      const auto [spread, idx] = heap.top();
      heap.pop();
      if (alive[idx]) {
        alive[idx] = false;
        return idx;
      }
    }
  };
  for (std::size_t round = 1; round < chunks; ++round) {
    const std::size_t a = pop_alive();
    const std::size_t b = pop_alive();
    KkTuple merged;
    merged.buckets.resize(k);
    for (std::size_t j = 0; j < k; ++j) {
      KkBucket& heavy = arena[a].buckets[j];
      KkBucket& light = arena[b].buckets[k - 1 - j];
      merged.buckets[j].phi = heavy.phi + light.phi;
      merged.buckets[j].dummies = heavy.dummies + light.dummies;
      merged.buckets[j].items = std::move(heavy.items);
      merged.buckets[j].items.insert(merged.buckets[j].items.end(),
                                     light.items.begin(), light.items.end());
    }
    sort_buckets_desc(merged);
    alive.push_back(true);
    heap.emplace(merged.spread(), arena.size());
    arena.push_back(std::move(merged));
  }
  const std::size_t root = pop_alive();
  KkTuple& result = arena[root];

  // Bucket sizes are chunks − dummies ∈ {⌈n/k⌉, ⌊n/k⌋}; the contiguous split
  // produces the same multiset of shard sizes, so matching size-descending
  // buckets to capacity-descending shard slots recovers the assignment.
  const std::vector<std::size_t> capacity = detail::split_capacities(n, k);
  std::vector<std::size_t> slot_order(k);
  std::iota(slot_order.begin(), slot_order.end(), 0u);
  std::stable_sort(slot_order.begin(), slot_order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return capacity[a] > capacity[b];
                   });
  std::stable_sort(result.buckets.begin(), result.buckets.end(),
                   [](const KkBucket& a, const KkBucket& b) {
                     return a.items.size() > b.items.size();
                   });

  std::vector<std::vector<std::uint32_t>> assigned(k);
  for (std::size_t r = 0; r < k; ++r) {
    assigned[slot_order[r]] = std::move(result.buckets[r].items);
  }
  std::vector<std::uint32_t> out;
  out.reserve(n);
  for (const auto& bucket : assigned) {
    out.insert(out.end(), bucket.begin(), bucket.end());
  }
  return out;
}

}  // namespace isasgd::partition
