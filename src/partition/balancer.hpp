// Dataset rearrangement strategies run before the contiguous split across
// worker threads (paper §2.4, Algorithm 3).
//
// All balancers return a permutation `order` of row indices; the partitioner
// then assigns order[tid·n/numT .. (tid+1)·n/numT) to thread tid, exactly as
// Algorithm 4 line 9 does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace isasgd::partition {

/// Algorithm 3: sort rows by L_i, then interleave head and tail
/// (Ds[0], Ds[n−1], Ds[1], Ds[n−2], …) so that every contiguous block mixes
/// heavy and light samples. Fast O(n log n) approximation to the NP-hard
/// equal-importance partition problem.
std::vector<std::uint32_t> head_tail_balance(std::span<const double> lipschitz);

/// Uniform random permutation (Algorithm 4's alternative branch).
std::vector<std::uint32_t> random_shuffle(std::size_t n, std::uint64_t seed);

/// Identity order — the unbalanced straw man (what raw data segmentation
/// does, §2.3's Figure-2 top row).
std::vector<std::uint32_t> identity_order(std::size_t n);

/// Extension (not in the paper): greedy longest-processing-time assignment.
/// Sorts by descending L_i and deals each sample to the partition with the
/// currently smallest Φ, then returns an order that interleaves partitions so
/// the contiguous split reproduces the assignment. Produces strictly tighter
/// Φ spread than head-tail on skewed distributions; the ablation bench
/// quantifies the gap.
std::vector<std::uint32_t> greedy_lpt_balance(std::span<const double> lipschitz,
                                              std::size_t num_partitions);

/// Extension (not in the paper): balanced largest-differencing (Karmarkar–
/// Karp) assignment. Items are sorted by descending L_i and grouped into
/// chunks of `num_partitions`; each chunk seeds a k-tuple of singleton
/// buckets, and tuples are repeatedly merged largest-spread-first, pairing
/// the heavier tuple's buckets descending against the lighter's ascending.
/// Every bucket receives exactly one item per chunk, so bucket cardinalities
/// stay equal — the contiguous split recovers the assignment exactly.
/// Differencing dominates greedy LPT on adversarial weight distributions
/// (the classic number-partitioning result); `ablation_balancing` measures
/// the gap on the lognormal importance profiles the datasets produce.
std::vector<std::uint32_t> karmarkar_karp_balance(
    std::span<const double> lipschitz, std::size_t num_partitions);

namespace detail {
/// Per-partition sample counts that exactly match PartitionPlan's contiguous
/// boundaries (shard a = [n·a/k, n·(a+1)/k)). Balancers that assign samples
/// to explicit buckets must respect these capacities or the block split will
/// not recover their assignment.
std::vector<std::size_t> split_capacities(std::size_t n,
                                          std::size_t num_partitions);
}  // namespace detail

}  // namespace isasgd::partition
