// Common configuration for all solvers.
#pragma once

#include <cstdint>
#include <string>

#include "objectives/objective.hpp"
#include "partition/partition.hpp"
#include "solvers/schedule.hpp"

namespace isasgd::solvers {

// The deprecated solvers::Algorithm enum (and algorithm_name /
// algorithm_from_name) was removed after its one release of grace — address
// solvers by SolverRegistry name ("is_asgd", "SVRG-SGD", "dist.ps.is_asgd",
// ...) through core::Trainer::train(name, ...).

/// How concurrent workers write the shared model (see model.hpp).
enum class UpdatePolicy {
  kWild,     ///< relaxed load/add/store — Hogwild's racy semantics
  kAtomic,   ///< relaxed fetch_add — never loses an update
  kStriped,  ///< per-coordinate-stripe spinlock — locked, fine-grained
  kLocked,   ///< one global spinlock — the fully serialised straw man
};

[[nodiscard]] std::string update_policy_name(UpdatePolicy p);
[[nodiscard]] UpdatePolicy update_policy_from_name(const std::string& name);

/// Importance-weight source for IS solvers.
enum class ImportanceKind {
  kLipschitz,     ///< p_i ∝ L_i = β‖x_i‖² + reg (paper Eq. 12, default)
  kGradientBound, ///< p_i ∝ gradient-norm bound (paper Eq. 16 style)
};

struct SolverOptions {
  /// Step size λ (λ0 under a decaying schedule). The paper uses 0.5 (0.05
  /// for URL).
  double step_size = 0.5;
  /// Multiplicative per-epoch decay of λ (1 = constant, paper default).
  /// Composes with step_schedule; see schedule.hpp.
  double step_decay = 1.0;
  /// Epoch-indexed step-size law (constant reproduces the paper).
  ScheduleKind step_schedule = ScheduleKind::kConstant;
  /// e0 offset of the decaying schedules: λ_e = λ0/(1+(e−1)/e0) etc.
  double schedule_offset = 1.0;
  /// Number of passes; each epoch performs n total update iterations
  /// (divided across threads for the async solvers).
  std::size_t epochs = 15;
  /// Worker count for the async solvers (ignored by serial ones).
  std::size_t threads = 4;
  /// Shared-model write discipline for async solvers.
  UpdatePolicy update_policy = UpdatePolicy::kWild;
  /// Regularizer η·r(w) of Eq. 1.
  objectives::Regularization reg = objectives::Regularization::none();
  /// Base seed; workers derive independent streams from it.
  std::uint64_t seed = 7;
  /// Store the final model vector in Trace::final_model (off by default:
  /// sweeps hold many traces and d can be millions).
  bool keep_final_model = false;

  /// Mini-batch size b: each update averages b (importance-weighted)
  /// gradients evaluated against one model snapshot. b = 1 reproduces the
  /// paper exactly; b > 1 implements the mini-batch IS extension the paper
  /// cites (Csiba & Richtárik 2016) — lower gradient variance per update at
  /// b× the per-update cost.
  std::size_t batch_size = 1;

  // ---- IS-specific ----
  /// Importance definition (Eq. 12 vs Eq. 16).
  ImportanceKind importance = ImportanceKind::kLipschitz;
  /// Extension: re-estimate the importance distribution from the *current*
  /// gradient norms ‖∇f_i(w)‖ (the Eq. 11 optimum the paper calls
  /// "completely impractical" to track) every `adaptive_interval` epochs.
  /// Supported by serial IS-SGD and by IS-ASGD (where each worker refreshes
  /// its own shard against a racy model read — thread-local, nothing to
  /// race on). The re-estimation pass is timed inside the training window
  /// so its cost is visible in the traces.
  bool adaptive_importance = false;
  std::size_t adaptive_interval = 1;
  /// Dataset rearrangement before the per-thread split (Algorithm 4).
  partition::PartitionOptions partition;
  /// How IS sample sequences are produced per epoch.
  enum class SequenceMode {
    /// One i.i.d. weighted sequence per epoch, all generated offline
    /// ("beforehand", §1.3) — the faithful Algorithm-2/4 scheme.
    kPregenerate,
    /// §4.2 optimisation: one i.i.d. draw, Fisher–Yates-reshuffled per
    /// epoch. Zero marginal cost, but the fixed multiset never visits ~1/e
    /// of the shard — see EXPERIMENTS.md's coverage caveat.
    kReshuffle,
    /// Extension: systematic-resampling visit counts (best integer
    /// approximation of the IS distribution) with a ≥1-visit coverage
    /// floor, reshuffled per epoch. Reshuffle-grade cost, no coverage hole.
    kStratified,
  };
  SequenceMode sequence_mode = SequenceMode::kPregenerate;
  /// DEPRECATED back-compat alias for kReshuffle. Solver::validate is the
  /// single resolution point: it folds this flag into sequence_mode (warning
  /// once) before any registry-dispatched run. The run_* free functions do
  /// NOT consult it — direct callers must set sequence_mode instead.
  /// ([[deprecated]] would be ideal, but on a default-initialised member it
  /// fires on every SolverOptions construction under GCC, so the shim's
  /// diagnostic lives in Solver::validate instead.)
  bool reshuffle_sequences = false;

  // ---- simulated-time solvers (sim.* / dist.*) ----
  /// Staleness law injected by the sim.delayed_* solvers: every computed
  /// gradient is held for a drawn number of steps before it lands (mirrors
  /// simulate::DelayModel — the registry wrappers translate). kNone
  /// reproduces serial SGD exactly; the other laws make the paper's τ a
  /// controlled input. Ignored by every non-simulated solver, and by the
  /// dist.* cluster solvers (their staleness *emerges* from the ClusterSpec
  /// cost model instead of being injected).
  enum class DelayLaw {
    kNone,       ///< τ = 0 — degenerates to serial SGD exactly
    kFixed,      ///< constant τ — the perturbed-iterate worst case
    kUniform,    ///< uniform on [0, τ] — spread-out staleness, mean τ/2
    kGeometric,  ///< geometric with mean τ — heavy-tailed straggler law
  };
  DelayLaw delay_law = DelayLaw::kNone;
  /// τ parameter of delay_law, in steps.
  std::size_t delay_tau = 0;

  // ---- SVRG-specific ----
  /// Snapshot/full-gradient refresh interval in epochs (1 = every epoch,
  /// the classic SVRG schedule).
  std::size_t svrg_snapshot_interval = 1;
  /// Reproduce the public-repo approximation the paper criticises (§1.2):
  /// skip the dense μ addition per iteration and apply an aggregate
  /// correction once at epoch end.
  bool svrg_skip_mu = false;
};

}  // namespace isasgd::solvers
