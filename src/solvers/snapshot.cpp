#include "solvers/snapshot.hpp"

#include <array>

namespace isasgd::solvers {

const std::vector<double>& SnapshotState::real_section(
    const std::string& name) const {
  const auto it = reals.find(name);
  if (it == reals.end()) {
    throw std::invalid_argument("SnapshotState: missing real section '" +
                                name + "' (checkpoint from solver '" +
                                solver + "')");
  }
  return it->second;
}

const std::vector<std::uint64_t>& SnapshotState::word_section(
    const std::string& name) const {
  const auto it = words.find(name);
  if (it == words.end()) {
    throw std::invalid_argument("SnapshotState: missing word section '" +
                                name + "' (checkpoint from solver '" +
                                solver + "')");
  }
  return it->second;
}

std::uint64_t SnapshotState::word(const std::string& name) const {
  const auto& section = word_section(name);
  if (section.size() != 1) {
    throw std::invalid_argument("SnapshotState: word section '" + name +
                                "' holds " + std::to_string(section.size()) +
                                " values, expected exactly 1");
  }
  return section[0];
}

void SnapshotState::put_rng(const std::string& name, const util::Rng& rng) {
  const auto s = rng.state();
  words[name] = {s[0], s[1], s[2], s[3]};
}

util::Rng SnapshotState::get_rng(const std::string& name) const {
  const auto& section = word_section(name);
  if (section.size() != 4) {
    throw std::invalid_argument("SnapshotState: RNG section '" + name +
                                "' holds " + std::to_string(section.size()) +
                                " words, expected 4");
  }
  util::Rng rng;
  rng.set_state({section[0], section[1], section[2], section[3]});
  return rng;
}

namespace detail {

void check_resume(const SnapshotState& state, std::string_view solver,
                  std::uint64_t seed, std::size_t epochs, std::size_t dim) {
  if (state.solver != solver) {
    throw std::invalid_argument(
        "checkpoint resume: state was captured by solver '" + state.solver +
        "', cannot restore into '" + std::string(solver) + "'");
  }
  if (state.seed != seed) {
    throw std::invalid_argument(
        "checkpoint resume: state was captured under seed " +
        std::to_string(state.seed) + " but the resuming run uses seed " +
        std::to_string(seed) +
        " — a seed change breaks the bit-parity contract");
  }
  if (state.model.size() != dim) {
    throw std::invalid_argument(
        "checkpoint resume: model dimensionality mismatch (checkpoint " +
        std::to_string(state.model.size()) + ", dataset " +
        std::to_string(dim) + ")");
  }
  if (state.epoch > epochs) {
    throw std::invalid_argument(
        "checkpoint resume: state is at epoch fence " +
        std::to_string(state.epoch) + " but the resuming run's budget is " +
        std::to_string(epochs) + " epochs");
  }
}

}  // namespace detail

}  // namespace isasgd::solvers
