// Proximal SGD with optional importance sampling — the Zhao & Zhang (2015)
// algorithm the paper cites as the source of its Eq. 8–14 analysis.
//
//   w ← prox_{λ·ηr}( w − (λ/(n·p_i))·∇φ_i(w) ),   i ~ P
//
// With uniform P this is plain prox-SGD; with the Eq. 12 distribution it is
// the literal IS algorithm of the cited work. Differences from this repo's
// subgradient solvers that matter in practice:
//   * L1 is handled exactly: coordinates are *hard-zeroed* by the soft
//     threshold instead of oscillating by ±λη around zero, so the returned
//     model has genuine sparsity (a lasso path, not a fuzz ball);
//   * the prox map is applied lazily per touched coordinate with a
//     closed-form catch-up (L1's prox recursion is absorbing at 0, unlike
//     its subgradient recursion — compare svrg_lazy.hpp's L1 discussion),
//     so the inner loop stays index-compressed even though prox formally
//     touches every coordinate every step.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::solvers {

/// Diagnostics of a prox run.
struct ProxReport {
  /// Fraction of coordinates exactly zero in the final model.
  double sparsity = 0;
};

/// Runs serial proximal SGD. `use_importance` selects uniform vs Eq. 12
/// sampling (with pre-generated sequences, as Algorithm 2). The regularizer
/// enters through its prox map — all three Regularization kinds supported.
/// Checkpoint state (`hooks`, snapshot.hpp) is {model, sampling RNG}: the
/// lazy prox clock is fully caught up at every epoch fence, and the IS
/// distribution is recomputed at setup.
[[nodiscard]] Trace run_prox_sgd(const sparse::CsrMatrix& data,
                                 const objectives::Objective& objective,
                                 const SolverOptions& options,
                                 bool use_importance, const EvalFn& eval,
                                 ProxReport* report = nullptr,
                                 TrainingObserver* observer = nullptr,
                                 const SnapshotHooks& hooks = {});

/// Lock-free asynchronous proximal SGD — the direction of the asynchronous
/// proximal works the paper cites (Meng et al. 2017), combined with Eq. 12
/// importance sampling when `use_importance` is set (IS-prox-ASGD: the
/// paper's Algorithm 4 with the Zhao–Zhang prox step).
///
/// Two deviations from the serial solver, both standard for Hogwild prox:
///   * the prox is applied per *touched* coordinate only — the serial lazy
///     catch-up clock is inherently serial state, and racing it across
///     threads would corrupt the closed forms (untouched coordinates
///     therefore miss their shrinkage, the same approximation this repo's
///     subgradient solvers already make for L1);
///   * the read-prox-write on a coordinate is racy under kWild (lost
///     updates allowed, Hogwild semantics) and exact under kStriped /
///     kLocked; kAtomic has no meaning for a non-additive map and falls
///     back to kWild.
[[nodiscard]] Trace run_prox_asgd(const sparse::CsrMatrix& data,
                                  const objectives::Objective& objective,
                                  const SolverOptions& options,
                                  bool use_importance, const EvalFn& eval,
                                  ProxReport* report = nullptr,
                                  TrainingObserver* observer = nullptr,
                                  util::ThreadPool* pool = nullptr);

}  // namespace isasgd::solvers
