// Serial uniform SGD — the paper's baseline (Eq. 3).
#pragma once

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial SGD with uniform sampling: w ← w − λ·∇f_i(w), i ~ U[0, n).
/// One epoch = n update iterations. The regularizer's subgradient is applied
/// on the active row's support (the standard sparse-SGD discipline; see
/// DESIGN.md §5). Cross-epoch state is {model, sampling RNG}; `hooks`
/// captures/restores both at epoch fences (snapshot.hpp).
Trace run_sgd(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer = nullptr,
              const SnapshotHooks& hooks = {});

/// Out-of-core serial SGD: one epoch = one without-replacement shard-major
/// pass over `source` in the ShardedSequence order (random-reshuffle SGD
/// blocked by shard, so a bounded shard window is resident at any time).
/// Mini-batches are contiguous slices of a shard's row order and never span
/// shards. The "SGD" registry entry dispatches here whenever the source is
/// sharded; results are a pure function of (options.seed, epoch, shard
/// geometry) — independent of the backend serving the shards.
/// Cross-epoch state is the model alone — the shard/row schedule is a pure
/// function of (seed, epoch, shard) — so `hooks` checkpoints here too.
Trace run_sgd_streaming(const data::DataSource& source,
                        const objectives::Objective& objective,
                        const SolverOptions& options, const EvalFn& eval,
                        TrainingObserver* observer = nullptr,
                        const SnapshotHooks& hooks = {});

}  // namespace isasgd::solvers
