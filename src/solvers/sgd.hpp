// Serial uniform SGD — the paper's baseline (Eq. 3).
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial SGD with uniform sampling: w ← w − λ·∇f_i(w), i ~ U[0, n).
/// One epoch = n update iterations. The regularizer's subgradient is applied
/// on the active row's support (the standard sparse-SGD discipline; see
/// DESIGN.md §5).
Trace run_sgd(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer = nullptr);

}  // namespace isasgd::solvers
