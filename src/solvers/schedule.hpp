// Step-size schedules.
//
// The paper's evaluation protocol is a constant λ (0.5, or 0.05 for URL),
// and its theory picks a constant λ = εμ/(2εμ·supL + 2σ²) (Lemma 2) — both
// are covered by kConstant. The decaying schedules are the standard
// alternatives for strongly-convex SGD (λ_e = λ0/(1+(e−1)/e0) achieves O(1/T)
// without knowing the horizon) and feed the schedule ablation bench: the
// paper's fixed-λ protocol is exactly the regime where IS's *bound* gain
// (a larger admissible step) never gets exercised, so the ablation measures
// how the IS-vs-uniform gap changes once λ follows the theory instead.
//
// Schedules are evaluated at epoch granularity: the async solvers read λ
// once per epoch (a mid-epoch change would race with the lock-free kernel
// for no modelling benefit).
#pragma once

#include <cstddef>
#include <string>

namespace isasgd::solvers {

struct SolverOptions;  // options.hpp includes this header

/// Epoch-indexed step-size laws. All are scaled by SolverOptions::step_size
/// (λ0) and composed with the multiplicative step_decay for back-compat.
enum class ScheduleKind {
  kConstant,      ///< λ_e = λ0 (the paper's protocol)
  kInvEpoch,      ///< λ_e = λ0 / (1 + (e−1)/e0) — classic 1/t decay
  kInvSqrtEpoch,  ///< λ_e = λ0 / √(1 + (e−1)/e0) — the Eq. 13/14 rate's λ ∝ 1/√T
};

[[nodiscard]] std::string schedule_name(ScheduleKind k);
[[nodiscard]] ScheduleKind schedule_from_name(const std::string& name);

/// λ for 1-based `epoch` under `options` (schedule kind, λ0, e0 offset and
/// multiplicative decay all honoured). Defined in schedule.cpp.
[[nodiscard]] double epoch_step(const SolverOptions& options,
                                std::size_t epoch);

/// The Lemma-2 theory step λ = εμ/(2εμ·supL + 2σ²): ε is the target
/// suboptimality E‖w−w*‖², μ the strong-convexity constant, sup_l the
/// largest per-sample Lipschitz constant, sigma2 the residual E‖∇f_i(w*)‖².
/// Throws std::invalid_argument unless all inputs are positive/non-negative
/// as required (ε, μ, sup_l > 0; σ² ≥ 0).
[[nodiscard]] double theory_step_size(double epsilon, double mu, double sup_l,
                                      double sigma2);

}  // namespace isasgd::solvers
