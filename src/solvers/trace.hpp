// Convergence traces: the raw material of every figure in the paper.
//
// A solver produces one Trace per run: a sequence of per-epoch points
// carrying wall-clock time (evaluation cost excluded — the clock is paused
// at the epoch fence) plus the metrics the paper plots: RMSE (√ of the
// objective value, §4 "Metrics") and error rate kept monotone best-so-far
// ("the error rate is updated once a better result is obtained").
#pragma once

#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace isasgd::solvers {

class TrainingObserver;  // observer.hpp

/// Metrics of one model snapshot.
struct EvalResult {
  double objective = 0;   ///< F(w) = mean loss + η·r(w)
  double rmse = 0;        ///< √objective — the paper's RMSE metric
  double error_rate = 0;  ///< misclassification fraction (NaN for regression)
};

/// Callback the solvers use to score a snapshot; metrics::Evaluator provides
/// the standard implementation (kept as std::function so the solver layer
/// does not depend on the metrics layer).
using EvalFn = std::function<EvalResult(std::span<const double> w)>;

/// One epoch-boundary measurement.
struct TracePoint {
  std::size_t epoch = 0;   ///< 1-based epoch index (0 = initial model)
  double seconds = 0;      ///< cumulative training wall-clock (eval excluded)
  double rmse = 0;
  double error_rate = 0;   ///< monotone best-so-far
  double objective = 0;
};

/// A full run's convergence record.
struct Trace {
  std::string algorithm;
  std::size_t threads = 1;
  double step_size = 0;
  std::vector<TracePoint> points;
  /// Offline preparation: importance distribution + sequence generation
  /// (§4.2 accounts it against IS-ASGD's raw speedup).
  double setup_seconds = 0;
  /// Pure training wall-clock (Σ epoch windows, eval excluded).
  double train_seconds = 0;
  /// True when the time axis is *simulated* seconds (discrete-event cluster
  /// / delay-injection solvers — SolverCapabilities::simulated_time): points
  /// are only comparable to other traces produced under the same
  /// ClusterSpec, never to host wall-clock traces.
  bool simulated_time = false;
  /// Final model vector; filled only when SolverOptions::keep_final_model.
  std::vector<double> final_model;

  /// Best (lowest) error rate across the run; +inf if no points.
  [[nodiscard]] double best_error_rate() const;
  /// Best (lowest) RMSE across the run; +inf if no points.
  [[nodiscard]] double best_rmse() const;
  /// First cumulative time at which error_rate ≤ target, linearly
  /// interpolated between epoch points; NaN if never reached. `include_setup`
  /// adds setup_seconds to every time (the paper's "taking the sampling time
  /// into consideration").
  [[nodiscard]] double time_to_error(double target, bool include_setup = true) const;
  /// Same for RMSE.
  [[nodiscard]] double time_to_rmse(double target, bool include_setup = true) const;
};

/// Accumulates TracePoints during a run, enforcing the monotone error-rate
/// convention and pairing each point with the pause-aware clock the solver
/// maintains. Each recorded point is forwarded to the attached
/// TrainingObserver (if any); an observer returning false latches
/// stop_requested(), which the epoch drivers poll to wind the run down.
class TraceRecorder {
 public:
  TraceRecorder(std::string algorithm, std::size_t threads, double step_size,
                EvalFn eval, TrainingObserver* observer = nullptr);

  /// Scores `w` and appends a point at training time `seconds`, notifying
  /// the observer.
  void record(std::size_t epoch, double seconds, std::span<const double> w);

  /// True once the observer has asked for an early stop (sticky).
  [[nodiscard]] bool stop_requested() const noexcept { return stop_; }

  /// Adds to the offline-setup account.
  void add_setup_seconds(double s) { setup_seconds_ += s; }

  /// Flags the trace's time axis as simulated seconds (see
  /// Trace::simulated_time). Called once by the discrete-event solvers.
  void mark_simulated_time() { trace_.simulated_time = true; }

  /// Stores the final model (see SolverOptions::keep_final_model).
  void set_final_model(std::vector<double> w) {
    trace_.final_model = std::move(w);
  }

  /// Finalises and returns the trace. `train_seconds` is the solver's total
  /// training clock.
  [[nodiscard]] Trace finish(double train_seconds) &&;

 private:
  Trace trace_;
  EvalFn eval_;
  TrainingObserver* observer_ = nullptr;
  bool stop_ = false;
  double best_error_ = std::numeric_limits<double>::infinity();
  double setup_seconds_ = 0;
};

}  // namespace isasgd::solvers
