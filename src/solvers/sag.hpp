// SAG (Le Roux, Schmidt & Bach 2012) — stochastic average gradient, the
// first of the incremental-gradient VR family the paper's §1.1 groups as
// "SVRG-styled".
//
// SAG keeps the same O(n) scalar gradient table as SAGA but steps along the
// *average* of the stored gradients instead of the unbiased
// variance-corrected direction:
//
//   w ← w − λ·( ḡ + (g_i − α_i)·x_i / n ),   α_i ← g_i
//
// (SAGA's step drops the 1/n on the correction and is unbiased; SAG's is
// biased but lower-variance.) Like SAGA and SVRG, the aggregate ḡ is dense,
// so SAG sits on the same side of the paper's §1.2 argument: great
// per-epoch convergence, Θ(d) per-iteration cost on sparse data. Having all
// three members implemented lets the benches show the bottleneck is the
// *family's* (any dense aggregate), not one algorithm's.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial SAG. One epoch = n iterations; the gradient table starts at
/// zero scales and the running average divides by n throughout (the
/// standard "initialise with zeros" variant). Checkpoint state (`hooks`,
/// snapshot.hpp) is {model, RNG, α table, dense aggregate ḡ}.
Trace run_sag(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer = nullptr,
              const SnapshotHooks& hooks = {});

}  // namespace isasgd::solvers
