// SVRG-SGD — serial stochastic variance-reduced gradient (Johnson & Zhang
// 2013), the serial form of the paper's Algorithm 1.
//
// Per snapshot period: s ← w, μ ← (1/n)Σ∇φ_i(s); inner iterations use the
// variance-reduced gradient v = (φ'(w·x) − φ'(s·x))·x + μ. The μ term is
// dense, so every inner iteration pays an O(d) pass — the cost the paper's
// §1.2 identifies as the absolute-convergence bottleneck on sparse data.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial SVRG. `options.svrg_skip_mu` switches to the public-repo
/// approximation (sparse inner loop + one aggregate μ correction per epoch)
/// that the paper §1.2 shows diverges from the literature algorithm.
/// Checkpoint state (`hooks`, snapshot.hpp) is {model, RNG, anchor s, μ} —
/// the anchor pair persists across epochs between snapshot refreshes.
Trace run_svrg_sgd(const sparse::CsrMatrix& data,
                   const objectives::Objective& objective,
                   const SolverOptions& options, const EvalFn& eval,
                   TrainingObserver* observer = nullptr,
                   const SnapshotHooks& hooks = {});

}  // namespace isasgd::solvers
