#include "solvers/model.hpp"

#include <stdexcept>

namespace isasgd::solvers {

std::vector<double> SharedModel::snapshot() const {
  std::vector<double> out(w_.size());
  for (std::size_t j = 0; j < w_.size(); ++j) out[j] = load(j);
  return out;
}

void SharedModel::snapshot_into(std::vector<double>& out) const {
  out.resize(w_.size());
  for (std::size_t j = 0; j < w_.size(); ++j) out[j] = load(j);
}

void SharedModel::assign(std::span<const double> values) {
  if (values.size() != w_.size()) {
    throw std::invalid_argument("SharedModel::assign: size mismatch");
  }
  for (std::size_t j = 0; j < w_.size(); ++j) store(j, values[j]);
}

void SharedModel::reset() noexcept {
  for (std::size_t j = 0; j < w_.size(); ++j) store(j, 0.0);
}

std::string update_policy_name(UpdatePolicy p) {
  switch (p) {
    case UpdatePolicy::kWild: return "wild";
    case UpdatePolicy::kAtomic: return "atomic";
    case UpdatePolicy::kStriped: return "striped";
    case UpdatePolicy::kLocked: return "locked";
  }
  return "?";
}

UpdatePolicy update_policy_from_name(const std::string& name) {
  if (name == "wild") return UpdatePolicy::kWild;
  if (name == "atomic") return UpdatePolicy::kAtomic;
  if (name == "striped") return UpdatePolicy::kStriped;
  if (name == "locked") return UpdatePolicy::kLocked;
  throw std::invalid_argument(
      "update_policy_from_name: unknown policy '" + name +
      "' (expected wild|atomic|striped|locked)");
}

}  // namespace isasgd::solvers
