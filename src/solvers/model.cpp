#include "solvers/model.hpp"

#include <cstring>
#include <stdexcept>

namespace isasgd::solvers {

SharedModel::SharedModel(std::size_t dim, std::size_t lock_stripes)
    : dim_(dim),
      w_(std::make_unique_for_overwrite<double[]>(dim)),
      locks_(lock_stripes == 0 ? 1 : lock_stripes) {
  if (dim_ > 0) std::memset(w_.get(), 0, dim_ * sizeof(double));
}

SharedModel::SharedModel(std::size_t dim,
                         const core::NumaPlacement& placement,
                         std::size_t lock_stripes)
    : dim_(dim),
      w_(std::make_unique_for_overwrite<double[]>(dim)),
      locks_(lock_stripes == 0 ? 1 : lock_stripes) {
  if (dim_ == 0) return;
  if (placement.active && placement.stripes.dim == dim_) {
    core::first_touch_zero(w_.get(), placement.stripes, placement.topology);
  } else {
    std::memset(w_.get(), 0, dim_ * sizeof(double));
  }
}

std::vector<double> SharedModel::snapshot() const {
  std::vector<double> out(dim_);
  for (std::size_t j = 0; j < dim_; ++j) out[j] = load(j);
  return out;
}

void SharedModel::snapshot_into(std::vector<double>& out) const {
  out.resize(dim_);
  for (std::size_t j = 0; j < dim_; ++j) out[j] = load(j);
}

void SharedModel::assign(std::span<const double> values) {
  if (values.size() != dim_) {
    throw std::invalid_argument("SharedModel::assign: size mismatch");
  }
  for (std::size_t j = 0; j < dim_; ++j) store(j, values[j]);
}

void SharedModel::reset() noexcept {
  for (std::size_t j = 0; j < dim_; ++j) store(j, 0.0);
}

std::string update_policy_name(UpdatePolicy p) {
  switch (p) {
    case UpdatePolicy::kWild: return "wild";
    case UpdatePolicy::kAtomic: return "atomic";
    case UpdatePolicy::kStriped: return "striped";
    case UpdatePolicy::kLocked: return "locked";
  }
  return "?";
}

UpdatePolicy update_policy_from_name(const std::string& name) {
  if (name == "wild") return UpdatePolicy::kWild;
  if (name == "atomic") return UpdatePolicy::kAtomic;
  if (name == "striped") return UpdatePolicy::kStriped;
  if (name == "locked") return UpdatePolicy::kLocked;
  throw std::invalid_argument(
      "update_policy_from_name: unknown policy '" + name +
      "' (expected wild|atomic|striped|locked)");
}

}  // namespace isasgd::solvers
