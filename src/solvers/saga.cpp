#include "solvers/saga.hpp"

#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

Trace run_saga(const sparse::CsrMatrix& data,
               const objectives::Objective& objective,
               const SolverOptions& options, const EvalFn& eval,
               TrainingObserver* observer, const SnapshotHooks& hooks) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder("SAGA", 1,
                         options.step_size, eval, observer);

  // Gradient memory: scalar α_i per sample (GLM structure) and the dense
  // running aggregate ḡ = (1/n)·Σ α_i·x_i.
  std::vector<double> alpha(n, 0.0);
  std::vector<double> aggregate(d, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);

  util::Rng rng(options.seed);
  if (hooks.resume) {
    // Same shape as SAG: the gradient memory accumulates across epochs with
    // no refresh point, so all of it rides every checkpoint.
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
    alpha = hooks.resume->real_section("sag.alpha");
    aggregate = hooks.resume->real_section("sag.aggregate");
  }
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        for (std::size_t t = 0; t < n; ++t) {
          const std::size_t i = util::uniform_index(rng, n);
          const auto x = data.row(i);
          const auto idx = x.indices();
          const auto val = x.values();
          const double margin = sparse::sparse_dot(w, x);
          const double g = objective.gradient_scale(margin, data.label(i));
          const double delta = g - alpha[i];

          // SAGA update: w ← w − λ[(g − α_i)·x_i + ḡ + ∇r(w)].
          // The (g − α_i)·x_i part is index-compressed; ḡ and the
          // regularizer are the dense full-length pass (the §1.2 cost) —
          // both fused into one model traversal.
          sparse::scale_then_sparse_axpy(w, aggregate, step, eta_l1, eta_l2,
                                         step * delta, x);

          // Memory refresh: ḡ += (g − α_i)·x_i / n; α_i ← g. (Kept scalar:
          // the (delta·x)·1/n product order is part of the reference
          // arithmetic.)
          for (std::size_t k = 0; k < idx.size(); ++k) {
            aggregate[idx[k]] += delta * val[k] * inv_n;
          }
          alpha[i] = g;
        }
        detail::maybe_capture(hooks, "SAGA", epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                                state.reals["sag.alpha"] = alpha;
                                state.reals["sag.aggregate"] = aggregate;
                              });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SagaSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SAGA"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.variance_reduced = true, .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_saga(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                    ctx.observer, ctx.snapshot);
  }
};

ISASGD_REGISTER_SOLVER(SagaSolver);

}  // namespace

}  // namespace isasgd::solvers
