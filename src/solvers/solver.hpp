// The pluggable solver API: Solver + SolverRegistry.
//
// Each algorithm in the suite is a Solver subclass registered by name in the
// process-wide SolverRegistry from a static initialiser in its own
// translation unit. Adding a solver therefore touches zero core files:
//
//   // my_solver.cpp
//   namespace {
//   class MySolver final : public isasgd::solvers::Solver {
//    public:
//     std::string_view name() const noexcept override { return "MY-SOLVER"; }
//     SolverCapabilities capabilities() const noexcept override {
//       return {.parallel = true};
//     }
//    protected:
//     Trace run_impl(const SolverContext& ctx) const override { ... }
//   };
//   ISASGD_REGISTER_SOLVER(MySolver);
//   }  // namespace
//
// Lookup is name-based and case/punctuation-insensitive ("IS-ASGD" and
// "is_asgd" resolve identically). core::Trainer::train(name, ...) and the
// experiment sweeps dispatch exclusively through the registry; the legacy
// solvers::Algorithm enum shim was removed after its one release of grace.
// Dotted names namespace solver families ("dist.ps.is_asgd",
// "sim.delayed_sgd" — the simulated-time solvers from src/distributed/ and
// src/simulate/).
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/observer.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::distributed {
struct ClusterSpec;
}

namespace isasgd::core {
class NumaPolicy;
}

namespace isasgd::solvers {

/// Static facts about a solver, used by sweeps/CLIs to plan runs (e.g. a
/// serial solver is run once regardless of the requested thread counts).
/// Subsumes the old core::is_serial(Algorithm) switch.
struct SolverCapabilities {
  /// Honours SolverOptions::threads with concurrent workers.
  bool parallel = false;
  /// Samples from an importance distribution (Eq. 12 / Eq. 16).
  bool importance_sampling = false;
  /// Variance-reduced family (SVRG/SAG/SAGA-style dense aggregates).
  bool variance_reduced = false;
  /// Handles the regularizer through its prox map (exact sparsity for L1).
  bool proximal = false;
  /// Trains shard-by-shard from a data::DataSource without materialising
  /// the full matrix — out-of-core capable. Solvers without this flag still
  /// run on any source, through ctx.data()'s materialising fallback.
  bool streaming = false;
  /// Advances a simulated clock (discrete-event cluster or delay-injection
  /// engine, src/sim/): the produced Trace's time axis is simulated seconds
  /// (Trace::simulated_time is set), parallelism comes from the
  /// SolverContext's ClusterSpec rather than SolverOptions::threads, and
  /// runs are bit-reproducible for a fixed seed. Evaluators/sweeps must not
  /// compare these times against host wall-clock traces.
  bool simulated_time = false;
  /// Supports deterministic checkpoint/resume: honours SnapshotHooks —
  /// captures complete cross-epoch state at epoch fences into a
  /// SnapshotSink, restores from a SnapshotState, and guarantees the final
  /// model of a kill-at-fence-k + resume run is bit-identical to the
  /// uninterrupted run (see snapshot.hpp; enforced by
  /// tests/checkpoint_test.cpp for every solver declaring this).
  bool checkpointable = false;

  /// Ignores the thread count — one run covers every requested count.
  [[nodiscard]] bool serial() const noexcept { return !parallel; }
};

/// Everything a solver needs for one run. `source` and `objective` must
/// outlive the call; `observer` may be null. `pool` is the persistent
/// worker pool parallel solvers draw their teams from — normally the one
/// owned by the caller's core::ExecutionContext, shared across train calls
/// so worker threads are spawned once, not per run. Null falls back to the
/// process-wide default pool (serial solvers never touch it).
struct SolverContext {
  const data::DataSource& source;
  const objectives::Objective& objective;
  SolverOptions options;
  EvalFn eval;
  TrainingObserver* observer = nullptr;
  util::ThreadPool* pool = nullptr;
  /// Simulated-cluster cost model for the dist.* solvers, normally the one
  /// configured through core::TrainerBuilder::cluster(...) and carried by
  /// the ExecutionContext. Null ⇒ the default ClusterSpec (a 4-node 10 GbE
  /// cluster); non-simulated solvers ignore it entirely.
  const distributed::ClusterSpec* cluster = nullptr;
  /// NUMA placement policy (core/numa.hpp), normally the ExecutionContext's
  /// detected-topology policy. Null or inactive ⇒ flat allocation and no
  /// worker pinning — the pre-NUMA behaviour. Consulted by the shared-model
  /// solvers (is_asgd, asgd) to stripe the model across nodes and pin
  /// workers next to their shards.
  const core::NumaPolicy* numa = nullptr;
  /// Checkpoint endpoints (snapshot.hpp): resume-from state and/or a
  /// fence-time capture sink. Only consulted by solvers declaring
  /// capabilities().checkpointable; Solver::train rejects hooks on any
  /// other solver so a service can fail a checkpoint request up front
  /// instead of silently training without one.
  SnapshotHooks snapshot;

  /// The dataset as one full matrix — the classic in-memory view every
  /// non-streaming solver consumes. Free for in-memory sources; on a
  /// streaming source this materialises (and caches) the whole file, which
  /// works but defeats the memory budget — streaming-capable solvers
  /// iterate source.shard(...) instead and never call this.
  [[nodiscard]] const sparse::CsrMatrix& data() const {
    return source.materialize();
  }

  /// True when this run should take the shard-major path: the source is
  /// split into more than one shard (out-of-core, or the chunked in-memory
  /// reference geometry for streaming parity runs). A single-shard source —
  /// even a streaming one, whose lone shard is the whole dataset anyway —
  /// takes the classic path, so both backends produce identical arithmetic
  /// at every shard geometry, including the degenerate one.
  [[nodiscard]] bool sharded() const noexcept {
    return source.shard_count() > 1;
  }
};

/// Abstract solver. Subclasses implement run_impl; callers use train(),
/// which validates options and brackets the run with the observer's
/// begin/end callbacks so every solver reports identically.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Canonical display name, e.g. "IS-ASGD" (also the Trace::algorithm tag).
  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  [[nodiscard]] virtual SolverCapabilities capabilities() const noexcept = 0;

  /// Normalises `options` in place and rejects configurations this solver
  /// cannot run (throws std::invalid_argument). The base implementation is
  /// the single resolution point for deprecated back-compat flags: it folds
  /// `reshuffle_sequences` into `sequence_mode` (warning once per process).
  /// Overrides must call it.
  virtual void validate(SolverOptions& options) const;

  /// Validates ctx.options, then runs with observer begin/end bracketing.
  [[nodiscard]] Trace train(SolverContext ctx) const;

 protected:
  /// The algorithm itself. `ctx.options` arrives validated.
  [[nodiscard]] virtual Trace run_impl(const SolverContext& ctx) const = 0;
};

/// Process-wide name → Solver table. Registration normally happens via
/// ISASGD_REGISTER_SOLVER at static-init time; register_solver stays public
/// so tests and downstream applications can plug in solvers at runtime
/// (lookups and registration are mutex-guarded, and solvers are never
/// removed, so a returned Solver* stays valid for the process lifetime).
class SolverRegistry {
 public:
  /// The singleton instance.
  static SolverRegistry& instance();

  /// Lookup key normalisation: lower-case, '-' → '_' (so "IS-ASGD",
  /// "is-asgd" and "is_asgd" all address the same solver).
  [[nodiscard]] static std::string normalize(std::string_view name);

  /// Registers `solver` under its canonical name. Throws std::logic_error
  /// on a duplicate name or a null solver.
  void register_solver(std::unique_ptr<Solver> solver);

  /// Returns the solver registered under `name` (any normalisation-
  /// equivalent spelling), or nullptr when absent.
  [[nodiscard]] const Solver* find(std::string_view name) const noexcept;

  /// Like find, but throws std::invalid_argument listing every registered
  /// name when `name` is unknown.
  [[nodiscard]] const Solver& get(std::string_view name) const;

  /// Canonical names in registration order — the menu for CLIs and benches.
  [[nodiscard]] std::vector<std::string> list() const;

  SolverRegistry(const SolverRegistry&) = delete;
  SolverRegistry& operator=(const SolverRegistry&) = delete;

 private:
  SolverRegistry() = default;

  struct Entry {
    std::string key;  // normalized
    std::unique_ptr<Solver> solver;
  };
  mutable std::mutex mutex_;
  std::vector<Entry> entries_;  // registration order; ~a dozen entries
};

/// RAII registrar backing ISASGD_REGISTER_SOLVER.
struct SolverRegistration {
  explicit SolverRegistration(std::unique_ptr<Solver> solver) {
    SolverRegistry::instance().register_solver(std::move(solver));
  }
};

/// Registers `SolverType` (default-constructed) at static-init time. Place
/// at namespace scope in the solver's own .cpp. The library is linked as an
/// object library so these initialisers are never dropped.
#define ISASGD_REGISTER_SOLVER(SolverType)                       \
  const ::isasgd::solvers::SolverRegistration                    \
      solver_registration_for_##SolverType {                     \
    std::make_unique<SolverType>()                               \
  }

}  // namespace isasgd::solvers
