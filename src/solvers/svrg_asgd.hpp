// SVRG-ASGD — Algorithm 1: SVRG-styled asynchronous SGD (Reddi et al. 2015
// as the paper implements it, "without the skip-μ approximation").
//
// Workers run the SVRG inner loop lock-free on the shared model; at each
// sync point (epoch boundary here, per Algorithm 1 line 4) the snapshot s
// and the full gradient μ are recomputed. Because μ is dense, every inner
// iteration performs a full-length-d model pass: on sparse datasets this is
// magnitudes more work than ASGD's index-compressed update *and* makes every
// pair of concurrent updates conflict — the two §1.2 bottlenecks this
// library's Figure-4a bench reproduces.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::solvers {

/// Runs asynchronous SVRG with `options.threads` workers drawn from `pool`
/// (the process-wide default pool when null). The snapshot/μ recomputation
/// is part of the timed training window (it is training cost, and the
/// paper's wall-clock curves include it). `options.svrg_skip_mu` selects
/// the public-repo approximation.
Trace run_svrg_asgd(const sparse::CsrMatrix& data,
                    const objectives::Objective& objective,
                    const SolverOptions& options, const EvalFn& eval,
                    TrainingObserver* observer = nullptr,
                    util::ThreadPool* pool = nullptr);

}  // namespace isasgd::solvers
