#include "solvers/sag.hpp"

#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

Trace run_sag(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer, const SnapshotHooks& hooks) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder("SAG", 1,
                         options.step_size, eval, observer);

  // Gradient memory: scalar α_i per sample and the dense running average
  // ḡ = (1/n)·Σ α_i·x_i (maintained incrementally, like SAGA's).
  std::vector<double> alpha(n, 0.0);
  std::vector<double> aggregate(d, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);

  util::Rng rng(options.seed);
  if (hooks.resume) {
    // The gradient memory (α table + dense aggregate) accumulates across
    // epochs with no refresh point, so all of it rides every checkpoint.
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
    alpha = hooks.resume->real_section("sag.alpha");
    aggregate = hooks.resume->real_section("sag.aggregate");
  }
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        for (std::size_t t = 0; t < n; ++t) {
          const std::size_t i = util::uniform_index(rng, n);
          const auto x = data.row(i);
          const double margin = sparse::sparse_dot(w, x);
          const double g = objective.gradient_scale(margin, data.label(i));
          const double delta = (g - alpha[i]) * inv_n;

          // Refresh the memory first: SAG steps along the *updated*
          // average, ḡ_new = ḡ + (g − α_i)·x_i/n.
          sparse::sparse_axpy(aggregate, delta, x);
          alpha[i] = g;

          // w ← w − λ(ḡ_new + ∇r(w)): the dense full-length pass that puts
          // SAG on the §1.2 side of the sparsity argument (empty support:
          // the kernel's pure dense variance-reduction form).
          sparse::scale_then_sparse_axpy(w, aggregate, step, eta_l1, eta_l2,
                                         0.0, {});
        }
        detail::maybe_capture(hooks, "SAG", epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                                state.reals["sag.alpha"] = alpha;
                                state.reals["sag.aggregate"] = aggregate;
                              });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SagSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SAG"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.variance_reduced = true, .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_sag(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                   ctx.observer, ctx.snapshot);
  }
};

ISASGD_REGISTER_SOLVER(SagSolver);

}  // namespace

}  // namespace isasgd::solvers
