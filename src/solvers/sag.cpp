#include "solvers/sag.hpp"

#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

Trace run_sag(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder(algorithm_name(Algorithm::kSag), 1,
                         options.step_size, eval, observer);

  // Gradient memory: scalar α_i per sample and the dense running average
  // ḡ = (1/n)·Σ α_i·x_i (maintained incrementally, like SAGA's).
  std::vector<double> alpha(n, 0.0);
  std::vector<double> aggregate(d, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);

  util::Rng rng(options.seed);
  const double train_seconds = detail::run_epoch_fenced_serial(
      w, recorder, options.epochs, [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        for (std::size_t t = 0; t < n; ++t) {
          const std::size_t i = util::uniform_index(rng, n);
          const auto x = data.row(i);
          const auto idx = x.indices();
          const auto val = x.values();
          double margin = 0;
          for (std::size_t k = 0; k < idx.size(); ++k) {
            margin += w[idx[k]] * val[k];
          }
          const double g = objective.gradient_scale(margin, data.label(i));
          const double delta = (g - alpha[i]) * inv_n;

          // Refresh the memory first: SAG steps along the *updated*
          // average, ḡ_new = ḡ + (g − α_i)·x_i/n.
          for (std::size_t k = 0; k < idx.size(); ++k) {
            aggregate[idx[k]] += delta * val[k];
          }
          alpha[i] = g;

          // w ← w − λ(ḡ_new + ∇r(w)): the dense full-length pass that puts
          // SAG on the §1.2 side of the sparsity argument.
          for (std::size_t j = 0; j < d; ++j) {
            w[j] -= step * (aggregate[j] + options.reg.subgradient(w[j]));
          }
        }
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SagSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SAG"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.variance_reduced = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_sag(ctx.data, ctx.objective, ctx.options, ctx.eval,
                   ctx.observer);
  }
};

ISASGD_REGISTER_SOLVER(SagSolver);

}  // namespace

}  // namespace isasgd::solvers
