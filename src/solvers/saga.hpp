// SAGA (Defazio, Bach & Lacoste-Julien 2014) — the incremental-gradient VR
// method the paper cites alongside SVRG (§1.1) as "SVRG-styled".
//
// For a GLM the stored per-sample gradient is one scalar α_i (the gradient
// scale at the last visit), so the gradient table costs O(n) instead of
// O(n·d). The aggregate ḡ = (1/n)·Σ α_i·x_i, however, is dense — every
// update adds ḡ over the full model length, which puts SAGA on exactly the
// same side of the paper's §1.2 sparsity argument as SVRG: per-epoch
// convergence is excellent, per-iteration cost is O(d).
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial SAGA. One epoch = n iterations; the gradient table is
/// initialised to zero scales (equivalent to a zero-gradient memory start).
/// Checkpoint state (`hooks`, snapshot.hpp) is {model, RNG, α table, dense
/// aggregate ḡ}.
Trace run_saga(const sparse::CsrMatrix& data,
               const objectives::Objective& objective,
               const SolverOptions& options, const EvalFn& eval,
               TrainingObserver* observer = nullptr,
               const SnapshotHooks& hooks = {});

}  // namespace isasgd::solvers
