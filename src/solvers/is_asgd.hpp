// IS-ASGD — Algorithm 4: the paper's contribution.
//
// Pipeline (all offline steps timed as setup):
//   1. compute per-sample importances L_i (Eq. 12 weights),
//   2. compute ρ (Eq. 20) and choose Importance_Balancing (Algorithm 3) or
//      Random_Shuffling adaptively against ζ,
//   3. contiguous-split the rearranged data into numT shards; each worker
//      builds its local distribution P_tid = {L_i / Φ_tid},
//   4. pre-generate each worker's sample sequence S_tid,
//   5. Hogwild training: workers iterate their sequences, updating the
//      shared model with step λ/(N_tid·p_i) — which under importance balance
//      equals the paper's λ/(n·p_it) (line 15).
//
// The computation kernel is identical to ASGD's — that identity is the whole
// point, and the ablation benches verify it empirically.
#pragma once

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::core {
class NumaPolicy;
}

namespace isasgd::solvers {

/// Extra introspection from an IS-ASGD run (strategy actually applied, ρ,
/// shard-importance spread) for the balancing ablation.
struct IsAsgdReport {
  partition::Strategy applied_strategy = partition::Strategy::kShuffle;
  double rho = 0;
  double phi_imbalance = 0;  ///< (max Φ − min Φ)/mean Φ across shards
};

/// Runs IS-ASGD. If `report` is non-null it is filled with partition
/// diagnostics; the same diagnostics are published to `observer` as an
/// IsAsgdReport through on_diagnostics. Workers come from `pool` (the
/// process-wide default pool when null). `numa` (optional) enables NUMA
/// model placement: the shared model is striped across the nodes and each
/// worker is pinned next to the node owning its shard, with shard→node
/// assignment balanced over the partition's Φ totals. Placement never
/// changes results — only where the model's pages live.
///
/// `stats` (optional) feeds setup from pack-time row statistics: the
/// kLipschitz importance vector and the adaptive per-shard row norms come
/// from the sidecar instead of an O(nnz) pass over `data`, bit-identically.
Trace run_is_asgd(const sparse::CsrMatrix& data,
                  const objectives::Objective& objective,
                  const SolverOptions& options, const EvalFn& eval,
                  IsAsgdReport* report = nullptr,
                  TrainingObserver* observer = nullptr,
                  util::ThreadPool* pool = nullptr,
                  const core::NumaPolicy* numa = nullptr,
                  const data::RowStats* stats = nullptr);

}  // namespace isasgd::solvers
