#include "solvers/schedule.hpp"

#include <cmath>
#include <stdexcept>

#include "solvers/options.hpp"

namespace isasgd::solvers {

std::string schedule_name(ScheduleKind k) {
  switch (k) {
    case ScheduleKind::kConstant: return "constant";
    case ScheduleKind::kInvEpoch: return "inv_epoch";
    case ScheduleKind::kInvSqrtEpoch: return "inv_sqrt_epoch";
  }
  return "?";
}

ScheduleKind schedule_from_name(const std::string& name) {
  if (name == "constant") return ScheduleKind::kConstant;
  if (name == "inv_epoch") return ScheduleKind::kInvEpoch;
  if (name == "inv_sqrt_epoch") return ScheduleKind::kInvSqrtEpoch;
  throw std::invalid_argument("schedule_from_name: unknown schedule '" + name +
                              "' (expected constant|inv_epoch|inv_sqrt_epoch)");
}

double epoch_step(const SolverOptions& options, std::size_t epoch) {
  const double e = static_cast<double>(epoch > 0 ? epoch - 1 : 0);
  double lambda = options.step_size;
  switch (options.step_schedule) {
    case ScheduleKind::kConstant:
      break;
    case ScheduleKind::kInvEpoch:
      lambda /= 1.0 + e / options.schedule_offset;
      break;
    case ScheduleKind::kInvSqrtEpoch:
      lambda /= std::sqrt(1.0 + e / options.schedule_offset);
      break;
  }
  if (options.step_decay != 1.0) lambda *= std::pow(options.step_decay, e);
  return lambda;
}

double theory_step_size(double epsilon, double mu, double sup_l,
                        double sigma2) {
  if (!(epsilon > 0) || !(mu > 0) || !(sup_l > 0) || !(sigma2 >= 0)) {
    throw std::invalid_argument(
        "theory_step_size: need epsilon, mu, sup_l > 0 and sigma2 >= 0");
  }
  return epsilon * mu / (2.0 * epsilon * mu * sup_l + 2.0 * sigma2);
}

}  // namespace isasgd::solvers
