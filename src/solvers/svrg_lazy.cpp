#include "solvers/svrg_lazy.hpp"

#include <cmath>
#include <stdexcept>

#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

namespace {

/// Same full loss gradient as svrg_sgd.cpp (duplicated locally: the faithful
/// solver keeps its helper internal, and the two must stay independently
/// readable).
void full_loss_gradient(const sparse::CsrMatrix& data,
                        const objectives::Objective& objective,
                        std::span<const double> s, std::vector<double>& mu) {
  mu.assign(s.size(), 0.0);
  const double inv_n = 1.0 / static_cast<double>(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto x = data.row(i);
    const double margin = sparse::sparse_dot(s, x);
    const double g = objective.gradient_scale(margin, data.label(i)) * inv_n;
    sparse::sparse_axpy(mu, g, x);
  }
}

}  // namespace

Trace run_svrg_sgd_lazy(const sparse::CsrMatrix& data,
                        const objectives::Objective& objective,
                        const SolverOptions& options, const EvalFn& eval,
                        TrainingObserver* observer,
                        const SnapshotHooks& hooks) {
  if (options.reg.kind == objectives::Regularization::Kind::kL1) {
    throw std::invalid_argument(
        "run_svrg_sgd_lazy: L1's subgradient path has no per-coordinate "
        "closed form (it can cross zero and oscillate); use run_svrg_sgd, "
        "or an L2/none regularizer here");
  }
  const bool l2 = options.reg.kind == objectives::Regularization::Kind::kL2;
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder("SVRG-LAZY", 1, options.step_size, eval, observer);

  std::vector<double> s(d, 0.0);   // snapshot
  std::vector<double> mu(d, 0.0);  // full loss gradient at s
  std::vector<std::uint32_t> last(d, 0);  // per-coordinate dense clock
  util::Rng rng(options.seed);
  const std::size_t interval =
      std::max<std::size_t>(1, options.svrg_snapshot_interval);

  if (hooks.resume) {
    // The lazy clocks are all zero at every fence (the epoch flush below),
    // so the cross-epoch state is exactly the faithful solver's:
    // {w, rng, s, μ}.
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
    s = hooks.resume->real_section("svrg.anchor");
    mu = hooks.resume->real_section("svrg.mu");
  }

  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        const double a = 1.0 - step * options.reg.eta;  // L2 decay per step

        // Applies the dense recurrence for `m` missed steps to w[j]:
        //   none: w_j −= m·λ·μ_j
        //   L2:   w_j ← a^m·w_j − λ·μ_j·(1−a^m)/(1−a)
        auto catch_up = [&](std::size_t j, std::uint32_t m) {
          if (m == 0) return;
          if (!l2) {
            w[j] -= static_cast<double>(m) * step * mu[j];
          } else {
            const double am = std::pow(a, static_cast<double>(m));
            w[j] = am * w[j] - step * mu[j] * (1.0 - am) / (1.0 - a);
          }
        };

        if ((epoch - 1) % interval == 0) {
          // Snapshot refresh reads the true w: all clocks are 0 here (the
          // epoch-end flush below guarantees it).
          s = w;
          full_loss_gradient(data, objective, s, mu);
        }
        for (std::uint32_t t = 1; t <= n; ++t) {
          const std::size_t i = util::uniform_index(rng, n);
          const auto x = data.row(i);
          const double y = data.label(i);
          const auto idx = x.indices();
          const auto val = x.values();
          // Materialise the support to the state after iteration t−1, then
          // read both margins — identical values to the faithful schedule.
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const std::size_t j = idx[k];
            catch_up(j, t - 1 - last[j]);
            last[j] = t - 1;
          }
          double margin_w = 0, margin_s = 0;
          sparse::sparse_dot_pair(w, s, x, margin_w, margin_s);
          const double correction = objective.gradient_scale(margin_w, y) -
                                    objective.gradient_scale(margin_s, y);
          // Sparse correction, then this iteration's own dense step for the
          // support (the off-support coordinates accrue it lazily).
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const std::size_t j = idx[k];
            w[j] -= step * correction * val[k];
            w[j] -= step * (mu[j] + options.reg.subgradient(w[j]));
            last[j] = t;
          }
        }
        // Epoch flush: one O(d) pass so evaluation (and the next snapshot)
        // sees the true model. This is the *only* dense pass of the epoch.
        for (std::size_t j = 0; j < d; ++j) {
          catch_up(j, static_cast<std::uint32_t>(n) - last[j]);
          last[j] = 0;
        }
        detail::maybe_capture(hooks, "SVRG-LAZY", epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                                state.reals["svrg.anchor"] = s;
                                state.reals["svrg.mu"] = mu;
                              });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SvrgLazySolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SVRG-LAZY"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.variance_reduced = true, .checkpointable = true};
  }

  void validate(SolverOptions& options) const override {
    Solver::validate(options);
    // Fail before any setup work: L1 has no per-coordinate closed form for
    // the lazy catch-up (see the header's discussion).
    if (options.reg.kind == objectives::Regularization::Kind::kL1) {
      throw std::invalid_argument(
          "SVRG-LAZY: L1 regularization is not supported (no exact lazy "
          "catch-up); use SVRG-SGD or an L2/none regularizer");
    }
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_svrg_sgd_lazy(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                             ctx.observer, ctx.snapshot);
  }
};

ISASGD_REGISTER_SOLVER(SvrgLazySolver);

}  // namespace

}  // namespace isasgd::solvers
