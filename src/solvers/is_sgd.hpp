// IS-SGD — Algorithm 2: serial SGD with importance sampling.
//
// Sampling distribution P = {p_i ∝ L_i} is constructed once (Eq. 12); sample
// sequences are pre-generated so the training kernel is byte-for-byte the
// SGD kernel; updates are re-weighted by 1/(n·p_i) for unbiasedness (Eq. 8).
#pragma once

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Runs serial importance-sampled SGD. Sequence generation and distribution
/// construction are accounted to Trace::setup_seconds, exactly the cost the
/// paper's §4.2 overhead discussion covers.
///
/// Checkpointing (`hooks`, snapshot.hpp): in static mode the importance
/// distribution is recomputed at setup (a pure function of the dataset and
/// options) and the i.i.d. draw stream reseeds per epoch, so the snapshot
/// carries the model alone; the shuffled sequence modes additionally replay
/// their reshuffle stream via BlockSequence::rewind_to. Adaptive mode also
/// snapshots its live state: per-sample |φ'| cache, current importance
/// vector, and the first-refresh flag.
///
/// `stats` (optional) feeds setup from pack-time row statistics: the
/// kLipschitz importance vector and the adaptive row norms come from the
/// sidecar instead of an O(nnz) pass over `data`, bit-identically (the
/// sidecar stores the exact squared norms the loaded path would compute).
Trace run_is_sgd(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 const SolverOptions& options, const EvalFn& eval,
                 TrainingObserver* observer = nullptr,
                 const SnapshotHooks& hooks = {},
                 const data::RowStats* stats = nullptr);

}  // namespace isasgd::solvers
