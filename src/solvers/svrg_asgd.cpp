#include "solvers/svrg_asgd.hpp"

#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

namespace {

/// Parallel μ_loss = (1/n)·Σ_i φ'(s·x_i)·x_i. Rows are chunked across
/// `threads` pool workers; each worker accumulates into its own buffer,
/// then the buffers are reduced (dense, O(threads·d) — amortised once per
/// snapshot period).
void full_loss_gradient_parallel(util::ThreadPool& pool,
                                 const sparse::CsrMatrix& data,
                                 const objectives::Objective& objective,
                                 std::span<const double> s,
                                 std::vector<double>& mu,
                                 std::size_t threads) {
  const std::size_t n = data.rows();
  const std::size_t d = s.size();
  std::vector<std::vector<double>> partial(threads,
                                           std::vector<double>(d, 0.0));
  pool.run(threads, [&](std::size_t tid) {
    std::vector<double>& acc = partial[tid];
    const std::size_t begin = n * tid / threads;
    const std::size_t end = n * (tid + 1) / threads;
    for (std::size_t i = begin; i < end; ++i) {
      const auto x = data.row(i);
      const double margin = sparse::sparse_dot(s, x);
      const double g = objective.gradient_scale(margin, data.label(i));
      sparse::sparse_axpy(acc, g, x);
    }
  });
  mu.assign(d, 0.0);
  const double inv_n = 1.0 / static_cast<double>(n);
  for (const auto& acc : partial) {
    for (std::size_t j = 0; j < d; ++j) mu[j] += acc[j] * inv_n;
  }
}

}  // namespace

Trace run_svrg_asgd(const sparse::CsrMatrix& data,
                    const objectives::Objective& objective,
                    const SolverOptions& options, const EvalFn& eval,
                    TrainingObserver* observer, util::ThreadPool* pool_ptr) {
  util::ThreadPool& pool =
      pool_ptr ? *pool_ptr : util::default_thread_pool();
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  SharedModel model(d);
  TraceRecorder recorder("SVRG-ASGD", threads,
                         options.step_size, eval, observer);
  recorder.record(0, 0.0, model.wild_view());

  std::vector<double> s(d, 0.0);
  std::vector<double> mu(d, 0.0);
  const std::size_t interval =
      std::max<std::size_t>(1, options.svrg_snapshot_interval);
  const UpdatePolicy policy = options.update_policy;
  // Wild fast lane: the inner loop's dual margin read and its fused
  // sparse-correction + dense-μ pass run on the raw wild_view through the
  // ISASGD_RESTRICT kernels (sparse_dot_pair / scale_then_sparse_axpy) —
  // per-coordinate arithmetic identical to the atomic-load loops below
  // (see sparse/kernels.hpp's bit-compatibility contract).
  const bool wild = policy == UpdatePolicy::kWild;
  const std::span<double> wv = model.wild_view();
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();

  // Warm the pool before the clock starts (one-time worker spawn must not
  // pollute epoch 1's timed window).
  pool.reserve(threads);

  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1;
       epoch <= options.epochs && !recorder.stop_requested(); ++epoch) {
    const double step = epoch_step(options, epoch);
    clock.start();
    if ((epoch - 1) % interval == 0) {
      // Algorithm 1 lines 4–6: sync point — snapshot + full gradient.
      // Quiesced here (between pool.run fences), so the snapshot is exact
      // and reuses s's storage — no per-refresh allocation.
      model.snapshot_into(s);
      full_loss_gradient_parallel(pool, data, objective, s, mu, threads);
    }

    pool.run(threads, [&](std::size_t tid) {
      util::Rng rng(util::derive_seed(options.seed, epoch * 1000 + tid));
      const std::size_t iters = n * (tid + 1) / threads - n * tid / threads;
      for (std::size_t t = 0; t < iters; ++t) {
        const std::size_t i = util::uniform_index(rng, n);
        const auto x = data.row(i);
        const double y = data.label(i);
        if (wild && !options.svrg_skip_mu) {
          double margin_w = 0, margin_s = 0;
          sparse::sparse_dot_pair(wv, s, x, margin_w, margin_s);
          const double correction = objective.gradient_scale(margin_w, y) -
                                    objective.gradient_scale(margin_s, y);
          sparse::scale_then_sparse_axpy(wv, mu, step, eta_l1, eta_l2,
                                         step * correction, x);
          continue;
        }
        const auto idx = x.indices();
        const auto val = x.values();
        double margin_w = 0, margin_s = 0;
        for (std::size_t k = 0; k < idx.size(); ++k) {
          margin_w += model.load(idx[k]) * val[k];
          margin_s += s[idx[k]] * val[k];
        }
        const double correction = objective.gradient_scale(margin_w, y) -
                                  objective.gradient_scale(margin_s, y);
        for (std::size_t k = 0; k < idx.size(); ++k) {
          model.add(idx[k], -step * correction * val[k], policy);
        }
        if (!options.svrg_skip_mu) {
          // Algorithm 1 line 7's dense term: full-length pass every
          // iteration, performed lock-free like the rest of the update.
          for (std::size_t j = 0; j < d; ++j) {
            const double wj = model.load(j);
            model.add(j, -step * (mu[j] + options.reg.subgradient(wj)),
                      policy);
          }
        } else {
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const std::size_t j = idx[k];
            model.add(j, -step * options.reg.subgradient(model.load(j)),
                      policy);
          }
        }
      }
    });

    if (options.svrg_skip_mu) {
      for (std::size_t j = 0; j < d; ++j) {
        model.add(j, -step * static_cast<double>(n) * mu[j], policy);
      }
    }
    clock.stop();
    // Fence: workers quiesced, the raw view is an exact snapshot.
    recorder.record(epoch, clock.seconds(), wv);
  }
  if (options.keep_final_model) recorder.set_final_model(model.snapshot());
  return std::move(recorder).finish(clock.seconds());
}

namespace {

class SvrgAsgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SVRG-ASGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.parallel = true, .variance_reduced = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_svrg_asgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                         ctx.observer, ctx.pool);
  }
};

ISASGD_REGISTER_SOLVER(SvrgAsgdSolver);

}  // namespace

}  // namespace isasgd::solvers
