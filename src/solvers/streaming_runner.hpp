// Shard-major epoch drivers: the out-of-core counterparts of
// async_runner.hpp's epoch-fenced loops.
//
// One epoch = one pass over every shard of a data::DataSource, shards and
// within-shard rows both visited in the ShardedSequence order (a pure
// function of seed/epoch/shard, so results never depend on cache or
// prefetch state). While shard k is being processed, the next
// source.prefetch_depth() shards of the epoch's order are prefetched on the
// pool's background lane — on a streaming source the next reads overlap
// this shard's compute; on an in-memory source prefetch is a no-op. Each
// epoch ends with source.end_epoch(), the autotuner's observation point.
//
// Shard I/O deliberately lands *inside* the timed window: streaming traces
// measure true out-of-core throughput, which is exactly what
// bench/streaming compares against the in-memory path. Evaluation stays
// outside the clock, as everywhere else.
#pragma once

#include <cstddef>
#include <vector>

#include "data/data_source.hpp"
#include "sampling/sequence.hpp"
#include "solvers/model.hpp"
#include "solvers/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers::detail {

/// Serial shard-major epochs. `shard_body(shard, row_order, epoch)` performs
/// the updates for one shard: `shard.matrix->row(r)` for each shard-local r
/// in `row_order` (global row id = shard.row_begin + r). Returns total
/// training seconds; records one trace point per epoch like
/// run_epoch_fenced_serial. `fence(epoch)` runs after each epoch's shards
/// complete, outside the clock — checkpoint capture lands there. The range
/// form mirrors run_epoch_fenced_serial_range: the ShardedSequence schedule
/// is a pure function of (seed, epoch, shard), so a resumed run starting at
/// `first_epoch` replays exactly the shard/row orders the uninterrupted run
/// would have used — no sampler state to restore.
template <class ShardBodyFn, class FenceFn>
double run_epoch_fenced_serial_sharded_range(
    const data::DataSource& source, sampling::ShardedSequence& schedule,
    std::vector<double>& w, TraceRecorder& recorder, std::size_t first_epoch,
    std::size_t epochs, ShardBodyFn&& shard_body, FenceFn&& fence) {
  recorder.record(first_epoch - 1, 0.0, w);
  util::AccumulatingTimer clock;
  for (std::size_t epoch = first_epoch;
       epoch <= epochs && !recorder.stop_requested(); ++epoch) {
    schedule.begin_epoch(epoch);
    const auto order = schedule.shard_order();
    const std::size_t depth = source.prefetch_depth();
    clock.start();
    for (std::size_t k = 0; k < order.size(); ++k) {
      for (std::size_t d = 1; d <= depth && k + d < order.size(); ++d) {
        source.prefetch(order[k + d]);
      }
      const data::ShardPtr shard = source.shard(order[k]);
      shard_body(*shard, schedule.rows(order[k]), epoch);
    }
    clock.stop();
    source.end_epoch();
    fence(epoch);
    recorder.record(epoch, clock.seconds(), w);
  }
  return clock.seconds();
}

template <class ShardBodyFn>
double run_epoch_fenced_serial_sharded(const data::DataSource& source,
                                       sampling::ShardedSequence& schedule,
                                       std::vector<double>& w,
                                       TraceRecorder& recorder,
                                       std::size_t epochs,
                                       ShardBodyFn&& shard_body) {
  return run_epoch_fenced_serial_sharded_range(
      source, schedule, w, recorder, 1, epochs,
      std::forward<ShardBodyFn>(shard_body), [](std::size_t) {});
}

/// Parallel counterpart: per shard, `threads` workers run
/// `worker_shard(tid, shard, row_order, epoch)` concurrently on the shared
/// model (lock-free within the shard, exactly Hogwild inside a bounded
/// working set); the pool fence between shards is what lets the next shard
/// rotate in while the model stays consistent enough to evict the previous
/// one. Workers split `row_order` by contiguous slices of tid.
template <class WorkerShardFn>
double run_epoch_fenced_sharded(util::ThreadPool& pool,
                                const data::DataSource& source,
                                sampling::ShardedSequence& schedule,
                                SharedModel& model, TraceRecorder& recorder,
                                std::size_t epochs, std::size_t threads,
                                WorkerShardFn&& worker_shard) {
  // Fence-time scoring reads the raw wild_view (pool quiescent ⇒ exact):
  // the epoch loop never allocates a snapshot vector.
  recorder.record(0, 0.0, model.wild_view());
  if (recorder.stop_requested()) return 0.0;
  pool.reserve(threads);

  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    schedule.begin_epoch(epoch);
    const auto order = schedule.shard_order();
    const std::size_t depth = source.prefetch_depth();
    clock.start();
    for (std::size_t k = 0; k < order.size(); ++k) {
      for (std::size_t d = 1; d <= depth && k + d < order.size(); ++d) {
        source.prefetch(order[k + d]);
      }
      const data::ShardPtr shard = source.shard(order[k]);
      const auto row_order = schedule.rows(order[k]);
      pool.run(threads, [&](std::size_t tid) {
        worker_shard(tid, *shard, row_order, epoch);
      });
    }
    clock.stop();  // fence: all workers arrived, clock paused for scoring
    source.end_epoch();
    recorder.record(epoch, clock.seconds(), model.wild_view());
    if (recorder.stop_requested()) break;
  }
  return clock.seconds();
}

}  // namespace isasgd::solvers::detail
