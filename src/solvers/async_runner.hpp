// Epoch-fenced execution drivers shared by the asynchronous solvers.
//
// Within an epoch the workers are fully lock-free (that is the algorithm
// under study); at epoch boundaries the pool quiesces so the model can be
// scored against a stable snapshot, with the training clock paused —
// evaluation cost never pollutes the wall-clock traces the paper's Figures
// 4–5 are built from.
//
// Workers come from a persistent util::ThreadPool (normally the one owned
// by the caller's core::ExecutionContext) instead of being spawned per
// call: ThreadPool::run(team, fn) is the fence primitive — its return means
// every worker arrived, and the next dispatch is the release. Thread
// creation happens at most once per pool lifetime, outside the steady-state
// timed windows.
#pragma once

#include <cstddef>
#include <vector>

#include "sampling/sequence.hpp"
#include "solvers/model.hpp"
#include "solvers/trace.hpp"
#include "sparse/dispatch.hpp"
#include "sparse/kernels.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers::detail {

/// Resolves the pool a solver run should use: the context-provided one, or
/// the process-wide fallback for direct run_* callers that hold none.
inline util::ThreadPool& pool_or_default(util::ThreadPool* pool) {
  return pool ? *pool : util::default_thread_pool();
}

/// Margin dot for the gather half of an async step — the ONE place the
/// wild-vs-atomic read dispatch lives: under the kWild fast lane the read
/// goes through the SIMD sparse_dot on the raw wild_view; every other
/// discipline keeps relaxed per-element atomic loads. See model.hpp's
/// wild_view contract.
inline double gather_margin(const SharedModel& model,
                            sparse::SparseVectorView x, bool wild) noexcept {
  // Through the runtime-dispatched table directly: the per-call atomic load
  // in the kernels.cpp forwarders is cheap but not free, and this is the
  // hottest read in the library.
  return wild ? sparse::kernels::active().sparse_dot(model.wild_view(), x)
              : model.sparse_dot(x);
}

/// The write half of an async stochastic step — the ONE place the
/// regularized Hogwild coordinate update lives: under kWild the fused
/// ISASGD_RESTRICT kernel runs on the raw wild_view (bit-identical
/// per-coordinate arithmetic, see sparse/kernels.hpp); every other
/// discipline takes the per-element load → subgradient → add() path.
inline void apply_update(SharedModel& model, sparse::SparseVectorView x,
                         double step, double g,
                         const objectives::Regularization& reg,
                         UpdatePolicy policy) noexcept {
  if (policy == UpdatePolicy::kWild) {
    sparse::kernels::active().sparse_dot_residual_axpy(
        model.wild_view(), x, step, g, reg.eta_l1(), reg.eta_l2());
    return;
  }
  const auto idx = x.indices();
  const auto val = x.values();
  for (std::size_t j = 0; j < idx.size(); ++j) {
    const std::size_t c = idx[j];
    const double wc = model.load(c);
    model.add(c, -step * (g * val[j] + reg.subgradient(wc)), policy);
  }
}

/// The ONE translation from the option-level sequence mode to the sampling
/// layer's block mode. Adaptive importance always takes the i.i.d. stream —
/// its per-refresh rebuild() needs it; the shuffled modes' multiset is
/// fixed at construction.
inline sampling::BlockSequence::Mode block_mode(const SolverOptions& options) {
  if (options.adaptive_importance) return sampling::BlockSequence::Mode::kIid;
  switch (options.sequence_mode) {
    case SolverOptions::SequenceMode::kStratified:
      return sampling::BlockSequence::Mode::kStratified;
    case SolverOptions::SequenceMode::kReshuffle:
      return sampling::BlockSequence::Mode::kReshuffle;
    case SolverOptions::SequenceMode::kPregenerate:
      break;
  }
  return sampling::BlockSequence::Mode::kIid;
}

/// Runs `threads` logical workers for `epochs` epochs on `pool`.
/// `worker_epoch(tid, epoch)` is called once per worker per epoch (epoch is
/// 1-based) and must perform that worker's share of update iterations on
/// the shared model. Records one trace point per epoch (plus the initial
/// point at epoch 0) and returns the total training seconds. If the
/// recorder's observer requests a stop, the remaining epochs are simply not
/// dispatched — the pool has already drained at the fence.
template <class WorkerEpochFn>
double run_epoch_fenced(util::ThreadPool& pool, SharedModel& model,
                        TraceRecorder& recorder, std::size_t epochs,
                        std::size_t threads, WorkerEpochFn&& worker_epoch) {
  // Every record() below happens at a fence (pool quiescent), so the raw
  // wild_view is an exact snapshot and the scoring pass is allocation-free
  // — no per-epoch snapshot vector, no copy.
  recorder.record(0, 0.0, model.wild_view());
  if (recorder.stop_requested()) return 0.0;

  // Warm the pool before the clock starts: on a cold context the one-time
  // worker spawn must not land inside epoch 1's timed window.
  pool.reserve(threads);

  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    clock.start();
    pool.run(threads,
             [&](std::size_t tid) { worker_epoch(tid, epoch); });
    clock.stop();  // fence: all workers arrived, clock paused for scoring
    recorder.record(epoch, clock.seconds(), model.wild_view());
    if (recorder.stop_requested()) break;
  }
  return clock.seconds();
}

/// Serial counterpart: `epoch_body(epoch)` performs one epoch's iterations
/// on `w`; the driver manages clock pausing and recording symmetrically to
/// the async version so serial and async traces are directly comparable.
/// The range form exists for checkpoint resume (snapshot.hpp): a restored
/// run starts its fence loop at `first_epoch` = fence + 1, records the
/// restored model as its initial point (epoch first_epoch − 1), and runs the
/// remaining epochs — the epoch indices the bodies see are identical to the
/// uninterrupted run's, which is what keeps per-epoch seed derivations and
/// refresh cadences bit-compatible. first_epoch > epochs runs zero epochs
/// (a checkpoint taken at the final fence restores to a finished run).
template <class EpochBodyFn>
double run_epoch_fenced_serial_range(std::vector<double>& w,
                                     TraceRecorder& recorder,
                                     std::size_t first_epoch,
                                     std::size_t epochs,
                                     EpochBodyFn&& epoch_body) {
  recorder.record(first_epoch - 1, 0.0, w);
  util::AccumulatingTimer clock;
  for (std::size_t epoch = first_epoch;
       epoch <= epochs && !recorder.stop_requested(); ++epoch) {
    clock.start();
    epoch_body(epoch);
    clock.stop();
    recorder.record(epoch, clock.seconds(), w);
  }
  return clock.seconds();
}

template <class EpochBodyFn>
double run_epoch_fenced_serial(std::vector<double>& w, TraceRecorder& recorder,
                               std::size_t epochs, EpochBodyFn&& epoch_body) {
  return run_epoch_fenced_serial_range(w, recorder, 1, epochs,
                                       std::forward<EpochBodyFn>(epoch_body));
}

}  // namespace isasgd::solvers::detail
