// Epoch-fenced execution drivers shared by the asynchronous solvers.
//
// Within an epoch the workers are fully lock-free (that is the algorithm
// under study); at epoch boundaries the pool quiesces so the model can be
// scored against a stable snapshot, with the training clock paused —
// evaluation cost never pollutes the wall-clock traces the paper's Figures
// 4–5 are built from.
//
// Workers come from a persistent util::ThreadPool (normally the one owned
// by the caller's core::ExecutionContext) instead of being spawned per
// call: ThreadPool::run(team, fn) is the fence primitive — its return means
// every worker arrived, and the next dispatch is the release. Thread
// creation happens at most once per pool lifetime, outside the steady-state
// timed windows.
#pragma once

#include <cstddef>
#include <vector>

#include "solvers/model.hpp"
#include "solvers/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers::detail {

/// Resolves the pool a solver run should use: the context-provided one, or
/// the process-wide fallback for direct run_* callers that hold none.
inline util::ThreadPool& pool_or_default(util::ThreadPool* pool) {
  return pool ? *pool : util::default_thread_pool();
}

/// Runs `threads` logical workers for `epochs` epochs on `pool`.
/// `worker_epoch(tid, epoch)` is called once per worker per epoch (epoch is
/// 1-based) and must perform that worker's share of update iterations on
/// the shared model. Records one trace point per epoch (plus the initial
/// point at epoch 0) and returns the total training seconds. If the
/// recorder's observer requests a stop, the remaining epochs are simply not
/// dispatched — the pool has already drained at the fence.
template <class WorkerEpochFn>
double run_epoch_fenced(util::ThreadPool& pool, SharedModel& model,
                        TraceRecorder& recorder, std::size_t epochs,
                        std::size_t threads, WorkerEpochFn&& worker_epoch) {
  recorder.record(0, 0.0, model.snapshot());
  if (recorder.stop_requested()) return 0.0;

  // Warm the pool before the clock starts: on a cold context the one-time
  // worker spawn must not land inside epoch 1's timed window.
  pool.reserve(threads);

  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    clock.start();
    pool.run(threads,
             [&](std::size_t tid) { worker_epoch(tid, epoch); });
    clock.stop();  // fence: all workers arrived, clock paused for scoring
    recorder.record(epoch, clock.seconds(), model.snapshot());
    if (recorder.stop_requested()) break;
  }
  return clock.seconds();
}

/// Serial counterpart: `epoch_body(epoch)` performs one epoch's iterations
/// on `w`; the driver manages clock pausing and recording symmetrically to
/// the async version so serial and async traces are directly comparable.
template <class EpochBodyFn>
double run_epoch_fenced_serial(std::vector<double>& w, TraceRecorder& recorder,
                               std::size_t epochs, EpochBodyFn&& epoch_body) {
  recorder.record(0, 0.0, w);
  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1; epoch <= epochs && !recorder.stop_requested();
       ++epoch) {
    clock.start();
    epoch_body(epoch);
    clock.stop();
    recorder.record(epoch, clock.seconds(), w);
  }
  return clock.seconds();
}

}  // namespace isasgd::solvers::detail
