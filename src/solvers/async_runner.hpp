// Epoch-fenced worker-pool driver shared by the asynchronous solvers.
//
// Within an epoch the workers are fully lock-free (that is the algorithm
// under study); at epoch boundaries all workers meet the main thread at a
// barrier so the model can be scored against a quiesced snapshot, with the
// training clock paused — evaluation cost never pollutes the wall-clock
// traces the paper's Figures 4–5 are built from.
#pragma once

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "solvers/model.hpp"
#include "solvers/trace.hpp"
#include "util/barrier.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers::detail {

/// Runs `threads` workers for `epochs` epochs. `worker_epoch(tid, epoch)` is
/// called once per worker per epoch (epoch is 1-based) and must perform that
/// worker's share of update iterations on the shared model. Records one
/// trace point per epoch (plus the initial point at epoch 0) and returns the
/// total training seconds. If the recorder's observer requests a stop, the
/// workers drain at the next epoch fence and the run ends early.
template <class WorkerEpochFn>
double run_epoch_fenced(SharedModel& model, TraceRecorder& recorder,
                        std::size_t epochs, std::size_t threads,
                        WorkerEpochFn&& worker_epoch) {
  util::BlockingBarrier barrier(threads + 1);

  recorder.record(0, 0.0, model.snapshot());
  if (recorder.stop_requested()) return 0.0;

  // Raised by the main thread between the snapshot and release fences; the
  // release barrier sequences the store before any worker's load.
  std::atomic<bool> stop{false};

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    pool.emplace_back([&, tid] {
      for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
        worker_epoch(tid, epoch);
        barrier.arrive_and_wait();  // epoch done; main may snapshot
        barrier.arrive_and_wait();  // main done evaluating; next epoch
        if (stop.load(std::memory_order_relaxed)) break;
      }
    });
  }

  util::AccumulatingTimer clock;
  clock.start();
  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    barrier.arrive_and_wait();  // workers finished this epoch
    clock.stop();
    recorder.record(epoch, clock.seconds(), model.snapshot());
    if (recorder.stop_requested() && epoch < epochs) {
      stop.store(true, std::memory_order_relaxed);
    }
    clock.start();
    barrier.arrive_and_wait();  // release workers
    if (stop.load(std::memory_order_relaxed)) break;
  }
  clock.stop();
  for (auto& t : pool) t.join();
  return clock.seconds();
}

/// Serial counterpart: `epoch_body(epoch)` performs one epoch's iterations
/// on `w`; the driver manages clock pausing and recording symmetrically to
/// the async version so serial and async traces are directly comparable.
template <class EpochBodyFn>
double run_epoch_fenced_serial(std::vector<double>& w, TraceRecorder& recorder,
                               std::size_t epochs, EpochBodyFn&& epoch_body) {
  recorder.record(0, 0.0, w);
  util::AccumulatingTimer clock;
  for (std::size_t epoch = 1; epoch <= epochs && !recorder.stop_requested();
       ++epoch) {
    clock.start();
    epoch_body(epoch);
    clock.stop();
    recorder.record(epoch, clock.seconds(), w);
  }
  return clock.seconds();
}

}  // namespace isasgd::solvers::detail
