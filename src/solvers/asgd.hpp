// ASGD — Hogwild-style lock-free asynchronous SGD (Recht et al. 2011),
// the algorithm the paper sets out to accelerate.
//
// The dataset is shuffled and split into numT contiguous shards; each worker
// samples uniformly from its own shard and updates the shared model without
// any synchronisation (per the configured UpdatePolicy). One epoch = n total
// iterations across workers.
#pragma once

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::core {
class NumaPolicy;
}

namespace isasgd::solvers {

/// Runs lock-free asynchronous SGD with `options.threads` workers drawn
/// from `pool` (the process-wide default pool when null). `numa` (optional)
/// enables NUMA model placement: striped first-touch model allocation plus
/// shard→node worker pinning (shards are uniform here, so row counts stand
/// in for IS-ASGD's Φ totals). Never changes results.
Trace run_asgd(const sparse::CsrMatrix& data,
               const objectives::Objective& objective,
               const SolverOptions& options, const EvalFn& eval,
               TrainingObserver* observer = nullptr,
               util::ThreadPool* pool = nullptr,
               const core::NumaPolicy* numa = nullptr);

/// Out-of-core ASGD: shards are visited sequentially in the ShardedSequence
/// order; within each shard the workers split the shard's row order into
/// contiguous slices and update the shared model lock-free — Hogwild
/// confined to the resident working set, with the next shard prefetching in
/// the background. One epoch = one full pass over the source. The "ASGD"
/// registry entry dispatches here whenever the source is sharded.
Trace run_asgd_streaming(const data::DataSource& source,
                         const objectives::Objective& objective,
                         const SolverOptions& options, const EvalFn& eval,
                         TrainingObserver* observer = nullptr,
                         util::ThreadPool* pool = nullptr);

}  // namespace isasgd::solvers
