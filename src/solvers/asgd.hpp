// ASGD — Hogwild-style lock-free asynchronous SGD (Recht et al. 2011),
// the algorithm the paper sets out to accelerate.
//
// The dataset is shuffled and split into numT contiguous shards; each worker
// samples uniformly from its own shard and updates the shared model without
// any synchronisation (per the configured UpdatePolicy). One epoch = n total
// iterations across workers.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::util {
class ThreadPool;
}

namespace isasgd::solvers {

/// Runs lock-free asynchronous SGD with `options.threads` workers drawn
/// from `pool` (the process-wide default pool when null).
Trace run_asgd(const sparse::CsrMatrix& data,
               const objectives::Objective& objective,
               const SolverOptions& options, const EvalFn& eval,
               TrainingObserver* observer = nullptr,
               util::ThreadPool* pool = nullptr);

}  // namespace isasgd::solvers
