#include "solvers/solver.hpp"

#include <cctype>
#include <mutex>
#include <stdexcept>

#include "util/logging.hpp"

namespace isasgd::solvers {

void Solver::validate(SolverOptions& options) const {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  // The single resolution point for the deprecated flag.
  if (options.reshuffle_sequences) {
    static std::once_flag warned;
    std::call_once(warned, [] {
      util::log_warn()
          << "SolverOptions::reshuffle_sequences is deprecated; set "
             "sequence_mode = SequenceMode::kReshuffle instead";
    });
    options.sequence_mode = SolverOptions::SequenceMode::kReshuffle;
    options.reshuffle_sequences = false;
  }
#pragma GCC diagnostic pop
  if (options.threads == 0) options.threads = 1;
  if (options.step_size <= 0) {
    throw std::invalid_argument(std::string(name()) +
                                ": step_size must be positive");
  }
}

Trace Solver::train(SolverContext ctx) const {
  validate(ctx.options);
  const std::string solver_name(name());
  if (ctx.snapshot.active() && !capabilities().checkpointable) {
    throw std::invalid_argument(
        solver_name +
        ": solver does not declare capabilities().checkpointable — "
        "checkpoint/resume hooks are not supported");
  }
  if (ctx.snapshot.resume) {
    detail::check_resume(*ctx.snapshot.resume, solver_name, ctx.options.seed,
                         ctx.options.epochs, ctx.source.dim());
  }
  if (ctx.observer) ctx.observer->on_train_begin(solver_name, ctx.options);
  Trace trace = run_impl(ctx);
  if (ctx.observer) ctx.observer->on_train_end(trace);
  return trace;
}

SolverRegistry& SolverRegistry::instance() {
  static SolverRegistry registry;
  return registry;
}

std::string SolverRegistry::normalize(std::string_view name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    key.push_back(c == '-' ? '_'
                           : static_cast<char>(std::tolower(
                                 static_cast<unsigned char>(c))));
  }
  return key;
}

void SolverRegistry::register_solver(std::unique_ptr<Solver> solver) {
  if (!solver) {
    throw std::logic_error("SolverRegistry::register_solver: null solver");
  }
  const std::string key = normalize(solver->name());
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.key == key) {
      throw std::logic_error("SolverRegistry: duplicate solver name '" +
                             std::string(solver->name()) + "'");
    }
  }
  entries_.push_back(Entry{key, std::move(solver)});
}

const Solver* SolverRegistry::find(std::string_view name) const noexcept {
  const std::string key = normalize(name);
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Entry& e : entries_) {
    if (e.key == key) return e.solver.get();
  }
  return nullptr;
}

const Solver& SolverRegistry::get(std::string_view name) const {
  if (const Solver* s = find(name)) return *s;
  std::string message = "unknown solver '" + std::string(name) +
                        "'; registered solvers:";
  for (const std::string& registered : list()) {
    message += ' ';
    message += registered;
  }
  throw std::invalid_argument(message);
}

std::vector<std::string> SolverRegistry::list() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const Entry& e : entries_) names.emplace_back(e.solver->name());
  return names;
}

}  // namespace isasgd::solvers
