// Deterministic checkpoint/resume: the solver-side state capture layer.
//
// A solver that declares SolverCapabilities::checkpointable can export its
// complete cross-epoch state at any epoch fence as a SnapshotState — model
// vector, RNG stream words, optimizer aggregates (SVRG anchors, SAG/SAGA
// gradient memory, adaptive-IS weights) — and later restore from one and
// continue as if never interrupted. The contract is *bit parity*: for a
// fixed SolverOptions, capture-at-epoch-k + restore-in-a-fresh-process +
// train-to-completion produces a final model bit-identical to the
// uninterrupted run (tests/checkpoint_test.cpp enforces this for every
// checkpointable registry solver).
//
// What makes the contract cheap to honour here is PR 5's sequence layer:
// sampling::BlockSequence's i.i.d. draw stream is reseeded per epoch as a
// pure function of (seed, epoch), so at an epoch fence the sampler carries
// no hidden draw-cursor state — only the shuffled modes need their
// reshuffle stream replayed (BlockSequence::rewind_to) and only the
// uniform-sampling solvers need their raw RNG words exported.
//
// The wire format lives in io/checkpoint.hpp (versioned sections, CRC32
// each); this header is deliberately I/O-free so solvers never depend on
// the io layer. src/service/ connects the two: its TrainingService installs
// a SnapshotSink per job and serialises captured states at fences.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/rng.hpp"

namespace isasgd::solvers {

/// A solver's complete cross-epoch state at one epoch fence. Generic
/// container: the model and bookkeeping scalars are first-class fields;
/// everything solver-specific rides in the named `reals`/`words` sections
/// ("rng", "svrg.anchor", "sag.alpha", ...) so the io layer and the service
/// never need per-solver knowledge.
struct SnapshotState {
  /// Canonical Solver::name() that produced (and may consume) this state.
  std::string solver;
  /// Completed epochs at capture — resume continues at epoch + 1.
  std::uint64_t epoch = 0;
  /// SolverOptions::seed of the producing run; restore refuses a mismatch
  /// (a different seed would silently break the determinism contract).
  std::uint64_t seed = 0;
  /// SolverOptions::epochs of the producing run (diagnostic only; the
  /// resuming run's own budget governs).
  std::uint64_t epochs_budget = 0;
  /// data::DataSource::fingerprint() of the training set; restore against a
  /// different dataset is refused by the service layer.
  std::uint64_t dataset_fingerprint = 0;
  /// The model vector at the fence.
  std::vector<double> model;
  /// Solver-specific double-vector sections (optimizer aggregates, weights).
  std::map<std::string, std::vector<double>> reals;
  /// Solver-specific u64-vector sections (RNG states, flags, cursors).
  std::map<std::string, std::vector<std::uint64_t>> words;

  /// Section accessors that throw std::invalid_argument naming the missing
  /// section — a checkpoint from the wrong solver fails loudly, not with a
  /// silent default.
  [[nodiscard]] const std::vector<double>& real_section(
      const std::string& name) const;
  [[nodiscard]] const std::vector<std::uint64_t>& word_section(
      const std::string& name) const;
  /// Single-scalar convenience over word_section.
  [[nodiscard]] std::uint64_t word(const std::string& name) const;

  /// Stores `rng`'s four state words under `name`.
  void put_rng(const std::string& name, const util::Rng& rng);
  /// Rebuilds a generator from put_rng's section.
  [[nodiscard]] util::Rng get_rng(const std::string& name) const;
};

/// Receives fence-time state captures. Implemented by the training service
/// (and the tests); solvers consult wants() before paying the O(d + state)
/// copy, so an idle sink costs one predictable branch per epoch.
class SnapshotSink {
 public:
  virtual ~SnapshotSink() = default;

  /// True when the sink wants the state at this fence (1-based epoch, the
  /// epoch that just completed). Must be cheap — called every epoch.
  [[nodiscard]] virtual bool wants(std::size_t epoch) const = 0;

  /// Delivers the captured state. Called at the fence, on the training
  /// thread, with the pool quiescent.
  virtual void capture(SnapshotState state) = 0;
};

/// The pair of optional checkpoint endpoints a run can carry: `resume`
/// restores state before the first epoch; `sink` captures state at fences.
/// Both null ⇒ exactly the pre-checkpoint behaviour.
struct SnapshotHooks {
  const SnapshotState* resume = nullptr;
  SnapshotSink* sink = nullptr;

  [[nodiscard]] bool active() const noexcept { return resume || sink; }

  /// The epoch the run's fence loop starts from: 1 normally, or one past
  /// the restored fence when resuming.
  [[nodiscard]] std::size_t first_epoch() const noexcept {
    return resume ? static_cast<std::size_t>(resume->epoch) + 1 : 1;
  }
};

namespace detail {

/// Fence-side capture helper: when the sink wants this epoch, builds the
/// common header + model copy and lets `fill` add the solver's own
/// sections. `solver` must be the canonical Solver::name().
template <class FillFn>
void maybe_capture(const SnapshotHooks& hooks, std::string_view solver,
                   std::size_t epoch, std::uint64_t seed,
                   std::size_t epochs_budget, std::span<const double> w,
                   FillFn&& fill) {
  if (!hooks.sink || !hooks.sink->wants(epoch)) return;
  SnapshotState state;
  state.solver = std::string(solver);
  state.epoch = epoch;
  state.seed = seed;
  state.epochs_budget = epochs_budget;
  state.model.assign(w.begin(), w.end());
  fill(state);
  hooks.sink->capture(std::move(state));
}

/// Restore-side validation shared by every checkpointable solver: the state
/// must come from the same solver, the same seed, and a model of the same
/// dimensionality, and its fence must lie within the resuming run's epoch
/// budget. Throws std::invalid_argument describing the first mismatch.
void check_resume(const SnapshotState& state, std::string_view solver,
                  std::uint64_t seed, std::size_t epochs, std::size_t dim);

}  // namespace detail

}  // namespace isasgd::solvers
