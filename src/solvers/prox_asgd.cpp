#include "solvers/prox_sgd.hpp"

#include <memory>
#include <numeric>
#include <vector>

#include "objectives/prox.hpp"
#include "partition/partition.hpp"
#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

Trace run_prox_asgd(const sparse::CsrMatrix& data,
                    const objectives::Objective& objective,
                    const SolverOptions& options, bool use_importance,
                    const EvalFn& eval, ProxReport* report,
                    TrainingObserver* observer, util::ThreadPool* pool) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  SharedModel model(data.dim());
  TraceRecorder recorder(use_importance ? "IS-PROX-ASGD" : "PROX-ASGD",
                        threads, options.step_size, eval, observer);

  // ---- Offline phase: Algorithm-4 partition + per-shard sequences ----
  util::Stopwatch setup;
  const std::vector<double> importance =
      detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  if (!use_importance) popt.strategy = partition::Strategy::kShuffle;
  popt.shuffle_seed = options.seed ^ 0x9a0c;
  const partition::PartitionPlan plan(importance, threads, popt);

  struct WorkerState {
    std::vector<double> weight;  // 1/(N_tid·p_i), unit for uniform
    std::unique_ptr<sampling::BlockSequence> seq;
    util::Rng rng;
  };
  std::vector<WorkerState> workers(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    const partition::Shard shard = plan.shard(tid);
    const std::size_t local_n = shard.rows.size();
    WorkerState& ws = workers[tid];
    ws.weight.assign(local_n, 1.0);
    ws.rng.reseed(util::derive_seed(options.seed, 0xa90c + tid));
    if (use_importance && local_n > 0) {
      for (std::size_t k = 0; k < local_n; ++k) {
        const double p = shard.probabilities[k];
        ws.weight[k] =
            p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
      }
      // One persistent alias table per worker; per-epoch draws stream from
      // it under the retired pre-materialized layout's epoch seeds.
      ws.seq = std::make_unique<sampling::BlockSequence>(
          sampling::BlockSequence::Mode::kIid, shard.probabilities, local_n,
          options.seed);
    }
  }
  recorder.add_setup_seconds(setup.seconds());

  const UpdatePolicy policy = options.update_policy;
  // Wild fast lane: margin dot through the SIMD kernel and the prox map
  // applied directly on the raw view — the same racy load→fn→store the
  // kWild branch of SharedModel::update performs, minus the per-element
  // atomic_ref calls (see model.hpp's wild_view contract).
  const bool wild = policy == UpdatePolicy::kWild;
  const std::span<double> wv = model.wild_view();
  const double train_seconds = detail::run_epoch_fenced(
      detail::pool_or_default(pool), model, recorder, options.epochs, threads,
      [&](std::size_t tid, std::size_t epoch) {
        const partition::Shard shard = plan.shard(tid);
        const std::size_t local_n = shard.rows.size();
        if (local_n == 0) return;
        WorkerState& ws = workers[tid];
        const double lambda = epoch_step(options, epoch);
        if (use_importance) {
          ws.seq->begin_epoch(
              epoch,
              util::derive_seed(options.seed, 300 + tid * 1000 + (epoch - 1)));
        }
        for (std::size_t t = 0; t < local_n; ++t) {
          const std::size_t slot =
              use_importance
                  ? ws.seq->next()
                  : static_cast<std::size_t>(
                        util::uniform_index(ws.rng, local_n));
          const std::size_t i = shard.rows[slot];
          const auto x = data.row(i);
          const double margin = detail::gather_margin(model, x, wild);
          const double g =
              objective.gradient_scale(margin, data.label(i)) *
              ws.weight[slot];
          const auto idx = x.indices();
          const auto val = x.values();
          if (wild) {
            for (std::size_t k = 0; k < idx.size(); ++k) {
              double& wj = wv[idx[k]];
              wj = objectives::prox(options.reg, wj - lambda * g * val[k],
                                    lambda);
            }
          } else {
            for (std::size_t k = 0; k < idx.size(); ++k) {
              const double gstep = lambda * g * val[k];
              model.update(
                  idx[k],
                  [&](double v) {
                    return objectives::prox(options.reg, v - gstep, lambda);
                  },
                  policy);
            }
          }
        }
      });

  const std::vector<double> w = model.snapshot();
  {
    ProxReport diagnostics;
    std::size_t zeros = 0;
    for (double v : w) zeros += v == 0.0;
    diagnostics.sparsity =
        static_cast<double>(zeros) / static_cast<double>(data.dim());
    if (report) *report = diagnostics;
    if (observer) observer->on_diagnostics(diagnostics);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class ProxAsgdSolver final : public Solver {
 public:
  ProxAsgdSolver(std::string_view name, bool use_importance)
      : name_(name), use_importance_(use_importance) {}

  std::string_view name() const noexcept override { return name_; }
  SolverCapabilities capabilities() const noexcept override {
    return {.parallel = true,
            .importance_sampling = use_importance_,
            .proximal = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_prox_asgd(ctx.data(), ctx.objective, ctx.options, use_importance_,
                         ctx.eval, /*report=*/nullptr, ctx.observer, ctx.pool);
  }

 private:
  std::string_view name_;
  bool use_importance_;
};

const SolverRegistration prox_asgd_registration{
    std::make_unique<ProxAsgdSolver>("PROX-ASGD", false)};
const SolverRegistration is_prox_asgd_registration{
    std::make_unique<ProxAsgdSolver>("IS-PROX-ASGD", true)};

}  // namespace

}  // namespace isasgd::solvers
