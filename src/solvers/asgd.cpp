#include "solvers/asgd.hpp"

#include <atomic>
#include <span>
#include <utility>

#include "core/numa.hpp"
#include "partition/balancer.hpp"
#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "solvers/streaming_runner.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

namespace {

/// Applies one gathered mini-batch to the shared model — each row through
/// detail::apply_update, the single home of the Hogwild coordinate update
/// (wild fast lane included). Shared by the in-memory and streaming
/// drivers so the update rule can only ever change in one place.
inline void apply_batch(SharedModel& model, const sparse::CsrMatrix& rows,
                        std::span<const std::pair<std::size_t, double>> batch,
                        double batch_step,
                        const objectives::Regularization& reg,
                        UpdatePolicy policy) {
  for (const auto& [i, g] : batch) {
    detail::apply_update(model, rows.row(i), batch_step, g, reg, policy);
  }
}

}  // namespace

Trace run_asgd(const sparse::CsrMatrix& data,
               const objectives::Objective& objective,
               const SolverOptions& options, const EvalFn& eval,
               TrainingObserver* observer, util::ThreadPool* pool,
               const core::NumaPolicy* numa) {
  const std::size_t n = data.rows();
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  TraceRecorder recorder("ASGD", threads,
                         options.step_size, eval, observer);

  // Shuffled contiguous shards: worker tid owns rows
  // order[n·tid/threads .. n·(tid+1)/threads).
  const std::vector<std::uint32_t> order =
      partition::random_shuffle(n, options.seed ^ 0xa5a5);
  std::vector<std::size_t> boundary(threads + 1);
  for (std::size_t a = 0; a <= threads; ++a) boundary[a] = n * a / threads;

  // NUMA placement (inactive single-node): ASGD's shards are uniform, so
  // row counts stand in for IS-ASGD's Φ totals when balancing shards over
  // nodes. See run_is_asgd for the full rationale.
  std::vector<double> shard_mass(threads);
  for (std::size_t a = 0; a < threads; ++a) {
    shard_mass[a] = static_cast<double>(boundary[a + 1] - boundary[a]);
  }
  const core::NumaPlacement placement =
      core::plan_placement(numa, shard_mass, data.dim());
  SharedModel model(data.dim(), placement);
  if (placement.active) {
    detail::pool_or_default(pool).set_worker_cpus(
        core::worker_cpu_plan(placement, threads));
  }

  // Per-worker RNG streams, padded to avoid false sharing.
  std::vector<util::CachePadded<util::Rng>> rngs(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    rngs[tid].value.reseed(util::derive_seed(options.seed, tid));
  }
  const UpdatePolicy policy = options.update_policy;
  const bool wild = policy == UpdatePolicy::kWild;
  // Per-worker gather scratch, allocated once for the run — the epoch body
  // must stay allocation-free.
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<std::vector<std::pair<std::size_t, double>>> batches(threads);
  for (auto& scratch : batches) scratch.resize(b);

  const double train_seconds = detail::run_epoch_fenced(
      detail::pool_or_default(pool), model, recorder, options.epochs, threads,
      [&](std::size_t tid, std::size_t epoch) {
        const std::size_t begin = boundary[tid], end = boundary[tid + 1];
        const std::size_t local_n = end - begin;
        if (local_n == 0) return;
        util::Rng& rng = rngs[tid].value;
        // The schedule is a pure function of the epoch, so every worker
        // derives the same λ locally — no shared decay state to race on.
        const double lambda = epoch_step(options, epoch);
        const std::size_t updates = (local_n + b - 1) / b;
        std::vector<std::pair<std::size_t, double>>& batch = batches[tid];
        for (std::size_t u = 0; u < updates; ++u) {
          // Gather the mini-batch's gradient scales against the current
          // (racy) model state, then apply; b = 1 is the paper's kernel.
          for (std::size_t k = 0; k < b; ++k) {
            const std::size_t i =
                order[begin + util::uniform_index(rng, local_n)];
            const double margin = detail::gather_margin(model, data.row(i), wild);
            batch[k] = {i, objective.gradient_scale(margin, data.label(i))};
          }
          apply_batch(model, data, batch, lambda / static_cast<double>(b),
                      options.reg, policy);
        }
      });
  if (options.keep_final_model) recorder.set_final_model(model.snapshot());
  return std::move(recorder).finish(train_seconds);
}

Trace run_asgd_streaming(const data::DataSource& source,
                         const objectives::Objective& objective,
                         const SolverOptions& options, const EvalFn& eval,
                         TrainingObserver* observer, util::ThreadPool* pool) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  SharedModel model(source.dim());
  TraceRecorder recorder("ASGD", threads,
                         options.step_size, eval, observer);
  sampling::ShardedSequence schedule(source.shard_sizes(), options.seed);
  const UpdatePolicy policy = options.update_policy;
  const bool wild = policy == UpdatePolicy::kWild;
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  // Per-worker gather scratch, allocated once for the whole run: the shard
  // loop is inside the timed window, so per-shard allocations would tax the
  // very throughput bench/streaming measures.
  std::vector<std::vector<std::pair<std::size_t, double>>> batches(threads);
  for (auto& scratch : batches) scratch.resize(b);

  const double train_seconds = detail::run_epoch_fenced_sharded(
      detail::pool_or_default(pool), source, schedule, model, recorder,
      options.epochs, threads,
      [&](std::size_t tid, const data::Shard& shard,
          std::span<const std::uint32_t> row_order, std::size_t epoch) {
        // Worker tid owns the contiguous slice [begin, end) of this shard's
        // row order — a without-replacement split, the shard-local analog of
        // run_asgd's per-worker dataset shards.
        const std::size_t local_n = row_order.size();
        const std::size_t begin = local_n * tid / threads;
        const std::size_t end = local_n * (tid + 1) / threads;
        if (begin == end) return;
        const sparse::CsrMatrix& rows = *shard.matrix;
        const double lambda = epoch_step(options, epoch);
        std::vector<std::pair<std::size_t, double>>& batch = batches[tid];
        for (std::size_t at = begin; at < end; at += b) {
          const std::size_t count = std::min(b, end - at);
          for (std::size_t k = 0; k < count; ++k) {
            const std::size_t i = row_order[at + k];
            const double margin = detail::gather_margin(model, rows.row(i), wild);
            batch[k] = {i, objective.gradient_scale(margin, rows.label(i))};
          }
          apply_batch(model, rows, {batch.data(), count},
                      lambda / static_cast<double>(count), options.reg,
                      policy);
        }
      });
  if (options.keep_final_model) recorder.set_final_model(model.snapshot());
  return std::move(recorder).finish(train_seconds);
}

namespace {

class AsgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "ASGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.parallel = true, .streaming = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    if (ctx.sharded()) {
      return run_asgd_streaming(ctx.source, ctx.objective, ctx.options,
                                ctx.eval, ctx.observer, ctx.pool);
    }
    return run_asgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                    ctx.observer, ctx.pool, ctx.numa);
  }
};

ISASGD_REGISTER_SOLVER(AsgdSolver);

}  // namespace

}  // namespace isasgd::solvers
