// Lazy-aggregated SVRG: a constructive test of the paper's §1.2 claim.
//
// The paper argues SVRG is "intrinsically dense": every inner iteration
// adds the full-length μ, so the per-iteration cost is Θ(d) no matter how
// sparse the stochastic gradients are. That is true of the *textbook
// schedule* — but between two touches of coordinate j the dense
// contribution is a deterministic recurrence,
//
//   none:  w_j ← w_j − λμ_j                    (arithmetic)
//   L2:    w_j ← (1 − λη)·w_j − λμ_j           (affine; geometric sum)
//
// so it can be applied *on demand*: keep a per-coordinate last-touch clock,
// and when the sparse part of an update (or an evaluation) needs w_j, catch
// it up with the closed form for the missed steps. The inner loop then
// costs O(nnz) amortised, with one O(d) flush per epoch — the same
// asymptotics as ASGD — while computing the *same iterates* as faithful
// SVRG up to floating-point reassociation (the tests pin agreement to
// ~1e-10).
//
// What survives of §1.2: the trick needs the regularizer's lazy recurrence
// to have a closed form. `none` and `L2` do; the paper's evaluation
// objective is L1-regularised, whose subgradient path can cross zero and
// oscillate, and the faithful per-step semantics admit no per-coordinate
// closed form — run_svrg_sgd_lazy therefore rejects L1. So the honest
// restatement of the paper's claim is: *SVRG's density is removable for
// smooth regularizers, but its serial-dependency structure (unlike IS's
// offline sequences) still blocks the lock-free ASGD kernel, and for L1 the
// density is real.* See EXPERIMENTS.md and bench/ablation_svrg_cost.
#pragma once

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "solvers/snapshot.hpp"
#include "solvers/trace.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers {

/// Serial SVRG with lazily-aggregated dense terms. Matches run_svrg_sgd's
/// iterates for Regularization kNone/kL2 (up to fp reassociation); throws
/// std::invalid_argument for kL1 (no exact per-coordinate closed form).
/// `options.svrg_skip_mu` is ignored — laziness *is* the faithful schedule.
/// Checkpoint state (`hooks`, snapshot.hpp) is {model, RNG, anchor s, μ}:
/// the lazy clocks are flushed to zero at every epoch fence, so they never
/// appear in a snapshot.
Trace run_svrg_sgd_lazy(const sparse::CsrMatrix& data,
                        const objectives::Objective& objective,
                        const SolverOptions& options, const EvalFn& eval,
                        TrainingObserver* observer = nullptr,
                        const SnapshotHooks& hooks = {});

}  // namespace isasgd::solvers
