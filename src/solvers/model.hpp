// The shared parameter vector for lock-free asynchronous solvers.
//
// Hogwild (Recht et al. 2011) updates the model from many threads with no
// locks, accepting lost component updates. SharedModel stores plain
// `double`s and mediates concurrent access through C++20
// std::atomic_ref<double> (lock-free on every supported target, enforced
// below), offering four disciplines:
//
//   kWild    — relaxed load, add in a register, relaxed store. On x86 this
//              compiles to the same movsd pair as unsynchronised code and has
//              identical lost-update semantics, but every access is atomic so
//              behaviour is defined.
//   kAtomic  — relaxed fetch_add (C++20 native on doubles): never loses an
//              update; slower under contention (lock cmpxchg loop).
//   kStriped — per-stripe spinlock around the load/add/store (coordinate j
//              maps to stripe j mod S): the locked fine-grained comparator.
//   kLocked  — a single spinlock (stripe 0) for every coordinate: the fully
//              serialised straw man the Hogwild paper argues against.
//
// Plain storage + atomic_ref (instead of std::vector<std::atomic<double>>)
// is what makes wild_view() possible: the buffer really is a contiguous
// double array, so the hottest loops in the library — the margin dot and
// the fused update of the async solvers — can run on the ISASGD_RESTRICT
// SIMD kernels of sparse/kernels.hpp instead of per-element atomic calls.
// See wild_view() for the exact validity contract.
//
// The Fig-3 concurrency-sensitivity results reproduce under kWild and
// kAtomic; kWild is the paper-faithful default. The locked disciplines feed
// bench/ablation_lock_policy, which measures what lock-freedom buys.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "core/numa.hpp"
#include "solvers/options.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/barrier.hpp"
#include "util/spinlock.hpp"

namespace isasgd::solvers {

// The stripe table must give every Spinlock its own cache line: adjacent
// unpadded stripes would ping-pong one line between cores and the
// kStriped/kLocked ablations would measure line contention, not lock
// policy. Locked in at compile time so a CachePadded regression cannot
// silently skew bench/ablation_lock_policy.
static_assert(sizeof(util::CachePadded<util::Spinlock>) ==
                  util::kCacheLineSize,
              "Spinlock stripes must each fill exactly one cache line");
static_assert(alignof(util::CachePadded<util::Spinlock>) ==
                  util::kCacheLineSize,
              "Spinlock stripes must be cache-line aligned");

// wild_view()'s raw double* access and the atomic_ref disciplines can only
// coexist on a target where atomic_ref<double> is address-free machine
// loads/stores of the same 8 bytes. Locked in at compile time.
static_assert(std::atomic_ref<double>::is_always_lock_free,
              "SharedModel requires lock-free atomic_ref<double>");
static_assert(std::atomic_ref<double>::required_alignment <= alignof(double),
              "atomic_ref<double> must accept naturally-aligned doubles");

/// Fixed-size shared parameter vector with relaxed-atomic element access.
class SharedModel {
 public:
  /// `lock_stripes` sizes the spinlock table used by the locked policies
  /// (kLocked always uses stripe 0); it never affects kWild/kAtomic.
  explicit SharedModel(std::size_t dim, std::size_t lock_stripes = 1024);

  /// NUMA-placed construction: the buffer's pages are first-touch-zeroed in
  /// the plan's per-node stripes, each from a thread pinned to the owning
  /// node, so the model's bandwidth is served by every socket. Inactive
  /// plans behave exactly like the flat constructor. Placement only moves
  /// pages — the values, layout, and every access path are identical
  /// (tests/numa_test.cpp pins striped ≡ flat bit identity).
  SharedModel(std::size_t dim, const core::NumaPlacement& placement,
              std::size_t lock_stripes = 1024);

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }

  /// Relaxed read of coordinate j.
  [[nodiscard]] double load(std::size_t j) const noexcept {
    return ref(j).load(std::memory_order_relaxed);
  }

  /// Relaxed write of coordinate j.
  void store(std::size_t j, double v) noexcept {
    ref(j).store(v, std::memory_order_relaxed);
  }

  /// The model as a raw dense vector — the async hot-path fast lane.
  ///
  /// Validity contract (tests/wild_view_test.cpp pins the serial half):
  ///   * Quiesced phases (setup, epoch fences, serial solvers): plain reads
  ///     and writes through the span are exact and race-free — this is how
  ///     the epoch drivers score snapshots without copying, and how serial
  ///     runs reach the SIMD kernels.
  ///   * Concurrent phases under UpdatePolicy::kWild ONLY: plain accesses
  ///     race against other workers exactly as Hogwild intends — the same
  ///     lost-update semantics as the relaxed atomic_ref pair, but
  ///     vectorizable. Each coordinate's value is always some previously
  ///     stored double (x86/ARM64 naturally-aligned 8-byte accesses do not
  ///     tear); this is the paper-faithful wild discipline, not a bug.
  ///   * Never mix raw access with kAtomic/kStriped/kLocked phases: those
  ///     disciplines' guarantees (no lost updates / mutual exclusion) only
  ///     hold when every writer goes through add()/update().
  [[nodiscard]] std::span<double> wild_view() noexcept {
    return {w_.get(), dim_};
  }
  [[nodiscard]] std::span<const double> wild_view() const noexcept {
    return {w_.get(), dim_};
  }

  /// w[j] += delta under the requested discipline.
  void add(std::size_t j, double delta, UpdatePolicy policy) noexcept {
    const std::atomic_ref<double> r = ref(j);
    switch (policy) {
      case UpdatePolicy::kAtomic:
        r.fetch_add(delta, std::memory_order_relaxed);
        return;
      case UpdatePolicy::kWild:
        r.store(r.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
        return;
      case UpdatePolicy::kStriped: {
        std::lock_guard guard(locks_[j % locks_.size()].value);
        r.store(r.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
        return;
      }
      case UpdatePolicy::kLocked: {
        std::lock_guard guard(locks_[0].value);
        r.store(r.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Number of lock stripes (diagnostics for the ablation bench).
  [[nodiscard]] std::size_t lock_stripes() const noexcept {
    return locks_.size();
  }

  /// General read-modify-write: w[j] ← fn(w[j]) under the requested
  /// discipline. Needed by non-additive updates (the prox solvers): kWild
  /// races exactly like Hogwild, kStriped/kLocked are exact, and kAtomic —
  /// meaningless for a non-additive map — degrades to kWild.
  template <class Fn>
  void update(std::size_t j, Fn&& fn, UpdatePolicy policy) noexcept {
    const std::atomic_ref<double> r = ref(j);
    auto racy = [&] {
      r.store(fn(r.load(std::memory_order_relaxed)),
              std::memory_order_relaxed);
    };
    switch (policy) {
      case UpdatePolicy::kWild:
      case UpdatePolicy::kAtomic:
        racy();
        return;
      case UpdatePolicy::kStriped: {
        std::lock_guard guard(locks_[j % locks_.size()].value);
        racy();
        return;
      }
      case UpdatePolicy::kLocked: {
        std::lock_guard guard(locks_[0].value);
        racy();
        return;
      }
    }
  }

  /// Sparse dot product w·x using relaxed reads (the solver's margin pass).
  [[nodiscard]] double sparse_dot(sparse::SparseVectorView x) const noexcept {
    double acc = 0;
    const auto idx = x.indices();
    const auto val = x.values();
    for (std::size_t k = 0; k < idx.size(); ++k) {
      acc += load(idx[k]) * val[k];
    }
    return acc;
  }

  /// Copies the model into a plain vector (evaluation fences only — callers
  /// must quiesce writers for an exact snapshot; a racy snapshot is still
  /// well-defined, just temporally fuzzy). Allocates: steady-state fence
  /// code should read wild_view() (quiesced ⇒ exact) or use snapshot_into.
  [[nodiscard]] std::vector<double> snapshot() const;

  /// snapshot() into a caller-owned buffer (resized to dim()): the
  /// allocation-free form for per-epoch scratch reuse.
  void snapshot_into(std::vector<double>& out) const;

  /// Overwrites the model from a plain vector (size must match).
  void assign(std::span<const double> values);

  /// Zeroes all coordinates.
  void reset() noexcept;

 private:
  /// Atomic window onto coordinate j. The const_cast is sound: the storage
  /// is always a mutable vector owned by this object, and a const
  /// SharedModel only ever reaches relaxed loads through the ref.
  [[nodiscard]] std::atomic_ref<double> ref(std::size_t j) const noexcept {
    return std::atomic_ref<double>(const_cast<double&>(w_[j]));
  }

  std::size_t dim_;
  /// Heap array (not std::vector): vector's value-initialising constructor
  /// would zero — and therefore first-touch-place — every page from the
  /// constructing thread, defeating the NUMA striping. The uninitialised
  /// buffer is zeroed by first_touch_zero from per-node threads instead.
  std::unique_ptr<double[]> w_;
  /// Spinlock stripes, cache-line padded so neighbouring stripes do not
  /// false-share; mutable because locking is not logically a modification.
  mutable std::vector<util::CachePadded<util::Spinlock>> locks_;
};

}  // namespace isasgd::solvers
