// The shared parameter vector for lock-free asynchronous solvers.
//
// Hogwild (Recht et al. 2011) updates the model from many threads with no
// locks, accepting lost component updates. In C++ a plain `double` written
// concurrently is a data race (UB), so SharedModel stores
// std::atomic<double> and offers two disciplines:
//
//   kWild    — relaxed load, add in a register, relaxed store. On x86 this
//              compiles to the same movsd pair as unsynchronised code and has
//              identical lost-update semantics, but every access is atomic so
//              behaviour is defined.
//   kAtomic  — relaxed fetch_add (C++20 native on doubles): never loses an
//              update; slower under contention (lock cmpxchg loop).
//   kStriped — per-stripe spinlock around the load/add/store (coordinate j
//              maps to stripe j mod S): the locked fine-grained comparator.
//   kLocked  — a single spinlock (stripe 0) for every coordinate: the fully
//              serialised straw man the Hogwild paper argues against.
//
// The Fig-3 concurrency-sensitivity results reproduce under kWild and
// kAtomic; kWild is the paper-faithful default. The locked disciplines feed
// bench/ablation_lock_policy, which measures what lock-freedom buys.
#pragma once

#include <atomic>
#include <cstddef>
#include <mutex>
#include <span>
#include <vector>

#include "solvers/options.hpp"
#include "sparse/sparse_vector.hpp"
#include "util/barrier.hpp"
#include "util/spinlock.hpp"

namespace isasgd::solvers {

// The stripe table must give every Spinlock its own cache line: adjacent
// unpadded stripes would ping-pong one line between cores and the
// kStriped/kLocked ablations would measure line contention, not lock
// policy. Locked in at compile time so a CachePadded regression cannot
// silently skew bench/ablation_lock_policy.
static_assert(sizeof(util::CachePadded<util::Spinlock>) ==
                  util::kCacheLineSize,
              "Spinlock stripes must each fill exactly one cache line");
static_assert(alignof(util::CachePadded<util::Spinlock>) ==
                  util::kCacheLineSize,
              "Spinlock stripes must be cache-line aligned");

/// Fixed-size shared parameter vector with relaxed-atomic element access.
class SharedModel {
 public:
  /// `lock_stripes` sizes the spinlock table used by the locked policies
  /// (kLocked always uses stripe 0); it never affects kWild/kAtomic.
  explicit SharedModel(std::size_t dim, std::size_t lock_stripes = 1024)
      : w_(dim), locks_(lock_stripes == 0 ? 1 : lock_stripes) {
    for (auto& v : w_) v.store(0.0, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t dim() const noexcept { return w_.size(); }

  /// Relaxed read of coordinate j.
  [[nodiscard]] double load(std::size_t j) const noexcept {
    return w_[j].load(std::memory_order_relaxed);
  }

  /// Relaxed write of coordinate j.
  void store(std::size_t j, double v) noexcept {
    w_[j].store(v, std::memory_order_relaxed);
  }

  /// w[j] += delta under the requested discipline.
  void add(std::size_t j, double delta, UpdatePolicy policy) noexcept {
    switch (policy) {
      case UpdatePolicy::kAtomic:
        w_[j].fetch_add(delta, std::memory_order_relaxed);
        return;
      case UpdatePolicy::kWild:
        w_[j].store(w_[j].load(std::memory_order_relaxed) + delta,
                    std::memory_order_relaxed);
        return;
      case UpdatePolicy::kStriped: {
        std::lock_guard guard(locks_[j % locks_.size()].value);
        w_[j].store(w_[j].load(std::memory_order_relaxed) + delta,
                    std::memory_order_relaxed);
        return;
      }
      case UpdatePolicy::kLocked: {
        std::lock_guard guard(locks_[0].value);
        w_[j].store(w_[j].load(std::memory_order_relaxed) + delta,
                    std::memory_order_relaxed);
        return;
      }
    }
  }

  /// Number of lock stripes (diagnostics for the ablation bench).
  [[nodiscard]] std::size_t lock_stripes() const noexcept {
    return locks_.size();
  }

  /// General read-modify-write: w[j] ← fn(w[j]) under the requested
  /// discipline. Needed by non-additive updates (the prox solvers): kWild
  /// races exactly like Hogwild, kStriped/kLocked are exact, and kAtomic —
  /// meaningless for a non-additive map — degrades to kWild.
  template <class Fn>
  void update(std::size_t j, Fn&& fn, UpdatePolicy policy) noexcept {
    auto racy = [&] {
      w_[j].store(fn(w_[j].load(std::memory_order_relaxed)),
                  std::memory_order_relaxed);
    };
    switch (policy) {
      case UpdatePolicy::kWild:
      case UpdatePolicy::kAtomic:
        racy();
        return;
      case UpdatePolicy::kStriped: {
        std::lock_guard guard(locks_[j % locks_.size()].value);
        racy();
        return;
      }
      case UpdatePolicy::kLocked: {
        std::lock_guard guard(locks_[0].value);
        racy();
        return;
      }
    }
  }

  /// Sparse dot product w·x using relaxed reads (the solver's margin pass).
  [[nodiscard]] double sparse_dot(sparse::SparseVectorView x) const noexcept {
    double acc = 0;
    const auto idx = x.indices();
    const auto val = x.values();
    for (std::size_t k = 0; k < idx.size(); ++k) {
      acc += load(idx[k]) * val[k];
    }
    return acc;
  }

  /// Copies the model into a plain vector (evaluation fences only — callers
  /// must quiesce writers for an exact snapshot; a racy snapshot is still
  /// well-defined, just temporally fuzzy).
  [[nodiscard]] std::vector<double> snapshot() const;

  /// Overwrites the model from a plain vector (size must match).
  void assign(std::span<const double> values);

  /// Zeroes all coordinates.
  void reset() noexcept;

 private:
  std::vector<std::atomic<double>> w_;
  /// Spinlock stripes, cache-line padded so neighbouring stripes do not
  /// false-share; mutable because locking is not logically a modification.
  mutable std::vector<util::CachePadded<util::Spinlock>> locks_;
};

}  // namespace isasgd::solvers
