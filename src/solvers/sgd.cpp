#include "solvers/sgd.hpp"

#include <span>
#include <utility>

#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "solvers/streaming_runner.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

namespace {

/// Applies one gathered mini-batch to `w` — the serial SGD update. Shared
/// by the in-memory and streaming drivers so the update rule can only ever
/// change in one place. The step is divided by the *actual* batch size, so
/// a streaming tail batch shorter than b keeps per-sample scaling.
inline void apply_batch(std::vector<double>& w, const sparse::CsrMatrix& rows,
                        std::span<const std::pair<std::size_t, double>> batch,
                        double step, double eta_l1, double eta_l2) {
  const double batch_step = step / static_cast<double>(batch.size());
  for (const auto& [i, g] : batch) {
    sparse::sparse_dot_residual_axpy(w, rows.row(i), batch_step, g, eta_l1,
                                     eta_l2);
  }
}

}  // namespace

Trace run_sgd(const sparse::CsrMatrix& data,
              const objectives::Objective& objective,
              const SolverOptions& options, const EvalFn& eval,
              TrainingObserver* observer, const SnapshotHooks& hooks) {
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(data.dim(), 0.0);
  TraceRecorder recorder("SGD", 1, options.step_size,
                         eval, observer);

  // Cross-epoch state: {w, rng}. The draw stream runs uninterrupted across
  // epochs, so the RNG words travel with every checkpoint.
  util::Rng rng(options.seed);
  if (hooks.resume) {
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
  }
  // Scratch for one mini-batch: (row id, gradient scale). All margins are
  // computed against the same model state, then all updates applied — the
  // standard mini-batch semantics (b = 1 degenerates to plain SGD).
  std::vector<std::pair<std::size_t, double>> batch(b);
  const std::size_t updates_per_epoch = (n + b - 1) / b;

  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        for (std::size_t u = 0; u < updates_per_epoch; ++u) {
          for (std::size_t k = 0; k < b; ++k) {
            const std::size_t i = util::uniform_index(rng, n);
            const double margin = sparse::sparse_dot(w, data.row(i));
            batch[k] = {i, objective.gradient_scale(margin, data.label(i))};
          }
          apply_batch(w, data, batch, step, eta_l1, eta_l2);
        }
        detail::maybe_capture(hooks, "SGD", epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                              });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

Trace run_sgd_streaming(const data::DataSource& source,
                        const objectives::Objective& objective,
                        const SolverOptions& options, const EvalFn& eval,
                        TrainingObserver* observer,
                        const SnapshotHooks& hooks) {
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(source.dim(), 0.0);
  TraceRecorder recorder("SGD", 1, options.step_size,
                         eval, observer);
  sampling::ShardedSequence schedule(source.shard_sizes(), options.seed);
  // Cross-epoch state is w alone: the schedule reseeds per epoch from
  // (seed, epoch) and there is no draw RNG on this path.
  if (hooks.resume) w = hooks.resume->model;

  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  std::vector<std::pair<std::size_t, double>> batch(b);
  const double train_seconds = detail::run_epoch_fenced_serial_sharded_range(
      source, schedule, w, recorder, hooks.first_epoch(), options.epochs,
      [&](const data::Shard& shard, std::span<const std::uint32_t> row_order,
          std::size_t epoch) {
        const sparse::CsrMatrix& rows = *shard.matrix;
        const double step = epoch_step(options, epoch);
        for (std::size_t at = 0; at < row_order.size(); at += b) {
          const std::size_t count = std::min(b, row_order.size() - at);
          // Same mini-batch semantics as the in-memory kernel: all margins
          // against one model state, then all updates.
          for (std::size_t k = 0; k < count; ++k) {
            const std::size_t i = row_order[at + k];
            const double margin = sparse::sparse_dot(w, rows.row(i));
            batch[k] = {i, objective.gradient_scale(margin, rows.label(i))};
          }
          apply_batch(w, rows, {batch.data(), count}, step, eta_l1, eta_l2);
        }
      },
      [&](std::size_t epoch) {
        detail::maybe_capture(hooks, "SGD", epoch, options.seed,
                              options.epochs, w, [](SnapshotState&) {});
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.streaming = true, .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    if (ctx.sharded()) {
      return run_sgd_streaming(ctx.source, ctx.objective, ctx.options,
                               ctx.eval, ctx.observer, ctx.snapshot);
    }
    return run_sgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                   ctx.observer, ctx.snapshot);
  }
};

ISASGD_REGISTER_SOLVER(SgdSolver);

}  // namespace

}  // namespace isasgd::solvers
