// TrainingObserver: the solver suite's callback pipeline.
//
// Every solver reports its run through one funnel — the TraceRecorder — and
// the recorder forwards each epoch-boundary point to an optional observer.
// That single seam gives callers three things the old API bolted on ad hoc:
//
//   * live progress      — on_epoch fires at every epoch fence, with the
//                          scored TracePoint (eval cost excluded from the
//                          clock, as always);
//   * early stopping     — return false from on_epoch and the solver winds
//                          down at the next fence (workers drain, the trace
//                          is finalised normally with the points so far);
//   * typed diagnostics  — solvers publish their extra introspection
//                          (IsAsgdReport, ProxReport, ...) through
//                          on_diagnostics instead of growing one special
//                          `train_xyz(..., Report*)` overload per solver.
//
// Observers are plain virtual classes: subclass, override what you need.
// on_epoch/on_diagnostics are called from the solver's *main* thread at
// epoch fences (never from inside the lock-free kernel), so observers need
// no synchronisation of their own.
#pragma once

#include <any>
#include <vector>

#include "solvers/trace.hpp"

namespace isasgd::solvers {

struct SolverOptions;

/// Per-run callback interface. The default implementation observes nothing
/// and never requests a stop, so subclasses override only what they need.
class TrainingObserver {
 public:
  virtual ~TrainingObserver() = default;

  /// Called once before training starts (after option validation).
  /// `solver_name` is the canonical registry name, e.g. "IS-ASGD".
  virtual void on_train_begin(const std::string& solver_name,
                              const SolverOptions& options) {
    (void)solver_name;
    (void)options;
  }

  /// Called at every epoch fence with the freshly scored point (epoch 0 is
  /// the initial model). Return false to request early stop: the solver
  /// finishes the current fence, drains its workers, and returns the trace
  /// recorded so far.
  virtual bool on_epoch(const TracePoint& point) {
    (void)point;
    return true;
  }

  /// Typed per-solver diagnostics. Each solver documents what it publishes
  /// (IS-ASGD: IsAsgdReport after partitioning; prox solvers: ProxReport at
  /// the end of the run). `std::any_cast` against the documented type.
  virtual void on_diagnostics(const std::any& diagnostics) {
    (void)diagnostics;
  }

  /// Called once with the finalised trace (also after an early stop). NOT
  /// called when the run throws — the exception propagates to the caller,
  /// so observers must not rely on this for cleanup of resources acquired
  /// in on_train_begin (use RAII in the observer itself).
  virtual void on_train_end(const Trace& trace) { (void)trace; }
};

/// Captures the last diagnostics object of type R published during a run —
/// the one-liner for callers that only want a solver's typed report:
///
///   solvers::DiagnosticsCapture<distributed::ParamServerReport> report;
///   auto trace = trainer.train("dist.ps.is_asgd", opt, &report);
///   if (report.has_value()) use(report.value());
template <class R>
class DiagnosticsCapture final : public TrainingObserver {
 public:
  void on_diagnostics(const std::any& diagnostics) override {
    if (const R* r = std::any_cast<R>(&diagnostics)) {
      value_ = *r;
      have_ = true;
    }
  }

  [[nodiscard]] bool has_value() const noexcept { return have_; }
  /// The captured report; default-constructed R when none arrived.
  [[nodiscard]] const R& value() const noexcept { return value_; }

 private:
  R value_{};
  bool have_ = false;
};

/// Fans one observer slot out to several observers. Stop requests combine
/// with OR: any observer returning false from on_epoch stops the run.
class ObserverChain final : public TrainingObserver {
 public:
  ObserverChain() = default;
  explicit ObserverChain(std::vector<TrainingObserver*> observers)
      : observers_(std::move(observers)) {}

  /// Appends `observer` (not owned; may not be null). Returns *this so
  /// chains compose fluently.
  ObserverChain& add(TrainingObserver& observer) {
    observers_.push_back(&observer);
    return *this;
  }

  void on_train_begin(const std::string& solver_name,
                      const SolverOptions& options) override {
    for (TrainingObserver* o : observers_) o->on_train_begin(solver_name, options);
  }

  bool on_epoch(const TracePoint& point) override {
    bool keep_going = true;
    for (TrainingObserver* o : observers_) keep_going &= o->on_epoch(point);
    return keep_going;
  }

  void on_diagnostics(const std::any& diagnostics) override {
    for (TrainingObserver* o : observers_) o->on_diagnostics(diagnostics);
  }

  void on_train_end(const Trace& trace) override {
    for (TrainingObserver* o : observers_) o->on_train_end(trace);
  }

 private:
  std::vector<TrainingObserver*> observers_;
};

}  // namespace isasgd::solvers
