#include "solvers/prox_sgd.hpp"

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "objectives/prox.hpp"
#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

Trace run_prox_sgd(const sparse::CsrMatrix& data,
                   const objectives::Objective& objective,
                   const SolverOptions& options, bool use_importance,
                   const EvalFn& eval, ProxReport* report,
                   TrainingObserver* observer, const SnapshotHooks& hooks) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder(use_importance ? "IS-PROX-SGD" : "PROX-SGD", 1,
                         options.step_size, eval, observer);

  // ---- Offline phase (IS only): Eq. 12 distribution + block stream ----
  util::Stopwatch setup;
  std::vector<double> weight(n, 1.0);  // 1/(n·p_i)
  std::unique_ptr<sampling::BlockSequence> seq;
  if (use_importance) {
    const std::vector<double> importance =
        detail::importance_weights(data, objective, options);
    const double total =
        std::accumulate(importance.begin(), importance.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const double p = total > 0 ? importance[i] / total : 1.0 / double(n);
      weight[i] = p > 0 ? 1.0 / (static_cast<double>(n) * p) : 1.0;
    }
    // One persistent alias table; each epoch's i.i.d. draws stream from it
    // inside the epoch, seeded per epoch exactly like the retired
    // pre-materialized layout.
    seq = std::make_unique<sampling::BlockSequence>(
        sampling::BlockSequence::Mode::kIid, importance, n, options.seed);
  }
  recorder.add_setup_seconds(setup.seconds());

  // Per-coordinate prox clock: formally prox touches every coordinate every
  // step, but the off-support recursions have closed forms —
  //   L1: |w| shrinks by λη per step, absorbed at 0,
  //   L2: w scales by 1/(1+λη) per step,
  //   none: identity —
  // so the inner loop stays index-compressed (cf. svrg_lazy.hpp).
  std::vector<std::uint32_t> last(d, 0);
  const auto kind = options.reg.kind;
  util::Rng rng(options.seed);

  if (hooks.resume) {
    // Fence state is {w, rng}: the lazy prox clock is caught up and `last`
    // zeroed at every epoch end, and the IS stream (kIid) reseeds per epoch
    // from a distribution recomputed at setup. The uniform flavour's rng
    // draws continuously across epochs, so its words ride every snapshot
    // (the IS flavour never draws from it — restore is then a no-op).
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
  }

  const std::string_view trace_name = use_importance ? "IS-PROX-SGD"
                                                     : "PROX-SGD";
  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        const double l1_shrink = step * options.reg.eta;
        const double l2_scale = 1.0 / (1.0 + step * options.reg.eta);

        auto catch_up = [&](std::size_t j, std::uint32_t m) {
          if (m == 0) return;
          switch (kind) {
            case objectives::Regularization::Kind::kNone:
              return;
            case objectives::Regularization::Kind::kL1:
              w[j] = objectives::soft_threshold(
                  w[j], static_cast<double>(m) * l1_shrink);
              return;
            case objectives::Regularization::Kind::kL2:
              w[j] *= std::pow(l2_scale, static_cast<double>(m));
              return;
          }
        };

        if (use_importance) {
          seq->begin_epoch(epoch, util::derive_seed(options.seed, epoch - 1));
        }
        for (std::uint32_t t = 1; t <= n; ++t) {
          const std::size_t i =
              use_importance
                  ? seq->next()
                  : static_cast<std::size_t>(util::uniform_index(rng, n));
          const auto x = data.row(i);
          const auto idx = x.indices();
          const auto val = x.values();
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const std::size_t j = idx[k];
            catch_up(j, t - 1 - last[j]);
          }
          const double margin = sparse::sparse_dot(w, x);
          const double g =
              objective.gradient_scale(margin, data.label(i)) * weight[i];
          // Zhao–Zhang step: gradient at the IS-weighted step, then the
          // prox of the *base* λ·ηr (the reg is not importance-weighted).
          for (std::size_t k = 0; k < idx.size(); ++k) {
            const std::size_t j = idx[k];
            w[j] = objectives::prox(options.reg, w[j] - step * g * val[k],
                                    step);
            last[j] = t;
          }
        }
        for (std::size_t j = 0; j < d; ++j) {
          catch_up(j, static_cast<std::uint32_t>(n) - last[j]);
          last[j] = 0;
        }
        detail::maybe_capture(hooks, trace_name, epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                              });
      });

  {
    ProxReport diagnostics;
    std::size_t zeros = 0;
    for (double v : w) zeros += v == 0.0;
    diagnostics.sparsity = static_cast<double>(zeros) / static_cast<double>(d);
    if (report) *report = diagnostics;
    if (observer) observer->on_diagnostics(diagnostics);
  }
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

/// Registers the uniform and importance-sampled flavours under their own
/// names — living proof the registry takes solvers the Algorithm enum never
/// knew about.
class ProxSgdSolver final : public Solver {
 public:
  ProxSgdSolver(std::string_view name, bool use_importance)
      : name_(name), use_importance_(use_importance) {}

  std::string_view name() const noexcept override { return name_; }
  SolverCapabilities capabilities() const noexcept override {
    return {.importance_sampling = use_importance_, .proximal = true,
            .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_prox_sgd(ctx.data(), ctx.objective, ctx.options, use_importance_,
                        ctx.eval, /*report=*/nullptr, ctx.observer,
                        ctx.snapshot);
  }

 private:
  std::string_view name_;
  bool use_importance_;
};

const SolverRegistration prox_sgd_registration{
    std::make_unique<ProxSgdSolver>("PROX-SGD", false)};
const SolverRegistration is_prox_sgd_registration{
    std::make_unique<ProxSgdSolver>("IS-PROX-SGD", true)};

}  // namespace

}  // namespace isasgd::solvers
