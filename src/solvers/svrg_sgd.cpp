#include "solvers/svrg_sgd.hpp"

#include "solvers/async_runner.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/rng.hpp"

namespace isasgd::solvers {

namespace {

/// μ_loss = (1/n)·Σ_i φ'(s·x_i)·x_i — the loss part of the full gradient at
/// the snapshot (the regularizer's dense part cancels against −∇r(s) in the
/// variance-reduced gradient, see the derivation in svrg_sgd.hpp's notes).
void full_loss_gradient(const sparse::CsrMatrix& data,
                        const objectives::Objective& objective,
                        std::span<const double> s, std::vector<double>& mu) {
  mu.assign(s.size(), 0.0);
  const double inv_n = 1.0 / static_cast<double>(data.rows());
  for (std::size_t i = 0; i < data.rows(); ++i) {
    const auto x = data.row(i);
    const double margin = sparse::sparse_dot(s, x);
    const double g = objective.gradient_scale(margin, data.label(i)) * inv_n;
    sparse::sparse_axpy(mu, g, x);
  }
}

}  // namespace

Trace run_svrg_sgd(const sparse::CsrMatrix& data,
                   const objectives::Objective& objective,
                   const SolverOptions& options, const EvalFn& eval,
                   TrainingObserver* observer, const SnapshotHooks& hooks) {
  const std::size_t n = data.rows();
  const std::size_t d = data.dim();
  std::vector<double> w(d, 0.0);
  TraceRecorder recorder("SVRG-SGD", 1,
                         options.step_size, eval, observer);

  std::vector<double> s(d, 0.0);   // snapshot
  std::vector<double> mu(d, 0.0);  // full loss gradient at s
  util::Rng rng(options.seed);
  const std::size_t interval = std::max<std::size_t>(1, options.svrg_snapshot_interval);
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();

  if (hooks.resume) {
    // The anchor pair (s, μ) persists across epochs between refreshes, so
    // it rides every checkpoint alongside {w, rng}.
    w = hooks.resume->model;
    rng = hooks.resume->get_rng("rng");
    s = hooks.resume->real_section("svrg.anchor");
    mu = hooks.resume->real_section("svrg.mu");
  }

  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        if ((epoch - 1) % interval == 0) {
          s = w;
          full_loss_gradient(data, objective, s, mu);
        }
        for (std::size_t t = 0; t < n; ++t) {
          const std::size_t i = util::uniform_index(rng, n);
          const auto x = data.row(i);
          const double y = data.label(i);
          double margin_w = 0, margin_s = 0;
          sparse::sparse_dot_pair(w, s, x, margin_w, margin_s);
          const double correction = objective.gradient_scale(margin_w, y) -
                                    objective.gradient_scale(margin_s, y);
          if (!options.svrg_skip_mu) {
            // Faithful Algorithm 1 line 7: sparse correction + dense μ
            // (plus the dense regularizer at w) — the O(d) pass the paper's
            // performance analysis targets, fused into one model traversal.
            sparse::scale_then_sparse_axpy(w, mu, step, eta_l1, eta_l2,
                                           step * correction, x);
          } else {
            // Public-version approximation: sparse correction, regularizer
            // on the support only.
            sparse::sparse_axpy(w, -(step * correction), x);
            sparse::sparse_dot_residual_axpy(w, x, step, 0.0, eta_l1,
                                             eta_l2);
          }
        }
        if (options.svrg_skip_mu) {
          // One aggregate μ correction at epoch end ("multiplying µ with n").
          sparse::dense_axpy(w, -(step * static_cast<double>(n)), mu);
        }
        detail::maybe_capture(hooks, "SVRG-SGD", epoch, options.seed,
                              options.epochs, w, [&](SnapshotState& state) {
                                state.put_rng("rng", rng);
                                state.reals["svrg.anchor"] = s;
                                state.reals["svrg.mu"] = mu;
                              });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class SvrgSgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "SVRG-SGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.variance_reduced = true, .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_svrg_sgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                        ctx.observer, ctx.snapshot);
  }
};

ISASGD_REGISTER_SOLVER(SvrgSgdSolver);

}  // namespace

}  // namespace isasgd::solvers
