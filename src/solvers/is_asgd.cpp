#include "solvers/is_asgd.hpp"

#include <atomic>
#include <cmath>
#include <memory>
#include <optional>

#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

Trace run_is_asgd(const sparse::CsrMatrix& data,
                  const objectives::Objective& objective,
                  const SolverOptions& options, const EvalFn& eval,
                  IsAsgdReport* report, TrainingObserver* observer,
                  util::ThreadPool* pool) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  SharedModel model(data.dim());
  TraceRecorder recorder("IS-ASGD", threads,
                         options.step_size, eval, observer);

  // ---- Offline phase (Algorithm 4 lines 2–12), timed as setup ----
  util::Stopwatch setup;
  const std::vector<double> importance =
      detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  popt.shuffle_seed = options.seed ^ 0x1517;
  const partition::PartitionPlan plan(importance, threads, popt);
  {
    IsAsgdReport diagnostics;
    diagnostics.applied_strategy = plan.applied_strategy();
    diagnostics.rho = plan.rho();
    diagnostics.phi_imbalance = plan.imbalance();
    if (report) *report = diagnostics;
    if (observer) observer->on_diagnostics(diagnostics);
  }

  // Per-worker: step weight per local slot = 1/(N_tid·p_i) and the sample
  // sequence over local slots. Under Eq. 19 balance, N_tid·p_i = n·p_i^global
  // so the update step matches Algorithm 4 line 15 exactly.
  struct WorkerState {
    std::vector<double> weight;  // indexed by local slot
    std::vector<sampling::SampleSequence> sequences;  // one per epoch
    std::unique_ptr<sampling::ReshuffledSequence> reshuffled;
    std::unique_ptr<sampling::StratifiedSequence> stratified;
    /// Adaptive-importance extension: this epoch's sequence, regenerated
    /// from the live gradient norms (thread-local — each worker refreshes
    /// only its own shard, so there is nothing to race on).
    std::optional<sampling::SampleSequence> adaptive_seq;
    std::uint64_t seed = 0;
  };
  // The deprecated reshuffle_sequences flag is folded into sequence_mode by
  // Solver::validate before the run reaches this point.
  const auto mode = options.sequence_mode;
  std::vector<WorkerState> workers(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    const partition::Shard shard = plan.shard(tid);
    const std::size_t local_n = shard.rows.size();
    WorkerState& ws = workers[tid];
    ws.seed = util::derive_seed(options.seed, 101 + tid);
    ws.weight.resize(local_n);
    for (std::size_t k = 0; k < local_n; ++k) {
      const double p = shard.probabilities[k];
      ws.weight[k] =
          p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
    }
    if (options.adaptive_importance) {
      // Sequences are regenerated inside the timed epochs (that cost is the
      // point of the extension); nothing to pre-generate.
    } else if (mode == SolverOptions::SequenceMode::kStratified) {
      ws.stratified = std::make_unique<sampling::StratifiedSequence>(
          shard.probabilities, local_n, ws.seed);
    } else if (mode == SolverOptions::SequenceMode::kReshuffle) {
      ws.reshuffled = std::make_unique<sampling::ReshuffledSequence>(
          shard.probabilities, local_n, ws.seed);
    } else {
      ws.sequences.reserve(options.epochs);
      for (std::size_t e = 0; e < options.epochs; ++e) {
        ws.sequences.push_back(sampling::SampleSequence::weighted(
            shard.probabilities, local_n, util::derive_seed(ws.seed, e)));
      }
    }
  }
  recorder.add_setup_seconds(setup.seconds());

  // Eq.-11 adaptive refresh (extension): recompute this worker's local
  // importance |∇f_i(ŵ)| = |φ'(ŵ·x_i)|·‖x_i‖ against a racy model read and
  // rebuild its sequence + step weights. O(local nnz + N_tid log N_tid) per
  // refresh, charged inside the training window.
  auto refresh_adaptive = [&](std::size_t tid, std::size_t epoch,
                              const SharedModel& m) {
    const partition::Shard shard = plan.shard(tid);
    const std::size_t local_n = shard.rows.size();
    WorkerState& ws = workers[tid];
    std::vector<double> norms(local_n);
    double total = 0;
    for (std::size_t k = 0; k < local_n; ++k) {
      const std::size_t i = shard.rows[k];
      const auto x = data.row(i);
      const double margin = m.sparse_dot(x);
      norms[k] = std::abs(objective.gradient_scale(margin, data.label(i))) *
                     x.norm() +
                 1e-12;  // floor keeps dead samples reachable
      total += norms[k];
    }
    for (std::size_t k = 0; k < local_n; ++k) {
      const double p = norms[k] / total;
      ws.weight[k] = 1.0 / (static_cast<double>(local_n) * p);
    }
    ws.adaptive_seq = sampling::SampleSequence::weighted(
        norms, local_n, util::derive_seed(ws.seed, 7000 + epoch));
  };

  // ---- Training (Algorithm 4 lines 13–15): the ASGD kernel ----
  const UpdatePolicy policy = options.update_policy;
  const double train_seconds = detail::run_epoch_fenced(
      detail::pool_or_default(pool), model, recorder, options.epochs, threads,
      [&](std::size_t tid, std::size_t epoch) {
        const partition::Shard shard = plan.shard(tid);
        WorkerState& ws = workers[tid];
        std::span<const std::uint32_t> seq;
        if (options.adaptive_importance) {
          const std::size_t interval =
              std::max<std::size_t>(1, options.adaptive_interval);
          if ((epoch - 1) % interval == 0 || !ws.adaptive_seq) {
            refresh_adaptive(tid, epoch, model);
          }
          seq = ws.adaptive_seq->view();
        } else if (mode == SolverOptions::SequenceMode::kStratified) {
          if (epoch > 1) ws.stratified->reshuffle();
          seq = ws.stratified->view();
        } else if (mode == SolverOptions::SequenceMode::kReshuffle) {
          if (epoch > 1) ws.reshuffled->reshuffle();
          seq = ws.reshuffled->view();
        } else {
          seq = ws.sequences[epoch - 1].view();
        }
        const double lambda = epoch_step(options, epoch);
        const std::size_t b = std::max<std::size_t>(1, options.batch_size);
        const std::size_t updates = (seq.size() + b - 1) / b;
        std::vector<std::pair<std::size_t, double>> batch(b);  // (slot, g)
        for (std::size_t u = 0; u < updates; ++u) {
          const std::size_t base = u * b;
          const std::size_t bsize = std::min(b, seq.size() - base);
          for (std::size_t k = 0; k < bsize; ++k) {
            const std::size_t slot = seq[base + k];
            const std::size_t i = shard.rows[slot];
            const double margin = model.sparse_dot(data.row(i));
            batch[k] = {slot,
                        objective.gradient_scale(margin, data.label(i))};
          }
          for (std::size_t k = 0; k < bsize; ++k) {
            const auto [slot, g] = batch[k];
            const std::size_t i = shard.rows[slot];
            const auto x = data.row(i);
            const double scaled_step =
                lambda * ws.weight[slot] / static_cast<double>(bsize);
            const auto idx = x.indices();
            const auto val = x.values();
            for (std::size_t j = 0; j < idx.size(); ++j) {
              const std::size_t c = idx[j];
              const double wc = model.load(c);
              model.add(
                  c, -scaled_step * (g * val[j] + options.reg.subgradient(wc)),
                  policy);
            }
          }
        }
      });
  if (options.keep_final_model) recorder.set_final_model(model.snapshot());
  return std::move(recorder).finish(train_seconds);
}

namespace {

class IsAsgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "IS-ASGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.parallel = true, .importance_sampling = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_is_asgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                       /*report=*/nullptr, ctx.observer, ctx.pool);
  }
};

ISASGD_REGISTER_SOLVER(IsAsgdSolver);

}  // namespace

}  // namespace isasgd::solvers
