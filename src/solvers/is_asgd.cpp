#include "solvers/is_asgd.hpp"

#include <atomic>
#include <cmath>
#include <memory>

#include "core/numa.hpp"
#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/model.hpp"
#include "solvers/solver.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

Trace run_is_asgd(const sparse::CsrMatrix& data,
                  const objectives::Objective& objective,
                  const SolverOptions& options, const EvalFn& eval,
                  IsAsgdReport* report, TrainingObserver* observer,
                  util::ThreadPool* pool, const core::NumaPolicy* numa,
                  const data::RowStats* stats) {
  const std::size_t threads = std::max<std::size_t>(1, options.threads);
  TraceRecorder recorder("IS-ASGD", threads,
                         options.step_size, eval, observer);

  // ---- Offline phase (Algorithm 4 lines 2–12), timed as setup ----
  util::Stopwatch setup;
  // Sidecar-fed setup when a pack carries row stats and the configured
  // importance is a function of ‖x_i‖² alone — same numbers, no data pass.
  const bool use_stats =
      stats != nullptr && detail::stats_feed_importance(options);
  const std::vector<double> importance =
      use_stats ? detail::importance_weights_from_stats(*stats, 0, data.rows(),
                                                        objective, options)
                : detail::importance_weights(data, objective, options);
  partition::PartitionOptions popt = options.partition;
  popt.shuffle_seed = options.seed ^ 0x1517;
  const partition::PartitionPlan plan(importance, threads, popt);
  {
    IsAsgdReport diagnostics;
    diagnostics.applied_strategy = plan.applied_strategy();
    diagnostics.rho = plan.rho();
    diagnostics.phi_imbalance = plan.imbalance();
    if (report) *report = diagnostics;
    if (observer) observer->on_diagnostics(diagnostics);
  }

  // NUMA placement (inactive on single-node hosts): stripe the model across
  // the nodes (first-touch from node-pinned threads) and pin each worker to
  // the node owning its shard, shard→node balanced over the plan's Φ totals
  // — the workers with the heaviest update traffic sit next to local model
  // pages. Placement decides page homes only; the arithmetic and every
  // access path are identical to the flat model.
  const core::NumaPlacement placement =
      core::plan_placement(numa, plan.phis(), data.dim());
  SharedModel model(data.dim(), placement);
  if (placement.active) {
    detail::pool_or_default(pool).set_worker_cpus(
        core::worker_cpu_plan(placement, threads));
  }

  // Per-worker: step weight per local slot = 1/(N_tid·p_i) and a streamed
  // block sequence over local slots — ONE persistent alias table per worker
  // (not one per epoch) and O(block) draw memory regardless of epoch count.
  // Under Eq. 19 balance, N_tid·p_i = n·p_i^global so the update step
  // matches Algorithm 4 line 15 exactly.
  struct WorkerState {
    std::vector<double> weight;  // indexed by local slot
    std::unique_ptr<sampling::BlockSequence> seq;
    std::vector<std::pair<std::size_t, double>> batch;  // (slot, g) scratch
    /// Adaptive-importance extension (Eq. 11) state, all thread-local —
    /// each worker refreshes only its own shard, nothing to race on:
    std::vector<double> row_norm;  // ‖x_i‖ per local slot, cached at setup
    std::vector<double> last_g;    // |φ'| recorded at the last visit
    std::vector<double> norms;     // refresh scratch: importance estimate
    std::uint64_t stream_seed = 0; // seed of the current i.i.d. epoch stream
    std::uint64_t seed = 0;
    bool refreshed_once = false;
  };
  // The deprecated reshuffle_sequences flag is folded into sequence_mode by
  // Solver::validate before the run reaches this point.
  const auto mode = options.sequence_mode;
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<WorkerState> workers(threads);
  for (std::size_t tid = 0; tid < threads; ++tid) {
    const partition::Shard shard = plan.shard(tid);
    const std::size_t local_n = shard.rows.size();
    WorkerState& ws = workers[tid];
    ws.seed = util::derive_seed(options.seed, 101 + tid);
    ws.batch.resize(b);
    ws.weight.resize(local_n);
    for (std::size_t k = 0; k < local_n; ++k) {
      const double p = shard.probabilities[k];
      ws.weight[k] =
          p > 0 ? 1.0 / (static_cast<double>(local_n) * p) : 1.0;
    }
    if (options.adaptive_importance) {
      // The distribution is re-estimated inside the timed epochs (that cost
      // is the point of the extension); only the row norms — constants of
      // the dataset — are cached here so each refresh is O(N_tid), not
      // O(local nnz).
      ws.row_norm.resize(local_n);
      if (stats != nullptr) {
        // shard.rows[] holds global row ids, which index the sidecar
        // directly; norm() = sqrt(squared_norm()) keeps this bit-identical.
        for (std::size_t k = 0; k < local_n; ++k) {
          ws.row_norm[k] = std::sqrt(stats->row_squared_norm(shard.rows[k]));
        }
      } else {
        for (std::size_t k = 0; k < local_n; ++k) {
          ws.row_norm[k] = data.row(shard.rows[k]).norm();
        }
      }
      ws.last_g.assign(local_n, 0.0);
      ws.norms.resize(local_n);
    } else if (local_n > 0) {
      ws.seq = std::make_unique<sampling::BlockSequence>(
          detail::block_mode(options), shard.probabilities, local_n, ws.seed);
    }
  }
  recorder.add_setup_seconds(setup.seconds());

  const UpdatePolicy policy = options.update_policy;
  // Wild-policy fast lane: under kWild (and in serial runs) the margin dot
  // and the fused update run on the raw wild_view through the
  // ISASGD_RESTRICT kernels (detail::gather_margin / detail::apply_update)
  // — bit-identical arithmetic to the atomic-load path
  // (tests/wild_view_test.cpp), minus the per-element atomic calls.
  const bool wild = policy == UpdatePolicy::kWild;
  const bool adaptive = options.adaptive_importance;

  // Eq.-11 adaptive refresh (extension): re-estimate this worker's local
  // importance |∇f_i(ŵ)| = |φ'(ŵ·x_i)|·‖x_i‖ and rebuild its alias table +
  // step weights. The first refresh computes every margin against a racy
  // model read (the exact O(local nnz) sweep); later refreshes reuse the
  // |φ'| values already produced by the preceding epochs' gradient passes
  // (recorded per slot at gather time), so the steady-state refresh is
  // O(N_tid) — the second full sweep the pre-streaming code paid is gone.
  // Unvisited slots keep their previous estimate. Charged inside the
  // training window, like every adaptive cost.
  auto refresh_adaptive = [&](std::size_t tid, std::size_t epoch) {
    const partition::Shard shard = plan.shard(tid);
    const std::size_t local_n = shard.rows.size();
    WorkerState& ws = workers[tid];
    if (!ws.refreshed_once) {
      for (std::size_t k = 0; k < local_n; ++k) {
        const auto x = data.row(shard.rows[k]);
        const double margin = detail::gather_margin(model, x, wild);
        ws.last_g[k] =
            std::abs(objective.gradient_scale(margin, data.label(shard.rows[k])));
      }
      ws.refreshed_once = true;
    }
    double total = 0;
    for (std::size_t k = 0; k < local_n; ++k) {
      ws.norms[k] = ws.last_g[k] * ws.row_norm[k] +
                    1e-12;  // floor keeps dead samples reachable
      total += ws.norms[k];
    }
    for (std::size_t k = 0; k < local_n; ++k) {
      const double p = ws.norms[k] / total;
      ws.weight[k] = 1.0 / (static_cast<double>(local_n) * p);
    }
    if (ws.seq) {
      ws.seq->rebuild(ws.norms);  // one table build per weight change
    } else {
      ws.seq = std::make_unique<sampling::BlockSequence>(
          sampling::BlockSequence::Mode::kIid, ws.norms, local_n, ws.seed);
    }
    ws.stream_seed = util::derive_seed(ws.seed, 7000 + epoch);
  };

  // ---- Training (Algorithm 4 lines 13–15): the ASGD kernel ----
  const double train_seconds = detail::run_epoch_fenced(
      detail::pool_or_default(pool), model, recorder, options.epochs, threads,
      [&](std::size_t tid, std::size_t epoch) {
        const partition::Shard shard = plan.shard(tid);
        WorkerState& ws = workers[tid];
        if (shard.rows.empty()) return;
        if (adaptive) {
          const std::size_t interval =
              std::max<std::size_t>(1, options.adaptive_interval);
          if ((epoch - 1) % interval == 0 || !ws.seq) {
            refresh_adaptive(tid, epoch);
          }
          // Between refreshes the same stream seed replays the same i.i.d.
          // sequence — exactly the pre-streaming replay semantics.
          ws.seq->begin_epoch(epoch, ws.stream_seed);
        } else if (mode == SolverOptions::SequenceMode::kPregenerate) {
          ws.seq->begin_epoch(epoch, util::derive_seed(ws.seed, epoch - 1));
        } else {
          ws.seq->begin_epoch(epoch);
        }
        const double lambda = epoch_step(options, epoch);
        const std::size_t len = ws.seq->epoch_length();
        const std::size_t updates = (len + b - 1) / b;
        sampling::BlockSequence& seq = *ws.seq;
        if (b == 1) {
          // The paper's kernel (one sample per update): no batch buffer, no
          // second row decode, no ÷bsize (÷1 is the identity) — same
          // per-coordinate arithmetic as the general loop below.
          for (std::size_t t = 0; t < len; ++t) {
            const std::size_t slot = seq.next();
            const std::size_t i = shard.rows[slot];
            const auto x = data.row(i);
            const double margin = detail::gather_margin(model, x, wild);
            const double g = objective.gradient_scale(margin, data.label(i));
            if (adaptive) ws.last_g[slot] = std::abs(g);
            const double scaled_step = lambda * ws.weight[slot];
            detail::apply_update(model, x, scaled_step, g, options.reg,
                                 policy);
          }
          return;
        }
        for (std::size_t u = 0; u < updates; ++u) {
          const std::size_t base = u * b;
          const std::size_t bsize = std::min(b, len - base);
          for (std::size_t k = 0; k < bsize; ++k) {
            const std::size_t slot = seq.next();
            const std::size_t i = shard.rows[slot];
            const auto x = data.row(i);
            const double margin = detail::gather_margin(model, x, wild);
            const double g = objective.gradient_scale(margin, data.label(i));
            if (adaptive) ws.last_g[slot] = std::abs(g);
            ws.batch[k] = {slot, g};
          }
          for (std::size_t k = 0; k < bsize; ++k) {
            const auto [slot, g] = ws.batch[k];
            const std::size_t i = shard.rows[slot];
            const auto x = data.row(i);
            const double scaled_step =
                lambda * ws.weight[slot] / static_cast<double>(bsize);
            detail::apply_update(model, x, scaled_step, g, options.reg,
                                 policy);
          }
        }
      });
  if (options.keep_final_model) recorder.set_final_model(model.snapshot());
  return std::move(recorder).finish(train_seconds);
}

namespace {

class IsAsgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "IS-ASGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.parallel = true, .importance_sampling = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_is_asgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                       /*report=*/nullptr, ctx.observer, ctx.pool, ctx.numa,
                       ctx.source.row_stats());
  }
};

ISASGD_REGISTER_SOLVER(IsAsgdSolver);

}  // namespace

}  // namespace isasgd::solvers
