#include "solvers/trace.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "solvers/observer.hpp"

namespace isasgd::solvers {

double Trace::best_error_rate() const {
  double best = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : points) best = std::min(best, p.error_rate);
  return best;
}

double Trace::best_rmse() const {
  double best = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : points) best = std::min(best, p.rmse);
  return best;
}

namespace {

/// Interpolated first-crossing time of a decreasing metric. `metric(p)`
/// extracts the value; returns NaN if the target is never reached.
template <class Metric>
double first_crossing(const std::vector<TracePoint>& points, double target,
                      double offset, Metric metric) {
  double prev_time = 0;
  double prev_value = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : points) {
    const double v = metric(p);
    if (v <= target) {
      if (!std::isfinite(prev_value) || prev_value <= target) {
        // Reached at (or before) the first recorded point.
        return p.seconds + offset;
      }
      // Linear interpolation between the straddling points.
      const double t = (prev_value - target) / (prev_value - v);
      return prev_time + t * (p.seconds - prev_time) + offset;
    }
    prev_time = p.seconds;
    prev_value = v;
  }
  return std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

double Trace::time_to_error(double target, bool include_setup) const {
  return first_crossing(points, target, include_setup ? setup_seconds : 0.0,
                        [](const TracePoint& p) { return p.error_rate; });
}

double Trace::time_to_rmse(double target, bool include_setup) const {
  return first_crossing(points, target, include_setup ? setup_seconds : 0.0,
                        [](const TracePoint& p) { return p.rmse; });
}

TraceRecorder::TraceRecorder(std::string algorithm, std::size_t threads,
                             double step_size, EvalFn eval,
                             TrainingObserver* observer)
    : eval_(std::move(eval)), observer_(observer) {
  if (!eval_) throw std::invalid_argument("TraceRecorder: null evaluator");
  trace_.algorithm = std::move(algorithm);
  trace_.threads = threads;
  trace_.step_size = step_size;
}

void TraceRecorder::record(std::size_t epoch, double seconds,
                           std::span<const double> w) {
  const EvalResult r = eval_(w);
  best_error_ = std::min(best_error_, r.error_rate);
  trace_.points.push_back(TracePoint{
      .epoch = epoch,
      .seconds = seconds,
      .rmse = r.rmse,
      .error_rate = best_error_,
      .objective = r.objective,
  });
  if (observer_ && !observer_->on_epoch(trace_.points.back())) stop_ = true;
}

Trace TraceRecorder::finish(double train_seconds) && {
  trace_.setup_seconds = setup_seconds_;
  trace_.train_seconds = train_seconds;
  return std::move(trace_);
}

}  // namespace isasgd::solvers
