// Importance vectors for the IS solvers: the per-sample weights that define
// p_i (paper Eq. 12 or the Eq. 16 gradient-bound variant).
#pragma once

#include <vector>

#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers::detail {

/// Computes the importance vector (unnormalised sampling weights) for
/// `data` under the configured ImportanceKind.
inline std::vector<double> importance_weights(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const SolverOptions& options) {
  if (options.importance == ImportanceKind::kLipschitz) {
    return objectives::per_sample_lipschitz(data, objective, options.reg);
  }
  // Eq. 16-style: supremum of the gradient norm over a unit model ball.
  std::vector<double> weights(data.rows());
  constexpr double kRadius = 1.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    weights[i] = objective.gradient_norm_bound(data.row(i), data.label(i),
                                               kRadius, options.reg);
  }
  return weights;
}

}  // namespace isasgd::solvers::detail
