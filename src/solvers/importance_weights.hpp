// Importance vectors for the IS solvers: the per-sample weights that define
// p_i (paper Eq. 12 or the Eq. 16 gradient-bound variant).
//
// Two feeds for the same numbers:
//  * the loaded path — an O(nnz) pass over a CsrMatrix;
//  * the sidecar path — pack-time per-row squared norms (data::RowStats,
//    carried by io::shardpack files), usable whenever the configured
//    importance depends on x_i only through ‖x_i‖². That is exactly
//    ImportanceKind::kLipschitz (L_i = β·‖x_i‖² + reg term); the
//    gradient-bound variant calls a virtual per-objective bound over the
//    row view, so it keeps the loaded path.
// The sidecar stores the *exact* f64 result of row(i).squared_norm(), and
// the helpers below apply the exact loaded-path arithmetic to it, so the
// two feeds are bit-identical — sidecar-fed setup changes how many data
// passes a run costs, never its model.
#pragma once

#include <cstddef>
#include <vector>

#include "data/data_source.hpp"
#include "objectives/objective.hpp"
#include "solvers/options.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::solvers::detail {

/// Computes the importance vector (unnormalised sampling weights) for
/// `data` under the configured ImportanceKind.
inline std::vector<double> importance_weights(
    const sparse::CsrMatrix& data, const objectives::Objective& objective,
    const SolverOptions& options) {
  if (options.importance == ImportanceKind::kLipschitz) {
    return objectives::per_sample_lipschitz(data, objective, options.reg);
  }
  // Eq. 16-style: supremum of the gradient norm over a unit model ball.
  std::vector<double> weights(data.rows());
  constexpr double kRadius = 1.0;
  for (std::size_t i = 0; i < data.rows(); ++i) {
    weights[i] = objective.gradient_norm_bound(data.row(i), data.label(i),
                                               kRadius, options.reg);
  }
  return weights;
}

/// True when the configured importance can be computed from pack-time row
/// stats alone (see file comment).
inline bool stats_feed_importance(const SolverOptions& options) {
  return options.importance == ImportanceKind::kLipschitz;
}

/// Sidecar-fed importance for global rows [row_begin, row_begin + rows):
/// L_i = β·‖x_i‖² + reg term, the exact per_sample_lipschitz arithmetic
/// over the sidecar's exact squared norms — bit-identical to the loaded
/// path. Only valid when stats_feed_importance(options).
inline std::vector<double> importance_weights_from_stats(
    const data::RowStats& stats, std::size_t row_begin, std::size_t rows,
    const objectives::Objective& objective, const SolverOptions& options) {
  std::vector<double> weights(rows);
  const double beta = objective.smoothness();
  const double reg_term = options.reg.lipschitz_term();
  for (std::size_t i = 0; i < rows; ++i) {
    weights[i] = beta * stats.row_squared_norm(row_begin + i) + reg_term;
  }
  return weights;
}

}  // namespace isasgd::solvers::detail
