#include "solvers/is_sgd.hpp"

#include <cmath>
#include <optional>

#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

namespace {

/// 1/(n·p_i) step weights from an (unnormalised) importance vector.
std::vector<double> step_weights(std::span<const double> importance) {
  const std::size_t n = importance.size();
  double total = 0;
  for (double l : importance) total += l;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = importance[i] > 0
                    ? total / (static_cast<double>(n) * importance[i])
                    : 1.0;
  }
  return weight;
}

/// Exact current gradient norms ‖∇φ_i(w)‖ = |φ'(w·x_i)|·‖x_i‖ — the Eq. 11
/// optimum the adaptive-importance extension tracks. Floored at 1e-3 of the
/// mean so the 1/(n·p_i) weights stay bounded on already-fit samples.
std::vector<double> current_gradient_norms(const sparse::CsrMatrix& data,
                                           const objectives::Objective& objective,
                                           std::span<const double> w) {
  const std::size_t n = data.rows();
  std::vector<double> norms(n);
  double mean = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto x = data.row(i);
    const double margin = sparse::sparse_dot(w, x);
    norms[i] = std::abs(objective.gradient_scale(margin, data.label(i))) *
               x.norm();
    mean += norms[i];
  }
  mean /= static_cast<double>(n);
  const double floor = 1e-3 * (mean > 0 ? mean : 1.0);
  for (double& v : norms) v = std::max(v, floor);
  return norms;
}

}  // namespace

Trace run_is_sgd(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 const SolverOptions& options, const EvalFn& eval,
                 TrainingObserver* observer) {
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(data.dim(), 0.0);
  TraceRecorder recorder("IS-SGD", 1,
                         options.step_size, eval, observer);

  // ---- Offline phase (Algorithm 2 lines 2–3), timed as setup ----
  util::Stopwatch setup;
  std::vector<double> importance =
      detail::importance_weights(data, objective, options);
  std::vector<double> weight = step_weights(importance);
  // Pre-generate all epochs' sequences up front ("beforehand", §1.3) unless
  // the reshuffle approximation or adaptive re-estimation is on. The
  // deprecated reshuffle_sequences flag is folded into sequence_mode by
  // Solver::validate before the run reaches this point.
  const auto mode = options.sequence_mode;
  sampling::ReshuffledSequence reshuffled(importance, n, options.seed);
  std::optional<sampling::StratifiedSequence> stratified;
  if (mode == SolverOptions::SequenceMode::kStratified) {
    stratified.emplace(importance, n, options.seed ^ 0x57a7);
  }
  std::vector<sampling::SampleSequence> sequences;
  const bool pregenerate =
      mode == SolverOptions::SequenceMode::kPregenerate &&
      !options.adaptive_importance;
  if (pregenerate) {
    sequences.reserve(options.epochs);
    for (std::size_t e = 0; e < options.epochs; ++e) {
      sequences.push_back(sampling::SampleSequence::weighted(
          importance, n, util::derive_seed(options.seed, e)));
    }
  }
  recorder.add_setup_seconds(setup.seconds());

  // ---- Training: kernel identical to SGD except index source + weight ----
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  std::vector<std::pair<std::size_t, double>> batch(b);
  std::optional<sampling::SampleSequence> adaptive_sequence;
  const double train_seconds = detail::run_epoch_fenced_serial(
      w, recorder, options.epochs, [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        std::span<const std::uint32_t> seq;
        if (options.adaptive_importance) {
          // Eq. 11 extension: refresh P from the live gradient norms. This
          // O(nnz + n log n) pass runs inside the timed window on purpose —
          // it is the cost the paper's §2.2 dismisses as impractical.
          if ((epoch - 1) % std::max<std::size_t>(1, options.adaptive_interval) ==
              0) {
            importance = current_gradient_norms(data, objective, w);
            weight = step_weights(importance);
          }
          adaptive_sequence = sampling::SampleSequence::weighted(
              importance, n, util::derive_seed(options.seed, 7000 + epoch));
          seq = adaptive_sequence->view();
        } else if (mode == SolverOptions::SequenceMode::kStratified) {
          if (epoch > 1) stratified->reshuffle();
          seq = stratified->view();
        } else if (mode == SolverOptions::SequenceMode::kReshuffle) {
          if (epoch > 1) reshuffled.reshuffle();
          seq = reshuffled.view();
        } else {
          seq = sequences[epoch - 1].view();
        }
        const std::size_t updates = (seq.size() + b - 1) / b;
        for (std::size_t u = 0; u < updates; ++u) {
          const std::size_t base = u * b;
          const std::size_t bsize = std::min(b, seq.size() - base);
          for (std::size_t k = 0; k < bsize; ++k) {
            const std::size_t i = seq[base + k];
            const double margin = sparse::sparse_dot(w, data.row(i));
            batch[k] = {i, objective.gradient_scale(margin, data.label(i))};
          }
          for (std::size_t k = 0; k < bsize; ++k) {
            const auto [i, g] = batch[k];
            const double scaled_step =
                step * weight[i] / static_cast<double>(bsize);
            sparse::sparse_dot_residual_axpy(w, data.row(i), scaled_step, g,
                                             eta_l1, eta_l2);
          }
        }
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class IsSgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "IS-SGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.importance_sampling = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_is_sgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                      ctx.observer);
  }
};

ISASGD_REGISTER_SOLVER(IsSgdSolver);

}  // namespace

}  // namespace isasgd::solvers
