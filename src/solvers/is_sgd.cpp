#include "solvers/is_sgd.hpp"

#include <cmath>
#include <memory>

#include "sampling/sequence.hpp"
#include "solvers/async_runner.hpp"
#include "solvers/importance_weights.hpp"
#include "solvers/solver.hpp"
#include "sparse/kernels.hpp"
#include "util/timer.hpp"

namespace isasgd::solvers {

namespace {

/// 1/(n·p_i) step weights from an (unnormalised) importance vector.
std::vector<double> step_weights(std::span<const double> importance) {
  const std::size_t n = importance.size();
  double total = 0;
  for (double l : importance) total += l;
  std::vector<double> weight(n);
  for (std::size_t i = 0; i < n; ++i) {
    weight[i] = importance[i] > 0
                    ? total / (static_cast<double>(n) * importance[i])
                    : 1.0;
  }
  return weight;
}

/// Applies the Eq.-11 floor (1e-3 of the mean, so 1/(n·p_i) stays bounded
/// on already-fit samples) to a norms vector in place.
void floor_norms(std::vector<double>& norms) {
  double mean = 0;
  for (double v : norms) mean += v;
  mean /= static_cast<double>(norms.size());
  const double floor = 1e-3 * (mean > 0 ? mean : 1.0);
  for (double& v : norms) v = std::max(v, floor);
}

}  // namespace

Trace run_is_sgd(const sparse::CsrMatrix& data,
                 const objectives::Objective& objective,
                 const SolverOptions& options, const EvalFn& eval,
                 TrainingObserver* observer, const SnapshotHooks& hooks,
                 const data::RowStats* stats) {
  const std::size_t n = data.rows();
  const std::size_t b = std::max<std::size_t>(1, options.batch_size);
  std::vector<double> w(data.dim(), 0.0);
  TraceRecorder recorder("IS-SGD", 1,
                         options.step_size, eval, observer);

  // ---- Offline phase (Algorithm 2 lines 2–3), timed as setup ----
  util::Stopwatch setup;
  // Sidecar-fed setup when a pack carries row stats and the configured
  // importance is a function of ‖x_i‖² alone — same numbers, no data pass.
  const bool use_stats = stats != nullptr && detail::stats_feed_importance(options);
  std::vector<double> importance =
      use_stats
          ? detail::importance_weights_from_stats(*stats, 0, n, objective,
                                                  options)
          : detail::importance_weights(data, objective, options);
  std::vector<double> weight = step_weights(importance);
  // The sequence layer is streamed: one persistent BlockSequence replaces
  // the pre-materialized `epochs × n` index store — the alias table is
  // built once here (once per refresh in adaptive mode), and each epoch's
  // draws are produced block-by-block inside the epoch, bit-identical to
  // the old per-epoch SampleSequence layout (tests/block_sequence_test).
  // The deprecated reshuffle_sequences flag is folded into sequence_mode by
  // Solver::validate before the run reaches this point.
  using Mode = sampling::BlockSequence::Mode;
  const Mode m = detail::block_mode(options);
  const std::uint64_t seq_seed =
      m == Mode::kStratified ? options.seed ^ 0x57a7 : options.seed;
  // Adaptive runs refresh unconditionally at epoch 1, so building a table
  // from the static importance here would be setup work thrown away before
  // the first draw — the stream is created at that first refresh instead
  // (like is_asgd's per-worker streams).
  std::unique_ptr<sampling::BlockSequence> seq;
  if (!options.adaptive_importance) {
    seq = std::make_unique<sampling::BlockSequence>(m, importance, n,
                                                    seq_seed);
  }
  // Adaptive-importance (Eq. 11) amortisation state: the row norms are
  // dataset constants cached once; each gradient pass records the |φ'| it
  // already computed per visited sample, so the steady-state refresh is
  // O(n) instead of a second full O(nnz) margin sweep.
  std::vector<double> row_norm, last_g;
  bool refreshed_once = false;
  if (options.adaptive_importance) {
    row_norm.resize(n);
    if (stats != nullptr) {
      // norm() is sqrt(squared_norm()), so the sidecar feed is bit-identical.
      for (std::size_t i = 0; i < n; ++i) {
        row_norm[i] = std::sqrt(stats->row_squared_norm(i));
      }
    } else {
      for (std::size_t i = 0; i < n; ++i) row_norm[i] = data.row(i).norm();
    }
    last_g.assign(n, 0.0);
  }
  recorder.add_setup_seconds(setup.seconds());

  if (hooks.resume) {
    // Static mode carries no solver sections: `importance` was just
    // recomputed above (pure function of data/objective/options) and the
    // i.i.d. stream reseeds per epoch; only the shuffled modes hold state,
    // replayed through rewind_to. Adaptive mode restores its live vectors
    // and rebuilds the stream from the restored distribution.
    w = hooks.resume->model;
    if (options.adaptive_importance) {
      last_g = hooks.resume->real_section("is.last_g");
      importance = hooks.resume->real_section("is.importance");
      refreshed_once = hooks.resume->word("is.refreshed") != 0;
      weight = step_weights(importance);
      if (refreshed_once) {
        seq = std::make_unique<sampling::BlockSequence>(Mode::kIid, importance,
                                                        n, options.seed);
      }
    }
    if (seq) seq->rewind_to(hooks.resume->epoch);
  }

  // ---- Training: kernel identical to SGD except index source + weight ----
  const double eta_l1 = options.reg.eta_l1();
  const double eta_l2 = options.reg.eta_l2();
  const bool adaptive = options.adaptive_importance;
  std::vector<std::pair<std::size_t, double>> batch(b);
  const double train_seconds = detail::run_epoch_fenced_serial_range(
      w, recorder, hooks.first_epoch(), options.epochs,
      [&](std::size_t epoch) {
        const double step = epoch_step(options, epoch);
        if (adaptive) {
          // Eq. 11 extension: refresh P from the live gradient norms,
          // inside the timed window on purpose — it is the cost the paper's
          // §2.2 dismisses as impractical (now amortised against the
          // preceding epoch's own margin computations).
          if ((epoch - 1) %
                  std::max<std::size_t>(1, options.adaptive_interval) ==
              0) {
            if (!refreshed_once) {
              // Exact first estimate: margins of the initial model.
              for (std::size_t i = 0; i < n; ++i) {
                const double margin = sparse::sparse_dot(w, data.row(i));
                last_g[i] = std::abs(
                    objective.gradient_scale(margin, data.label(i)));
              }
              refreshed_once = true;
            }
            for (std::size_t i = 0; i < n; ++i) {
              importance[i] = last_g[i] * row_norm[i];
            }
            floor_norms(importance);
            weight = step_weights(importance);
            if (seq) {
              seq->rebuild(importance);  // one build per weight change
            } else {
              seq = std::make_unique<sampling::BlockSequence>(
                  Mode::kIid, importance, n, options.seed);
            }
          }
          seq->begin_epoch(epoch,
                           util::derive_seed(options.seed, 7000 + epoch));
        } else if (m == Mode::kIid) {
          seq->begin_epoch(epoch, util::derive_seed(options.seed, epoch - 1));
        } else {
          seq->begin_epoch(epoch);
        }
        const std::size_t len = seq->epoch_length();
        const std::size_t updates = (len + b - 1) / b;
        for (std::size_t u = 0; u < updates; ++u) {
          const std::size_t base = u * b;
          const std::size_t bsize = std::min(b, len - base);
          for (std::size_t k = 0; k < bsize; ++k) {
            const std::size_t i = seq->next();
            const double margin = sparse::sparse_dot(w, data.row(i));
            const double g = objective.gradient_scale(margin, data.label(i));
            if (adaptive) last_g[i] = std::abs(g);
            batch[k] = {i, g};
          }
          for (std::size_t k = 0; k < bsize; ++k) {
            const auto [i, g] = batch[k];
            const double scaled_step =
                step * weight[i] / static_cast<double>(bsize);
            sparse::sparse_dot_residual_axpy(w, data.row(i), scaled_step, g,
                                             eta_l1, eta_l2);
          }
        }
        detail::maybe_capture(
            hooks, "IS-SGD", epoch, options.seed, options.epochs, w,
            [&](SnapshotState& state) {
              if (adaptive) {
                state.reals["is.last_g"] = last_g;
                state.reals["is.importance"] = importance;
                state.words["is.refreshed"] = {refreshed_once ? 1u : 0u};
              }
            });
      });
  if (options.keep_final_model) recorder.set_final_model(w);
  return std::move(recorder).finish(train_seconds);
}

namespace {

class IsSgdSolver final : public Solver {
 public:
  std::string_view name() const noexcept override { return "IS-SGD"; }
  SolverCapabilities capabilities() const noexcept override {
    return {.importance_sampling = true, .checkpointable = true};
  }

 protected:
  Trace run_impl(const SolverContext& ctx) const override {
    return run_is_sgd(ctx.data(), ctx.objective, ctx.options, ctx.eval,
                      ctx.observer, ctx.snapshot, ctx.source.row_stats());
  }
};

ISASGD_REGISTER_SOLVER(IsSgdSolver);

}  // namespace

}  // namespace isasgd::solvers
