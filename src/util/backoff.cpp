#include "util/backoff.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace isasgd::util {

namespace {

void validate(const Backoff::Options& o) {
  auto reject = [](const char* field, const char* requirement) {
    throw std::invalid_argument(std::string("Backoff::Options::") + field +
                                ": " + requirement);
  };
  if (!(o.initial_ms > 0)) reject("initial_ms", "must be positive");
  if (!(o.max_ms >= o.initial_ms)) reject("max_ms", "must be >= initial_ms");
  if (!(o.multiplier >= 1.0)) reject("multiplier", "must be >= 1");
  if (!(o.jitter >= 0.0 && o.jitter < 1.0)) {
    reject("jitter", "must be in [0, 1)");
  }
}

}  // namespace

Backoff::Backoff(Options options)
    : options_(options), base_(options.initial_ms), rng_(options.seed) {
  validate(options_);
}

double Backoff::next_ms() {
  ++attempts_;
  // Jitter downwards only: delay ∈ (base·(1−jitter), base], so the
  // configured max_ms is a hard bound and the delay is never zero.
  const double u = uniform_double(rng_);
  const double delay = base_ * (1.0 - options_.jitter * u);
  base_ = std::min(base_ * options_.multiplier, options_.max_ms);
  return delay;
}

void Backoff::reset() noexcept { base_ = options_.initial_ms; }

}  // namespace isasgd::util
