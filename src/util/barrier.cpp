#include "util/barrier.hpp"

namespace isasgd::util {}
