// Seeded exponential backoff with deterministic jitter.
//
// Retry loops across the codebase (the PS wire client re-sending a request
// after a timeout, ShardCache re-issuing a failed background prefetch) all
// need the same discipline: wait a little, then exponentially longer, with
// jitter so k workers that failed together do not retry in lockstep. The
// jitter is drawn from a private SplitMix64 stream seeded by the caller, so
// a retry schedule is a pure function of (Options, call sequence) — tests
// can assert the exact delays, and two runs with the same seed behave
// identically down to the sleep lengths.
#pragma once

#include <cstdint>

#include "util/rng.hpp"

namespace isasgd::util {

class Backoff {
 public:
  struct Options {
    /// First delay (before jitter); doubles... ×multiplier each attempt.
    double initial_ms = 10.0;
    /// Ceiling for the un-jittered base delay.
    double max_ms = 2000.0;
    double multiplier = 2.0;
    /// Fraction jittered *downwards*: a delay is drawn uniformly from
    /// (base·(1−jitter), base], so max_ms stays a hard upper bound.
    double jitter = 0.5;
    std::uint64_t seed = 0;
  };

  explicit Backoff(Options options);

  /// The next delay in milliseconds. Deterministic for a fixed seed:
  /// attempt n's delay is min(initial·multiplier^n, max) jittered down.
  [[nodiscard]] double next_ms();

  /// Back to the initial delay. The jitter stream is NOT rewound — a reset
  /// Backoff continues its seeded sequence, keeping the whole schedule a
  /// function of the call history.
  void reset() noexcept;

  /// next_ms() calls since construction (NOT since reset()).
  [[nodiscard]] std::uint64_t attempts() const noexcept { return attempts_; }

 private:
  Options options_;
  double base_;
  SplitMix64 rng_;
  std::uint64_t attempts_ = 0;
};

}  // namespace isasgd::util
