// Minimal CSV emitter used by the benchmark harness to dump convergence
// traces and table rows (`--out <dir>` on every bench binary).
#pragma once

#include <fstream>
#include <initializer_list>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace isasgd::util {

/// Writes rows of mixed string/number cells to a CSV file. Values containing
/// commas, quotes or newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Throws std::runtime_error if it cannot.
  explicit CsvWriter(const std::string& path);

  /// Writes the header row. Must be called before any data row (enforced).
  void header(const std::vector<std::string>& columns);

  /// Appends a data row; cell count must match the header width.
  void row(const std::vector<std::string>& cells);

  /// Convenience: formats arithmetic values with shortest round-trip output.
  template <class... Ts>
  void row_values(const Ts&... vals) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(vals));
    (cells.push_back(format_cell(vals)), ...);
    row(cells);
  }

  /// Number of data rows written so far (header excluded).
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Formats one value the way row_values() would.
  template <class T>
  static std::string format_cell(const T& v) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(v);
    } else {
      std::ostringstream os;
      os.precision(12);
      os << v;
      return os.str();
    }
  }

 private:
  static std::string escape(std::string_view cell);

  std::ofstream out_;
  std::size_t width_ = 0;
  std::size_t rows_ = 0;
  bool header_written_ = false;
};

/// Parses a CSV file produced by CsvWriter back into rows of strings.
/// Supports RFC-4180 quoting; used by tests to round-trip traces.
std::vector<std::vector<std::string>> read_csv(const std::string& path);

}  // namespace isasgd::util
