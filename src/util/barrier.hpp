// Synchronisation primitives for the asynchronous solver worker pools.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace isasgd::util {

/// Cache line size used for padding shared counters. 64 bytes on x86;
/// std::hardware_destructive_interference_size is avoided because GCC warns
/// it is ABI-unstable across -mtune values.
inline constexpr std::size_t kCacheLineSize = 64;

/// A value padded out to its own cache line to prevent false sharing between
/// per-thread counters that sit contiguously in a vector.
template <class T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};
};

/// Reusable spinning barrier for tight epoch loops inside solvers. All
/// `count` threads must call arrive_and_wait(); generation counting makes it
/// safely reusable across epochs.
class SpinBarrier {
 public:
  explicit SpinBarrier(std::size_t count) noexcept
      : threshold_(count), remaining_(count) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  void arrive_and_wait() noexcept {
    const std::size_t gen = generation_.load(std::memory_order_acquire);
    if (remaining_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last thread to arrive: reset and release the others.
      remaining_.store(threshold_, std::memory_order_relaxed);
      generation_.fetch_add(1, std::memory_order_release);
    } else {
      while (generation_.load(std::memory_order_acquire) == gen) {
        // Busy wait; the epochs between barriers are long enough that a
        // blocking barrier's wake-up latency would dominate otherwise.
      }
    }
  }

 private:
  const std::size_t threshold_;
  std::atomic<std::size_t> remaining_;
  std::atomic<std::size_t> generation_{0};
};

/// Blocking barrier for coarse phases (dataset build, evaluation fences)
/// where threads may wait long enough that spinning would waste a core.
class BlockingBarrier {
 public:
  explicit BlockingBarrier(std::size_t count) : threshold_(count), remaining_(count) {}

  void arrive_and_wait() {
    std::unique_lock lock(mu_);
    const std::size_t gen = generation_;
    if (--remaining_ == 0) {
      remaining_ = threshold_;
      ++generation_;
      cv_.notify_all();
    } else {
      cv_.wait(lock, [&] { return generation_ != gen; });
    }
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t threshold_;
  std::size_t remaining_;
  std::size_t generation_ = 0;
};

}  // namespace isasgd::util
