// Persistent worker pool: the shared execution substrate for every
// thread-parallel site in the library (epoch-fenced solvers, SVRG's full
// gradient, the evaluator's scoring pass, experiment sweeps).
//
// Before this existed every Trainer::train call — and every epoch of some
// solvers — spawned and joined a fresh std::thread team, paying thread
// creation, stack faulting, and scheduler warm-up inside the timed windows
// the paper's wall-clock figures are built from. The pool spawns each worker
// exactly once and reuses it for the lifetime of the ExecutionContext that
// owns it; an epoch dispatch is a condvar wake, not a clone().
//
// Execution model (the "epoch fence" API): run(team, fn) executes fn(tid)
// exactly once for every tid in [0, team) and returns only when all of them
// have finished — run()'s return IS the epoch fence (all workers arrived),
// and the next run() call is the release. Between two run() calls the pool
// is quiescent, so the caller may snapshot shared state (e.g. score the
// model) without racing any worker. Early stop is therefore trivial: stop
// calling run().
//
// Oversubscription clamp: the pool never creates more than max_workers OS
// threads. A run(team, fn) with team > max_workers still executes every tid
// exactly once — worker w runs the strided set {w, w+P, w+2P, ...} where P
// is the serving worker count — so algorithmic sharding by tid stays exact
// while the OS sees a bounded thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace isasgd::util {

/// Tuning knobs for a ThreadPool (namespace-scope so it can serve as a
/// default argument — a nested struct's member initializers cannot).
struct ThreadPoolOptions {
  /// Hard cap on OS threads the pool will ever create. 0 picks the
  /// default clamp: max(32, 8 × hardware_concurrency) — generous enough
  /// that the paper's thread sweeps never stride, tight enough that a
  /// misconfigured sweep cannot fork-bomb the host.
  std::size_t max_workers = 0;
  /// Pin worker k to CPU k mod hardware_concurrency (Linux only; ignored
  /// elsewhere). Off by default: pinning helps dedicated bench boxes and
  /// hurts shared ones.
  bool pin_cpus = false;
  /// OS threads serving the background submit() lane (shard prefetch and
  /// other fire-and-forget I/O). Spawned lazily on the first submit(), never
  /// counted against max_workers: background tasks must not steal a fenced
  /// worker slot mid-epoch, and vice versa.
  std::size_t background_workers = 1;
};

class ThreadPool {
 public:
  using Options = ThreadPoolOptions;

  /// `workers` pre-spawns that many workers up front (clamped to
  /// max_workers); 0 defers all spawning until the first run() that needs
  /// them. Workers are never destroyed before the pool itself.
  explicit ThreadPool(std::size_t workers = 0, Options options = Options());
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Executes fn(tid) exactly once for each tid in [0, team) and blocks
  /// until every one has returned. team is clamped up to 1. Concurrency is
  /// min(team, max_workers()); see the class comment for the strided
  /// execution of oversubscribed teams. team == 1 executes inline on the
  /// calling thread (no dispatch overhead for serial configurations), as
  /// does a reentrant run() from inside a pool task (documented deadlock
  /// avoidance — nested parallelism serialises). If any fn invocation
  /// throws, the first exception is rethrown here after all workers finish.
  ///
  /// Thread-safe: concurrent run() calls from different driving threads
  /// (e.g. two Trainers sharing one ExecutionContext, each driven from its
  /// own application thread) serialise on an internal dispatch mutex — the
  /// pool executes one job at a time.
  void run(std::size_t team, const std::function<void(std::size_t)>& fn);

  /// Pre-spawns the workers a run(team, …) would use (no-op for team ≤ 1
  /// or when they already exist). Epoch drivers call this before starting
  /// their training clocks so thread creation never lands inside a timed
  /// window.
  void reserve(std::size_t team);

  /// Installs an explicit per-worker CPU pin plan — the NUMA placement
  /// hook (core::worker_cpu_plan): cpus[w] is the CPU for worker w, -1
  /// leaves that worker unpinned. Applied immediately to live workers (via
  /// their native handles) and at spawn time to future ones; takes
  /// precedence over the Options::pin_cpus modular default. Best-effort
  /// and Linux-only, like pin_cpus. An empty vector clears the plan.
  void set_worker_cpus(std::vector<int> cpus);

  /// The installed pin plan (empty when none). Diagnostics/tests.
  [[nodiscard]] std::vector<int> worker_cpus() const;

  /// Workers currently alive (== threads_spawned(): workers are never
  /// respawned or retired while the pool lives).
  [[nodiscard]] std::size_t capacity() const;

  /// The oversubscription clamp this pool enforces.
  [[nodiscard]] std::size_t max_workers() const noexcept {
    return max_workers_;
  }

  /// Lifetime count of OS threads created. Instrumentation for the
  /// reuse-not-respawn contract: after a warm-up run at team T this stays
  /// constant across any number of further run() calls with team ≤ T.
  [[nodiscard]] std::uint64_t threads_spawned() const noexcept {
    return spawned_.load(std::memory_order_relaxed);
  }

  /// Lifetime count of run() calls (inline ones included).
  [[nodiscard]] std::uint64_t jobs_dispatched() const noexcept {
    return dispatched_.load(std::memory_order_relaxed);
  }

  /// True when called from inside a pool task on this thread.
  [[nodiscard]] static bool on_worker_thread() noexcept;

  /// Background lane, disjoint from the fenced run() workers: enqueues
  /// `task` for asynchronous execution and returns immediately. Tasks run
  /// FIFO on Options::background_workers dedicated threads (spawned on
  /// first use). An exception thrown by the task is captured in the
  /// returned future; callers using submit() as a pure hint (prefetch) may
  /// drop the future — the shared state keeps the exception, nothing
  /// terminates. The destructor runs every task already enqueued before
  /// returning, so a submitted task can rely on being executed exactly
  /// once even during shutdown races.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until the background queue is empty and no background task is
  /// executing. Test/bench hook; not needed for correctness.
  void drain_background();

  /// Lifetime count of background threads created (disjoint from
  /// threads_spawned(), which counts only fenced run() workers).
  [[nodiscard]] std::uint64_t background_threads() const noexcept {
    return background_spawned_.load(std::memory_order_relaxed);
  }

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t team = 0;
    std::size_t serving = 0;
    std::size_t remaining = 0;
    std::exception_ptr error;
  };

  void worker_main(std::size_t wid, std::uint64_t last_seen);
  void ensure_workers_locked(std::size_t want);
  void background_main();

  const std::size_t max_workers_;
  const bool pin_cpus_;
  const std::size_t background_workers_;

  /// Serialises whole jobs: held for the full dispatch+wait of one run()
  /// so concurrent driving threads cannot interleave on the job_ slot.
  std::mutex dispatch_mu_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  /// Per-worker CPU pin plan (see set_worker_cpus); guarded by mu_.
  std::vector<int> worker_cpus_;
  std::uint64_t job_id_ = 0;  // bumped per dispatched job
  Job job_;
  bool shutdown_ = false;

  std::atomic<std::uint64_t> spawned_{0};
  std::atomic<std::uint64_t> dispatched_{0};

  // ---- background submit() lane (own lock domain; never holds mu_) ----
  std::mutex bg_mu_;
  std::condition_variable bg_work_cv_;
  std::condition_variable bg_idle_cv_;
  std::deque<std::packaged_task<void()>> bg_queue_;
  std::vector<std::thread> bg_workers_;
  std::size_t bg_active_ = 0;  // tasks currently executing
  bool bg_shutdown_ = false;
  std::atomic<std::uint64_t> background_spawned_{0};
};

/// Process-wide fallback pool for callers that hold no ExecutionContext
/// (direct run_* invocations from benches and legacy call sites). Lazily
/// constructed with default options; lives for the process.
ThreadPool& default_thread_pool();

}  // namespace isasgd::util
