#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace isasgd::util {

template <class Gen>
double normal_double(Gen& g) noexcept {
  // Box–Muller; clamp u1 away from zero so log() is finite.
  double u1 = uniform_double(g);
  if (u1 < 0x1.0p-60) u1 = 0x1.0p-60;
  const double u2 = uniform_double(g);
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

template double normal_double<SplitMix64>(SplitMix64&) noexcept;
template double normal_double<Xoshiro256StarStar>(Xoshiro256StarStar&) noexcept;

std::uint64_t derive_seed(std::uint64_t base_seed,
                          std::uint64_t worker_index) noexcept {
  // Mix the worker index through SplitMix64 twice so adjacent indices map to
  // distant states.
  SplitMix64 sm(base_seed ^ (0xa0761d6478bd642fULL * (worker_index + 1)));
  (void)sm();
  return sm();
}

}  // namespace isasgd::util
