// Tiny flag parser shared by the bench/example binaries. Supports
// `--name value`, `--name=value` and boolean `--name` forms, with typed
// accessors and a generated --help listing.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace isasgd::util {

/// Declarative command-line flag set.
///
///   CliParser cli("fig3_iterative", "Reproduces Figure 3");
///   cli.add_flag("epochs", "15", "epochs per run");
///   cli.parse(argc, argv);          // exits(0) on --help
///   int epochs = cli.get_int("epochs");
class CliParser {
 public:
  CliParser(std::string program, std::string description);

  /// Registers a flag with a default value (shown in --help).
  void add_flag(const std::string& name, const std::string& default_value,
                const std::string& help);

  /// Parses argv. Unknown flags throw std::invalid_argument. Returns false
  /// and prints usage when --help/-h is present.
  bool parse(int argc, const char* const* argv);

  [[nodiscard]] std::string get(const std::string& name) const;
  [[nodiscard]] int get_int(const std::string& name) const;
  [[nodiscard]] std::int64_t get_i64(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Comma-separated list → vector<int>; e.g. "--threads 4,8,16".
  [[nodiscard]] std::vector<int> get_int_list(const std::string& name) const;

  /// True if the user explicitly supplied the flag (vs. the default).
  [[nodiscard]] bool supplied(const std::string& name) const;

  /// Renders the usage text.
  [[nodiscard]] std::string usage() const;

 private:
  struct Flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  const Flag& find(const std::string& name) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
};

}  // namespace isasgd::util
