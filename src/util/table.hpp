// Fixed-width ASCII table printer. Bench binaries use it to print the
// paper-shaped rows (Table 1, figure series) to stdout.
#pragma once

#include <string>
#include <vector>

namespace isasgd::util {

/// Collects rows then renders them with per-column alignment:
///
///   TablePrinter t({"dataset", "psi", "rho"});
///   t.add_row({"news20", "0.972", "5e-4"});
///   std::cout << t.render();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> columns);

  /// Appends one row; width must match the column count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: numeric cells formatted with `precision` significant digits.
  template <class... Ts>
  void add_row_values(const Ts&... vals);

  /// Renders the full table including a header separator line.
  [[nodiscard]] std::string render() const;

  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }

  /// Formats a double with %.4g (benches share one look).
  static std::string num(double v);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

template <class... Ts>
void TablePrinter::add_row_values(const Ts&... vals) {
  std::vector<std::string> cells;
  cells.reserve(sizeof...(vals));
  auto push = [&cells](const auto& v) {
    using V = std::decay_t<decltype(v)>;
    if constexpr (std::is_convertible_v<V, std::string>) {
      cells.push_back(std::string(v));
    } else {
      cells.push_back(num(static_cast<double>(v)));
    }
  };
  (push(vals), ...);
  add_row(std::move(cells));
}

}  // namespace isasgd::util
