#include "util/thread_pool.hpp"

#include <algorithm>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace isasgd::util {

namespace {

/// Set while a pool worker executes a task on this thread; run() consults it
/// to serialise nested dispatch instead of deadlocking on the job slot.
thread_local bool t_on_worker = false;

std::size_t default_max_workers() {
  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max<std::size_t>(32, 8 * hw);
}

#if defined(__linux__)
void pin_to_cpu(std::size_t wid) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(wid % hw), &set);
  // Best-effort: a failed pin (cgroup restrictions, shrunk affinity mask)
  // must not take the pool down.
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

/// Best-effort pin of an arbitrary live thread (set_worker_cpus re-pins
/// already-running workers through their native handles).
void pin_handle_to_cpu(pthread_t handle, int cpu) {
  if (cpu < 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  (void)pthread_setaffinity_np(handle, sizeof(set), &set);
}
#endif

}  // namespace

ThreadPool::ThreadPool(std::size_t workers, Options options)
    : max_workers_(options.max_workers ? options.max_workers
                                       : default_max_workers()),
      pin_cpus_(options.pin_cpus),
      background_workers_(
          std::max<std::size_t>(1, options.background_workers)) {
  if (workers > 0) {
    const std::lock_guard<std::mutex> lock(mu_);
    ensure_workers_locked(std::min(workers, max_workers_));
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  {
    // Background workers drain the remaining queue before exiting (see
    // background_main), so every submitted task runs exactly once.
    const std::lock_guard<std::mutex> lock(bg_mu_);
    bg_shutdown_ = true;
  }
  bg_work_cv_.notify_all();
  for (std::thread& t : bg_workers_) t.join();
}

bool ThreadPool::on_worker_thread() noexcept { return t_on_worker; }

std::size_t ThreadPool::capacity() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return workers_.size();
}

void ThreadPool::ensure_workers_locked(std::size_t want) {
  while (workers_.size() < std::min(want, max_workers_)) {
    const std::size_t wid = workers_.size();
    // A fresh worker must ignore every job dispatched before it existed:
    // its fn pointer may already be dangling. Hand it the current job id as
    // its "already seen" watermark.
    workers_.emplace_back(&ThreadPool::worker_main, this, wid, job_id_);
    spawned_.fetch_add(1, std::memory_order_relaxed);
#if defined(__linux__)
    // A standing pin plan applies to late-spawned workers too. Pinning the
    // handle here (after the worker's own optional pin_cpus self-pin could
    // run) keeps the explicit plan authoritative.
    if (wid < worker_cpus_.size()) {
      pin_handle_to_cpu(workers_.back().native_handle(), worker_cpus_[wid]);
    }
#endif
  }
}

void ThreadPool::worker_main(std::size_t wid, std::uint64_t last_seen) {
#if defined(__linux__)
  if (pin_cpus_) pin_to_cpu(wid);
#endif
  t_on_worker = true;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (job_id_ != last_seen && wid < job_.serving);
    });
    if (shutdown_) return;
    last_seen = job_id_;
    // Job fields are immutable while remaining > 0; read them unlocked.
    const std::function<void(std::size_t)>* fn = job_.fn;
    const std::size_t team = job_.team;
    const std::size_t serving = job_.serving;
    lock.unlock();
    std::exception_ptr error;
    try {
      // Strided share of the team: exact tid coverage even when the team
      // exceeds the OS-thread clamp.
      for (std::size_t tid = wid; tid < team; tid += serving) (*fn)(tid);
    } catch (...) {
      error = std::current_exception();
    }
    lock.lock();
    if (error && !job_.error) job_.error = error;
    if (--job_.remaining == 0) done_cv_.notify_all();
  }
}

void ThreadPool::reserve(std::size_t team) {
  if (team <= 1) return;
  const std::lock_guard<std::mutex> lock(mu_);
  ensure_workers_locked(std::min(team, max_workers_));
}

void ThreadPool::set_worker_cpus(std::vector<int> cpus) {
  const std::lock_guard<std::mutex> lock(mu_);
  worker_cpus_ = std::move(cpus);
#if defined(__linux__)
  for (std::size_t w = 0; w < workers_.size() && w < worker_cpus_.size();
       ++w) {
    pin_handle_to_cpu(workers_[w].native_handle(), worker_cpus_[w]);
  }
#endif
}

std::vector<int> ThreadPool::worker_cpus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return worker_cpus_;
}

void ThreadPool::run(std::size_t team,
                     const std::function<void(std::size_t)>& fn) {
  team = std::max<std::size_t>(1, team);
  dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (team == 1 || t_on_worker) {
    // Serial teams and nested dispatch run inline: same tid coverage, no
    // handoff latency, no deadlock on the single job slot.
    for (std::size_t tid = 0; tid < team; ++tid) fn(tid);
    return;
  }
  // One job at a time: a concurrent driving thread waits here until the
  // in-flight job fully drains.
  const std::lock_guard<std::mutex> dispatch_lock(dispatch_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  const std::size_t serving = std::min(team, max_workers_);
  ensure_workers_locked(serving);
  job_.fn = &fn;
  job_.team = team;
  job_.serving = serving;
  job_.remaining = serving;
  job_.error = nullptr;
  ++job_id_;
  // Wake under the lock: a worker that checked the predicate between our
  // store and an unlocked notify could otherwise miss the wake.
  work_cv_.notify_all();
  done_cv_.wait(lock, [&] { return job_.remaining == 0; });
  job_.fn = nullptr;
  if (job_.error) {
    std::exception_ptr error = job_.error;
    job_.error = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ThreadPool::background_main() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  for (;;) {
    bg_work_cv_.wait(lock, [&] { return bg_shutdown_ || !bg_queue_.empty(); });
    if (bg_queue_.empty()) return;  // shutdown with a drained queue
    std::packaged_task<void()> task = std::move(bg_queue_.front());
    bg_queue_.pop_front();
    ++bg_active_;
    lock.unlock();
    task();  // packaged_task captures any exception in its shared state
    lock.lock();
    --bg_active_;
    if (bg_queue_.empty() && bg_active_ == 0) bg_idle_cv_.notify_all();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    const std::lock_guard<std::mutex> lock(bg_mu_);
    if (bg_shutdown_) {
      // Destructor already ran: execute inline rather than drop the task.
      packaged();
      return future;
    }
    bg_queue_.push_back(std::move(packaged));
    // Demand = queued + executing: without bg_active_ the second configured
    // worker would never spawn once worker 1 had popped the only queued
    // task, and two prefetches that should overlap would serialise.
    while (bg_workers_.size() < background_workers_ &&
           bg_workers_.size() < bg_queue_.size() + bg_active_) {
      bg_workers_.emplace_back(&ThreadPool::background_main, this);
      background_spawned_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  bg_work_cv_.notify_one();
  return future;
}

void ThreadPool::drain_background() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  bg_idle_cv_.wait(lock, [&] { return bg_queue_.empty() && bg_active_ == 0; });
}

ThreadPool& default_thread_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace isasgd::util
