#include "util/csv.hpp"

#include <stdexcept>

namespace isasgd::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) {
    throw std::runtime_error("CsvWriter: cannot open '" + path + "' for writing");
  }
}

void CsvWriter::header(const std::vector<std::string>& columns) {
  if (header_written_) {
    throw std::logic_error("CsvWriter: header written twice");
  }
  if (columns.empty()) {
    throw std::invalid_argument("CsvWriter: empty header");
  }
  width_ = columns.size();
  header_written_ = true;
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(columns[i]);
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!header_written_) {
    throw std::logic_error("CsvWriter: row before header");
  }
  if (cells.size() != width_) {
    throw std::invalid_argument("CsvWriter: row width " +
                                std::to_string(cells.size()) +
                                " != header width " + std::to_string(width_));
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << escape(cells[i]);
  }
  out_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(std::string_view cell) {
  const bool needs_quote =
      cell.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(cell);
  std::string quoted;
  quoted.reserve(cell.size() + 2);
  quoted.push_back('"');
  for (char c : cell) {
    if (c == '"') quoted.push_back('"');
    quoted.push_back(c);
  }
  quoted.push_back('"');
  return quoted;
}

std::vector<std::vector<std::string>> read_csv(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("read_csv: cannot open '" + path + "'");
  }
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> current;
  std::string cell;
  bool in_quotes = false;
  bool row_started = false;
  char c;
  while (in.get(c)) {
    row_started = true;
    if (in_quotes) {
      if (c == '"') {
        if (in.peek() == '"') {
          in.get(c);
          cell.push_back('"');
        } else {
          in_quotes = false;
        }
      } else {
        cell.push_back(c);
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      current.push_back(std::move(cell));
      cell.clear();
    } else if (c == '\n') {
      current.push_back(std::move(cell));
      cell.clear();
      rows.push_back(std::move(current));
      current.clear();
      row_started = false;
    } else if (c != '\r') {
      cell.push_back(c);
    }
  }
  if (row_started) {
    current.push_back(std::move(cell));
    rows.push_back(std::move(current));
  }
  return rows;
}

}  // namespace isasgd::util
