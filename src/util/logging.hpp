// Leveled stderr logging. Intentionally tiny: the solvers are hot-loop code
// and must never log from inside an iteration, so the logger optimises for
// ergonomics of coarse progress messages, not throughput.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace isasgd::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one line: `[LEVEL ts] message`. Thread-safe (single write call).
void log_message(LogLevel level, const std::string& message);

/// Pluggable destination for log lines that pass the threshold. The daemon
/// installs one to redirect the library's warnings/errors (e.g. the
/// StreamingSource materialize() fallback) into its own per-job log file
/// instead of the controlling terminal's stderr.
using LogSink = std::function<void(LogLevel, const std::string&)>;

/// Installs `sink` as the destination for all subsequent log lines; passing
/// an empty function restores the stderr default. The sink is invoked under
/// an internal mutex (one line at a time) and must not log re-entrantly.
void set_log_sink(LogSink sink);

/// Fixed-width display name ("DEBUG", "INFO ", ...) for sinks that format
/// their own lines.
[[nodiscard]] const char* log_level_name(LogLevel level);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }
  template <class T>
  LogLine& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace isasgd::util
