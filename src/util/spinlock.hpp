// Test-and-test-and-set spinlock for the locked update-policy ablation.
//
// The locked disciplines exist to *measure* what Hogwild's lock-freedom
// buys: the critical sections here are a handful of nanoseconds (one
// load-add-store on one coordinate), exactly the regime where a mutex's
// syscall path would swamp the work and a spinlock is the fair locked
// comparator. The loop spins on a relaxed read (no cache-line ping-pong
// while held) and only then attempts the exchange.
#pragma once

#include <atomic>

namespace isasgd::util {

/// Minimal TTAS spinlock. Satisfies BasicLockable (lock/unlock), so it works
/// with std::lock_guard.
class Spinlock {
 public:
  void lock() noexcept {
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
#if defined(__x86_64__) || defined(__i386__)
        __builtin_ia32_pause();
#endif
      }
    }
  }

  /// Single attempt; true if the lock was taken.
  [[nodiscard]] bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace isasgd::util
