#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace isasgd::util {

TablePrinter::TablePrinter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  if (columns_.empty()) {
    throw std::invalid_argument("TablePrinter: no columns");
  }
}

void TablePrinter::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("TablePrinter: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::num(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.4g", v);
  return buf;
}

std::string TablePrinter::render() const {
  std::vector<std::size_t> widths(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    widths[c] = columns_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << cells[c]
         << std::string(widths[c] - cells[c].size(), ' ');
    }
    os << '\n';
  };
  emit_row(columns_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (columns_.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

}  // namespace isasgd::util
