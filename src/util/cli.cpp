#include "util/cli.hpp"

#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace isasgd::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void CliParser::add_flag(const std::string& name,
                         const std::string& default_value,
                         const std::string& help) {
  if (flags_.count(name)) {
    throw std::logic_error("CliParser: duplicate flag --" + name);
  }
  flags_[name] = Flag{default_value, help, std::nullopt};
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      throw std::invalid_argument("CliParser: positional argument '" + arg +
                                  "' not supported");
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      throw std::invalid_argument("CliParser: unknown flag --" + arg + "\n" +
                                  usage());
    }
    if (!has_value) {
      // `--flag value` unless the next token is another flag (boolean form).
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      } else {
        value = "true";
      }
    }
    it->second.value = value;
  }
  return true;
}

const CliParser::Flag& CliParser::find(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::logic_error("CliParser: flag --" + name + " was never added");
  }
  return it->second;
}

std::string CliParser::get(const std::string& name) const {
  const Flag& f = find(name);
  return f.value.value_or(f.default_value);
}

int CliParser::get_int(const std::string& name) const {
  return static_cast<int>(get_i64(name));
}

std::int64_t CliParser::get_i64(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const std::int64_t out = std::stoll(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("--" + name + ": '" + v + "' is not an integer");
  }
  return out;
}

double CliParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  std::size_t pos = 0;
  const double out = std::stod(v, &pos);
  if (pos != v.size()) {
    throw std::invalid_argument("--" + name + ": '" + v + "' is not a number");
  }
  return out;
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  throw std::invalid_argument("--" + name + ": '" + v + "' is not a boolean");
}

std::vector<int> CliParser::get_int_list(const std::string& name) const {
  const std::string v = get(name);
  std::vector<int> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item.empty()) continue;
    // Full-token consumption, like get_i64/get_double above: std::stoi
    // would silently read "4x" as 4 and let a typo'd list train the wrong
    // thread counts.
    std::size_t pos = 0;
    int value = 0;
    try {
      value = std::stoi(item, &pos);
    } catch (const std::exception&) {
      pos = std::string::npos;
    }
    if (pos != item.size()) {
      throw std::invalid_argument("--" + name + ": list item '" + item +
                                  "' is not an integer");
    }
    out.push_back(value);
  }
  if (out.empty()) {
    throw std::invalid_argument("--" + name + ": empty list");
  }
  return out;
}

bool CliParser::supplied(const std::string& name) const {
  return find(name).value.has_value();
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nFlags:\n";
  for (const auto& [name, flag] : flags_) {
    os << "  --" << name << " (default: " << flag.default_value << ")\n      "
       << flag.help << "\n";
  }
  return os.str();
}

}  // namespace isasgd::util
