// Wall-clock stopwatch used by the convergence tracers and the benchmark
// harness. steady_clock based: immune to NTP adjustments.
#pragma once

#include <chrono>
#include <cstdint>

namespace isasgd::util {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void reset() noexcept { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last reset().
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulating timer: sums the durations of several start()/stop() windows.
/// Useful for separating "sampling time" from "update time" in the overhead
/// ablation (§4.2 of the paper).
class AccumulatingTimer {
 public:
  void start() noexcept {
    running_ = true;
    window_.reset();
  }

  void stop() noexcept {
    if (running_) {
      total_ += window_.seconds();
      running_ = false;
    }
  }

  /// Total accumulated seconds across all closed windows.
  [[nodiscard]] double seconds() const noexcept { return total_; }

  void reset() noexcept {
    total_ = 0;
    running_ = false;
  }

 private:
  Stopwatch window_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace isasgd::util
