#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace isasgd::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  using namespace std::chrono;
  const double ts =
      duration<double>(steady_clock::now().time_since_epoch()).count();
  // One fprintf call so concurrent lines do not interleave mid-line.
  std::fprintf(stderr, "[%s %12.3f] %s\n", level_name(level), ts,
               message.c_str());
}

}  // namespace isasgd::util
