#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <utility>

namespace isasgd::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};

// The sink is rarely installed (daemon only) and never hot-path, so a plain
// mutex around it is fine; the common stderr path takes the same lock only
// to read the (usually empty) function object.
std::mutex g_sink_mu;
LogSink g_sink;

}  // namespace

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
  }
  return "?????";
}

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load(std::memory_order_relaxed)) return;
  {
    std::lock_guard<std::mutex> lock(g_sink_mu);
    if (g_sink) {
      g_sink(level, message);
      return;
    }
  }
  using namespace std::chrono;
  const double ts =
      duration<double>(steady_clock::now().time_since_epoch()).count();
  // One fprintf call so concurrent lines do not interleave mid-line.
  std::fprintf(stderr, "[%s %12.3f] %s\n", log_level_name(level), ts,
               message.c_str());
}

}  // namespace isasgd::util
