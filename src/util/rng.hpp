// Deterministic, fast pseudo-random number generation for parallel solvers.
//
// Every stochastic component in the library takes an explicit 64-bit seed so
// serial runs are bit-reproducible and parallel runs are reproducible in
// distribution (each worker derives an independent stream from the base seed
// via SplitMix64, the recommended seeding procedure for xoshiro generators).
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace isasgd::util {

/// SplitMix64: tiny, statistically solid 64-bit generator. Used both as a
/// stand-alone generator and to seed Xoshiro256StarStar streams.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  explicit SplitMix64(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept
      : state_(seed) {}

  /// Advances the state and returns the next 64-bit value.
  result_type operator()() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the workhorse generator for sampling
/// in solver inner loops. ~0.8 ns/call, passes BigCrush, 2^256-1 period.
class Xoshiro256StarStar {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from `seed` via SplitMix64 (never all-zero).
  explicit Xoshiro256StarStar(std::uint64_t seed = 1) noexcept { reseed(seed); }

  /// Re-initialises the stream; identical seeds give identical streams.
  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm();
  }

  /// The four raw state words — checkpoint export. A generator restored via
  /// set_state continues the exact stream, so a killed run resumed from a
  /// checkpoint replays the same draws as the uninterrupted one.
  [[nodiscard]] std::array<std::uint64_t, 4> state() const noexcept {
    return state_;
  }

  /// Restores a stream captured with state(). The all-zero state is invalid
  /// for xoshiro (the generator would emit zeros forever); it is remapped to
  /// the default seed, which can only occur on a corrupted checkpoint that
  /// also defeated its CRC.
  void set_state(const std::array<std::uint64_t, 4>& s) noexcept {
    state_ = s;
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) reseed(1);
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Equivalent to 2^128 calls to operator(); used to derive non-overlapping
  /// per-thread sub-streams from a common seed.
  void jump() noexcept {
    static constexpr std::array<std::uint64_t, 4> kJump = {
        0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
        0x39abdc4529b1661cULL};
    std::array<std::uint64_t, 4> acc{0, 0, 0, 0};
    for (std::uint64_t j : kJump) {
      for (int b = 0; b < 64; ++b) {
        if (j & (1ULL << b)) {
          for (int i = 0; i < 4; ++i) acc[static_cast<std::size_t>(i)] ^= state_[static_cast<std::size_t>(i)];
        }
        (void)(*this)();
      }
    }
    state_ = acc;
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

/// Default generator type used across the library.
using Rng = Xoshiro256StarStar;

/// Uniform double in [0, 1) using the top 53 bits (unbiased).
template <class Gen>
inline double uniform_double(Gen& g) noexcept {
  return static_cast<double>(g() >> 11) * 0x1.0p-53;
}

/// Uniform integer in [0, n) without modulo bias (Lemire's method).
template <class Gen>
inline std::uint64_t uniform_index(Gen& g, std::uint64_t n) noexcept {
  // Multiply-shift rejection sampling; the rejection loop triggers with
  // probability < n / 2^64, i.e. essentially never for dataset-sized n.
  std::uint64_t x = g();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0ULL - n) % n;
    while (lo < threshold) {
      x = g();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

/// Standard normal via Box–Muller on two uniforms (no cached spare: keeps the
/// generator stateless w.r.t. call parity, which matters for reproducibility).
template <class Gen>
double normal_double(Gen& g) noexcept;

/// Derives the seed for worker `worker_index` from `base_seed`. Distinct
/// workers get statistically independent streams.
std::uint64_t derive_seed(std::uint64_t base_seed, std::uint64_t worker_index) noexcept;

}  // namespace isasgd::util
