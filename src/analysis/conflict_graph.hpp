// Conflict-graph statistics (paper §3.1).
//
// Vertices are samples; an edge (i, j) exists iff c_i ∩ c_j ≠ ∅ (the rows
// share at least one feature). Two parameters govern the asynchrony noise
// term δ in Eq. 25:
//   τ  — delay, a proxy for thread count (user-controlled),
//   Δ̄ — average degree of the conflict graph (dataset-intrinsic).
//
// Exact Δ̄ is O(Σ_j freq_j²) via the inverted index; for heavy-tailed
// feature popularity that explodes, so a sampled estimator visits `samples`
// random rows and unions their features' row lists with early exit.
#pragma once

#include <cstdint>

#include "sparse/csr_matrix.hpp"
#include "sparse/inverted_index.hpp"

namespace isasgd::analysis {

struct ConflictStats {
  double average_degree = 0;  ///< Δ̄
  double max_degree = 0;      ///< worst vertex (diagnostic)
  double normalized = 0;      ///< Δ̄ / n — the τ-bound's n/Δ̄ reciprocal
  std::size_t rows_examined = 0;
};

/// Exact average degree. O(n + Σ over examined rows of Σ freq). Intended for
/// datasets up to ~10^4 rows (tests, News20-scale analogs).
ConflictStats conflict_stats_exact(const sparse::CsrMatrix& data,
                                   const sparse::InvertedIndex& index);

/// Monte-Carlo estimator: examines `samples` uniformly random rows. The
/// per-row degree is exact (set union over the row's features); only the
/// average over rows is sampled, so the estimator is unbiased with variance
/// shrinking as 1/samples.
ConflictStats conflict_stats_sampled(const sparse::CsrMatrix& data,
                                     const sparse::InvertedIndex& index,
                                     std::size_t samples, std::uint64_t seed);

}  // namespace isasgd::analysis
