#include "analysis/conflict_graph.hpp"

#include <algorithm>
#include <vector>

#include "util/rng.hpp"

namespace isasgd::analysis {

namespace {

/// Exact degree of row i: |{j ≠ i : rows share a feature}|. Uses an epoch
/// array so repeated calls reuse the same O(n) scratch without re-zeroing.
class DegreeCounter {
 public:
  explicit DegreeCounter(std::size_t n) : seen_(n, 0) {}

  std::size_t degree(const sparse::CsrMatrix& data,
                     const sparse::InvertedIndex& index, std::size_t i) {
    ++epoch_;
    std::size_t count = 0;
    for (sparse::index_t j : data.row(i).indices()) {
      for (std::uint32_t r : index.rows_with_feature(j)) {
        if (r != i && seen_[r] != epoch_) {
          seen_[r] = epoch_;
          ++count;
        }
      }
    }
    return count;
  }

 private:
  std::vector<std::uint64_t> seen_;
  std::uint64_t epoch_ = 0;
};

}  // namespace

ConflictStats conflict_stats_exact(const sparse::CsrMatrix& data,
                                   const sparse::InvertedIndex& index) {
  const std::size_t n = data.rows();
  ConflictStats stats;
  if (n == 0) return stats;
  DegreeCounter counter(n);
  double total = 0;
  double max_deg = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto deg = static_cast<double>(counter.degree(data, index, i));
    total += deg;
    max_deg = std::max(max_deg, deg);
  }
  stats.average_degree = total / static_cast<double>(n);
  stats.max_degree = max_deg;
  stats.normalized = stats.average_degree / static_cast<double>(n);
  stats.rows_examined = n;
  return stats;
}

ConflictStats conflict_stats_sampled(const sparse::CsrMatrix& data,
                                     const sparse::InvertedIndex& index,
                                     std::size_t samples, std::uint64_t seed) {
  const std::size_t n = data.rows();
  ConflictStats stats;
  if (n == 0 || samples == 0) return stats;
  samples = std::min(samples, n);
  DegreeCounter counter(n);
  util::Rng rng(seed);
  double total = 0;
  double max_deg = 0;
  for (std::size_t s = 0; s < samples; ++s) {
    const std::size_t i = util::uniform_index(rng, n);
    const auto deg = static_cast<double>(counter.degree(data, index, i));
    total += deg;
    max_deg = std::max(max_deg, deg);
  }
  stats.average_degree = total / static_cast<double>(samples);
  stats.max_degree = max_deg;
  stats.normalized = stats.average_degree / static_cast<double>(n);
  stats.rows_examined = samples;
  return stats;
}

}  // namespace isasgd::analysis
