#include "analysis/dataset_stats.hpp"

#include "analysis/bounds.hpp"
#include "analysis/conflict_graph.hpp"
#include "partition/importance.hpp"
#include "sparse/inverted_index.hpp"

namespace isasgd::analysis {

DatasetStats compute_dataset_stats(const std::string& name,
                                   const sparse::CsrMatrix& data,
                                   const objectives::Objective& objective,
                                   const objectives::Regularization& reg,
                                   const DatasetStatsOptions& options) {
  DatasetStats stats;
  stats.name = name;
  stats.dimension = data.dim();
  stats.instances = data.rows();
  stats.gradient_sparsity = data.density();

  const std::vector<double> lipschitz =
      objectives::per_sample_lipschitz(data, objective, reg);
  stats.psi = psi(lipschitz);
  stats.rho = partition::importance_variance(lipschitz);
  if (!lipschitz.empty()) {
    const LipschitzSummary lip = summarize_lipschitz(lipschitz);
    stats.lipschitz_sup = lip.sup;
    stats.lipschitz_mean = lip.mean;
  }

  if (options.compute_conflicts && data.rows() > 0) {
    const sparse::InvertedIndex index(data);
    const ConflictStats conflict =
        data.rows() <= options.conflict_samples
            ? conflict_stats_exact(data, index)
            : conflict_stats_sampled(data, index, options.conflict_samples,
                                     options.seed);
    stats.avg_conflict_degree = conflict.average_degree;
  }
  return stats;
}

}  // namespace isasgd::analysis
