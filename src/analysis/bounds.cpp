#include "analysis/bounds.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace isasgd::analysis {

double psi(std::span<const double> lipschitz) {
  if (lipschitz.empty()) return 1.0;
  double sum = 0, sum_sq = 0;
  for (double l : lipschitz) {
    sum += l;
    sum_sq += l * l;
  }
  if (sum_sq <= 0) return 1.0;
  return (sum * sum) / (static_cast<double>(lipschitz.size()) * sum_sq);
}

LipschitzSummary summarize_lipschitz(std::span<const double> lipschitz) {
  if (lipschitz.empty()) {
    throw std::invalid_argument("summarize_lipschitz: empty vector");
  }
  LipschitzSummary s;
  s.sup = -std::numeric_limits<double>::infinity();
  s.inf = std::numeric_limits<double>::infinity();
  for (double l : lipschitz) {
    s.sup = std::max(s.sup, l);
    s.inf = std::min(s.inf, l);
    s.sum += l;
    s.sum_sq += l * l;
  }
  s.mean = s.sum / static_cast<double>(lipschitz.size());
  return s;
}

namespace {
double log_ratio(const BoundInputs& in) {
  if (in.epsilon <= 0 || in.epsilon0 <= 0) {
    throw std::invalid_argument("bounds: epsilon and epsilon0 must be > 0");
  }
  return std::log(std::max(in.epsilon0 / in.epsilon, 1.0));
}
}  // namespace

double sgd_iteration_bound(const LipschitzSummary& lip, const BoundInputs& in) {
  return 2.0 * log_ratio(in) *
         (lip.sup / in.mu + in.sigma_sq / (in.mu * in.mu * in.epsilon));
}

double is_sgd_iteration_bound(const LipschitzSummary& lip,
                              const BoundInputs& in) {
  const double inflation = lip.inf > 0 ? lip.mean / lip.inf : 1.0;
  return 2.0 * log_ratio(in) *
         (lip.mean / in.mu +
          inflation * in.sigma_sq / (in.mu * in.mu * in.epsilon));
}

RateConstants rate_constants(std::span<const double> lipschitz,
                             double initial_distance_sq, double sigma) {
  if (lipschitz.empty() || sigma <= 0) {
    throw std::invalid_argument("rate_constants: need data and sigma > 0");
  }
  const double n = static_cast<double>(lipschitz.size());
  double sum = 0, sum_sq = 0;
  for (double l : lipschitz) {
    sum += l;
    sum_sq += l * l;
  }
  RateConstants rc;
  // Eq. 14 (uniform): sqrt(‖w*−w₀‖²·ΣL²/(σ·n)); Eq. 13 (IS):
  // sqrt(‖w*−w₀‖²·σ·(ΣL/n)) — written in the paper with σ placements that
  // only make the ratio meaningful; we normalise both with the same σ so the
  // ratio is exactly sqrt(ψ).
  rc.uniform = std::sqrt(initial_distance_sq * sum_sq / (sigma * n));
  rc.importance = std::sqrt(initial_distance_sq * (sum / n) * (sum / n) /
                            (sigma * 1.0));
  rc.ratio = rc.uniform > 0 ? rc.importance / rc.uniform : 1.0;
  return rc;
}

double tau_bound(std::size_t n, double avg_conflict_degree,
                 const LipschitzSummary& lip, const BoundInputs& in) {
  const double structural =
      avg_conflict_degree > 0
          ? static_cast<double>(n) / avg_conflict_degree
          : std::numeric_limits<double>::infinity();
  const double optimization =
      (in.epsilon * in.mu * lip.sup + in.sigma_sq) /
      (in.epsilon * in.mu * in.mu);
  return std::min(structural, optimization);
}

double is_gradient_inflation(const LipschitzSummary& lip) {
  return lip.inf > 0 ? lip.mean / lip.inf
                     : std::numeric_limits<double>::infinity();
}

double lemma2_step_size(const LipschitzSummary& lip, const BoundInputs& in) {
  return in.epsilon * in.mu /
         (2.0 * in.epsilon * in.mu * lip.sup + 2.0 * in.sigma_sq);
}

}  // namespace isasgd::analysis
