// Closed-form convergence-bound quantities from the paper's theory sections
// (§2.2, §3.2). These let the ablation benches print "predicted vs measured"
// columns next to the empirical convergence results.
#pragma once

#include <cstddef>
#include <span>

namespace isasgd::analysis {

/// ψ = (Σ L_i)² / (n · Σ L_i²)  — Eq. 15 (with the extra 1/n normalisation
/// that makes ψ ∈ (0, 1], matching Table 1's 0.877–0.972 values; ψ = 1 ⇔
/// all L_i equal ⇔ IS degenerates to uniform sampling). The paper's IS gain
/// grows as ψ falls.
double psi(std::span<const double> lipschitz);

/// Summary statistics of the Lipschitz vector used by the bounds.
struct LipschitzSummary {
  double sup = 0;    ///< sup L
  double inf = 0;    ///< inf L
  double mean = 0;   ///< L̄
  double sum = 0;    ///< Σ L
  double sum_sq = 0; ///< Σ L²
};
LipschitzSummary summarize_lipschitz(std::span<const double> lipschitz);

/// Convergence-bound inputs shared by the Eq. 26/28/29 iteration counts.
struct BoundInputs {
  double mu = 1.0;       ///< strong convexity parameter
  double sigma_sq = 1.0; ///< σ² = E‖∇f_i(w*)‖² (residual at optimum)
  double epsilon = 1e-3; ///< target accuracy ε
  double epsilon0 = 1.0; ///< ε₀ = initial squared distance bound
};

/// Eq. 28: k for plain (uniform) SGD, sup-L dependence:
///   k = 2·log(ε₀/ε)·(supL/μ + σ²/(μ²ε)).
double sgd_iteration_bound(const LipschitzSummary& lip, const BoundInputs& in);

/// Eq. 29 (= Eq. 26's content): k for IS-SGD / IS-ASGD, average-L dependence:
///   k = 2·log(ε₀/ε)·(L̄/μ + (L̄/infL)·σ²/(μ²ε)).
double is_sgd_iteration_bound(const LipschitzSummary& lip, const BoundInputs& in);

/// The 1/T convergence-rate constants of Eqs. 13 (IS) and 14 (uniform):
///   uniform: sqrt(‖w*−w₀‖² · ΣL² / (σ·n)),  IS: sqrt(‖w*−w₀‖² · (ΣL/n) / σ)
/// Their ratio equals sqrt(ψ) ≤ 1 — the IS improvement factor.
struct RateConstants {
  double uniform = 0;
  double importance = 0;
  double ratio = 0;  ///< importance / uniform = sqrt(ψ)
};
RateConstants rate_constants(std::span<const double> lipschitz,
                             double initial_distance_sq, double sigma);

/// Eq. 27: the τ (delay / concurrency proxy) bound under which the noise
/// term stays an order-wise constant:
///   τ = O(min{ n/Δ̄, (εμ·supL + σ²)/(εμ²) }).
double tau_bound(std::size_t n, double avg_conflict_degree,
                 const LipschitzSummary& lip, const BoundInputs& in);

/// Eq. 30: the IS gradient-bound inflation M_s ≤ (L̄/infL)·M.
double is_gradient_inflation(const LipschitzSummary& lip);

/// The paper's λ choice for Lemma 2: λ = εμ/(2εμ·supL + 2σ²).
double lemma2_step_size(const LipschitzSummary& lip, const BoundInputs& in);

}  // namespace isasgd::analysis
