// One-stop dataset characterisation — computes every column of the paper's
// Table 1 (dimension, instances, ∇f_i sparsity, ψ, ρ) plus the conflict
// statistics the theory needs.
#pragma once

#include <cstdint>
#include <string>

#include "objectives/objective.hpp"
#include "sparse/csr_matrix.hpp"

namespace isasgd::analysis {

/// Table-1 row plus conflict-graph extras.
struct DatasetStats {
  std::string name;
  std::size_t dimension = 0;
  std::size_t instances = 0;
  double gradient_sparsity = 0;  ///< nnz / (n·d): the "∇fi-Spa." column
  double psi = 0;                ///< Eq. 15
  double rho = 0;                ///< Eq. 20
  double avg_conflict_degree = 0;  ///< Δ̄ (sampled when the dataset is big)
  double lipschitz_sup = 0;
  double lipschitz_mean = 0;
};

struct DatasetStatsOptions {
  /// Conflict-degree estimator budget; rows beyond this use sampling.
  std::size_t conflict_samples = 512;
  std::uint64_t seed = 42;
  /// Skip the Δ̄ computation entirely (it needs the inverted index, which
  /// costs O(nnz) memory).
  bool compute_conflicts = true;
};

/// Computes the full row for `data` under `objective` + `reg` (which define
/// the L_i's that ψ and ρ are functions of).
DatasetStats compute_dataset_stats(const std::string& name,
                                   const sparse::CsrMatrix& data,
                                   const objectives::Objective& objective,
                                   const objectives::Regularization& reg,
                                   const DatasetStatsOptions& options = {});

}  // namespace isasgd::analysis
