#include "sampling/fenwick_sampler.hpp"

#include <cmath>
#include <stdexcept>

namespace isasgd::sampling {

FenwickSampler::FenwickSampler(std::span<const double> weights) {
  if (weights.empty()) {
    throw std::invalid_argument("FenwickSampler: empty weight vector");
  }
  const std::size_t n = weights.size();
  weight_.assign(weights.begin(), weights.end());
  tree_.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i];
    if (!(w >= 0.0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "FenwickSampler: weights must be finite and non-negative");
    }
    total_ += w;
  }
  if (total_ <= 0.0) {
    throw std::invalid_argument("FenwickSampler: all weights are zero");
  }
  // O(n) bulk build: add each leaf into its immediate parent.
  for (std::size_t i = 1; i <= n; ++i) {
    tree_[i] += weight_[i - 1];
    const std::size_t parent = i + (i & (0 - i));
    if (parent <= n) tree_[parent] += tree_[i];
  }
  mask_ = 1;
  while (mask_ * 2 <= n) mask_ *= 2;
}

void FenwickSampler::set_weight(std::size_t i, double w) {
  if (i >= weight_.size()) {
    throw std::out_of_range("FenwickSampler::set_weight: index out of range");
  }
  if (!(w >= 0.0) || !std::isfinite(w)) {
    throw std::invalid_argument(
        "FenwickSampler::set_weight: weight must be finite and non-negative");
  }
  const double delta = w - weight_[i];
  if (delta == 0.0) return;
  const double new_total = total_ + delta;
  if (new_total <= 0.0) {
    throw std::invalid_argument(
        "FenwickSampler::set_weight: total weight must stay positive");
  }
  weight_[i] = w;
  total_ = new_total;
  for (std::size_t k = i + 1; k <= weight_.size(); k += k & (0 - k)) {
    tree_[k] += delta;
  }
}

double FenwickSampler::prefix_sum(std::size_t i) const noexcept {
  double acc = 0;
  for (std::size_t k = i; k > 0; k -= k & (0 - k)) acc += tree_[k];
  return acc;
}

std::size_t FenwickSampler::locate(double target) const noexcept {
  // Binary lifting down the implicit tree: after the loop, `pos` is the
  // largest index whose prefix sum is <= target.
  std::size_t pos = 0;
  double rem = target;
  for (std::size_t step = mask_; step > 0; step >>= 1) {
    const std::size_t next = pos + step;
    if (next <= weight_.size() && tree_[next] <= rem) {
      pos = next;
      rem -= tree_[next];
    }
  }
  // pos == n can only happen from floating-point roundup (target >= total);
  // clamp backwards onto the last outcome with positive weight.
  std::size_t i = pos < weight_.size() ? pos : weight_.size() - 1;
  while (i > 0 && weight_[i] <= 0.0) --i;
  return i;
}

}  // namespace isasgd::sampling
