#include "sampling/cdf_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace isasgd::sampling {

CdfSampler::CdfSampler(std::span<const double> weights) {
  if (weights.empty()) throw std::invalid_argument("CdfSampler: empty weights");
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0) || !std::isfinite(w)) {
      throw std::invalid_argument("CdfSampler: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("CdfSampler: all weights zero");
  cdf_.resize(weights.size());
  double acc = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i] / total;
    cdf_[i] = acc;
  }
  cdf_.back() = 1.0;  // kill accumulated rounding at the top
}

std::size_t CdfSampler::index_of(double u) const noexcept {
  const auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cdf_.begin(),
                               static_cast<std::ptrdiff_t>(cdf_.size()) - 1));
}

}  // namespace isasgd::sampling
