// Sample sequences (paper Algorithm 2, line 3).
//
// "IS can be implemented with no extra on-line computation by generating the
// sample sequences beforehand and let the computation threads iterate over
// the generated sequences, which leaves the computation kernel the same as
// ASGD." (§1.3)
//
// SampleSequence materialises a sequence of row indices drawn from a weight
// vector (or uniformly); ReshuffledSequence implements the §4.2 optimisation
// of generating once and Fisher–Yates-reshuffling per epoch, which removes
// even the offline regeneration cost at a small distributional approximation.
// The solvers consume neither directly any more: BlockSequence (below)
// streams the same index sequences — bit for bit — in fixed-size blocks
// from one persistent alias table, so per-worker sequence memory is
// independent of the epoch count and the table is built once per weight
// change instead of once per epoch. The materialised classes remain as the
// frozen reference the streaming contract is tested against.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "sampling/alias_table.hpp"
#include "util/rng.hpp"

namespace isasgd::sampling {

/// An immutable, pre-drawn sequence of sample indices.
class SampleSequence {
 public:
  /// Draws `length` i.i.d. indices from the weighted distribution.
  static SampleSequence weighted(std::span<const double> weights,
                                 std::size_t length, std::uint64_t seed);

  /// Draws `length` i.i.d. indices uniformly over [0, n).
  static SampleSequence uniform(std::size_t n, std::size_t length,
                                std::uint64_t seed);

  /// A permutation pass 0..n-1 shuffled (classic without-replacement epoch).
  static SampleSequence permutation(std::size_t n, std::uint64_t seed);

  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t t) const noexcept {
    return indices_[t];
  }
  [[nodiscard]] std::span<const std::uint32_t> view() const noexcept {
    return indices_;
  }

  /// Empirical frequency of index i in the sequence (for tests).
  [[nodiscard]] double empirical_frequency(std::uint32_t i) const noexcept;

 private:
  explicit SampleSequence(std::vector<std::uint32_t> indices)
      : indices_(std::move(indices)) {}
  std::vector<std::uint32_t> indices_;
};

/// Stratified (systematic-resampling) sequence: visit counts are the best
/// integer approximation of length·p_i — count_i ∈ {⌊length·p_i⌋,
/// ⌈length·p_i⌉} — optionally floored at `min_visits` so *every* sample is
/// covered each epoch. Fixes the coverage hole of the §4.2 reshuffle-once
/// approximation (an i.i.d. multiset of length m never contains ~1/e of the
/// shard; see EXPERIMENTS.md), at the cost of a slightly longer sequence
/// when the floor binds. Reshuffle per epoch like ReshuffledSequence.
class StratifiedSequence {
 public:
  /// Builds visit counts by systematic resampling over `weights` (one
  /// uniform offset, length strata), applies the floor, lays the indices
  /// out and shuffles. Throws on invalid weights (as AliasTable).
  StratifiedSequence(std::span<const double> weights, std::size_t length,
                     std::uint64_t seed, std::size_t min_visits = 1);

  /// Fisher–Yates reshuffle in place; call between epochs.
  void reshuffle();

  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t t) const noexcept {
    return indices_[t];
  }
  [[nodiscard]] std::span<const std::uint32_t> view() const noexcept {
    return indices_;
  }

  /// Visit count of sample i per epoch (for tests/diagnostics).
  [[nodiscard]] std::size_t visit_count(std::size_t i) const noexcept {
    return counts_[i];
  }

 private:
  std::vector<std::uint32_t> indices_;
  std::vector<std::size_t> counts_;
  util::Rng rng_;
};

/// Shard-major epoch schedule for out-of-core training (the sequence behind
/// data::DataSource epochs): each epoch visits every shard exactly once in a
/// freshly shuffled order, and every row within a shard exactly once in a
/// freshly shuffled order — a blocked without-replacement pass whose I/O
/// pattern is "touch each shard once per epoch", which is what makes the
/// streaming backend's LRU-cache + prefetch effective. Mini-batches are
/// contiguous slices of rows(s): a batch never spans two shards, so a batch
/// of size b touches exactly one resident shard.
///
/// Determinism contract: both the shard order and each shard's row order are
/// pure functions of (seed, epoch, shard ordinal) — independent of cache
/// state, prefetch completion order, or which backend serves the shards. A
/// streaming run and a chunked in-memory run with the same shard geometry
/// therefore perform bit-identical arithmetic (tests/determinism_test.cpp).
class ShardedSequence {
 public:
  /// `shard_sizes[s]` = rows in shard s (data::DataSource::shard_sizes()).
  ShardedSequence(std::vector<std::size_t> shard_sizes, std::uint64_t seed);

  /// Recomputes the shard visit order for `epoch` (1-based). Call before
  /// iterating an epoch.
  void begin_epoch(std::size_t epoch);

  /// Shard visit order for the current epoch.
  [[nodiscard]] std::span<const std::uint32_t> shard_order() const noexcept {
    return shard_order_;
  }

  /// Row visit order (shard-local indices) for shard s in the current
  /// epoch. The returned span aliases an internal scratch buffer that the
  /// next rows() call overwrites — consume it before fetching another
  /// shard's order (drivers process one shard at a time, so this costs one
  /// buffer, not one per shard).
  [[nodiscard]] std::span<const std::uint32_t> rows(std::size_t s);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shard_sizes_.size();
  }
  [[nodiscard]] std::size_t total_rows() const noexcept { return total_rows_; }

 private:
  std::vector<std::size_t> shard_sizes_;
  std::uint64_t seed_;
  std::size_t epoch_ = 0;
  std::size_t total_rows_ = 0;
  std::vector<std::uint32_t> shard_order_;
  std::vector<std::uint32_t> row_scratch_;
};

/// Epoch-reshuffled sequence (§4.2): one weighted draw up front, then each
/// epoch permutes the same multiset in place. Eliminates the per-epoch
/// regeneration cost; the multiset of visited samples stays fixed, which the
/// paper reports "works well in practice".
class ReshuffledSequence {
 public:
  ReshuffledSequence(std::span<const double> weights, std::size_t length,
                     std::uint64_t seed);

  /// Uniform variant (for ASGD with sequence-driven iteration in tests).
  ReshuffledSequence(std::size_t n, std::size_t length, std::uint64_t seed);

  /// Fisher–Yates reshuffle in place; call between epochs.
  void reshuffle();

  [[nodiscard]] std::size_t size() const noexcept { return indices_.size(); }
  [[nodiscard]] std::uint32_t operator[](std::size_t t) const noexcept {
    return indices_[t];
  }
  [[nodiscard]] std::span<const std::uint32_t> view() const noexcept {
    return indices_;
  }

 private:
  std::vector<std::uint32_t> indices_;
  util::Rng rng_;
};

/// Block-refill sample stream: the solvers' hot-path view of the sequence
/// layer. Where the pre-materialized scheme builds `epochs × length`
/// indices (and one AliasTable per epoch) before training starts, a
/// BlockSequence holds ONE persistent alias table — rebuilt only when the
/// weights change (adaptive refresh), never per epoch — and produces each
/// epoch's indices on demand in fixed-size blocks, so per-worker sequence
/// memory is O(block + n) regardless of epoch count.
///
/// Bit-compatibility contract (tests/block_sequence_test.cpp): the streamed
/// index sequence is bit-identical to the frozen pre-materialized reference
/// for every mode and every block size —
///   kIid        ≡ SampleSequence::weighted(weights, length, epoch_seed)
///                 for the epoch_seed passed to begin_epoch,
///   kReshuffle  ≡ ReshuffledSequence(weights, length, seed) reshuffled
///                 once per epoch after the first,
///   kStratified ≡ StratifiedSequence(weights, length, seed) likewise.
/// The shuffled modes keep their O(length) multiset (already independent of
/// epoch count) and are served through the same block API; the i.i.d. mode
/// is the one that drops from `epochs × length` to a single block.
class BlockSequence {
 public:
  static constexpr std::size_t kDefaultBlockSize = 1024;

  /// Mirrors SolverOptions::SequenceMode.
  enum class Mode { kIid, kReshuffle, kStratified };

  /// Builds the persistent sampler. `seed` feeds the shuffled modes'
  /// generation + reshuffle stream (exactly like the reference classes);
  /// the i.i.d. mode ignores it — each epoch's draw stream is seeded by
  /// begin_epoch. Weight validation as AliasTable (throws on empty /
  /// negative / all-zero weights).
  BlockSequence(Mode mode, std::span<const double> weights,
                std::size_t epoch_length, std::uint64_t seed,
                std::size_t block_size = kDefaultBlockSize,
                std::size_t min_visits = 1);

  /// Starts epoch `epoch` (1-based). kIid: reseeds the draw stream with
  /// `epoch_seed` — pass util::derive_seed(base, epoch - 1) to reproduce
  /// the pre-materialized per-epoch layout bit for bit, or the same seed
  /// twice to replay an epoch (the adaptive solvers replay the last
  /// refresh's stream between refreshes). Shuffled modes: reshuffles in
  /// place when epoch > 1 and ignore `epoch_seed`.
  void begin_epoch(std::size_t epoch, std::uint64_t epoch_seed = 0);

  /// Rebuilds the i.i.d. distribution in place from new weights (the
  /// adaptive-importance refresh) — one O(n) alias-table build per weight
  /// change instead of one per epoch. kIid only; throws std::logic_error
  /// for the shuffled modes (their multiset is fixed by construction).
  void rebuild(std::span<const double> weights);

  /// Indices this epoch will produce (kStratified can exceed the requested
  /// length when the ≥min_visits coverage floor binds).
  [[nodiscard]] std::size_t epoch_length() const noexcept {
    return epoch_length_;
  }

  /// Draws the next index of the current epoch. Drawing past
  /// epoch_length(), or before the first begin_epoch, throws
  /// std::logic_error from the refill (checked per refill, not per draw).
  /// Inline cursor + block refill: one branch per draw, one alias draw per
  /// index amortised.
  [[nodiscard]] std::uint32_t next() {
    if (cursor_ == block_end_) refill();
    return block_data_[cursor_++];
  }

  /// Refills and returns the next block (≤ block size) of the current
  /// epoch; empty once epoch_length() indices have been produced. View is
  /// valid until the next next_block()/next()/begin_epoch call.
  [[nodiscard]] std::span<const std::uint32_t> next_block();

  [[nodiscard]] Mode mode() const noexcept { return mode_; }

  // ---- checkpoint cursor export/rewind (solvers/snapshot.hpp) ----

  /// The epoch of the last begin_epoch call (0 before the first) — the
  /// epoch-fence cursor a checkpoint records.
  [[nodiscard]] std::size_t current_epoch() const noexcept { return epoch_; }

  /// Indices handed out since the last begin_epoch — the intra-epoch
  /// cursor. Checkpoints are taken at epoch fences, where this equals
  /// epoch_length(); exported for diagnostics and corruption checks.
  [[nodiscard]] std::size_t produced() const noexcept { return produced_; }

  /// Fast-forwards a freshly built sequence to the state just after epoch
  /// `epoch`'s fence: the shuffled modes replay their per-epoch reshuffles
  /// (their generation stream is the only cross-epoch sampler state — the
  /// multiset walk itself never advances it), the i.i.d. mode has nothing
  /// to replay (begin_epoch reseeds its draw stream per epoch). After the
  /// call the stream is exhausted, exactly as at a real fence; the next
  /// begin_epoch(epoch + 1, ...) continues bit-identically to a sequence
  /// that trained through epochs 1..epoch. Throws std::logic_error on a
  /// backwards rewind (reshuffle streams cannot run in reverse).
  void rewind_to(std::size_t epoch);

 private:
  void refill();

  Mode mode_;
  std::size_t block_size_;
  std::size_t epoch_length_ = 0;
  std::size_t epoch_ = 0;     ///< last begin_epoch ordinal (0 = none yet)
  std::size_t produced_ = 0;  ///< indices handed out this epoch
  // Current block window: for kIid `buffer_` is one block refilled from the
  // alias table; for the shuffled modes it is the whole multiset and the
  // window walks it without copying.
  const std::uint32_t* block_data_ = nullptr;
  std::size_t cursor_ = 0;
  std::size_t block_end_ = 0;
  std::vector<std::uint32_t> buffer_;
  // kIid state: persistent table + per-epoch draw stream.
  std::optional<AliasTable> table_;
  util::Rng draw_rng_;
  // Shuffled-mode state: the reference class IS the implementation, so the
  // bit-compat contract cannot drift.
  std::unique_ptr<ReshuffledSequence> reshuffled_;
  std::unique_ptr<StratifiedSequence> stratified_;
};

}  // namespace isasgd::sampling
