// Walker alias method: O(n) construction, O(1) weighted sampling.
//
// IS-ASGD's whole performance story (paper §1.3) is that importance sampling
// adds no per-iteration cost. The alias table is what makes that literal:
// drawing from p_i = L_i / Σ L_j costs one RNG call, one table lookup and one
// comparison — the same as uniform sampling up to a few nanoseconds
// (measured in bench/micro_kernels).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/rng.hpp"

namespace isasgd::sampling {

/// Immutable alias table over a fixed weight vector.
class AliasTable {
 public:
  /// Builds from non-negative weights (need not be normalised). Throws
  /// std::invalid_argument if empty, any weight is negative/non-finite, or
  /// all weights are zero.
  explicit AliasTable(std::span<const double> weights);

  /// Number of outcomes.
  [[nodiscard]] std::size_t size() const noexcept { return prob_.size(); }

  /// Draws one index with probability proportional to its weight.
  template <class Gen>
  [[nodiscard]] std::size_t sample(Gen& gen) const noexcept {
    const std::size_t k =
        static_cast<std::size_t>(util::uniform_index(gen, prob_.size()));
    return util::uniform_double(gen) < prob_[k] ? k : alias_[k];
  }

  /// Normalised probability of outcome i (for tests and diagnostics).
  [[nodiscard]] double probability(std::size_t i) const noexcept {
    return normalized_[i];
  }

  [[nodiscard]] std::span<const double> probabilities() const noexcept {
    return normalized_;
  }

 private:
  std::vector<double> prob_;        // acceptance threshold per bucket
  std::vector<std::uint32_t> alias_;  // fallback outcome per bucket
  std::vector<double> normalized_;  // p_i, kept for introspection
};

}  // namespace isasgd::sampling
