#include "sampling/alias_table.hpp"

#include <cmath>
#include <stdexcept>

namespace isasgd::sampling {

AliasTable::AliasTable(std::span<const double> weights) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0) || !std::isfinite(w)) {
      throw std::invalid_argument("AliasTable: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0) throw std::invalid_argument("AliasTable: all weights zero");

  normalized_.resize(n);
  for (std::size_t i = 0; i < n; ++i) normalized_[i] = weights[i] / total;

  // Vose's stable construction: partition outcomes into under-full and
  // over-full buckets relative to the uniform level 1/n, then pair them.
  prob_.assign(n, 1.0);
  alias_.resize(n);
  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = normalized_[i] * static_cast<double>(n);
    alias_[i] = static_cast<std::uint32_t>(i);
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] -= 1.0 - scaled[s];
    if (scaled[l] < 1.0) {
      large.pop_back();
      small.push_back(l);
    }
  }
  // Leftovers (floating-point residue): saturate to probability 1.
  for (std::uint32_t s : small) prob_[s] = 1.0;
  for (std::uint32_t l : large) prob_[l] = 1.0;
}

}  // namespace isasgd::sampling
