#include "sampling/sequence.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace isasgd::sampling {

SampleSequence SampleSequence::weighted(std::span<const double> weights,
                                        std::size_t length,
                                        std::uint64_t seed) {
  AliasTable table(weights);
  util::Rng rng(seed);
  std::vector<std::uint32_t> out(length);
  for (auto& v : out) v = static_cast<std::uint32_t>(table.sample(rng));
  return SampleSequence(std::move(out));
}

SampleSequence SampleSequence::uniform(std::size_t n, std::size_t length,
                                       std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::uint32_t> out(length);
  for (auto& v : out) {
    v = static_cast<std::uint32_t>(util::uniform_index(rng, n));
  }
  return SampleSequence(std::move(out));
}

SampleSequence SampleSequence::permutation(std::size_t n, std::uint64_t seed) {
  std::vector<std::uint32_t> out(n);
  std::iota(out.begin(), out.end(), 0u);
  util::Rng rng(seed);
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(out[i - 1], out[j]);
  }
  return SampleSequence(std::move(out));
}

double SampleSequence::empirical_frequency(std::uint32_t i) const noexcept {
  if (indices_.empty()) return 0.0;
  const auto count = std::count(indices_.begin(), indices_.end(), i);
  return static_cast<double>(count) / static_cast<double>(indices_.size());
}

StratifiedSequence::StratifiedSequence(std::span<const double> weights,
                                       std::size_t length, std::uint64_t seed,
                                       std::size_t min_visits)
    : rng_(seed) {
  const std::size_t n = weights.size();
  if (n == 0) throw std::invalid_argument("StratifiedSequence: empty weights");
  double total = 0;
  for (double w : weights) {
    if (!(w >= 0) || !std::isfinite(w)) {
      throw std::invalid_argument(
          "StratifiedSequence: weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0) {
    throw std::invalid_argument("StratifiedSequence: all weights zero");
  }
  if (length == 0) {
    throw std::invalid_argument("StratifiedSequence: zero length");
  }

  // Systematic resampling: one uniform offset, `length` equally spaced
  // strata over the cumulative distribution. count_i = number of strata
  // points landing in i's probability interval — the minimum-variance
  // unbiased integerisation of length·p_i.
  counts_.assign(n, 0);
  const double u = util::uniform_double(rng_);
  double cumulative = 0;
  std::size_t k = 0;  // next stratum index
  for (std::size_t i = 0; i < n; ++i) {
    cumulative += weights[i] / total;
    while (k < length &&
           (static_cast<double>(k) + u) / static_cast<double>(length) <
               cumulative) {
      ++counts_[i];
      ++k;
    }
  }
  // Floating-point slack: assign any unplaced strata to the last outcome.
  for (; k < length; ++k) ++counts_[n - 1];

  // Coverage floor.
  for (auto& c : counts_) c = std::max(c, min_visits);

  std::size_t total_visits = 0;
  for (std::size_t c : counts_) total_visits += c;
  indices_.reserve(total_visits);
  for (std::size_t i = 0; i < n; ++i) {
    indices_.insert(indices_.end(), counts_[i],
                    static_cast<std::uint32_t>(i));
  }
  reshuffle();
}

void StratifiedSequence::reshuffle() {
  for (std::size_t i = indices_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng_, i);
    std::swap(indices_[i - 1], indices_[j]);
  }
}

ShardedSequence::ShardedSequence(std::vector<std::size_t> shard_sizes,
                                 std::uint64_t seed)
    : shard_sizes_(std::move(shard_sizes)), seed_(seed) {
  for (std::size_t rows : shard_sizes_) total_rows_ += rows;
  shard_order_.resize(shard_sizes_.size());
  begin_epoch(1);
}

void ShardedSequence::begin_epoch(std::size_t epoch) {
  epoch_ = epoch;
  std::iota(shard_order_.begin(), shard_order_.end(), 0u);
  // Seeded from (seed, epoch) only — never from how the previous epoch was
  // consumed — so schedules are identical across backends and replays.
  util::Rng rng(util::derive_seed(seed_, epoch));
  for (std::size_t i = shard_order_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(shard_order_[i - 1], shard_order_[j]);
  }
}

std::span<const std::uint32_t> ShardedSequence::rows(std::size_t s) {
  const std::size_t rows = shard_sizes_.at(s);
  row_scratch_.resize(rows);
  std::iota(row_scratch_.begin(), row_scratch_.end(), 0u);
  // Pure function of (seed, epoch, shard): interleave the shard ordinal into
  // the seed derivation so two shards of one epoch draw distinct streams.
  util::Rng rng(util::derive_seed(util::derive_seed(seed_, epoch_), s + 1));
  for (std::size_t i = rows; i > 1; --i) {
    const std::size_t j = util::uniform_index(rng, i);
    std::swap(row_scratch_[i - 1], row_scratch_[j]);
  }
  return row_scratch_;
}

ReshuffledSequence::ReshuffledSequence(std::span<const double> weights,
                                       std::size_t length, std::uint64_t seed)
    : rng_(seed) {
  AliasTable table(weights);
  indices_.resize(length);
  for (auto& v : indices_) v = static_cast<std::uint32_t>(table.sample(rng_));
}

ReshuffledSequence::ReshuffledSequence(std::size_t n, std::size_t length,
                                       std::uint64_t seed)
    : rng_(seed) {
  indices_.resize(length);
  for (auto& v : indices_) {
    v = static_cast<std::uint32_t>(util::uniform_index(rng_, n));
  }
}

void ReshuffledSequence::reshuffle() {
  for (std::size_t i = indices_.size(); i > 1; --i) {
    const std::size_t j = util::uniform_index(rng_, i);
    std::swap(indices_[i - 1], indices_[j]);
  }
}

}  // namespace isasgd::sampling
